"""Bench L1 — load-latency curves (extension, methodology of [1]).

Mean message latency vs offered load under uniform Poisson traffic at
128 ports, for wormhole, circuit switching, and dynamic TDM.
"""

from __future__ import annotations

from conftest import archive, bench_params

from repro.experiments.loadlatency import run_load_latency

PARAMS = bench_params()


def test_load_latency_curves(benchmark):
    result = benchmark.pedantic(
        run_load_latency,
        kwargs=dict(params=PARAMS, duration_ns=10_000.0),
        rounds=1,
        iterations=1,
    )
    archive("load_latency", result.format())

    # wormhole owns the zero-load regime (no slot alignment) ...
    assert result.latency("wormhole", 0.1) < result.latency("dynamic-tdm", 0.1)
    # ... but TDM's cached connections degrade far more gracefully
    assert result.latency("dynamic-tdm", 0.8) < result.latency("wormhole", 0.8)
    # circuit switching pays its 240 ns handshake per message throughout
    for load in (0.3, 0.5, 0.7):
        assert result.latency("circuit", load) == max(
            result.latency(s, load) for s in ("wormhole", "circuit", "dynamic-tdm")
        )
    # everything rises monotonically-ish toward saturation
    for scheme, series in result.series.items():
        assert series[-1] > series[0], scheme

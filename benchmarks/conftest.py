"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table, figure panel, or
ablation) at the paper's full 128-port scale, prints the series it
produced, and archives it under ``benchmarks/results/`` so the data
survives pytest's output capture.

Set ``REPRO_BENCH_PORTS`` (e.g. ``=32``) to run the whole harness at a
reduced system size for quick iteration.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.params import PAPER_PARAMS, SystemParams

RESULTS_DIR = Path(__file__).parent / "results"


def bench_params() -> SystemParams:
    ports = int(os.environ.get("REPRO_BENCH_PORTS", "128"))
    return PAPER_PARAMS.with_overrides(n_ports=ports)


def archive(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")


@pytest.fixture
def params() -> SystemParams:
    return bench_params()

"""Benches A1-A6 — ablations of the design choices DESIGN.md calls out."""

from __future__ import annotations

from conftest import archive, bench_params

from repro.experiments.ablations import (
    ablation_guard_band,
    ablation_idle_slot_skipping,
    ablation_multislot,
    ablation_predictors,
    ablation_rotation_fairness,
    ablation_sl_units,
)
from repro.metrics.report import format_table

PARAMS = bench_params()


def _archive_dict(name: str, title: str, data: dict) -> None:
    rows = [[k, v] for k, v in data.items()]
    archive(name, format_table(["setting", "value"], rows, title=title))


def test_ablation_a1_sl_units(benchmark):
    data = benchmark.pedantic(
        ablation_sl_units, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict("ablation_a1_sl_units", "A1 - SL units vs all-to-all efficiency", data)
    # more scheduling logic units help the churn-bound workload
    assert data[2] > data[1]
    assert data[4] > data[2]


def test_ablation_a2_multislot(benchmark):
    data = benchmark.pedantic(
        ablation_multislot, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict("ablation_a2_multislot", "A2 - multi-slot elephant flow", data)
    # two slots instead of one: close to 2x faster
    assert data["speedup"] > 1.6


def test_ablation_a3_predictors(benchmark):
    data = benchmark.pedantic(
        ablation_predictors, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict("ablation_a3_predictors", "A3 - eviction predictors on sequential mesh", data)
    # latching predictors beat releasing immediately on reused connections
    assert data["timeout-2us"] > data["none"]
    assert data["counter-512"] > data["none"]


def test_ablation_a4_guard_band(benchmark):
    data = benchmark.pedantic(
        ablation_guard_band, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict("ablation_a4_guard_band", "A4 - guard band fraction", data)
    assert data[0.0] > data[0.05] > data[0.10]


def test_ablation_a5_rotation(benchmark):
    data = benchmark.pedantic(
        ablation_rotation_fairness, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict("ablation_a5_rotation", "A5 - priority rotation", data)
    assert data["round-robin_efficiency"] > data["fixed_efficiency"]


def test_ablation_a6_idle_slot_skipping(benchmark):
    data = benchmark.pedantic(
        ablation_idle_slot_skipping, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict("ablation_a6_idle_skip", "A6 - idle slot skipping", data)
    assert data["skip"] >= data["no-skip"] * 0.99


def test_ablation_a7_multihop(benchmark):
    """A7 — the conclusion's multi-hop claim, quantified (model-based)."""
    from repro.metrics.report import format_table
    from repro.networks.multihop import MultiHopModel

    def sweep():
        model = MultiHopModel(PARAMS, msg_bytes=512, k=4)
        return model.sweep((1, 2, 4, 8))

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    archive(
        "ablation_a7_multihop",
        format_table(
            [
                "hops",
                "TDM 1st msg (ns)",
                "TDM cached (ns)",
                "wormhole (ns)",
                "TDM stream eff",
                "worm stream eff",
                "worm buffers (B)",
            ],
            [
                [
                    r.hops,
                    round(r.tdm_first_message_ns, 1),
                    round(r.tdm_cached_message_ns, 1),
                    round(r.wormhole_message_ns, 1),
                    round(r.tdm_stream_efficiency, 3),
                    round(r.wormhole_stream_efficiency, 3),
                    r.wormhole_buffer_bytes,
                ]
                for r in rows
            ],
            title="A7 - multi-hop: passive pipes vs per-hop arbitration",
        ),
    )
    # cached TDM messages beat wormhole at every hop count; the gap widens
    gaps = [r.wormhole_message_ns - r.tdm_cached_message_ns for r in rows]
    assert all(g > 0 for g in gaps)
    assert gaps[-1] > gaps[0]
    # and wormhole needs buffering that grows with the path
    assert rows[-1].wormhole_buffer_bytes > rows[0].wormhole_buffer_bytes


def test_ablation_a8_multiplexing_degree(benchmark):
    from repro.experiments.ablations import ablation_multiplexing_degree

    data = benchmark.pedantic(
        ablation_multiplexing_degree, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    from repro.metrics.report import format_table

    archive(
        "ablation_a8_degree",
        format_table(
            ["K", "efficiency", "scheduler kLEs"],
            [[k, round(v["efficiency"], 3), round(v["kilo_les"], 1)] for k, v in data.items()],
            title="A8 - multiplexing degree: efficiency vs area",
        ),
    )
    # caching the 4-destination working set needs K >= 4
    assert data[4]["efficiency"] > data[1]["efficiency"]
    assert data[4]["efficiency"] > data[2]["efficiency"]
    # area grows with K regardless
    assert data[16]["kilo_les"] > data[4]["kilo_les"] > data[1]["kilo_les"]


def test_ablation_a9_prefetching(benchmark):
    from repro.experiments.ablations import ablation_prefetching

    data = benchmark.pedantic(
        ablation_prefetching, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict(
        "ablation_a9_prefetch", "A9 - Markov next-connection prefetching", data
    )
    # perfect accuracy and a clear win on the predictable pattern ...
    assert data["ordered_accuracy"] > 0.95
    assert data["ordered_prefetch"] > 1.1 * data["ordered_base"]
    # ... while random order defeats the predictor and costs ~nothing
    assert data["random_accuracy"] < 0.6
    assert data["random_prefetch"] > 0.9 * data["random_base"]


def test_ablation_a10_fabrics(benchmark):
    from repro.experiments.ablations import ablation_fabrics

    data = benchmark.pedantic(
        ablation_fabrics, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict(
        "ablation_a10_fabrics", "A10 - fabric constraints under identical traffic", data
    )
    # the crossbar is the least constrained fabric
    assert data["crossbar"] >= data["omega"]
    assert data["crossbar"] >= data["fat-tree-4to1"]


def test_ablation_a11_cooperative_control(benchmark):
    """A11 — the conclusion's future work: compiler + predictor + scheduler.

    Finding: prefetching *alone* can lose efficiency (speculative latches
    compete with live traffic for slot capacity), but once the compiler's
    preloaded registers carry the static pattern, the predictor's
    coverage of the repeating dynamic remainder is a clear win — the
    combination is the best stack.
    """
    from repro.experiments.ablations import ablation_cooperative_control

    data = benchmark.pedantic(
        ablation_cooperative_control, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    _archive_dict(
        "ablation_a11_cooperative", "A11 - cooperative control stacks", data
    )
    assert data["compiler"] >= data["dynamic"]
    assert data["compiler+prefetch"] > data["compiler"]
    assert data["compiler+prefetch"] == max(data.values())


def test_ablation_a12_injection_window(benchmark):
    """A12 — sensitivity of the narrated orderings to the injection window."""
    from repro.experiments.ablations import ablation_injection_window
    from repro.metrics.report import format_table

    data = benchmark.pedantic(
        ablation_injection_window, kwargs=dict(params=PARAMS), rounds=1, iterations=1
    )
    archive(
        "ablation_a12_window",
        format_table(
            ["window", "a2a dyn", "a2a/wormhole", "scatter dyn", "scatter/wormhole"],
            [
                [
                    k,
                    round(v["alltoall_dyn"], 3),
                    round(v["alltoall_vs_wormhole"], 3),
                    round(v["scatter_dyn"], 3),
                    round(v["scatter_vs_wormhole"], 3),
                ]
                for k, v in data.items()
            ],
            title="A12 - injection-window sensitivity of the key orderings",
        ),
    )
    # the Two Phase inversion (dynamic TDM below wormhole on all-to-all)
    # holds at EVERY window depth ...
    for v in data.values():
        assert v["alltoall_vs_wormhole"] < 1.0
    # ... while scatter needs a window of >= 4 outstanding sends for
    # dynamic TDM to reach its preload-like plateau above wormhole
    assert data["W=4"]["scatter_vs_wormhole"] > 1.0
    assert data["W=1"]["scatter_vs_wormhole"] < 1.0

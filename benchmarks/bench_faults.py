"""Bench R1 — fault-injection campaigns across the switching schemes.

Sweeps the fault arrival rate against all four schemes at the bench
system size, each scheme facing the same deterministic storm per rate,
and archives the degradation series (delivered fraction, effective
bandwidth, p99 recovery latency).  Asserts the campaign's safety
invariants: no duplicated deliveries ever, and zero-rate rows lossless.
"""

from __future__ import annotations

from conftest import archive, bench_params

from repro.experiments.faults import run_faults

PARAMS = bench_params()

RATES = (0.0, 0.5, 1.0, 2.0, 4.0)


def test_fault_campaigns(benchmark):
    result = benchmark.pedantic(
        run_faults,
        kwargs=dict(params=PARAMS, rates=RATES),
        rounds=1,
        iterations=1,
    )
    archive("faults", result.format())

    for point in result.points:
        # exactly-once delivery: duplicates are a correctness bug, not a
        # degradation mode
        assert point.report.duplicated == 0
        if point.rate_per_us == 0.0:
            assert point.report.delivered_fraction == 1.0
            assert point.report.dropped == 0
    # faults only ever cost bandwidth: every faulted row is no faster
    # than its scheme's healthy baseline
    for scheme, series in result.bandwidth.items():
        for bw in series[1:]:
            assert bw <= series[0] * 1.0001, (scheme, series)

"""Bench T3 — regenerate Table 3 (scheduler latency vs system size).

The benchmarked quantity is the calibration + table generation itself;
the artifact (the latency table, FPGA model vs paper values vs derived
ASIC numbers) is printed and archived.  A companion microbenchmark times
one functional SL-array pass at each size, demonstrating that the
*simulated* scheduler really is the N-linear structure the latency model
describes.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import archive

from repro.experiments.table3 import format_table3, run_table3
from repro.hw.synth import PAPER_SIZES
from repro.sched.presched import compute_l
from repro.sched.slarray import wavefront_sparse


def test_table3_regeneration(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=3, iterations=1)
    assert len(rows) == len(PAPER_SIZES)
    for row in rows:
        assert abs(row["error_ns"]) < 3.0
    archive("table3", format_table3(rows))


@pytest.mark.parametrize("n", [16, 64, 128])
def test_sl_array_pass_runtime(benchmark, n):
    """Functional runtime of one full-request SL pass at size n."""
    rng = np.random.default_rng(0)
    r = rng.random((n, n)) < 0.5
    np.fill_diagonal(r, False)
    b_s = np.zeros((n, n), dtype=bool)
    b_star = np.zeros((n, n), dtype=bool)

    def one_pass():
        pres = compute_l(r, b_s, b_star)
        rows, cols = np.nonzero(pres.l)
        return wavefront_sparse(rows, cols, b_s, b_s.any(0), b_s.any(1))

    outcome = benchmark(one_pass)
    assert len(outcome.established) > 0

"""Bench F4 — the four panels of Figure 4.

Each bench sweeps message sizes 8..2048 bytes over the paper's four
switching schemes (wormhole, circuit, dynamic TDM K=4, preload TDM K=4)
for one traffic pattern, prints the efficiency series — the data behind
the corresponding panel of Figure 4 — and asserts the paper's narrated
orderings at full scale.
"""

from __future__ import annotations


from conftest import archive, bench_params

from repro.experiments.figure4 import MESSAGE_SIZES, run_figure4

PARAMS = bench_params()


def _panel(benchmark, pattern: str):
    result = benchmark.pedantic(
        run_figure4,
        kwargs=dict(params=PARAMS, patterns=(pattern,), sizes=MESSAGE_SIZES),
        rounds=1,
        iterations=1,
    )
    archive(f"figure4_{pattern}", result.format())
    return result


def test_figure4_scatter(benchmark):
    result = _panel(benchmark, "scatter")
    eff = lambda scheme, size: result.efficiency("scatter", scheme, size)
    # notable increase between 32 and 64 bytes, then a plateau
    assert eff("preload", 64) > 1.5 * eff("preload", 32)
    assert eff("preload", 2048) >= 0.9 * eff("preload", 64)
    # preload and dynamic are "very similar" on scatter
    for size in (64, 512, 2048):
        assert abs(eff("preload", size) - eff("dynamic-tdm", size)) < 0.25 * eff(
            "preload", size
        )


def test_figure4_random_mesh(benchmark):
    result = _panel(benchmark, "random-mesh")
    eff = lambda scheme, size: result.efficiency("random-mesh", scheme, size)
    # both TDM variants beat wormhole and circuit switching
    for size in (64, 128, 256):
        assert eff("dynamic-tdm", size) > eff("wormhole", size)
        assert eff("preload", size) > eff("wormhole", size)
        assert eff("dynamic-tdm", size) > eff("circuit", size)
    # circuit switching improves when messages are large
    assert eff("circuit", 2048) > 2 * eff("circuit", 64)


def test_figure4_ordered_mesh(benchmark):
    result = _panel(benchmark, "ordered-mesh")
    eff = lambda scheme, size: result.efficiency("ordered-mesh", scheme, size)
    # the highly predictable pattern is preload's home turf
    for size in (64, 256, 2048):
        assert eff("preload", size) == max(
            eff(s, size) for s in ("preload", "dynamic-tdm", "wormhole", "circuit")
        )


def test_figure4_two_phase(benchmark):
    result = _panel(benchmark, "two-phase")
    eff = lambda scheme, size: result.efficiency("two-phase", scheme, size)
    # preload does better than the rest; dynamic TDM drops below wormhole
    for size in (64, 128):
        assert eff("preload", size) == max(
            eff(s, size) for s in ("preload", "dynamic-tdm", "wormhole", "circuit")
        )
        assert eff("dynamic-tdm", size) < eff("wormhole", size)

"""Benchmark of the multi-switch scale-out sweep (mesh-tdm / fattree-tdm).

The sweep's CSV intentionally contains no wall-clock numbers — wall
clock is measured *here*, once, and archived next to the deterministic
series: per-cell runtime, event-kernel throughput (events/s), and the
scheduler-latency figures the topology layer is accountable for.

Set ``REPRO_BENCH_ENDPOINTS`` (e.g. ``=64``) to shrink the grid for
quick iteration; the default exercises the paper-scale 256-endpoint
fabrics on both topologies, healthy and faulted.
"""

from __future__ import annotations

import os
import time

from conftest import archive

from repro.experiments.common import DEFAULT_SEED
from repro.experiments.scaleout import (
    SCALEOUT_SCHEMES,
    ScaleoutCell,
    run_scaleout_cell,
)
from repro.params import PAPER_PARAMS


def _bench_endpoints() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_ENDPOINTS", "256")
    return tuple(int(x) for x in raw.split(","))


def _cell(scheme: str, n: int, faulted: bool) -> ScaleoutCell:
    return ScaleoutCell(
        scheme=scheme,
        n_endpoints=n,
        messages_per_endpoint=4,
        size_bytes=256,
        params=PAPER_PARAMS,
        k=4,
        faulted=faulted,
        seed=DEFAULT_SEED,
    )


def test_scaleout_throughput(benchmark):
    """Wall-clock + events/s for every (scheme, endpoints, faulted) cell."""
    endpoints = _bench_endpoints()

    # warm the import/JIT-free paths once on the smallest cell
    run_scaleout_cell(_cell(SCALEOUT_SCHEMES[0], endpoints[0], False))

    lines = [
        "=== scale-out sweep throughput (multi-hop TDM) ===",
        f"{'scheme':>12} {'n':>5} {'flt':>3} {'est_mean_ns':>11} "
        f"{'slot_util':>9} {'events':>8} {'wall_s':>7} {'events/s':>9}",
    ]
    slowest: ScaleoutCell | None = None
    slowest_s = -1.0
    for scheme in SCALEOUT_SCHEMES:
        for n in endpoints:
            for faulted in (False, True):
                cell = _cell(scheme, n, faulted)
                t0 = time.monotonic()
                point = run_scaleout_cell(cell)
                wall_s = time.monotonic() - t0
                eps = point.events / wall_s if wall_s > 0 else 0.0
                lines.append(
                    f"{point.scheme:>12} {point.n_endpoints:>5} "
                    f"{int(point.faulted):>3} {point.est_mean_ps / 1000:>11.1f} "
                    f"{point.slot_utilization:>9.4f} {point.events:>8} "
                    f"{wall_s:>7.2f} {eps:>9.0f}"
                )
                if wall_s > slowest_s:
                    slowest, slowest_s = cell, wall_s
                assert point.dropped == 0 or point.faulted
    archive("scaleout", "\n".join(lines))

    # the benchmark number itself: the heaviest cell of the grid
    assert slowest is not None
    benchmark.pedantic(run_scaleout_cell, args=(slowest,), rounds=3, iterations=1)

"""Bench F5 — Figure 5: combining preload with dynamic scheduling.

Multiplexing degree 3; k of the slots preload the static pattern while
3-k schedule dynamic traffic; traffic determinism sweeps 50-100 %.
Prints the efficiency series per k and asserts the paper's two claims:
1-preload holds its own at 50 % determinism, and from 85 % determinism
the 2-preload scheme clearly wins.
"""

from __future__ import annotations

from conftest import archive, bench_params

from repro.experiments.figure5 import DETERMINISM_SWEEP, run_figure5

PARAMS = bench_params()


def test_figure5_hybrid_sweep(benchmark):
    result = benchmark.pedantic(
        run_figure5,
        kwargs=dict(
            params=PARAMS, determinism=DETERMINISM_SWEEP, messages_per_node=64
        ),
        rounds=1,
        iterations=1,
    )
    archive("figure5", result.format())

    # the 1-preload/2-dynamic scheme keeps pace with pure dynamic even at
    # 50 % determinism ...
    assert result.efficiency(1, 0.5) > 0.9 * result.efficiency(0, 0.5)
    # ... and beats it outright from 60 % on
    for det in (0.6, 0.7, 0.8, 0.9, 1.0):
        assert result.efficiency(1, det) > result.efficiency(0, det)
    # from 85 % determinism the 2-preload scheme takes the lead, clearing
    # 10 % by 90 % (the paper's crossover claim)
    for det in (0.85, 0.9, 0.95):
        assert result.efficiency(2, det) > result.efficiency(1, det)
    assert result.efficiency(2, 0.9) > 1.10 * result.efficiency(1, 0.9)
    # full determinism: preloading dominates pure dynamic
    assert result.efficiency(2, 1.0) > 1.2 * result.efficiency(0, 1.0)

"""Microbenchmarks of the hot simulation kernels.

Not paper artifacts — these guard the performance of the pieces the
cycle-level simulations iterate millions of times: the Table-1 vectorised
pre-scheduler, the sparse SL-array pass, the edge-colouring compiler, the
event kernel, and a full small end-to-end run.
"""

from __future__ import annotations

import numpy as np

from repro.compiled.coloring import decompose
from repro.experiments.common import measure
from repro.networks.registry import RunSpec, build_network
from repro.params import PAPER_PARAMS
from repro.sched.presched import compute_l
from repro.sim.engine import Simulator
from repro.traffic.mesh import OrderedMeshPattern
from repro.traffic.scatter import ScatterPattern


def test_presched_vectorised_128(benchmark):
    n = 128
    rng = np.random.default_rng(1)
    r = rng.random((n, n)) < 0.2
    b_s = np.zeros((n, n), dtype=bool)
    b_star = np.zeros((n, n), dtype=bool)
    res = benchmark(compute_l, r, b_s, b_star)
    assert res.l.any()


def test_edge_color_all_to_all_64(benchmark):
    n = 64
    conns = [(u, v) for u in range(n) for v in range(n) if u != v]
    configs = benchmark.pedantic(decompose, args=(conns, n), rounds=3, iterations=1)
    assert len(configs) == n - 1


def test_event_kernel_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        state = {"n": 0}

        def tick():
            state["n"] += 1
            if state["n"] < 10_000:
                sim.schedule(100, tick)

        sim.schedule(0, tick)
        sim.run()
        return state["n"]

    assert benchmark(run_10k_events) == 10_000


def test_end_to_end_small_tdm_run(benchmark):
    params = PAPER_PARAMS.with_overrides(n_ports=16)

    def run():
        return measure(
            OrderedMeshPattern(16, 128, rounds=2),
            build_network(
                RunSpec("dynamic-tdm", params, k=4, injection_window=4)
            ),
        )

    point = benchmark.pedantic(run, rounds=3, iterations=1)
    assert point.efficiency > 0


def test_fastpath_small_tdm_run(benchmark):
    """The slot-synchronous kernel on a streaming workload.

    Long per-destination streams give the quiescent-window machinery room
    to work; the point must match the event path bit-for-bit (the identity
    itself is CI-enforced and covered by tests/sim/test_fastpath.py — the
    assert here just pins that windows actually opened, so this bench
    keeps measuring the fast path rather than a silent fallback).
    """
    params = PAPER_PARAMS.with_overrides(n_ports=16)

    def run():
        net = build_network(
            RunSpec("dynamic-tdm", params, k=4, injection_window=4, fast=True)
        )
        point = measure(ScatterPattern(16, 2048), net)
        assert net._fastpath is not None
        assert net._fastpath.stats()["windows_opened"] > 0
        return point

    point = benchmark.pedantic(run, rounds=3, iterations=1)
    assert point.efficiency > 0

"""Service-level SLO benchmark: request-to-grant latency vs offered load.

Runs the online switching service against three seeded open-loop offered
loads around the admission bucket's configured rate — comfortably under,
at saturation, and well over — and reports the SLOs the daemon would be
operated against: p50/p99 request-to-grant latency, shed rate, and
availability.  The table is archived as Markdown under
``benchmarks/results/service_slo.md``.

Everything is virtual time, so the numbers are bit-identical for the
fixed seed; only the benchmark's wall-clock row varies between machines.
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import RESULTS_DIR, bench_params

from repro.params import SystemParams
from repro.service import (
    ServiceConfig,
    SwitchService,
    WorkloadSpec,
    check_invariants,
    predicted_pairs,
)
from repro.sim.clock import us

SEED = 7
HORIZON_PS = us(600)
#: the admission bucket's sustained rate (requests per virtual second)
ADMIT_RATE_PER_S = 2_000_000.0
#: offered-load multipliers: under, at, and over the admission rate
LOAD_POINTS = (0.5, 1.0, 2.0)


def _run_point(params: SystemParams, load: float) -> dict:
    spec = WorkloadSpec(
        kind="hotspot",
        n_ports=params.n_ports,
        rate_per_s=ADMIT_RATE_PER_S * load,
        mean_hold_ps=us(6),
        duration_ps=HORIZON_PS,
        hotspot_fraction=0.35,
        n_hot=max(1, params.n_ports // 8),
    )
    arrivals = spec.generate(SEED)
    cfg = ServiceConfig(
        k=4,
        bucket_rate_per_s=ADMIT_RATE_PER_S,
        bucket_burst=48,
        queue_depth=12,
        window_ps=us(20),
        availability_floor=0.0,
    )
    service = SwitchService(
        cfg,
        params,
        predicted=predicted_pairs(arrivals, count=params.n_ports),
    )
    t0 = time.monotonic()
    service.run_campaign(arrivals, max_wall_s=120.0)
    wall_s = time.monotonic() - t0
    violations = check_invariants(service)
    assert violations == [], violations
    p50, p99 = service.slo.latency_percentiles()
    return {
        "load": load,
        "offered_per_s": spec.rate_per_s,
        "arrivals": service.slo.arrivals,
        "granted": service.slo.granted,
        "p50_ns": p50 / 1000.0,
        "p99_ns": p99 / 1000.0,
        "shed_rate": service.slo.shed_rate,
        "availability": service.slo.availability,
        "final_level": service.ladder.level.name,
        "wall_s": wall_s,
    }


def _markdown(params: SystemParams, rows: list[dict]) -> str:
    lines = [
        "# Service SLOs vs offered load",
        "",
        f"Online switching service, {params.n_ports} ports, hybrid scheme (k=4), "
        f"seed {SEED}, {HORIZON_PS / 1000:.0f} ns virtual horizon, hotspot workload.",
        f"Admission bucket: {ADMIT_RATE_PER_S / 1e6:.1f}M req/s sustained, burst 48, "
        "queue depth 12 per port.",
        "",
        "| offered load | arrivals | granted | p50 grant | p99 grant "
        "| shed rate | availability | final level |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(
            f"| {r['load']:.1f}x ({r['offered_per_s'] / 1e6:.1f}M/s) "
            f"| {r['arrivals']} | {r['granted']} "
            f"| {r['p50_ns']:.1f} ns | {r['p99_ns']:.1f} ns "
            f"| {r['shed_rate']:.3f} | {r['availability']:.3f} "
            f"| {r['final_level']} |"
        )
    lines += [
        "",
        "All campaigns drain completely and pass every service invariant "
        "(conservation, no deadlock, queue bounds, register integrity).",
        "Latencies and rates are virtual-time quantities and bit-identical "
        "across machines for this seed; wall-clock per campaign: "
        + ", ".join(f"{r['wall_s'] * 1000:.0f} ms" for r in rows)
        + ".",
        "",
    ]
    return "\n".join(lines)


def test_service_slo_vs_offered_load(benchmark):
    """Three offered loads through the full admission/lease pipeline."""
    params = bench_params()
    rows = [_run_point(params, load) for load in LOAD_POINTS]

    # under load the service grants nearly everything cheaply; over load it
    # sheds rather than queueing without bound
    assert rows[0]["availability"] > rows[-1]["availability"] - 1e-9
    assert rows[-1]["shed_rate"] > 0.0
    assert all(r["p50_ns"] > 0 for r in rows)

    text = _markdown(params, rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    Path(RESULTS_DIR / "service_slo.md").write_text(text)
    print(f"\n{text}")

    # the benchmark number: the saturation-point campaign
    benchmark.pedantic(_run_point, args=(params, 1.0), rounds=3, iterations=1)

"""Benchmarks of the parallel experiment engine itself.

Not paper artifacts — these guard the engine's overheads: the canonical
cell encoding and seed derivation that run once per cell, the
content-addressed cache round-trip, and the end-to-end win of a warm
cache over recomputation.  The pool paths are covered functionally in
``tests/exec``; wall-clock pool speedup is hardware-dependent and is
reported in ``benchmarks/results/parallel_exec_perf.md`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec import ResultCache, canonical_json, derive_seed, map_cells
from repro.experiments.figure4 import run_figure4
from repro.params import PAPER_PARAMS


@dataclass(slots=True, frozen=True)
class _Cell:
    pattern: str
    scheme: str
    size_bytes: int
    seed: int


_CELLS = [
    _Cell("scatter", scheme, size, 20050404)
    for scheme in ("wormhole", "circuit", "dynamic-tdm", "preload")
    for size in (8, 64, 512, 4096)
]


def _square(cell: _Cell) -> int:
    return cell.size_bytes * cell.size_bytes


def test_canonical_encode_and_seed(benchmark):
    def derive_all():
        return [derive_seed(1, canonical_json(cell)) for cell in _CELLS]

    seeds = benchmark(derive_all)
    assert len(set(seeds)) == len(_CELLS)


def test_cache_round_trip(benchmark, tmp_path):
    store = ResultCache(tmp_path)
    map_cells(_square, _CELLS, jobs=1, cache=store)

    def warm():
        return map_cells(_square, _CELLS, jobs=1, cache=store)

    outcome = benchmark(warm)
    assert outcome.stats.cells_cached == len(_CELLS)


def test_engine_overhead_vs_bare_loop(benchmark):
    # the engine's per-cell cost (encoding, seeding, stats) on trivial
    # cells — the upper bound on overhead for real sweeps, whose cells
    # are 4-6 orders of magnitude slower
    def through_engine():
        return map_cells(_square, _CELLS, jobs=1).payloads

    payloads = benchmark(through_engine)
    assert payloads == [_square(c) for c in _CELLS]


def test_figure4_warm_cache_end_to_end(benchmark, tmp_path, params):
    kwargs = dict(params=params, sizes=(64, 512), patterns=("scatter",))
    run_figure4(jobs=1, cache=tmp_path, **kwargs)  # populate

    def warm():
        return run_figure4(jobs=1, cache=tmp_path, **kwargs)

    result = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert result.exec_stats.cells_cached == result.exec_stats.cells_total

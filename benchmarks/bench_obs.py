"""Benchmarks of the observability layer itself.

Two things must stay true for the instrumentation to be shippable:

* a **disabled** tracer adds (almost) nothing to a run — the hot paths
  guard on ``tracer.enabled`` before building payloads;
* an **enabled** tracer plus the exporters stay cheap enough to trace a
  full Figure-4 panel interactively.

The bench measures both, reports the event kernel's own throughput
counters, and archives everything under ``benchmarks/results/obs.txt``.
"""

from __future__ import annotations

import time

from conftest import archive, bench_params

from repro.experiments.common import DEFAULT_SEED, figure4_schemes
from repro.experiments.figure4 import figure4_patterns
from repro.obs import TracedRun, derive_spans, format_perf, to_chrome_trace
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


def _run_once(params, tracer=None):
    net = figure4_schemes(params)["dynamic-tdm"](tracer)
    pattern = figure4_patterns(params)["random-mesh"](512)
    phases = pattern.phases(RngStreams(DEFAULT_SEED))
    result = net.run(phases, pattern.name)
    return net, result


def test_tracing_overhead(benchmark, tmp_path):
    """Traced vs untraced dynamic-TDM run, plus exporter timings."""
    params = bench_params()

    # warm once, then time untraced and traced runs back to back
    _run_once(params)
    t0 = time.monotonic()
    net, _ = _run_once(params)
    untraced_s = time.monotonic() - t0
    perf = net.sim.perf_counters()

    tracer = Tracer(capacity=1 << 20)
    t0 = time.monotonic()
    _, result = _run_once(params, tracer)
    traced_s = time.monotonic() - t0

    events = list(tracer.events())
    t0 = time.monotonic()
    spans = derive_spans(events)
    span_s = time.monotonic() - t0
    run = TracedRun("dynamic-tdm", events, dict(result.counters))
    t0 = time.monotonic()
    to_chrome_trace([run], tmp_path / "bench_obs.json")
    export_s = time.monotonic() - t0

    overhead = traced_s / untraced_s - 1.0 if untraced_s > 0 else 0.0
    lines = [
        "=== observability overhead (dynamic-tdm, random-mesh, 512 B) ===",
        f"untraced run        {untraced_s * 1000:9.1f} ms",
        f"traced run          {traced_s * 1000:9.1f} ms  ({overhead:+.1%})",
        f"events recorded     {len(events):9d}  ({tracer.dropped} overwritten)",
        f"span derivation     {span_s * 1000:9.1f} ms  ({len(spans)} spans)",
        f"chrome export       {export_s * 1000:9.1f} ms",
        "--- event-kernel perf counters (untraced run) ---",
        format_perf(perf),
    ]
    archive("obs", "\n".join(lines))

    # the benchmark number itself: the traced run
    benchmark.pedantic(_run_once, args=(params, Tracer(1 << 20)), rounds=3, iterations=1)
    assert len(events) > 0
    assert any(s.name == "message" and not s.open for s in spans)


def test_null_tracer_fast_path(benchmark):
    """Recording against NULL_TRACER must stay a no-op attribute check."""
    from repro.sim.trace import NULL_TRACER

    def record_100k():
        record = NULL_TRACER.record
        for i in range(100_000):
            if NULL_TRACER.enabled:
                record(i, "xfer", src=0, dst=1, bytes=80)
        return NULL_TRACER.enabled

    assert benchmark(record_100k) is False

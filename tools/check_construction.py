#!/usr/bin/env python
"""Lint: concrete scheme classes must not be constructed outside the
networks layer.

Every construction site is supposed to resolve through the scheme
registry (``repro.networks.registry.build_network``), so experiments,
CLI paths, benchmarks, and examples stay decoupled from the concrete
scheme classes.  This checker walks the AST of every Python file under
the given roots and fails on a direct call to ``TdmNetwork(...)``,
``CircuitNetwork(...)``, or ``WormholeNetwork(...)``.

Exempt: ``src/repro/networks/`` itself (the registry's factories live
there) and ``tests/`` (unit tests exercise the concrete classes on
purpose).

Run:  python tools/check_construction.py            # lint the repo
      python tools/check_construction.py PATH ...   # lint specific roots
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SCHEME_CLASSES = frozenset({"TdmNetwork", "CircuitNetwork", "WormholeNetwork"})

#: directories whose files may construct scheme classes directly
EXEMPT_PARTS = (
    ("src", "repro", "networks"),
    ("tests",),
)

DEFAULT_ROOTS = ("src", "examples", "benchmarks", "tools", "tests")


def _exempt(path: Path, repo_root: Path) -> bool:
    try:
        rel = path.relative_to(repo_root).parts
    except ValueError:  # outside the repo (explicit roots): never exempt
        return False
    return any(rel[: len(parts)] == parts for parts in EXEMPT_PARTS)


def _called_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def find_violations(path: Path) -> list[tuple[int, str]]:
    """Direct scheme constructions in one file, as (line, class) pairs."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:  # a broken file is its own problem
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]
    return [
        (node.lineno, name)
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and (name := _called_name(node)) in SCHEME_CLASSES
    ]


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(a) for a in argv] if argv else [
        repo_root / r for r in DEFAULT_ROOTS
    ]
    violations: list[str] = []
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            if _exempt(path, repo_root):
                continue
            for lineno, name in find_violations(path):
                rel = (
                    path.relative_to(repo_root)
                    if path.is_relative_to(repo_root)
                    else path
                )
                violations.append(
                    f"{rel}:{lineno}: direct {name}(...) construction — "
                    "resolve it through repro.networks.registry.build_network"
                )
    if violations:
        print("\n".join(violations))
        print(f"\n{len(violations)} direct scheme construction(s) found")
        return 1
    print("construction check passed: all scheme construction goes "
          "through the registry")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

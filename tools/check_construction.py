#!/usr/bin/env python
"""Lint: architectural boundaries the type checker cannot see.

Three rules, all enforced by walking the AST of every Python file under
the given roots:

* **registry boundary** — concrete scheme classes (``TdmNetwork``,
  ``CircuitNetwork``, ``WormholeNetwork``, ``MultiSwitchTdmNetwork``)
  may only be constructed inside ``src/repro/networks/`` (the registry's
  factories) and ``tests/``; everything else resolves through
  ``repro.networks.registry.build_network``.
* **topology boundary** — the switch-graph builders (``full_mesh``,
  ``fat_tree``, ``line``) may only be called inside ``src/repro/topo/``,
  ``src/repro/networks/`` and ``tests/``.  Sweeps pick a composite
  scheme (``mesh-tdm``/``fattree-tdm``) and pass topology knobs through
  ``RunSpec.options``, keeping experiment cells plain cacheable data.
* **executor boundary** — ``multiprocessing`` and
  ``ProcessPoolExecutor`` may only appear inside ``src/repro/exec/`` and
  ``tests/``.  All fan-out goes through ``repro.exec.map_cells``, whose
  seed-derivation, ordered-reduction, and worker-reset rules are what
  make parallel sweeps bit-identical to serial ones; an ad-hoc pool
  would bypass every one of them.

Run:  python tools/check_construction.py            # lint the repo
      python tools/check_construction.py PATH ...   # lint specific roots
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SCHEME_CLASSES = frozenset(
    {
        "TdmNetwork",
        "CircuitNetwork",
        "WormholeNetwork",
        "MultiSwitchTdmNetwork",
        "IslipNetwork",
    }
)

#: switch-graph constructors only the topo layer, the registry's composite
#: factories, and tests may call directly; sweeps and examples pick a
#: topology by scheme name + options so cells stay plain cacheable data
TOPO_BUILDERS = frozenset({"full_mesh", "fat_tree", "line"})

#: process-pool machinery only repro.exec may touch
POOL_MODULES = frozenset({"multiprocessing"})
POOL_CLASSES = frozenset({"ProcessPoolExecutor"})

#: directories whose files may construct scheme classes directly
SCHEME_EXEMPT_PARTS = (
    ("src", "repro", "networks"),
    ("tests",),
)

#: directories whose files may use process pools directly
POOL_EXEMPT_PARTS = (
    ("src", "repro", "exec"),
    ("tests",),
)

#: directories whose files may build switch-graph topologies directly
TOPO_EXEMPT_PARTS = (
    ("src", "repro", "topo"),
    ("src", "repro", "networks"),
    ("tests",),
)

DEFAULT_ROOTS = ("src", "examples", "benchmarks", "tools", "tests")


def _exempt(
    path: Path, repo_root: Path, exempt_parts: tuple[tuple[str, ...], ...]
) -> bool:
    try:
        rel = path.relative_to(repo_root).parts
    except ValueError:  # outside the repo (explicit roots): never exempt
        return False
    return any(rel[: len(parts)] == parts for parts in exempt_parts)


def _called_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _parse(path: Path) -> ast.AST | list[tuple[int, str]]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:  # a broken file is its own problem
        return [(exc.lineno or 0, f"syntax error: {exc.msg}")]


def find_violations(path: Path) -> list[tuple[int, str]]:
    """Direct scheme constructions in one file, as (line, class) pairs."""
    tree = _parse(path)
    if isinstance(tree, list):
        return tree
    return [
        (node.lineno, name)
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and (name := _called_name(node)) in SCHEME_CLASSES
    ]


def find_topo_violations(path: Path) -> list[tuple[int, str]]:
    """Direct topology-builder calls in one file, as (line, name) pairs."""
    tree = _parse(path)
    if isinstance(tree, list):
        return tree
    return [
        (node.lineno, name)
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and (name := _called_name(node)) in TOPO_BUILDERS
    ]


def find_pool_violations(path: Path) -> list[tuple[int, str]]:
    """Process-pool imports/uses in one file, as (line, what) pairs."""
    tree = _parse(path)
    if isinstance(tree, list):
        return tree
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in POOL_MODULES:
                    out.append((node.lineno, f"import {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[0] in POOL_MODULES:
                out.append((node.lineno, f"from {module} import ..."))
            else:
                for alias in node.names:
                    if alias.name in POOL_CLASSES:
                        out.append(
                            (node.lineno, f"from {module} import {alias.name}")
                        )
        elif isinstance(node, ast.Call):
            if (name := _called_name(node)) in POOL_CLASSES:
                out.append((node.lineno, f"{name}(...)"))
    return out


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(a) for a in argv] if argv else [
        repo_root / r for r in DEFAULT_ROOTS
    ]
    rules = (
        (
            SCHEME_EXEMPT_PARTS,
            find_violations,
            lambda what: f"direct {what}(...) construction — resolve it "
            "through repro.networks.registry.build_network",
        ),
        (
            POOL_EXEMPT_PARTS,
            find_pool_violations,
            lambda what: f"{what} — all process fan-out goes through "
            "repro.exec.map_cells",
        ),
        (
            TOPO_EXEMPT_PARTS,
            find_topo_violations,
            lambda what: f"direct {what}(...) topology construction — pick "
            "a composite scheme (mesh-tdm/fattree-tdm) and pass topology "
            "knobs through RunSpec.options",
        ),
    )
    violations: list[str] = []
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            for exempt_parts, finder, message in rules:
                if _exempt(path, repo_root, exempt_parts):
                    continue
                for lineno, what in finder(path):
                    rel = (
                        path.relative_to(repo_root)
                        if path.is_relative_to(repo_root)
                        else path
                    )
                    violations.append(f"{rel}:{lineno}: {message(what)}")
    if violations:
        print("\n".join(violations))
        print(f"\n{len(violations)} boundary violation(s) found")
        return 1
    print("construction check passed: scheme construction goes through "
          "the registry, process fan-out through repro.exec")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

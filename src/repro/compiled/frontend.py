"""A miniature compiled-communication frontend.

Sections 3.1 and 3.3 of the paper assume a compiler that can

* identify the communication working set of each program region (loop
  nests with stencil/shift/collective operations),
* emit **preload directives** for the statically-known part, and
* insert **flush directives** at region boundaries where the working set
  changes (so the next region does not mis-predict on stale connections).

This module is that compiler for a small structured IR.  A program is a
tree of :class:`Region` nodes; leaves are communication statements
(:class:`Shift`, :class:`Stencil`, :class:`Gather`, :class:`Scatter`,
:class:`AllToAll`, :class:`Unknown`), and :class:`Loop` / :class:`Seq`
compose them.  :func:`compile_program` walks the tree and produces a
:class:`CompiledSchedule`: per phase, the static connection set, the
batched preload program sized to the register budget, whether a flush is
needed at entry, and the messages the phase will send.
:meth:`CompiledSchedule.run_spec` bridges the result to the scheme
registry (:mod:`repro.networks.registry`), and
:meth:`CompiledSchedule.run` executes it end to end.

The point is not to parse a real language but to reproduce the *analysis*:
working sets derive from the operations' index maps, loops multiply trip
counts without growing working sets (temporal locality), and an
:class:`Unknown` statement poisons only the static part of its phase.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..networks.base import RunResult
    from ..networks.registry import RunSpec
    from ..params import SystemParams

from ..errors import ConfigurationError
from ..traffic.base import TrafficPhase, assign_seq, mesh_dims
from ..traffic.mesh import torus_neighbors
from ..types import Connection, Message
from .directives import PreloadProgram
from .patterns import StaticPattern

__all__ = [
    "Comm",
    "Shift",
    "Stencil",
    "Gather",
    "Scatter",
    "AllToAll",
    "Unknown",
    "Loop",
    "Seq",
    "CompiledPhase",
    "CompiledSchedule",
    "compile_program",
]


# -- the IR ------------------------------------------------------------------


class Region(ABC):
    """A node of the program tree."""


class Comm(Region, ABC):
    """A communication statement: knows its connections and messages."""

    @abstractmethod
    def connections(self, n: int) -> set[Connection]:
        """The connection set this statement uses on ``n`` nodes."""

    @abstractmethod
    def messages(self, n: int, size: int) -> list[Message]:
        """One execution's messages (unsequenced)."""

    #: statically analysable? (Unknown overrides)
    static: bool = True


@dataclass(frozen=True)
class Shift(Comm):
    """Every node sends to ``(node + offset) mod n``."""

    offset: int

    def connections(self, n: int) -> set[Connection]:
        if self.offset % n == 0:
            raise ConfigurationError("shift offset maps nodes to themselves")
        return {Connection(u, (u + self.offset) % n) for u in range(n)}

    def messages(self, n: int, size: int) -> list[Message]:
        return [Message(src=u, dst=(u + self.offset) % n, size=size) for u in range(n)]


@dataclass(frozen=True)
class Stencil(Comm):
    """Nearest-neighbour halo exchange on the 2-D torus (E, W, N, S)."""

    def connections(self, n: int) -> set[Connection]:
        mesh_dims(n)
        nbrs = torus_neighbors(n)
        return {
            Connection(u, v) for u, dirs in nbrs.items() for v in dirs.values()
        }

    def messages(self, n: int, size: int) -> list[Message]:
        nbrs = torus_neighbors(n)
        return [
            Message(src=u, dst=nbrs[u][d], size=size)
            for d in ("E", "W", "N", "S")
            for u in range(n)
        ]


@dataclass(frozen=True)
class Gather(Comm):
    """All nodes send to one root (a reduction's communication)."""

    root: int = 0

    def connections(self, n: int) -> set[Connection]:
        return {Connection(u, self.root) for u in range(n) if u != self.root}

    def messages(self, n: int, size: int) -> list[Message]:
        return [
            Message(src=u, dst=self.root, size=size)
            for u in range(n)
            if u != self.root
        ]


@dataclass(frozen=True)
class Scatter(Comm):
    """One root sends to all nodes (a broadcast's communication)."""

    root: int = 0

    def connections(self, n: int) -> set[Connection]:
        return {Connection(self.root, v) for v in range(n) if v != self.root}

    def messages(self, n: int, size: int) -> list[Message]:
        return [
            Message(src=self.root, dst=v, size=size)
            for v in range(n)
            if v != self.root
        ]


@dataclass(frozen=True)
class AllToAll(Comm):
    """Complete exchange (shifted round order)."""

    def connections(self, n: int) -> set[Connection]:
        return {Connection(u, v) for u in range(n) for v in range(n) if u != v}

    def messages(self, n: int, size: int) -> list[Message]:
        return [
            Message(src=u, dst=(u + s) % n, size=size)
            for s in range(1, n)
            for u in range(n)
        ]


@dataclass(frozen=True)
class Unknown(Comm):
    """Data-dependent communication the compiler cannot analyse.

    Carries explicit (src, dst) pairs — known to *us* for simulation, but
    marked non-static so the compiler treats them as run-time traffic.
    """

    pairs: tuple[tuple[int, int], ...]
    static = False

    def connections(self, n: int) -> set[Connection]:
        return {Connection(u, v) for u, v in self.pairs}

    def messages(self, n: int, size: int) -> list[Message]:
        return [Message(src=u, dst=v, size=size) for u, v in self.pairs]


@dataclass(frozen=True)
class Loop(Region):
    """Repeat the body ``trips`` times — temporal locality incarnate."""

    trips: int
    body: tuple[Region, ...]

    def __post_init__(self) -> None:
        if self.trips < 1:
            raise ConfigurationError("loop needs at least one trip")


@dataclass(frozen=True)
class Seq(Region):
    """Sequential composition of regions."""

    body: tuple[Region, ...]


# -- compilation --------------------------------------------------------------


@dataclass
class CompiledPhase:
    """One program phase as the compiler sees it."""

    name: str
    n: int
    statements: list[Comm]
    trips: int
    static_conns: set[Connection]
    dynamic_conns: set[Connection]
    program: PreloadProgram | None
    flush_on_entry: bool

    @property
    def working_set_size(self) -> int:
        return len(self.static_conns | self.dynamic_conns)

    @property
    def optimal_degree(self) -> int:
        """The phase's minimal multiplexing degree k_j (Section 2)."""
        from .coloring import connection_degree

        return connection_degree(self.static_conns | self.dynamic_conns, self.n)


@dataclass
class CompiledSchedule:
    """The compiler's output for a whole program."""

    n: int
    k_preload: int
    phases: list[CompiledPhase] = field(default_factory=list)

    def to_traffic(self, size_bytes: int) -> list[TrafficPhase]:
        """Materialise runnable traffic phases (messages get fresh seqs)."""
        out: list[TrafficPhase] = []
        for cp in self.phases:
            msgs: list[Message] = []
            for _ in range(cp.trips):
                for stmt in cp.statements:
                    msgs.extend(stmt.messages(self.n, size_bytes))
            phase = TrafficPhase(
                cp.name,
                msgs,
                static_conns=set(cp.static_conns),
                preload_configs=(
                    [cfg for batch in cp.program.batches for cfg in batch]
                    if cp.program is not None
                    else None
                ),
            )
            out.append(phase)
        assign_seq(out)
        return out

    @property
    def flush_points(self) -> list[int]:
        """Indices of phases that begin with a flush directive."""
        return [i for i, p in enumerate(self.phases) if p.flush_on_entry]

    def run_spec(
        self,
        params: SystemParams,
        k: int,
        *,
        injection_window: int | None = None,
        **options: Any,
    ) -> RunSpec:
        """A scheme-registry spec that executes this schedule.

        Resolves to ``hybrid`` when the compiler reserved preload
        registers and plain ``dynamic-tdm`` otherwise, and honours the
        compiler's flush directives by enabling ``flush_on_phase``
        whenever any phase begins with one (callers can override it
        through ``options``).
        """
        # imported here: networks.tdm imports this package at module load
        from ..networks.registry import RunSpec

        opts = dict(options)
        if self.flush_points:
            opts.setdefault("flush_on_phase", True)
        return RunSpec(
            scheme="hybrid" if self.k_preload else "dynamic-tdm",
            params=params,
            k=k,
            k_preload=self.k_preload or None,
            injection_window=injection_window,
            options=opts,
        )

    def run(
        self,
        params: SystemParams,
        k: int,
        size_bytes: int,
        *,
        pattern_name: str = "compiled-program",
        injection_window: int | None = None,
        **options: Any,
    ) -> RunResult:
        """Materialise the traffic and run it through the registry."""
        from ..networks.registry import build_network

        spec = self.run_spec(
            params, k, injection_window=injection_window, **options
        )
        phases = self.to_traffic(size_bytes)
        return build_network(spec).run(phases, pattern_name=pattern_name)


def compile_program(
    program: Region,
    n: int,
    k_preload: int,
    *,
    max_batches: int | None = None,
) -> CompiledSchedule:
    """Run the compiled-communication analysis over a program tree.

    Phase formation: each **loop** becomes one phase (its body's working
    set is reused ``trips`` times — exactly the temporal locality TDM
    caches); consecutive non-loop statements coalesce into one phase.
    For each phase the statically-analysable connections are compiled
    into a batched :class:`PreloadProgram`; a phase whose compiled
    program would exceed ``max_batches`` batches is left dynamic (the
    heuristic of Section 3.3: preloading only pays when the working set
    (nearly) fits the registers).  A flush is emitted at every phase
    boundary where the previous static working set does not cover the new
    one.
    """
    if k_preload < 1:
        raise ConfigurationError("k_preload must be at least 1")
    schedule = CompiledSchedule(n=n, k_preload=k_preload)
    groups = _form_phases(program)
    prev_static: set[Connection] = set()
    for i, (name, statements, trips) in enumerate(groups):
        static: set[Connection] = set()
        dynamic: set[Connection] = set()
        for stmt in statements:
            conns = stmt.connections(n)
            (static if stmt.static else dynamic).update(conns)
        prog: PreloadProgram | None = None
        if static:
            pattern = StaticPattern(n, static)
            prog = PreloadProgram.compile(pattern, k_preload)
            if max_batches is not None and prog.n_batches > max_batches:
                prog = None
                dynamic |= static
                static = set()
        new_set = static | dynamic
        flush = i > 0 and bool(prev_static - new_set)
        schedule.phases.append(
            CompiledPhase(
                name=name,
                n=n,
                statements=list(statements),
                trips=trips,
                static_conns=static,
                dynamic_conns=dynamic,
                program=prog,
                flush_on_entry=flush,
            )
        )
        prev_static = static
    return schedule


def _form_phases(region: Region) -> list[tuple[str, list[Comm], int]]:
    """Flatten the tree into (name, statements, trips) phase groups."""
    groups: list[tuple[str, list[Comm], int]] = []
    pending: list[Comm] = []
    counter = [0]

    def flush_pending() -> None:
        if pending:
            groups.append((f"phase{counter[0]}", list(pending), 1))
            counter[0] += 1
            pending.clear()

    def walk(node: Region) -> None:
        if isinstance(node, Loop):
            flush_pending()
            stmts: list[Comm] = []
            _collect(node.body, stmts)
            groups.append((f"phase{counter[0]}-loop", stmts, node.trips))
            counter[0] += 1
        elif isinstance(node, Seq):
            for child in node.body:
                walk(child)
        elif isinstance(node, Comm):
            pending.append(node)
        else:  # pragma: no cover - the IR is closed
            raise ConfigurationError(f"unknown region node {node!r}")

    def _collect(body: tuple[Region, ...], out: list[Comm]) -> None:
        for child in body:
            if isinstance(child, Comm):
                out.append(child)
            elif isinstance(child, Loop):
                # nested loops fold into the phase; trips multiply the
                # message stream, not the working set, so for phase
                # formation we keep the statements once per outer trip
                for _ in range(child.trips):
                    _collect(child.body, out)
            elif isinstance(child, Seq):
                _collect(child.body, out)
            else:  # pragma: no cover
                raise ConfigurationError(f"unknown region node {child!r}")

    walk(region)
    flush_pending()
    return groups

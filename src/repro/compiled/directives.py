"""Compiler directives towards the scheduler.

Section 4, extensions 4 and 5: the NIC request signals can be augmented to
(4) ask the scheduler to **flush** all established connections — the
compiler inserts this between program regions with different communication
patterns (Section 3.3) — and (5) to transmit **pre-defined configurations**
to load into (or evict from) specific configuration registers.

A :class:`PreloadProgram` is the compiled artifact: per program phase, an
ordered list of configuration *batches* sized to the preload register
budget.  The TDM network plays it: load batch 0 at phase entry (after an
optional flush), and advance to the next batch when the connections of the
current one have drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..fabric.config import ConfigMatrix
from ..types import Connection
from .patterns import StaticPattern

__all__ = ["Directive", "FlushDirective", "LoadBatchDirective", "PreloadProgram"]


@dataclass(slots=True, frozen=True)
class Directive:
    """Base class for compiler directives (markers in the message stream)."""


@dataclass(slots=True, frozen=True)
class FlushDirective(Directive):
    """Clear all established connections (Section 3.3 phase boundary)."""


@dataclass(slots=True, frozen=True)
class LoadBatchDirective(Directive):
    """Load these configurations into the pinned preload slots."""

    configs: tuple[ConfigMatrix, ...]

    def __post_init__(self) -> None:
        if not self.configs:
            raise ConfigurationError("a load directive needs configurations")


@dataclass
class PreloadProgram:
    """The compiled preload schedule for one phase.

    ``batches[i]`` is the i-th group of configurations; each group fits the
    ``k_preload`` pinned registers.  ``covered`` is the union of all
    connections in the program (the statically-served traffic).
    """

    n: int
    k_preload: int
    batches: list[list[ConfigMatrix]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for batch in self.batches:
            if len(batch) > self.k_preload:
                raise ConfigurationError(
                    f"batch of {len(batch)} exceeds k_preload={self.k_preload}"
                )
            for cfg in batch:
                if cfg.n != self.n:
                    raise ConfigurationError("configuration size mismatch")

    @classmethod
    def compile(
        cls, pattern: StaticPattern, k_preload: int
    ) -> "PreloadProgram":
        """Compile a static pattern into a batched preload program."""
        if k_preload < 1:
            raise ConfigurationError("k_preload must be at least 1")
        return cls(
            n=pattern.n,
            k_preload=k_preload,
            batches=pattern.compile_batched(k_preload),
        )

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def covered(self) -> set[Connection]:
        out: set[Connection] = set()
        for batch in self.batches:
            for cfg in batch:
                out.update(cfg.connections())
        return out

    def batch_connections(self, index: int) -> set[Connection]:
        """Connections served while batch ``index`` is loaded."""
        out: set[Connection] = set()
        for cfg in self.batches[index]:
            out.update(cfg.connections())
        return out

    @property
    def is_single_batch(self) -> bool:
        """True when the whole pattern fits the preload registers at once."""
        return self.n_batches <= 1

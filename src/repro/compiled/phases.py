"""Working-set identification over connection traces.

Section 2 of the paper frames program communication as a sequence of
working sets ``W(1) .. W(p)`` trading off the number of phases ``p``
against the per-phase multiplexing degree ``k_j``.  This module provides
the two analyses a compiler (or an offline trace profiler) would run:

* :func:`partition_by_degree` — the greedy partition that keeps every
  phase's working set realisable within ``k`` configurations (degree <= k),
  cutting a new phase exactly when the next connection would exceed it;
* :func:`working_set_series` — the sliding-window working-set size over a
  trace, the quantity whose plateaus reveal phase structure (the locality
  analysis of the papers cited in Section 3.1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import Connection

__all__ = ["partition_by_degree", "working_set_series", "phase_boundaries"]


def partition_by_degree(
    trace: Sequence[tuple[int, int]], n: int, k: int
) -> list[set[Connection]]:
    """Greedy partition of a connection trace into degree-<= k working sets.

    Walking the trace in order, each connection joins the current working
    set unless doing so would raise the set's maximum port degree above
    ``k`` — then a new phase begins.  Every returned set is decomposable
    into at most ``k`` configurations (König), so the whole program can run
    with multiplexing degree ``k`` and one reconfiguration per boundary.
    """
    if k < 1:
        raise ConfigurationError("k must be at least 1")
    phases: list[set[Connection]] = []
    current: set[Connection] = set()
    out_deg = np.zeros(n, dtype=np.int64)
    in_deg = np.zeros(n, dtype=np.int64)
    for u, v in trace:
        if not (0 <= u < n and 0 <= v < n):
            raise ConfigurationError(f"connection ({u},{v}) out of range")
        conn = Connection(u, v)
        if conn in current:
            continue
        if out_deg[u] + 1 > k or in_deg[v] + 1 > k:
            phases.append(current)
            current = set()
            out_deg[:] = 0
            in_deg[:] = 0
        current.add(conn)
        out_deg[u] += 1
        in_deg[v] += 1
    if current:
        phases.append(current)
    return phases


def working_set_series(
    trace: Sequence[tuple[int, int]], window: int
) -> list[int]:
    """Distinct connections inside each length-``window`` sliding window.

    ``series[i]`` counts the distinct connections among
    ``trace[i : i + window]``; the list has ``len(trace) - window + 1``
    entries (empty if the trace is shorter than the window).
    """
    if window < 1:
        raise ConfigurationError("window must be at least 1")
    if len(trace) < window:
        return []
    counts: dict[tuple[int, int], int] = {}
    for item in trace[:window]:
        counts[item] = counts.get(item, 0) + 1
    series = [len(counts)]
    for i in range(window, len(trace)):
        incoming = trace[i]
        outgoing = trace[i - window]
        counts[incoming] = counts.get(incoming, 0) + 1
        counts[outgoing] -= 1
        if counts[outgoing] == 0:
            del counts[outgoing]
        series.append(len(counts))
    return series


def phase_boundaries(
    trace: Sequence[tuple[int, int]], window: int, jump_fraction: float = 0.5
) -> list[int]:
    """Detect likely phase boundaries from working-set turnover.

    Compares the connection sets of adjacent windows; an index ``i`` is a
    boundary when more than ``jump_fraction`` of the upcoming window's
    connections are absent from the previous window — the signature of a
    working-set change the compiler-flush heuristic (Section 3.3) targets.
    """
    if not 0.0 < jump_fraction <= 1.0:
        raise ConfigurationError("jump fraction must be in (0, 1]")
    if len(trace) < 2 * window:
        return []
    boundaries: list[int] = []
    i = window
    while i + window <= len(trace):
        prev = set(trace[i - window : i])
        nxt = set(trace[i : i + window])
        new = len(nxt - prev)
        if new / len(nxt) > jump_fraction:
            boundaries.append(i)
            i += window  # skip past the transition region
        else:
            i += 1
    return boundaries

"""Compiled communication: connection-set compilation and preload programs."""

from .coloring import connection_degree, decompose, edge_color, verify_coloring
from .directives import (
    Directive,
    FlushDirective,
    LoadBatchDirective,
    PreloadProgram,
)
from .frontend import (
    AllToAll,
    CompiledPhase,
    CompiledSchedule,
    Comm,
    Gather,
    Loop,
    Scatter,
    Seq,
    Shift,
    Stencil,
    Unknown,
    compile_program,
)
from .patterns import StaticPattern
from .phases import partition_by_degree, phase_boundaries, working_set_series

__all__ = [
    "connection_degree",
    "decompose",
    "edge_color",
    "verify_coloring",
    "Directive",
    "FlushDirective",
    "LoadBatchDirective",
    "PreloadProgram",
    "AllToAll",
    "CompiledPhase",
    "CompiledSchedule",
    "Comm",
    "Gather",
    "Loop",
    "Scatter",
    "Seq",
    "Shift",
    "Stencil",
    "Unknown",
    "compile_program",
    "StaticPattern",
    "partition_by_degree",
    "phase_boundaries",
    "working_set_series",
]

"""Static communication pattern algebra.

A :class:`StaticPattern` is a compile-time-known connection set with the
operations a compiled-communication pass needs: union across code regions,
optimal multiplexing degree, and compilation into preloadable
configurations (optionally batched to fit a register file of ``k`` slots).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import ConfigurationError
from ..fabric.config import ConfigMatrix
from ..types import Connection
from .coloring import connection_degree, decompose

__all__ = ["StaticPattern"]


class StaticPattern:
    """A compile-time connection set over ``n`` ports."""

    __slots__ = ("n", "conns")

    def __init__(self, n: int, conns: Iterable[tuple[int, int]] = ()) -> None:
        if n < 2:
            raise ConfigurationError("patterns need at least 2 ports")
        self.n = n
        self.conns: set[Connection] = set()
        for u, v in conns:
            self.add(u, v)

    @classmethod
    def from_permutation(cls, perm: Iterable[int]) -> "StaticPattern":
        """Pattern of a (partial) permutation: perm[u] = v, -1 to skip."""
        perm = list(perm)
        pat = cls(len(perm))
        for u, v in enumerate(perm):
            if v >= 0:
                pat.add(u, v)
        return pat

    @classmethod
    def from_config(cls, config: ConfigMatrix) -> "StaticPattern":
        pat = cls(config.n)
        for u, v in config.connections():
            pat.add(u, v)
        return pat

    def add(self, u: int, v: int) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ConfigurationError(f"connection ({u},{v}) out of range")
        if u == v:
            raise ConfigurationError("self connections are not modelled")
        self.conns.add(Connection(u, v))

    def union(self, other: "StaticPattern") -> "StaticPattern":
        """The combined working set of two regions."""
        if other.n != self.n:
            raise ConfigurationError("cannot union patterns of different sizes")
        return StaticPattern(self.n, self.conns | other.conns)

    def intersection(self, other: "StaticPattern") -> "StaticPattern":
        if other.n != self.n:
            raise ConfigurationError("cannot intersect patterns of different sizes")
        out = StaticPattern(self.n)
        out.conns = self.conns & other.conns
        return out

    @property
    def degree(self) -> int:
        """Optimal multiplexing degree k(C) = max port degree."""
        return connection_degree(self.conns, self.n)

    @property
    def is_permutation(self) -> bool:
        """True if the whole pattern fits one configuration."""
        return self.degree <= 1

    def compile(self) -> list[ConfigMatrix]:
        """Decompose into exactly ``degree`` conflict-free configurations."""
        return decompose(self.conns, self.n)

    def compile_batched(self, k: int) -> list[list[ConfigMatrix]]:
        """Compile, then batch into groups of at most ``k`` configurations.

        When the pattern's degree exceeds the available registers, the
        compiled program loads the batches sequentially — batch ``i+1``
        replaces batch ``i`` once its traffic has drained (the compiler
        inserts the corresponding load directives).
        """
        if k < 1:
            raise ConfigurationError("need at least one slot to batch into")
        configs = self.compile()
        return [configs[i : i + k] for i in range(0, len(configs), k)]

    def __len__(self) -> int:
        return len(self.conns)

    def __contains__(self, conn: tuple[int, int]) -> bool:
        return Connection(*conn) in self.conns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StaticPattern):
            return NotImplemented
        return self.n == other.n and self.conns == other.conns

    def __repr__(self) -> str:
        return f"StaticPattern(n={self.n}, |C|={len(self.conns)}, k={self.degree})"

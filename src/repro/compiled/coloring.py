"""Decomposing connection sets into crossbar configurations.

Section 2 of the paper: *"decompose the set of connections C into a number
of sets C1 .. Ck such that each Ci can be realized in the network without
conflict ... it is imperative to keep k as small as possible."*

For a crossbar, a conflict-free set is a partial permutation, so the
minimal decomposition of a connection set ``C`` is a proper **edge
colouring** of the bipartite graph (inputs, outputs, C).  By König's
theorem the chromatic index of a bipartite graph equals its maximum degree
Δ, so the optimal multiplexing degree for ``C`` is exactly

    k(C) = max_port max(out_degree, in_degree).

:func:`edge_color` implements the classical alternating-path (Kempe chain)
algorithm, which colours any bipartite graph with exactly Δ colours in
O(E · V) time; :func:`decompose` wraps it to return
:class:`~repro.fabric.config.ConfigMatrix` objects ready for preloading.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

import numpy as np

from ..errors import ConfigurationError, InvariantError
from ..fabric.config import ConfigMatrix

__all__ = ["connection_degree", "edge_color", "decompose", "verify_coloring"]


def connection_degree(conns: Collection[tuple[int, int]], n: int) -> int:
    """The maximum port degree Δ of a connection set — its optimal k."""
    out_deg = np.zeros(n, dtype=np.int64)
    in_deg = np.zeros(n, dtype=np.int64)
    for u, v in conns:
        out_deg[u] += 1
        in_deg[v] += 1
    if len(conns) == 0:
        return 0
    return int(max(out_deg.max(), in_deg.max()))


def edge_color(
    conns: Iterable[tuple[int, int]], n: int
) -> dict[tuple[int, int], int]:
    """Proper edge colouring of the bipartite connection graph.

    Returns a colour index in ``[0, Δ)`` for each connection such that no
    two connections sharing an input or an output port receive the same
    colour.  Duplicate connections are rejected (a connection set is a set).
    """
    edges = list(conns)
    if len(set(edges)) != len(edges):
        raise ConfigurationError("duplicate connections in the set")
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ConfigurationError(f"connection ({u},{v}) out of range")
    delta = connection_degree(edges, n)
    if delta == 0:
        return {}
    # free_in[u, c] == colour c unused at input u (and symmetrically).
    # partner arrays let us walk Kempe chains in O(1) per step:
    #   in_match[u, c]  = output v with edge (u,v) coloured c, else -1
    #   out_match[v, c] = input u with edge (u,v) coloured c, else -1
    in_match = np.full((n, delta), -1, dtype=np.int64)
    out_match = np.full((n, delta), -1, dtype=np.int64)
    color: dict[tuple[int, int], int] = {}

    def first_free(match_row: np.ndarray) -> int:
        free = np.nonzero(match_row < 0)[0]
        if len(free) == 0:  # pragma: no cover - König guarantees a free colour
            raise InvariantError("no free colour at a port with degree < Δ")
        return int(free[0])

    for u, v in edges:
        cu = first_free(in_match[u])
        cv = first_free(out_match[v])
        if cu == cv:
            c = cu
        else:
            # Flip the Kempe chain alternating cu/cv starting from output v:
            # v --cu--> u1 --cv--> v1 --cu--> u2 ...  The path can reach
            # neither u (cu is free there) nor v again (cv is free there),
            # so after swapping colours along it, cu is free at both ends.
            chain: list[tuple[int, int, int]] = []  # (input, output, old colour)
            out_node = v
            while True:
                in_node = int(out_match[out_node, cu])
                if in_node < 0:
                    break
                chain.append((in_node, out_node, cu))
                out_node_next = int(in_match[in_node, cv])
                if out_node_next < 0:
                    break
                chain.append((in_node, out_node_next, cv))
                out_node = out_node_next
            # Un-assign the chain, then re-assign with swapped colours.
            for iu, ov, old in chain:
                in_match[iu, old] = -1
                out_match[ov, old] = -1
            for iu, ov, old in chain:
                new = cv if old == cu else cu
                color[(iu, ov)] = new
                in_match[iu, new] = ov
                out_match[ov, new] = iu
            c = cu
        color[(u, v)] = c
        in_match[u, c] = v
        out_match[v, c] = u
    return color


def decompose(conns: Iterable[tuple[int, int]], n: int) -> list[ConfigMatrix]:
    """Split a connection set into Δ conflict-free configurations.

    The returned list has exactly ``connection_degree(conns, n)`` entries,
    each a valid partial permutation; their union is the input set.
    """
    edges = list(conns)
    coloring = edge_color(edges, n)
    delta = connection_degree(edges, n)
    configs = [ConfigMatrix(n) for _ in range(delta)]
    for (u, v), c in coloring.items():
        configs[c].establish(u, v)
    return configs


def verify_coloring(
    coloring: dict[tuple[int, int], int], edges: Collection[tuple[int, int]]
) -> bool:
    """Check the colouring is proper and covers exactly ``edges``."""
    if set(coloring) != set(edges):
        return False
    seen_in: set[tuple[int, int]] = set()
    seen_out: set[tuple[int, int]] = set()
    for (u, v), c in coloring.items():
        if (u, c) in seen_in or (v, c) in seen_out:
            return False
        seen_in.add((u, c))
        seen_out.add((v, c))
    return True

"""Decomposing connection sets into crossbar configurations.

Section 2 of the paper: *"decompose the set of connections C into a number
of sets C1 .. Ck such that each Ci can be realized in the network without
conflict ... it is imperative to keep k as small as possible."*

For a crossbar, a conflict-free set is a partial permutation, so the
minimal decomposition of a connection set ``C`` is a proper **edge
colouring** of the bipartite graph (inputs, outputs, C).  By König's
theorem the chromatic index of a bipartite graph equals its maximum degree
Δ, so the optimal multiplexing degree for ``C`` is exactly

    k(C) = max_port max(out_degree, in_degree).

:func:`edge_color` implements the classical alternating-path (Kempe chain)
algorithm, which colours any bipartite graph with exactly Δ colours in
O(E · V) time; :func:`decompose` wraps it to return
:class:`~repro.fabric.config.ConfigMatrix` objects ready for preloading.

``decompose(..., coloring="packed", demand=...)`` selects the opt-in
weighted decomposition (Minaeva-style slot packing): each connection is
replicated in proportion to its demand and the resulting bipartite
*multigraph* is Kempe-coloured, so a skewed working set gets a frame whose
slot shares match its byte shares instead of one uniform slot per edge.
The frame length is the weighted degree — the hottest port's total share —
which for skewed demand is far below the ``Δ × heaviest-edge`` slot-visits
a repeated uniform frame pays.
"""

from __future__ import annotations

import math
from collections.abc import Collection, Iterable, Mapping

import numpy as np

from ..errors import ConfigurationError, InvariantError
from ..fabric.config import ConfigMatrix

__all__ = [
    "connection_degree",
    "weighted_degree",
    "edge_color",
    "decompose",
    "packed_decompose",
    "verify_coloring",
]


def connection_degree(conns: Collection[tuple[int, int]], n: int) -> int:
    """The maximum port degree Δ of a connection set — its optimal k."""
    out_deg = np.zeros(n, dtype=np.int64)
    in_deg = np.zeros(n, dtype=np.int64)
    for u, v in conns:
        out_deg[u] += 1
        in_deg[v] += 1
    if len(conns) == 0:
        return 0
    return int(max(out_deg.max(), in_deg.max()))


def weighted_degree(weights: Mapping[tuple[int, int], int], n: int) -> int:
    """Maximum port *weight* of a weighted connection set.

    The multigraph analogue of :func:`connection_degree`: replicating each
    edge ``weights[e]`` times, the hottest port's replica count — by König
    this is exactly the packed frame length.
    """
    out_deg = np.zeros(n, dtype=np.int64)
    in_deg = np.zeros(n, dtype=np.int64)
    for (u, v), w in weights.items():
        out_deg[u] += w
        in_deg[v] += w
    if not weights:
        return 0
    return int(max(out_deg.max(), in_deg.max()))


def _kempe_assign(
    instances: Iterable[tuple[int, int]], n: int, delta: int
) -> tuple[np.ndarray, np.ndarray]:
    """Colour edge instances of a bipartite multigraph with ``delta`` colours.

    The classical alternating-path (Kempe chain) algorithm.  ``instances``
    may repeat an (input, output) pair — parallel edges simply land in
    distinct colours, which is all a weighted decomposition needs.  Returns
    the partner arrays: ``in_match[u, c]`` is the output connected to input
    ``u`` in colour ``c`` (else -1), and symmetrically ``out_match``.
    """
    # partner arrays let us walk Kempe chains in O(1) per step:
    #   in_match[u, c]  = output v with an edge (u,v) coloured c, else -1
    #   out_match[v, c] = input u with an edge (u,v) coloured c, else -1
    in_match = np.full((n, delta), -1, dtype=np.int64)
    out_match = np.full((n, delta), -1, dtype=np.int64)

    def first_free(match_row: np.ndarray) -> int:
        free = np.nonzero(match_row < 0)[0]
        if len(free) == 0:  # pragma: no cover - König guarantees a free colour
            raise InvariantError("no free colour at a port with degree < Δ")
        return int(free[0])

    for u, v in instances:
        cu = first_free(in_match[u])
        cv = first_free(out_match[v])
        if cu != cv:
            # Flip the Kempe chain alternating cu/cv starting from output v:
            # v --cu--> u1 --cv--> v1 --cu--> u2 ...  The path can reach
            # neither u (cu is free there) nor v again (cv is free there),
            # so after swapping colours along it, cu is free at both ends.
            chain: list[tuple[int, int, int]] = []  # (input, output, old colour)
            out_node = v
            while True:
                in_node = int(out_match[out_node, cu])
                if in_node < 0:
                    break
                chain.append((in_node, out_node, cu))
                out_node_next = int(in_match[in_node, cv])
                if out_node_next < 0:
                    break
                chain.append((in_node, out_node_next, cv))
                out_node = out_node_next
            # Un-assign the chain, then re-assign with swapped colours.
            for iu, ov, old in chain:
                in_match[iu, old] = -1
                out_match[ov, old] = -1
            for iu, ov, old in chain:
                new = cv if old == cu else cu
                in_match[iu, new] = ov
                out_match[ov, new] = iu
        in_match[u, cu] = v
        out_match[v, cu] = u
    return in_match, out_match


def edge_color(
    conns: Iterable[tuple[int, int]], n: int
) -> dict[tuple[int, int], int]:
    """Proper edge colouring of the bipartite connection graph.

    Returns a colour index in ``[0, Δ)`` for each connection such that no
    two connections sharing an input or an output port receive the same
    colour.  Duplicate connections are rejected (a connection set is a set).
    """
    edges = list(conns)
    if len(set(edges)) != len(edges):
        raise ConfigurationError("duplicate connections in the set")
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ConfigurationError(f"connection ({u},{v}) out of range")
    delta = connection_degree(edges, n)
    if delta == 0:
        return {}
    in_match, _ = _kempe_assign(edges, n, delta)
    color: dict[tuple[int, int], int] = {}
    for u in range(n):
        for c in range(delta):
            v = int(in_match[u, c])
            if v >= 0:
                color[(u, v)] = c
    return color


def _scaled_weights(
    edges: list[tuple[int, int]],
    demand: Mapping[tuple[int, int], int] | None,
    max_weight: int,
) -> dict[tuple[int, int], int]:
    """Slot shares per edge: demand scaled to ``[1, max_weight]``, gcd-reduced.

    The TDM counter repeats the loaded frame until its traffic drains, so
    only the *ratio* of slots between edges matters; scaling caps the frame
    length while keeping every edge at least one slot per frame.
    """
    if max_weight < 1:
        raise ConfigurationError("max_weight must be at least 1")
    raw = {e: int(demand.get(e, 1)) if demand else 1 for e in edges}
    for e, d in raw.items():
        if d < 0:
            raise ConfigurationError(f"negative demand for connection {e}")
    peak = max(raw.values(), default=0)
    if peak <= 0:
        return {e: 1 for e in edges}
    weights = {
        e: max(1, math.ceil(d * max_weight / peak)) for e, d in raw.items()
    }
    divisor = math.gcd(*weights.values())
    return {e: w // divisor for e, w in weights.items()}


def packed_decompose(
    conns: Iterable[tuple[int, int]],
    n: int,
    demand: Mapping[tuple[int, int], int] | None = None,
    max_weight: int = 8,
) -> list[ConfigMatrix]:
    """Weighted (Minaeva-style slot-packed) decomposition of a working set.

    Each connection is replicated in proportion to ``demand`` (any unit —
    bytes, slots; missing or zero-peak demand degenerates to plain edge
    colouring) and the multigraph is Kempe-coloured.  The returned frame
    has ``weighted_degree`` configurations; a connection carrying ``w``
    shares appears in exactly ``w`` of them, so per-frame bandwidth tracks
    demand and heavy edges stop serialising behind an uniform rotation.
    """
    edges = list(conns)
    if len(set(edges)) != len(edges):
        raise ConfigurationError("duplicate connections in the set")
    for u, v in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ConfigurationError(f"connection ({u},{v}) out of range")
    if not edges:
        return []
    weights = _scaled_weights(edges, demand, max_weight)
    delta = weighted_degree(weights, n)
    # heavy edges first: their replicas pin the tight ports before the
    # light fill-in, which keeps the Kempe chains short (order never
    # affects correctness, only constant factors)
    order = sorted(edges, key=lambda e: (-weights[e], e))
    instances = [e for e in order for _ in range(weights[e])]
    in_match, _ = _kempe_assign(instances, n, delta)
    configs = [ConfigMatrix(n) for _ in range(delta)]
    for u in range(n):
        for c in range(delta):
            v = int(in_match[u, c])
            if v >= 0:
                configs[c].establish(u, v)
    return configs


def decompose(
    conns: Iterable[tuple[int, int]],
    n: int,
    *,
    coloring: str = "kempe",
    demand: Mapping[tuple[int, int], int] | None = None,
    max_weight: int = 8,
) -> list[ConfigMatrix]:
    """Split a connection set into conflict-free configurations.

    With the default ``coloring="kempe"`` the returned list has exactly
    ``connection_degree(conns, n)`` entries, each a valid partial
    permutation, and their union is the input set.  ``coloring="packed"``
    selects :func:`packed_decompose`: the list instead carries one entry
    per weighted slot share (``demand`` sets the shares), so skewed
    working sets get demand-proportional frames.
    """
    if coloring == "kempe":
        edges = list(conns)
        colors = edge_color(edges, n)
        delta = connection_degree(edges, n)
        configs = [ConfigMatrix(n) for _ in range(delta)]
        for (u, v), c in colors.items():
            configs[c].establish(u, v)
        return configs
    if coloring == "packed":
        return packed_decompose(conns, n, demand=demand, max_weight=max_weight)
    raise ConfigurationError(
        f"unknown coloring {coloring!r}; choose 'kempe' or 'packed'"
    )


def verify_coloring(
    coloring: dict[tuple[int, int], int], edges: Collection[tuple[int, int]]
) -> bool:
    """Check the colouring is proper and covers exactly ``edges``."""
    if set(coloring) != set(edges):
        return False
    seen_in: set[tuple[int, int]] = set()
    seen_out: set[tuple[int, int]] = set()
    for (u, v), c in coloring.items():
        if (u, c) in seen_in or (v, c) in seen_out:
            return False
        seen_in.add((u, c))
        seen_out.add((v, c))
    return True

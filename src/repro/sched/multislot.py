"""Extension 2 — connections in more than one time slot.

Section 4: *"It is possible to add the capability of inserting a connection
in more than one time slot, thus increasing the bandwidth available to that
connection."*

The mechanism is the ``boost`` mask consulted by the pre-scheduling logic
(:func:`repro.sched.presched.compute_l`): a boosted connection may be
established in the scheduled slot even though ``B*`` already shows it
realised elsewhere.  This module provides the *policy* that decides which
connections deserve boosting.

:class:`QueueDepthBoostPolicy` implements the natural heuristic: when a
source queue holds more than ``threshold_bytes`` for one destination, ask
for up to ``max_slots`` slots for that connection; drop the boost (and let
normal releases shrink the allocation) when the queue falls back under the
threshold.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .scheduler import Scheduler

__all__ = ["QueueDepthBoostPolicy"]


class QueueDepthBoostPolicy:
    """Grant extra TDM slots to connections with deep backlogs."""

    def __init__(
        self,
        scheduler: Scheduler,
        threshold_bytes: int,
        max_slots: int = 2,
    ) -> None:
        if threshold_bytes <= 0:
            raise ConfigurationError("boost threshold must be positive")
        if max_slots < 1:
            raise ConfigurationError("max_slots must be at least 1")
        self.scheduler = scheduler
        self.threshold_bytes = threshold_bytes
        self.max_slots = max_slots

    def update(self, queue_bytes: np.ndarray) -> None:
        """Recompute the boost mask from the current queue depths.

        ``queue_bytes[u, v]`` is the backlog from source ``u`` to
        destination ``v``.  Called by the network model before each SL
        pass (it is cheap: three vectorised comparisons).
        """
        sched = self.scheduler
        deep = queue_bytes > self.threshold_bytes
        counts = sched.registers.presence_counts()
        # boost while the backlog is deep and the allocation is under cap
        sched.boost[:] = deep & (counts < self.max_slots)
        # never boost a connection that is not requested at all
        sched.boost &= sched.r_view

    def release_excess(self, queue_bytes: np.ndarray) -> int:
        """Release surplus slots of connections whose backlog drained.

        Returns the number of released (slot, connection) allocations.
        Normal Table-1 releases only fire when the request line drops; a
        multi-slot connection with a small remaining backlog keeps *all*
        its slots otherwise, so the policy trims allocations above one slot
        once the queue is shallow again.
        """
        sched = self.scheduler
        counts = sched.registers.presence_counts()
        multi = np.argwhere((counts > 1) & (queue_bytes <= self.threshold_bytes))
        released = 0
        for u, v in multi:
            u, v = int(u), int(v)
            slots = sched.registers.slots_of(u, v)
            for slot in slots[1:]:
                if slot in sched.registers.pinned:
                    continue
                sched.registers.release(slot, u, v)
                released += 1
        return released

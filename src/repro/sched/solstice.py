"""Solstice-style schedule computation for the preload register file.

Plain edge colouring (``compiled/coloring.py``) minimises the *number* of
configurations but is demand-blind: the connection order inside the frame
is whatever the Kempe chains produce, so a register file of ``k`` slots
holds an arbitrary slice of the working set while a batch plays.  Solstice
("Costly Circuits, Submodular Schedules", PAPERS.md) instead extracts
high-*coverage* permutations from the byte demand matrix, heaviest first.

:func:`solstice_schedule` adapts the algorithm to this repo's batch-hold
preload semantics (a loaded batch serves its connections to completion
before the next load, so durations are implicit): each round picks a
power-of-two threshold from the peak remaining demand, matches the
eligible heavy connections first, then *stuffs* the leftover ports with
lighter ones so no crossbar bandwidth idles — and the round's connections
leave the demand matrix for good.  Every connection appears in exactly one
configuration, the rounds are sorted by the demand they realise, and a
``k``-deep register file therefore holds the highest-coverage prefix at
every batch.  :func:`schedule_coverage` scores such a prefix — the metric
the bake-off uses to compare schedule computers on skewed demand.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..errors import ConfigurationError
from ..fabric.config import ConfigMatrix

__all__ = ["solstice_schedule", "schedule_coverage"]


def solstice_schedule(
    demand: Mapping[tuple[int, int], int], n: int
) -> list[tuple[ConfigMatrix, int]]:
    """Greedily extract high-coverage permutations from a demand matrix.

    ``demand`` maps connections to a nonnegative volume (any unit — bytes,
    slots).  Returns ``(config, covered)`` pairs in extraction order,
    where ``covered`` is the demand the round realises (the submodular
    gain that ranked it).  Zero-demand connections are scheduled too —
    after all positive demand, so they cost the coverage prefix nothing —
    which keeps the schedule a full decomposition of the connection set.
    """
    remaining: dict[tuple[int, int], int] = {}
    for (u, v), d in demand.items():
        if not (0 <= u < n and 0 <= v < n):
            raise ConfigurationError(f"connection ({u},{v}) out of range")
        if d < 0:
            raise ConfigurationError(f"negative demand for connection ({u},{v})")
        remaining[(u, v)] = int(d)
    schedule: list[tuple[ConfigMatrix, int]] = []
    while remaining:
        peak = max(remaining.values())
        threshold = 1 << (peak.bit_length() - 1) if peak > 0 else 0
        in_used = [False] * n
        out_used = [False] * n
        matched: list[tuple[int, int]] = []
        # heaviest-first over eligible edges, then stuffing: the same
        # greedy pass with the threshold dropped fills idle ports
        for lo, hi in ((threshold, peak), (0, threshold - 1)):
            for e in sorted(remaining, key=lambda e: (-remaining[e], e)):
                u, v = e
                if lo <= remaining[e] <= hi and not (in_used[u] or out_used[v]):
                    in_used[u] = True
                    out_used[v] = True
                    matched.append(e)
        covered = sum(remaining[e] for e in matched)
        schedule.append((ConfigMatrix.from_pairs(n, matched), covered))
        for e in matched:
            del remaining[e]
    return schedule


def schedule_coverage(
    configs: Sequence[ConfigMatrix],
    demand: Mapping[tuple[int, int], int],
    budget: int | None = None,
) -> float:
    """Fraction of demand on connections realised by a schedule prefix.

    Scores the first ``budget`` configurations (all of them when None) —
    the contents of a ``budget``-deep register file after its first load.
    Returns 1.0 for empty demand.
    """
    window = configs if budget is None else configs[:budget]
    realised: set[tuple[int, int]] = set()
    for cfg in window:
        realised.update((u, v) for u, v in cfg.connections())
    total = sum(max(0, d) for d in demand.values())
    if total == 0:
        return 1.0
    covered = sum(d for e, d in demand.items() if d > 0 and e in realised)
    return covered / total

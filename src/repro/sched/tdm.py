"""The TDM slot counter.

Figure 2 of the paper: *"The TDM counter ... counts from 0 to K-1, but
skips a particular count t if the corresponding matrix B(t) is all zeros.
This feature skips over empty configurations and allows the scheduler to
reduce the multiplexing degree by controlling the content of the
configuration registers."*

The counter therefore realises an *adaptive* multiplexing degree: the
effective degree at any moment equals the number of non-empty
configurations, so a working set that fits in two configurations gets each
of them every ~200 ns even when K = 8 registers exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fabric.registers import ConfigRegisterFile

__all__ = ["TdmCounter"]


@dataclass
class TdmCounter:
    """Cyclic counter over the non-empty slots of a register file."""

    registers: ConfigRegisterFile
    current: int = 0
    advances: int = field(default=0, init=False)
    idle_ticks: int = field(default=0, init=False)

    def advance(self, pending: np.ndarray | None = None) -> int | None:
        """Move to the next useful slot and return its index.

        A slot is skipped when its configuration is all zeros (the paper's
        rule).  When ``pending`` — the scheduler's request matrix — is
        supplied, slots whose established connections have no pending
        traffic are skipped too: the scheduler holds both ``B(t)`` and
        ``R``, so ANDing them is free in hardware and stops cached-but-idle
        configurations from consuming slot time.

        Returns ``None`` (and stays put) when no slot qualifies — the
        fabric simply holds no useful connections this slot.
        """
        slot = self._scan(pending)
        if slot is None:
            self.idle_ticks += 1
            return None
        self.current = slot
        self.advances += 1
        return slot

    def peek(self, pending: np.ndarray | None = None) -> int | None:
        """The slot :meth:`advance` would land on, without moving."""
        return self._scan(pending)

    def _scan(self, pending: np.ndarray | None) -> int | None:
        k = self.registers.k
        quarantined = self.registers.quarantined
        for step in range(1, k + 1):
            candidate = (self.current + step) % k
            if candidate in quarantined:
                continue  # slot taken out of service by fault management
            cfg = self.registers[candidate]
            if cfg.is_empty:
                continue
            if pending is not None and not np.any(cfg.b & pending):
                continue
            return candidate
        return None

    @property
    def effective_degree(self) -> int:
        """Number of non-empty configurations (the paper's adaptive k_j)."""
        return len(self.registers.active_slots())

"""Pre-scheduling logic — Table 1 of the paper.

For the slot ``s`` being scheduled, the pre-scheduling logic compares three
boolean matrices element-wise:

* ``R`` — the request matrix (``R[u,v]`` = NIC ``u`` has traffic for ``v``),
* ``B_s`` — the configuration currently loaded for slot ``s``,
* ``B*`` — the OR of all K configurations (connection realised in *any* slot),

and produces ``L``, the "change needed" matrix:

====  =====  =====  ================================================  ===
R     B*     B(s)   case                                              L
====  =====  =====  ================================================  ===
0     x      0      not requested, not realised in s                  0
0     x      1      not requested but realised in s  (**release**)    1
1     1      x      requested and already realised somewhere          0
1     0      0      requested, realised nowhere     (**establish**)   1
====  =====  =====  ================================================  ===

(The combination R=1, B*=0, B(s)=1 cannot occur because B(s)=1 implies
B*=1.)

All operations are vectorised; the function is called once per SL clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvariantError

__all__ = ["PreschedResult", "compute_l"]


@dataclass(slots=True, frozen=True)
class PreschedResult:
    """Outcome of one pre-scheduling evaluation.

    ``l`` is the combined change matrix; ``release`` and ``establish`` are
    its two disjoint components (useful for statistics and for the sparse
    SL-array fast path).
    """

    l: np.ndarray
    release: np.ndarray
    establish: np.ndarray


def compute_l(
    r: np.ndarray,
    b_s: np.ndarray,
    b_star: np.ndarray,
    *,
    boost: np.ndarray | None = None,
    hold: np.ndarray | None = None,
    validate: bool = False,
) -> PreschedResult:
    """Evaluate Table 1 for one slot.

    Parameters
    ----------
    r, b_s, b_star:
        The three input matrices (boolean, same square shape).
    boost:
        Optional mask for the multi-slot extension (Section 4, extension
        2): connections flagged here may be established in this slot even
        though they are already realised in another one.
    hold:
        Optional mask of connections that must not be released even though
        their request line dropped — the request-latch extension (Section
        4, extension 3) used by the dynamic predictors.
    validate:
        Check matrix shapes/dtypes and the B(s) => B* implication.
    """
    if validate:
        for name, m in (("r", r), ("b_s", b_s), ("b_star", b_star)):
            if m.shape != r.shape or m.ndim != 2 or m.shape[0] != m.shape[1]:
                raise InvariantError(f"{name} must be square and same-shaped")
            if m.dtype != np.bool_:
                raise InvariantError(f"{name} must be boolean")
        if np.any(b_s & ~b_star):
            raise InvariantError("B(s) set where B* is clear")

    effective_r = r if hold is None else (r | hold)
    release = ~effective_r & b_s
    can_establish = ~b_star if boost is None else (~b_star | boost)
    establish = effective_r & can_establish & ~b_s
    return PreschedResult(release | establish, release, establish)

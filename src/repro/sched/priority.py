"""Priority rotation policies for the SL array.

The paper (end of Section 4): the default initialisation gives requests
with lower ``(u, v)`` indices strictly higher priority; *"a more fair
schedule can be obtained by rotating the priority such that A[a,v] = AO_v
and D[u,b] = AI_u, where a and b are selected randomly or through a round
robin scheme"*.

A policy yields the injection point ``(a, b)`` for each SL pass.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "RotationPolicy",
    "FixedPriority",
    "RoundRobinPriority",
    "RandomPriority",
]


class RotationPolicy(ABC):
    """Produces the (a, b) priority injection point for successive passes."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError("rotation policy needs a positive port count")
        self.n = n

    @abstractmethod
    def next_rotation(self) -> tuple[int, int]:
        """The injection point to use for the next SL pass."""

    def advance(self, steps: int) -> None:
        """Skip ``steps`` rotations, as if :meth:`next_rotation` ran that
        many times with the results discarded.

        The slot-synchronous fast path uses this to apply a whole run of
        no-op SL passes in one call; stateless and modular policies
        override it with an O(1) jump.
        """
        for _ in range(steps):
            self.next_rotation()

    def reset(self) -> None:
        """Return to the initial state (default: nothing to do)."""


class FixedPriority(RotationPolicy):
    """The paper's baseline: port (0, 0) always wins ties."""

    def __init__(self, n: int, a: int = 0, b: int = 0) -> None:
        super().__init__(n)
        if not (0 <= a < n and 0 <= b < n):
            raise ConfigurationError(f"injection point ({a},{b}) out of range")
        self._point = (a, b)

    def next_rotation(self) -> tuple[int, int]:
        return self._point

    def advance(self, steps: int) -> None:
        pass  # stateless


class RoundRobinPriority(RotationPolicy):
    """Advance the injection point by one row and one column per pass."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._a = 0
        self._b = 0

    def next_rotation(self) -> tuple[int, int]:
        point = (self._a, self._b)
        self._a = (self._a + 1) % self.n
        self._b = (self._b + 1) % self.n
        return point

    def advance(self, steps: int) -> None:
        self._a = (self._a + steps) % self.n
        self._b = (self._b + steps) % self.n

    def reset(self) -> None:
        self._a = 0
        self._b = 0


class RandomPriority(RotationPolicy):
    """Draw the injection point uniformly at random each pass (seeded)."""

    def __init__(self, n: int, rng: np.random.Generator) -> None:
        super().__init__(n)
        self._rng = rng

    def next_rotation(self) -> tuple[int, int]:
        return (
            int(self._rng.integers(self.n)),
            int(self._rng.integers(self.n)),
        )

"""Extension 1 — multiple SL units.

Section 4: *"It is possible to use two or more copies of the 'scheduling
logic' to simultaneously schedule requests on different time slots.  The
requests can be partitioned among the scheduling logic units or pipelined
through them."*

:class:`MultiUnitScheduler` drives ``n_units`` SL-array passes per SL clock
period, each on a *different* dynamic slot.  The passes are applied in slot
order within the clock period; because each establish consults the
incrementally-updated ``B*``, two units never insert the same connection
twice — this models the partitioned-requests variant of the extension
(later units see earlier units' insertions, exactly as a pipelined hardware
implementation would).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..params import SystemParams
from .priority import RotationPolicy
from .scheduler import Scheduler, SchedulerPass

__all__ = ["MultiUnitScheduler"]


class MultiUnitScheduler(Scheduler):
    """A scheduler with ``n_units`` parallel copies of the scheduling logic."""

    def __init__(
        self,
        params: SystemParams,
        k: int,
        n_units: int,
        rotation: RotationPolicy | None = None,
    ) -> None:
        if n_units < 1:
            raise ConfigurationError(f"need at least one SL unit, got {n_units}")
        super().__init__(params, k, rotation)
        self.n_units = n_units

    def sl_tick(self) -> list[SchedulerPass]:
        """One SL clock period: run up to ``n_units`` passes on distinct slots."""
        dynamic = self.registers.dynamic_slots()
        passes: list[SchedulerPass] = []
        seen: set[int] = set()
        for _ in range(min(self.n_units, len(dynamic))):
            slot = self.next_dynamic_slot()
            if slot is None or slot in seen:
                break
            seen.add(slot)
            passes.append(self.sl_pass(slot))
        if not passes:
            passes.append(self.sl_pass())  # records the idle pass
        return passes

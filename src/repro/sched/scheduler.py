"""The full connection scheduler (Figure 2 of the paper).

One :class:`Scheduler` owns:

* the configuration register file ``B(0) .. B(K-1)`` and the derived ``B*``;
* the scheduler's *view* of the request matrix ``R`` (the network model
  updates it after the request-wire delay);
* the request **latches** of extension 3 (used by the dynamic predictors
  to hold a connection after its request line drops);
* an **SL counter** that round-robins successive passes over the slots the
  dynamic scheduler may modify (preloaded slots are pinned and skipped);
* a :class:`~repro.sched.priority.RotationPolicy` for fairness.

Each call to :meth:`sl_pass` models one SL clock period: pick a slot,
evaluate Table 1, run the SL array, and apply the resulting toggles.  The
caller (the TDM network model) invokes it every ``scheduler_pass_ps``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchedulingError
from ..fabric.config import ConfigMatrix
from ..fabric.registers import ConfigRegisterFile
from ..params import SystemParams
from ..sim.stats import Counter
from ..sim.trace import NULL_TRACER
from .presched import compute_l
from .priority import FixedPriority, RotationPolicy
from .slarray import PassOutcome, wavefront_sparse
from .tdm import TdmCounter

__all__ = ["Scheduler", "SchedulerPass"]


@dataclass(slots=True, frozen=True)
class SchedulerPass:
    """Record of one SL clock period."""

    slot: int | None  # None: no dynamic slot available to schedule
    outcome: PassOutcome | None

    @property
    def changed(self) -> bool:
        return self.outcome is not None and bool(self.outcome.toggles)


class Scheduler:
    """The paper's scheduler: SL array + register file + TDM counter."""

    def __init__(
        self,
        params: SystemParams,
        k: int,
        rotation: RotationPolicy | None = None,
    ) -> None:
        n = params.n_ports
        self.params = params
        self.registers = ConfigRegisterFile(n, k)
        self.tdm = TdmCounter(self.registers)
        self.rotation = rotation if rotation is not None else FixedPriority(n)
        #: the scheduler's (wire-delayed) view of the request matrix
        self.r_view = np.zeros((n, n), dtype=bool)
        #: request latches — extension 3 (predictor-held connections)
        self.latched = np.zeros((n, n), dtype=bool)
        #: multi-slot boost mask — extension 2
        self.boost = np.zeros((n, n), dtype=bool)
        #: dead SL cells (fault model): cell (u, v) can no longer toggle,
        #: so connection (u, v) is invisible to the dynamic scheduler
        self.dead_cells: np.ndarray | None = None
        self._sl_cursor = 0
        #: wavefront evaluator — `wavefront_sparse` by default; the
        #: slot-synchronous fast path swaps in `wavefront_batch` (the two
        #: are bit-identical, so either is always safe)
        self.wavefront = wavefront_sparse
        self.counters = Counter()
        #: observability hooks — the owning network model assigns both so
        #: passes are traced with simulation timestamps (subclasses keep
        #: their constructors unchanged)
        self.tracer = NULL_TRACER
        self.clock = lambda: 0

    # -- request plane ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self.registers.n

    @property
    def k(self) -> int:
        return self.registers.k

    def set_request(self, u: int, v: int, value: bool) -> None:
        """Update one bit of the scheduler's request view."""
        self.r_view[u, v] = value

    def latch(self, u: int, v: int, value: bool = True) -> None:
        """Hold (or stop holding) connection (u, v) past its request drop."""
        self.latched[u, v] = value

    def clear_latches(self) -> None:
        self.latched[:] = False

    # -- compiled-communication plane (extensions 4 & 5) ------------------------

    def preload(self, configs: list[ConfigMatrix], *, pin: bool = True) -> None:
        """Load ``configs`` into the first ``len(configs)`` slots.

        ``pin=True`` (the default) reserves those slots for the compiled
        pattern: the dynamic scheduler will neither insert into nor release
        from them.
        """
        if len(configs) > self.k:
            raise SchedulingError(
                f"cannot preload {len(configs)} configurations into K={self.k}"
            )
        for s, cfg in enumerate(configs):
            self.registers.load(s, cfg, pin=pin)
        self.counters.inc("preloads", len(configs))

    def load_slot(self, slot: int, config: ConfigMatrix, *, pin: bool = True) -> None:
        """Load one configuration into a specific slot."""
        self.registers.load(slot, config, pin=pin)
        self.counters.inc("preloads")

    def flush(self) -> None:
        """Extension 4: clear every configuration and every latch."""
        self.registers.flush()
        self.clear_latches()
        self.counters.inc("flushes")

    # -- fault management (repro.faults) ------------------------------------------

    def kill_cell(self, u: int, v: int) -> None:
        """Mark SL cell (u, v) dead: it can never toggle its connection.

        The pre-scheduling logic's L matrix is masked at the dead cell, so
        the dynamic scheduler neither establishes nor releases (u, v); the
        management plane must place the connection directly
        (:meth:`mgmt_establish`).
        """
        if self.dead_cells is None:
            self.dead_cells = np.zeros((self.n, self.n), dtype=bool)
        self.dead_cells[u, v] = True
        self.counters.inc("sl_cells_dead")

    def quarantine_slot(self, slot: int) -> list:
        """Take a faulty slot out of service; returns its evicted connections."""
        evicted = self.registers.quarantine(slot)
        self.counters.inc("slots_quarantined")
        return evicted

    def mgmt_establish(self, u: int, v: int) -> int | None:
        """Management-plane slot remapping: place (u, v) in a healthy slot.

        Scans the dynamically-schedulable slots for one where both input
        ``u`` and output ``v`` are free and establishes the connection
        there directly, bypassing the (possibly faulty) SL array.  Returns
        the chosen slot, or None when no healthy slot has both ports free.
        """
        if self.registers.b_star[u, v]:
            return self.registers.slot_of(u, v)
        for slot in self.registers.dynamic_slots():
            if slot in self.registers.stuck:
                continue
            cfg = self.registers[slot]
            if not cfg.input_busy()[u] and not cfg.output_busy()[v]:
                self.registers.establish(slot, u, v)
                self.counters.inc("mgmt_establishes")
                if self.tracer.enabled:
                    self.tracer.record(
                        self.clock(), "conn-establish", src=u, dst=v, slot=slot, via="mgmt"
                    )
                return slot
        return None

    # -- the SL clock ------------------------------------------------------------

    def next_dynamic_slot(self) -> int | None:
        """Round-robin choice of the slot the next pass will schedule."""
        dynamic = self.registers.dynamic_slots()
        if not dynamic:
            return None
        slot = dynamic[self._sl_cursor % len(dynamic)]
        self._sl_cursor += 1
        return slot

    def sl_pass(self, slot: int | None = None) -> SchedulerPass:
        """One SL clock period: schedule insertions/releases for one slot."""
        if slot is None:
            slot = self.next_dynamic_slot()
            if slot is None:
                self.counters.inc("passes_idle")
                return SchedulerPass(None, None)
        elif slot in self.registers.pinned:
            raise SchedulingError(
                f"cannot run a dynamic pass on slot {slot}: it is pinned "
                f"(preloaded); pinned slots are {sorted(self.registers.pinned)}"
            )
        elif slot in self.registers.quarantined:
            raise SchedulingError(
                f"cannot run a dynamic pass on slot {slot}: it is "
                f"quarantined after a fault"
            )

        cfg = self.registers[slot]
        pres = compute_l(
            self.r_view,
            cfg.b,
            self.registers.b_star,
            boost=self.boost if self.boost.any() else None,
            hold=self.latched if self.latched.any() else None,
        )
        l = pres.l
        if self.dead_cells is not None:
            l = l & ~self.dead_cells
        rows, cols = np.nonzero(l)
        outcome = self.wavefront(
            rows,
            cols,
            cfg.b,
            cfg.output_busy(),
            cfg.input_busy(),
            rotation=self.rotation.next_rotation(),
        )
        for t in outcome.toggles:
            self.registers.toggle(slot, t.u, t.v)
            self.counters.inc("establishes" if t.establish else "releases")
        self.counters.inc("passes")
        self.counters.inc("blocked", outcome.blocked)
        if self.tracer.enabled:
            self._trace_pass(slot, outcome)
        return SchedulerPass(slot, outcome)

    def _trace_pass(self, slot: int, outcome: PassOutcome) -> None:
        """Record one SL pass and its per-connection toggles."""
        now = self.clock()
        self.tracer.record(
            now,
            "sl-pass",
            slot=slot,
            toggles=len(outcome.toggles),
            blocked=outcome.blocked,
        )
        for t in outcome.toggles:
            self.tracer.record(
                now,
                "conn-establish" if t.establish else "conn-release",
                src=t.u,
                dst=t.v,
                slot=slot,
            )

    # -- convenience ---------------------------------------------------------------

    def established_anywhere(self, u: int, v: int) -> bool:
        return bool(self.registers.b_star[u, v])

    def __repr__(self) -> str:
        return (
            f"Scheduler(n={self.n}, k={self.k}, "
            f"active={self.registers.active_slots()}, pinned={sorted(self.registers.pinned)})"
        )

"""Scheduler substrate: pre-scheduling logic, SL array, TDM counter, scheduler."""

from .constrained import ConstrainedScheduler, FabricConstraint
from .multislot import QueueDepthBoostPolicy
from .multiunit import MultiUnitScheduler
from .presched import PreschedResult, compute_l
from .priority import (
    FixedPriority,
    RandomPriority,
    RotationPolicy,
    RoundRobinPriority,
)
from .scheduler import Scheduler, SchedulerPass
from .slarray import PassOutcome, Toggle, wavefront_reference, wavefront_sparse
from .solstice import schedule_coverage, solstice_schedule
from .tdm import TdmCounter

__all__ = [
    "ConstrainedScheduler",
    "FabricConstraint",
    "QueueDepthBoostPolicy",
    "MultiUnitScheduler",
    "PreschedResult",
    "compute_l",
    "FixedPriority",
    "RandomPriority",
    "RotationPolicy",
    "RoundRobinPriority",
    "Scheduler",
    "SchedulerPass",
    "PassOutcome",
    "Toggle",
    "wavefront_reference",
    "wavefront_sparse",
    "schedule_coverage",
    "solstice_schedule",
    "TdmCounter",
]

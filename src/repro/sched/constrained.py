"""Scheduling under non-crossbar fabric constraints.

Section 4: *"For the case of a crossbar fabric, the only constraints on B
are that there is at most one non-zero entry in each row and at most one
non-zero entry in each column.  More complicated constraints may be
derived for fabrics that have limited permutation capabilities (e.g.
multistage networks) or multi-paths from inputs to outputs (e.g. fat tree
fabrics)."*

:class:`ConstrainedScheduler` is the scheduler for those fabrics: it keeps
the whole Figure-2 organisation (register file, B*, TDM counter, request
latches, priority rotation) but replaces the SL array's port-availability
wavefront with a greedy feasibility check against a **fabric constraint**
object — anything with ``is_realizable(config) -> bool``, e.g.
:class:`repro.fabric.multistage.OmegaNetwork` or
:class:`repro.fabric.fattree.FatTree`.  Candidates are visited in the same
rotated row-major order as the SL array, releases free resources for later
candidates, and an establish is accepted only if the slot configuration
stays realisable, so every invariant of the crossbar scheduler carries
over.

(The crossbar itself corresponds to the trivial constraint that
:class:`~repro.fabric.config.ConfigMatrix` already enforces — for it, the
systolic SL array of :mod:`repro.sched.slarray` is the efficient
implementation; this class is the generalisation, not a replacement.)
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..errors import SchedulingError
from ..fabric.config import ConfigMatrix
from ..params import SystemParams
from .presched import compute_l
from .priority import RotationPolicy
from .scheduler import Scheduler, SchedulerPass
from .slarray import PassOutcome, Toggle

__all__ = ["FabricConstraint", "ConstrainedScheduler"]


class FabricConstraint(Protocol):
    """Anything that can veto a slot configuration."""

    def is_realizable(self, config: ConfigMatrix) -> bool: ...


class ConstrainedScheduler(Scheduler):
    """A scheduler whose insertions respect an arbitrary fabric predicate."""

    def __init__(
        self,
        params: SystemParams,
        k: int,
        constraint: FabricConstraint,
        rotation: RotationPolicy | None = None,
    ) -> None:
        super().__init__(params, k, rotation)
        self.constraint = constraint

    def sl_pass(self, slot: int | None = None) -> SchedulerPass:
        if slot is None:
            slot = self.next_dynamic_slot()
            if slot is None:
                self.counters.inc("passes_idle")
                return SchedulerPass(None, None)
        elif slot in self.registers.pinned:
            raise SchedulingError(
                f"cannot run a dynamic pass on slot {slot}: it is pinned "
                f"(preloaded); pinned slots are {sorted(self.registers.pinned)}"
            )
        elif slot in self.registers.quarantined:
            raise SchedulingError(
                f"cannot run a dynamic pass on slot {slot}: it is "
                f"quarantined after a fault"
            )

        cfg = self.registers[slot]
        pres = compute_l(
            self.r_view,
            cfg.b,
            self.registers.b_star,
            boost=self.boost if self.boost.any() else None,
            hold=self.latched if self.latched.any() else None,
        )
        l = pres.l
        if self.dead_cells is not None:
            l = l & ~self.dead_cells
        rows, cols = np.nonzero(l)
        outcome = PassOutcome()
        if len(rows):
            n = self.n
            a, b = self.rotation.next_rotation()
            order = np.lexsort(((cols - b) % n, (rows - a) % n))
            for u, v in zip(rows[order].tolist(), cols[order].tolist()):
                if cfg.b[u, v]:
                    # release — always feasible (removing cannot violate)
                    self.registers.release(slot, u, v)
                    outcome.toggles.append(Toggle(u, v, establish=False))
                    self.counters.inc("releases")
                    continue
                if cfg.output_of(u) is not None or cfg.input_of(v) is not None:
                    outcome.blocked += 1
                    continue
                self.registers.establish(slot, u, v)
                if self.constraint.is_realizable(cfg):
                    outcome.toggles.append(Toggle(u, v, establish=True))
                    self.counters.inc("establishes")
                else:
                    self.registers.release(slot, u, v)
                    outcome.blocked += 1
                    self.counters.inc("blocked_by_fabric")
        self.counters.inc("passes")
        self.counters.inc("blocked", outcome.blocked)
        if self.tracer.enabled:
            self._trace_pass(slot, outcome)
        return SchedulerPass(slot, outcome)

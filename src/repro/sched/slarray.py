"""The SL array — Table 2 and Figure 3 of the paper.

The scheduling logic is an ``N x N`` systolic array of identical modules
``SL[u,v]``.  Two families of availability signals flow through it:

* ``A`` propagates **up the rows** (row 0 first): ``A[u,v] = 0`` iff output
  port ``v`` is still available when the wavefront reaches row ``u``;
* ``D`` propagates **right along the columns**: ``D[u,v] = 0`` iff input
  port ``u`` is still available when the wavefront reaches column ``v``.

Each module implements Table 2:

====  ===  ===  ==========================================  ===  =====  =====
L     A    D    action                                      T    A_out  D_out
====  ===  ===  ==========================================  ===  =====  =====
0     x    x    no change                                   0    A      D
1     1    1    release the connection in slot s            1    0      0
1     1    0    need connection but output not available    0    A      D
1     0    1    need connection but input not available     0    A      D
1     0    0    establish connection in slot s              1    1      1
====  ===  ===  ==========================================  ===  =====  =====

The (L=1, A=1, D=1) case is always a *release*: a cell asked to establish
while both of its ports are occupied by other connections falls into the
"resources not available" rows because an establish request has
``B(s)[u,v] = 0`` and occupied ports show ``A = D = 1`` only when *other*
connections hold them — and a cell holding its own connection is the unique
``B(s)[u,v] = 1`` cell in its row and column.  The reference implementation
checks this invariant explicitly.

**Priority rotation.**  Initialising ``A`` at row ``a`` and ``D`` at column
``b`` (paper, end of Section 4) gives requests at and after ``(a, b)`` in the
rotated row-major order first claim on free ports.  We therefore traverse
rows in the cyclic order ``a, a+1, ..., a-1`` and columns ``b, b+1, ...,
b-1``; signals do not wrap past the injection point.

Two interchangeable implementations are provided:

* :func:`wavefront_reference` — a dense, cell-by-cell transliteration of
  Table 2 used by the unit and property tests;
* :func:`wavefront_sparse` — an O(nnz(L)) equivalent used by the
  simulators.  Cells with ``L = 0`` are transparent to both signal familes,
  so visiting only the non-zero cells of ``L`` in the same traversal order
  produces bit-identical results (a Hypothesis test pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import InvariantError

__all__ = [
    "Toggle",
    "PassOutcome",
    "wavefront_reference",
    "wavefront_sparse",
    "wavefront_batch",
]


@dataclass(slots=True, frozen=True)
class Toggle:
    """One T=1 output of the SL array: flip B(s)[u,v]."""

    u: int
    v: int
    establish: bool  # True: 0 -> 1, False: released


@dataclass(slots=True)
class PassOutcome:
    """Everything one SL-array pass produced."""

    toggles: list[Toggle] = field(default_factory=list)
    blocked: int = 0  # L=1 establish cells that found no free ports

    @property
    def established(self) -> list[Toggle]:
        return [t for t in self.toggles if t.establish]

    @property
    def released(self) -> list[Toggle]:
        return [t for t in self.toggles if not t.establish]

    def toggle_matrix(self, n: int) -> np.ndarray:
        """Dense T matrix (test/debug helper)."""
        t = np.zeros((n, n), dtype=bool)
        for tg in self.toggles:
            t[tg.u, tg.v] = True
        return t


def wavefront_reference(
    l: np.ndarray,
    b_s: np.ndarray,
    ao: np.ndarray,
    ai: np.ndarray,
    rotation: tuple[int, int] = (0, 0),
) -> PassOutcome:
    """Dense cell-by-cell evaluation of Table 2 (the testing oracle).

    Parameters
    ----------
    l:
        The pre-scheduling matrix from :func:`repro.sched.presched.compute_l`.
    b_s:
        The configuration of the slot being scheduled (NOT modified).
    ao, ai:
        Output/input port occupancy of ``b_s`` — ``AO[v] = 1`` iff output
        ``v`` is taken, ``AI[u] = 1`` iff input ``u`` is taken.
    rotation:
        The (a, b) priority injection point.

    Returns the pass outcome; callers apply the toggles to their register
    file themselves.
    """
    n = l.shape[0]
    a, b = rotation[0] % n, rotation[1] % n
    out = PassOutcome()
    a_sig = np.asarray(ao, dtype=bool).copy()  # per-column running A signal
    for ui in range(n):
        u = (a + ui) % n
        d_sig = bool(ai[u])  # running D signal along this row
        for vi in range(n):
            v = (b + vi) % n
            if not l[u, v]:
                continue  # L=0: signals pass through unchanged
            a_uv = bool(a_sig[v])
            d_uv = d_sig
            if b_s[u, v]:
                # release: the cell holds the connection, so its own
                # occupancy guarantees A = D = 1 here.
                if not (a_uv and d_uv):
                    raise InvariantError(
                        f"release cell ({u},{v}) saw free ports A={a_uv} D={d_uv}"
                    )
                out.toggles.append(Toggle(u, v, establish=False))
                a_sig[v] = False
                d_sig = False
            elif not a_uv and not d_uv:
                out.toggles.append(Toggle(u, v, establish=True))
                a_sig[v] = True
                d_sig = True
            else:
                out.blocked += 1
    return out


def wavefront_sparse(
    l_rows: np.ndarray,
    l_cols: np.ndarray,
    b_s: np.ndarray,
    ao: np.ndarray,
    ai: np.ndarray,
    rotation: tuple[int, int] = (0, 0),
) -> PassOutcome:
    """Fast path: evaluate only the non-zero cells of L.

    ``l_rows`` / ``l_cols`` are the coordinates of the L=1 cells (any
    order).  Produces output identical to :func:`wavefront_reference` on
    the dense matrix with those cells set.
    """
    n = b_s.shape[0]
    out = PassOutcome()
    if len(l_rows) == 0:
        return out
    a, b = rotation[0] % n, rotation[1] % n
    # Sort cells into the rotated row-major traversal order.  Callers
    # overwhelmingly pass np.nonzero(L) coordinates, which are already
    # row-major — with the default (0, 0) rotation the rotated order is
    # the given order and the O(nnz log nnz) lexsort is pure overhead, so
    # an O(nnz) monotonicity check skips it (lexsort is stable, so an
    # already-sorted input yields the identity permutation anyway).
    ru = (l_rows - a) % n
    rv = (l_cols - b) % n
    if ru.size < 2:
        presorted = True
    else:
        dr = np.diff(ru)
        presorted = bool(np.all((dr > 0) | ((dr == 0) & (np.diff(rv) > 0))))
    if presorted:
        us, vs = l_rows, l_cols
    else:
        order = np.lexsort((rv, ru))
        us = l_rows[order]
        vs = l_cols[order]

    a_sig = np.asarray(ao, dtype=bool).copy()
    d_sig = np.asarray(ai, dtype=bool).copy()  # per-row running D signal
    for u, v in zip(us.tolist(), vs.tolist()):
        a_uv = bool(a_sig[v])
        d_uv = bool(d_sig[u])
        if b_s[u, v]:
            if not (a_uv and d_uv):  # pragma: no cover - mirrors the oracle
                raise InvariantError(
                    f"release cell ({u},{v}) saw free ports A={a_uv} D={d_uv}"
                )
            out.toggles.append(Toggle(u, v, establish=False))
            a_sig[v] = False
            d_sig[u] = False
        elif not a_uv and not d_uv:
            out.toggles.append(Toggle(u, v, establish=True))
            a_sig[v] = True
            d_sig[u] = True
        else:
            out.blocked += 1
    return out


#: below this many L=1 cells the per-pass numpy overhead of the batch
#: evaluation exceeds the sparse Python loop, so it delegates
_BATCH_MIN_NNZ = 16


def wavefront_batch(
    l_rows: np.ndarray,
    l_cols: np.ndarray,
    b_s: np.ndarray,
    ao: np.ndarray,
    ai: np.ndarray,
    rotation: tuple[int, int] = (0, 0),
    *,
    min_nnz: int = _BATCH_MIN_NNZ,
) -> PassOutcome:
    """Vectorized pass: evaluate all pending L-cells with matrix operations.

    Produces output bit-identical to :func:`wavefront_reference` /
    :func:`wavefront_sparse` for consistent inputs (``ao``/``ai`` the port
    occupancy of ``b_s``, unique cell coordinates), without walking the
    cells one by one.  The sequential wavefront has two structural
    properties that make this possible:

    * releases always fire, and there is at most one per row and per
      column (``b_s`` is a partial permutation), so every row/column has a
      single *available-from* traversal position: ``-1`` if free at entry,
      the release's position if freed mid-pass, past-the-end if occupied
      with no release — and every release precedes every establish in its
      row and column;
    * the surviving establishes form the greedy maximal matching in
      traversal order, which equals the fixpoint of repeatedly accepting
      every eligible candidate that is the minimum-position candidate in
      both its row and its column (an accepted cell claims exactly its own
      row and column, so a min-min candidate can never be blocked by an
      earlier acceptance).

    Below ``min_nnz`` pending cells the call delegates to
    :func:`wavefront_sparse` — the outcome is identical either way, only
    the constant factors differ.
    """
    nnz = len(l_rows)
    if nnz < min_nnz:
        return wavefront_sparse(l_rows, l_cols, b_s, ao, ai, rotation)
    n = b_s.shape[0]
    a, b = rotation[0] % n, rotation[1] % n
    us = np.asarray(l_rows, dtype=np.int64)
    vs = np.asarray(l_cols, dtype=np.int64)
    pos = ((us - a) % n) * n + ((vs - b) % n)
    rel = b_s[us, vs]
    ao_b = np.asarray(ao, dtype=bool)
    ai_b = np.asarray(ai, dtype=bool)
    if rel.any() and not bool(np.all(ao_b[vs[rel]] & ai_b[us[rel]])):
        # Inconsistent occupancy: replay sequentially so the caller gets
        # the oracle's exact InvariantError for the first offending cell.
        return wavefront_sparse(l_rows, l_cols, b_s, ao, ai, rotation)

    past_end = np.int64(n * n + 1)
    row_avail = np.where(ai_b, past_end, np.int64(-1))
    col_avail = np.where(ao_b, past_end, np.int64(-1))
    row_avail[us[rel]] = pos[rel]
    col_avail[vs[rel]] = pos[rel]

    est = ~rel
    eu, ev, ep = us[est], vs[est], pos[est]
    cand = (ep > row_avail[eu]) & (ep > col_avail[ev])
    accepted = np.zeros(len(eu), dtype=bool)
    while True:
        idx = np.nonzero(cand)[0]
        if idx.size == 0:
            break
        cu, cv, cp = eu[idx], ev[idx], ep[idx]
        rmin = np.full(n, past_end)
        cmin = np.full(n, past_end)
        np.minimum.at(rmin, cu, cp)
        np.minimum.at(cmin, cv, cp)
        win = (cp == rmin[cu]) & (cp == cmin[cv])
        wi = idx[win]
        accepted[wi] = True
        # drop every candidate (winners included) in a newly claimed row
        # or column; rows/columns claimed in earlier rounds already have
        # no candidates left
        claimed_row = np.zeros(n, dtype=bool)
        claimed_col = np.zeros(n, dtype=bool)
        claimed_row[eu[wi]] = True
        claimed_col[ev[wi]] = True
        cand[idx] &= ~(claimed_row[cu] | claimed_col[cv])

    out = PassOutcome()
    out.blocked = int(len(eu) - int(accepted.sum()))
    tog_u = np.concatenate([us[rel], eu[accepted]])
    tog_v = np.concatenate([vs[rel], ev[accepted]])
    tog_p = np.concatenate([pos[rel], ep[accepted]])
    n_rel = int(rel.sum())
    tog_e = np.zeros(len(tog_u), dtype=bool)
    tog_e[n_rel:] = True
    order = np.argsort(tog_p, kind="stable")
    toggles = out.toggles
    for u_, v_, e_ in zip(
        tog_u[order].tolist(), tog_v[order].tolist(), tog_e[order].tolist()
    ):
        toggles.append(Toggle(u_, v_, establish=e_))
    return out

"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the simulator with a single ``except``
clause while still being able to distinguish configuration mistakes from
runtime invariant violations.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvariantError",
    "SchedulingError",
    "SimulationError",
    "TrafficError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied parameter or configuration object is invalid.

    Raised eagerly at construction time (e.g. a crossbar configuration
    matrix with two connections sharing an output port, a negative link
    rate, or a multiplexing degree of zero).
    """


class InvariantError(ReproError, AssertionError):
    """An internal invariant was violated.

    These indicate bugs in the library (or deliberate fault injection in
    tests), never user error.
    """


class SchedulingError(ReproError):
    """The scheduler was asked to perform an impossible action.

    For example loading a configuration into a slot index that does not
    exist, or releasing a connection that is not established.
    """


class SimulationError(ReproError):
    """The event engine was misused (e.g. scheduling an event in the past)."""


class TrafficError(ReproError, ValueError):
    """A traffic pattern was parameterised inconsistently.

    For example a 2-D mesh pattern on a node count that is not a perfect
    rectangle, or a scatter source outside the port range.
    """

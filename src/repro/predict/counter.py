"""The usage-counter predictor.

Paper, Section 3.2: *"A different predictor can be implemented by
associating a counter with each connection in the working set.  This
counter is reset to zero every time that connection is used and is
incremented every time another connection is used.  When the counter
reaches a certain threshold, the connection is evicted ... a connection is
evicted if it is not used while other connections are being used, but is
not evicted if the application is in a computation phase, where no
communication takes place."*

Implemented with a single global use stamp: each use increments the global
counter and records the connection's stamp; a latched connection's
"counter" is ``global - stamp``, so eviction checks are O(latched) only
when other traffic actually flows — exactly the computation-phase immunity
the paper wants.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..types import Connection
from .base import Predictor

__all__ = ["CounterPredictor"]


class CounterPredictor(Predictor):
    """Evict after ``threshold`` uses of *other* connections."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.threshold = threshold
        self._global_uses = 0
        #: last-use stamp of each latched connection
        self._stamps: dict[Connection, int] = {}
        self.evictions = 0
        self.holds = 0

    def on_use(self, u: int, v: int, t_ps: int) -> None:
        self._global_uses += 1
        conn = Connection(u, v)
        if conn in self._stamps:
            self._stamps[conn] = self._global_uses

    def on_empty(self, u: int, v: int, t_ps: int) -> bool:
        self._stamps[Connection(u, v)] = self._global_uses
        self.holds += 1
        return True

    def expired(self, t_ps: int) -> list[Connection]:
        # time plays no role: only other connections' uses age a latch
        out = [
            c
            for c, stamp in self._stamps.items()
            if self._global_uses - stamp >= self.threshold
        ]
        for c in out:
            del self._stamps[c]
        self.evictions += len(out)
        return out

    def on_flush(self, t_ps: int) -> None:
        self._stamps.clear()

    def forget(self, u: int, v: int) -> None:
        self._stamps.pop(Connection(u, v), None)

    def stats(self) -> dict[str, int]:
        return {
            "holds": self.holds,
            "evictions": self.evictions,
            "latched": len(self._stamps),
            "global_uses": self._global_uses,
        }

"""Compiler-assisted prediction (Section 3.3).

Two predictors that consume high-level program knowledge:

* :class:`HintedPredictor` — wraps any base predictor but **pins** a set of
  compiler-identified connections (they are never evicted) and honours
  flush directives at phase boundaries.  This models *"the compiler might
  be able to statically determine a portion of the working set, allowing
  the dynamic reconfiguration strategy to only work on non-predicted
  communications"*.
* :class:`OraclePredictor` — an offline upper bound for ablations: given
  the full future trace, it holds a drained connection iff that connection
  is used again within a horizon.  No hardware could implement it; it
  bounds what any eviction policy could gain.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError
from ..types import Connection
from .base import Predictor

__all__ = ["HintedPredictor", "OraclePredictor"]


class HintedPredictor(Predictor):
    """A base predictor plus compiler-pinned connections and flush points."""

    def __init__(self, base: Predictor, pinned: set[Connection] | None = None) -> None:
        self.base = base
        self.pinned: set[Connection] = set(pinned or ())
        self.flushes = 0

    def pin(self, u: int, v: int) -> None:
        self.pinned.add(Connection(u, v))

    def unpin(self, u: int, v: int) -> None:
        self.pinned.discard(Connection(u, v))

    def on_use(self, u: int, v: int, t_ps: int) -> None:
        self.base.on_use(u, v, t_ps)

    def on_empty(self, u: int, v: int, t_ps: int) -> bool:
        if Connection(u, v) in self.pinned:
            return True
        return self.base.on_empty(u, v, t_ps)

    def expired(self, t_ps: int) -> list[Connection]:
        return [c for c in self.base.expired(t_ps) if c not in self.pinned]

    def on_flush(self, t_ps: int) -> None:
        self.flushes += 1
        self.pinned.clear()
        self.base.on_flush(t_ps)

    def stats(self) -> dict[str, int]:
        out = dict(self.base.stats())
        out.update(pinned=len(self.pinned), flushes=self.flushes)
        return out


class OraclePredictor(Predictor):
    """Perfect-knowledge eviction: hold iff reused within the horizon.

    ``future`` is the ordered list of connections the program will use.
    The oracle consumes it as uses happen; ``on_empty`` answers by scanning
    the next ``horizon`` future uses.
    """

    def __init__(self, future: list[tuple[int, int]], horizon: int = 64) -> None:
        if horizon < 1:
            raise ConfigurationError("horizon must be positive")
        self._future: deque[Connection] = deque(Connection(u, v) for u, v in future)
        self.horizon = horizon
        self._held: set[Connection] = set()
        self.holds = 0
        self.rejections = 0

    def on_use(self, u: int, v: int, t_ps: int) -> None:
        conn = Connection(u, v)
        # consume the matching future entry (tolerates reordering by
        # scanning a small prefix)
        for _ in range(min(len(self._future), self.horizon)):
            head = self._future.popleft()
            if head == conn:
                break
            self._future.append(head)  # rotate unmatched entries to the back
        self._held.discard(conn)

    def on_empty(self, u: int, v: int, t_ps: int) -> bool:
        conn = Connection(u, v)
        upcoming = list(self._future)[: self.horizon]
        if conn in upcoming:
            self._held.add(conn)
            self.holds += 1
            return True
        self.rejections += 1
        return False

    def expired(self, t_ps: int) -> list[Connection]:
        # a held connection expires when it is no longer in the horizon
        upcoming = set(list(self._future)[: self.horizon])
        out = [c for c in self._held if c not in upcoming]
        self._held.difference_update(out)
        return out

    def on_flush(self, t_ps: int) -> None:
        self._held.clear()

    def stats(self) -> dict[str, int]:
        return {"holds": self.holds, "rejections": self.rejections}

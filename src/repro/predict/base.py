"""Predictor interface.

Section 3.2 of the paper inverts the usual prediction question: with TDM
caching the working set, adding a connection pays its establishment cost
exactly once (a compulsory miss), so *"instead of trying to predict when to
add a new connection to the working set, the role of dynamic predictions in
our network will be to predict when to remove a connection from the working
set."*

A predictor therefore drives the **request latches** of extension 3: when a
NIC's queue for some destination drains, the network asks the predictor
whether to keep the connection latched (cached in its TDM slot) or let the
Table-1 release fire.  Predictors observe three event kinds:

* ``on_use(u, v, t)`` — the connection carried data during a slot;
* ``on_empty(u, v, t)`` — the source queue for it just drained;
* ``on_flush(t)`` — a compiler flush directive arrived.

``expired(t)`` returns latches to drop at time ``t``; the network clears
them in the scheduler, letting the normal release path evict the
connections.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..types import Connection

__all__ = ["Predictor", "NullPredictor"]


class Predictor(ABC):
    """Decides which drained connections stay cached in the network."""

    @abstractmethod
    def on_use(self, u: int, v: int, t_ps: int) -> None:
        """Connection (u, v) carried data at time ``t_ps``."""

    @abstractmethod
    def on_empty(self, u: int, v: int, t_ps: int) -> bool:
        """Queue (u, v) drained; return True to keep the connection latched."""

    @abstractmethod
    def expired(self, t_ps: int) -> list[Connection]:
        """Latches that should be dropped as of ``t_ps`` (may be empty)."""

    def on_flush(self, t_ps: int) -> None:
        """A flush directive: forget all state (default implementation)."""

    def on_fault(self, port: int, t_ps: int) -> None:
        """A port's links died: evict every latch decision involving it.

        Fault-aware eviction keeps predictors from holding connections to
        a dead port cached (they can never carry data again).  The default
        is a no-op — stateless predictors have nothing to evict.
        """

    def stats(self) -> dict[str, int]:
        """Optional counters for reports."""
        return {}


class NullPredictor(Predictor):
    """Never latch anything — the paper's plain dynamic TDM."""

    def on_use(self, u: int, v: int, t_ps: int) -> None:
        return None

    def on_empty(self, u: int, v: int, t_ps: int) -> bool:
        return False

    def expired(self, t_ps: int) -> list[Connection]:
        return []

"""Online working-set tracking.

The component the paper labels "Predictor" in Figure 1 observes request
queues and configuration registers to reason about the application's
working set.  :class:`WorkingSetTracker` is that observer: it maintains
the set of connections used within a recent time window, from which the
examples and ablations derive the *effective* working-set size, the
optimal multiplexing degree it implies, and turnover (a live phase-change
signal mirroring :func:`repro.compiled.phases.phase_boundaries`).
"""

from __future__ import annotations

from collections import OrderedDict

from ..compiled.coloring import connection_degree
from ..errors import ConfigurationError
from ..types import Connection

__all__ = ["WorkingSetTracker"]


class WorkingSetTracker:
    """Sliding-time-window tracker of the active connection working set."""

    def __init__(self, n: int, window_ps: int) -> None:
        if window_ps <= 0:
            raise ConfigurationError("window must be positive")
        self.n = n
        self.window_ps = window_ps
        #: connection -> last use time, kept in use order (oldest first)
        self._last_use: OrderedDict[Connection, int] = OrderedDict()
        self._size_history: list[tuple[int, int]] = []  # (time, size) samples

    def on_use(self, u: int, v: int, t_ps: int) -> None:
        conn = Connection(u, v)
        self._last_use.pop(conn, None)
        self._last_use[conn] = t_ps
        self._expire(t_ps)

    def _expire(self, t_ps: int) -> None:
        cutoff = t_ps - self.window_ps
        while self._last_use:
            conn, last = next(iter(self._last_use.items()))
            if last >= cutoff:
                break
            del self._last_use[conn]

    def sample(self, t_ps: int) -> int:
        """Record and return the working-set size at ``t_ps``."""
        self._expire(t_ps)
        size = len(self._last_use)
        self._size_history.append((t_ps, size))
        return size

    @property
    def working_set(self) -> set[Connection]:
        return set(self._last_use)

    @property
    def size(self) -> int:
        return len(self._last_use)

    def required_degree(self) -> int:
        """Multiplexing degree needed to cache the current working set."""
        return connection_degree(list(self._last_use), self.n)

    def turnover(self, other: set[Connection]) -> float:
        """Fraction of ``other`` absent from the current working set."""
        if not other:
            return 0.0
        return len(other - self.working_set) / len(other)

    @property
    def history(self) -> list[tuple[int, int]]:
        return list(self._size_history)

"""Markov next-destination prefetching.

Section 3.2 opens with the classic use of prediction: *"predict the
communication requirement and establish the corresponding circuits in the
network before they are actually needed"* (citing the learning-model and
coherence-prediction work of [21, 22]).  The paper's own experiments focus
on eviction, but the request **latches** of extension 3 give the hardware
everything prefetching needs: latching a connection whose request line is
down makes the scheduler establish it — before any data exists for it.

:class:`MarkovPrefetcher` learns, per source, a first-order Markov model
of destination successions (``dst_i -> dst_{i+1}``).  When a source
finishes its traffic to one destination, the predictor emits the most
likely next destination; the network latches that connection so its
establishment overlaps the NIC's turnaround instead of adding to the next
message's latency.  Mispredictions cost one uselessly-held slot entry
until the prefetch latch times out.

The predictable/unpredictable contrast of the paper's Ordered vs Random
Mesh is exactly what separates this predictor's hit and miss regimes
(ablation A9).
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import ConfigurationError
from ..types import Connection

__all__ = ["MarkovPrefetcher"]


class MarkovPrefetcher:
    """First-order per-source next-destination predictor."""

    def __init__(self, n: int, hold_ps: int, min_confidence: float = 0.5) -> None:
        if hold_ps <= 0:
            raise ConfigurationError("prefetch hold time must be positive")
        if not 0.0 <= min_confidence <= 1.0:
            raise ConfigurationError("confidence must be in [0, 1]")
        self.n = n
        self.hold_ps = hold_ps
        self.min_confidence = min_confidence
        #: transition counts: (src, prev_dst) -> {next_dst: count}
        self._transitions: dict[tuple[int, int], dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._last_dst: dict[int, int] = {}
        #: outstanding prefetch latches: connection -> expiry time
        self._prefetched: dict[Connection, int] = {}
        #: mispredicted latches awaiting release by the network
        self._stale: list[Connection] = []
        self.predictions = 0
        self.hits = 0
        self.misses = 0

    # -- learning -------------------------------------------------------------

    def observe(self, src: int, dst: int, t_ps: int) -> None:
        """A message from ``src`` to ``dst`` started transmitting.

        Resolves every outstanding prefetch of this source: the one that
        matches the actual destination is a hit, any other is a miss —
        accuracy therefore measures *next-destination* prediction, not
        merely eventual reuse within the hold window.
        """
        prev = self._last_dst.get(src)
        if prev is not None and prev != dst:
            self._transitions[(src, prev)][dst] += 1
        self._last_dst[src] = dst
        for conn in [c for c in self._prefetched if c.src == src]:
            del self._prefetched[conn]
            if conn.dst == dst:
                self.hits += 1
            else:
                self.misses += 1
                self._stale.append(conn)  # its latch must be dropped

    # -- prediction ---------------------------------------------------------------

    def predict_next(self, src: int, dst: int) -> int | None:
        """The likely destination after (src -> dst), if confident."""
        table = self._transitions.get((src, dst))
        if not table:
            return None
        total = sum(table.values())
        best_dst, best_count = max(table.items(), key=lambda kv: kv[1])
        if best_count / total < self.min_confidence:
            return None
        return best_dst

    def prefetch(self, src: int, dst: int, t_ps: int) -> Connection | None:
        """Emit (and account) a prefetch for the successor of (src, dst)."""
        nxt = self.predict_next(src, dst)
        if nxt is None or nxt == src:
            return None
        conn = Connection(src, nxt)
        self._prefetched[conn] = t_ps + self.hold_ps
        self.predictions += 1
        return conn

    def expired(self, t_ps: int) -> list[Connection]:
        """Prefetch latches to drop: timed out unused, or resolved wrong."""
        out = [c for c, expiry in self._prefetched.items() if expiry <= t_ps]
        for c in out:
            del self._prefetched[c]
        self.misses += len(out)
        out.extend(self._stale)
        self._stale.clear()
        return out

    @property
    def outstanding(self) -> int:
        return len(self._prefetched)

    def accuracy(self) -> float:
        """Fraction of resolved prefetches that were used."""
        resolved = self.hits + self.misses
        return self.hits / resolved if resolved else 0.0

    def stats(self) -> dict[str, int]:
        return {
            "predictions": self.predictions,
            "hits": self.hits,
            "misses": self.misses,
            "outstanding": self.outstanding,
        }

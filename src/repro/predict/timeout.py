"""The time-out predictor.

Paper, Section 3.2: *"we will use in our experiments a simple 'time-out'
predictor in which a connection is removed if it is not used for a certain
period of time."*

When a queue drains, the connection stays latched; every subsequent use
refreshes its deadline.  :meth:`expired` returns the latches whose deadline
passed, so an idle connection survives exactly ``timeout_ps`` beyond its
last use.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..types import Connection
from .base import Predictor

__all__ = ["TimeoutPredictor"]


class TimeoutPredictor(Predictor):
    """Evict a cached connection after ``timeout_ps`` without use."""

    def __init__(self, timeout_ps: int) -> None:
        if timeout_ps <= 0:
            raise ConfigurationError("timeout must be positive")
        self.timeout_ps = timeout_ps
        #: deadline per latched connection
        self._deadlines: dict[Connection, int] = {}
        self.evictions = 0
        self.holds = 0
        self.fault_evictions = 0

    def on_use(self, u: int, v: int, t_ps: int) -> None:
        conn = Connection(u, v)
        if conn in self._deadlines:
            self._deadlines[conn] = t_ps + self.timeout_ps

    def on_empty(self, u: int, v: int, t_ps: int) -> bool:
        self._deadlines[Connection(u, v)] = t_ps + self.timeout_ps
        self.holds += 1
        return True

    def expired(self, t_ps: int) -> list[Connection]:
        out = [c for c, deadline in self._deadlines.items() if deadline <= t_ps]
        for c in out:
            del self._deadlines[c]
        self.evictions += len(out)
        return out

    def on_flush(self, t_ps: int) -> None:
        self._deadlines.clear()

    def forget(self, u: int, v: int) -> None:
        """Stop tracking (the connection was re-requested or released)."""
        self._deadlines.pop(Connection(u, v), None)

    def on_fault(self, port: int, t_ps: int) -> None:
        """Fault-aware eviction: drop every deadline touching a dead port."""
        victims = [c for c in self._deadlines if port in c]
        for c in victims:
            del self._deadlines[c]
        self.fault_evictions += len(victims)

    def stats(self) -> dict[str, int]:
        return {
            "holds": self.holds,
            "evictions": self.evictions,
            "fault_evictions": self.fault_evictions,
            "latched": len(self._deadlines),
        }

"""Predictors: eviction policies for cached connections."""

from .base import NullPredictor, Predictor
from .counter import CounterPredictor
from .hints import HintedPredictor, OraclePredictor
from .markov import MarkovPrefetcher
from .timeout import TimeoutPredictor
from .tracker import WorkingSetTracker

__all__ = [
    "NullPredictor",
    "Predictor",
    "CounterPredictor",
    "HintedPredictor",
    "MarkovPrefetcher",
    "OraclePredictor",
    "TimeoutPredictor",
    "WorkingSetTracker",
]

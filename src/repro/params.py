"""System parameters — every timing constant from Section 5 of the paper.

The defaults reproduce the paper's simulated 128-processor system:

==============================  =======================================
quantity                        paper value
==============================  =======================================
ports                           128 (one NIC per processor)
link rate                       6.4 Gb/s serial  (1250 ps per byte)
NIC send/receive delay          10 ns (single cycle, synthesised VHDL)
parallel-to-serial conversion   30 ns (each end)
cable propagation               20 ns (10-foot cable)
digital crossbar hop            10 ns (wormhole only)
LVDS/optical crossbar hop       ~0 ns (< 2 ns, neglected)
scheduler (SL array) pass       80 ns (ASIC estimate for 128x128)
TDM slot                        100 ns  => 80 bytes per slot
wormhole worm limit             128 bytes
wormhole flit size              8 bytes
request / grant wires           80 ns each way (circuit set-up accounting)
guard band                      0-5 % of a slot (ablation knob)
==============================  =======================================

All times are stored as integer picoseconds (see :mod:`repro.sim.clock`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from .errors import ConfigurationError
from .sim.clock import byte_time_ps, ns

__all__ = ["SystemParams", "PAPER_PARAMS"]


@dataclass(slots=True, frozen=True)
class SystemParams:
    """Immutable bundle of system-wide constants.

    Use :data:`PAPER_PARAMS` for the paper's configuration, and
    :meth:`with_overrides` for parameter sweeps::

        small = PAPER_PARAMS.with_overrides(n_ports=16)
    """

    n_ports: int = 128
    link_gbps: float = 6.4
    nic_delay_ps: int = ns(10)
    serdes_ps: int = ns(30)
    cable_ps: int = ns(20)
    digital_switch_ps: int = ns(10)
    lvds_switch_ps: int = ns(0)
    scheduler_pass_ps: int = ns(80)
    slot_ps: int = ns(100)
    request_wire_ps: int = ns(80)
    grant_wire_ps: int = ns(80)
    worm_max_bytes: int = 128
    flit_bytes: int = 8
    guard_band_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.n_ports < 2:
            raise ConfigurationError("need at least 2 ports")
        if self.slot_ps <= 0 or self.scheduler_pass_ps <= 0:
            raise ConfigurationError("clock periods must be positive")
        if not 0.0 <= self.guard_band_frac < 1.0:
            raise ConfigurationError("guard band fraction must be in [0, 1)")
        if self.worm_max_bytes % self.flit_bytes != 0:
            raise ConfigurationError("worm limit must be a whole number of flits")
        for name in (
            "nic_delay_ps",
            "serdes_ps",
            "cable_ps",
            "digital_switch_ps",
            "lvds_switch_ps",
            "request_wire_ps",
            "grant_wire_ps",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        # trigger the exactness check at construction time
        byte_time_ps(self.link_gbps)

    # -- derived quantities -------------------------------------------------

    @property
    def byte_ps(self) -> int:
        """Serialisation time of one byte on a link, in ps (1250 @ 6.4 Gb/s)."""
        return byte_time_ps(self.link_gbps)

    @property
    def slot_bytes(self) -> int:
        """Usable payload bytes per TDM slot after the guard band.

        With the paper's defaults this is 80 bytes; a 5 % guard band gives
        76 bytes.
        """
        usable_ps = int(self.slot_ps * (1.0 - self.guard_band_frac))
        return usable_ps // self.byte_ps

    @property
    def pipe_latency_ps(self) -> int:
        """End-to-end latency of an established LVDS/optical pipe.

        Paper: 30 (P2S) + 20 (cable) + [~0 switch] + 20 (cable) + 30 (S2P),
        i.e. 100 ns, plus a NIC cycle on each side.
        """
        return (
            self.nic_delay_ps
            + self.serdes_ps
            + self.cable_ps
            + self.lvds_switch_ps
            + self.cable_ps
            + self.serdes_ps
            + self.nic_delay_ps
        )

    @property
    def wormhole_head_path_ps(self) -> int:
        """Latency of a worm head from NIC output to switch input."""
        return self.nic_delay_ps + self.serdes_ps + self.cable_ps

    @property
    def wormhole_exit_path_ps(self) -> int:
        """Latency from the switch output to the destination NIC."""
        return self.cable_ps + self.serdes_ps + self.nic_delay_ps

    @property
    def circuit_setup_ps(self) -> int:
        """Circuit switching set-up: request wire + scheduler + grant wire.

        Paper: 80 + 80 + 80 = 240 ns.
        """
        return self.request_wire_ps + self.scheduler_pass_ps + self.grant_wire_ps

    def message_bytes_ps(self, n_bytes: int) -> int:
        """Link serialisation time of ``n_bytes``."""
        return n_bytes * self.byte_ps

    def slots_for(self, n_bytes: int) -> int:
        """TDM slots needed to carry ``n_bytes`` (ceil division)."""
        sb = self.slot_bytes
        return -(-n_bytes // sb)

    def with_overrides(self, **kwargs: Any) -> "SystemParams":
        """A copy with some fields replaced (validated again)."""
        return replace(self, **kwargs)


PAPER_PARAMS = SystemParams()

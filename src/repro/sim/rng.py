"""Seeded, named random-number streams.

Every stochastic component (random-mesh destination order, hybrid traffic
destination draws, random priority rotation) draws from its *own* named
stream derived from one master seed.  This keeps runs reproducible and —
crucially for the paper's comparisons — keeps the *same* traffic realisation
across the four switching schemes being compared: changing the network model
does not perturb the workload.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stream", "RngStreams"]


def _derive(seed: int, name: str) -> np.random.SeedSequence:
    """Derive a child seed sequence from (seed, name) deterministically."""
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    words = [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]
    return np.random.SeedSequence(entropy=seed, spawn_key=tuple(words))


def stream(seed: int, name: str) -> np.random.Generator:
    """A fresh generator for stream ``name`` under master ``seed``.

    Calling twice with the same arguments returns generators that produce
    identical sequences.
    """
    return np.random.Generator(np.random.PCG64(_derive(seed, name)))


class RngStreams:
    """A factory that hands out named streams under one master seed.

    Streams are cached: asking for the same name twice returns the *same*
    generator object (so consumption is shared), while distinct names are
    statistically independent.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        gen = self._cache.get(name)
        if gen is None:
            gen = stream(self.seed, name)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name`` (not cached, always rewound)."""
        return stream(self.seed, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStreams(seed={self.seed}, streams={sorted(self._cache)})"

"""Slot-synchronous fast execution for the TDM network model.

The discrete-event model spends most of its time in two periodic events —
the TDM slot tick and the SL scheduler tick — whose work is, for long
stretches of a run, completely predictable: established connections stream
one slot's worth of bytes per turn while the scheduler's pre-scheduling
matrix stays empty.  This module exploits that regularity without changing
a single observable of the simulation:

* when a *quiescent window* is proven — an interval in which the scheduler
  is inert, per-slot transfers are pure arithmetic, and **no other heap
  event fires** — every tick inside it is applied in closed form at the
  moment the window opens: slot/SL counters advance in bulk, the bytes the
  window will move are debited from queues and credited to the ledger, the
  two clocks are re-timed past the window, and the skipped periodic events
  are credited to ``Simulator.events_executed`` (each one's effect *was*
  executed, just not through the heap), so event counts and every
  ``RunResult`` field stay **byte-identical** to the event-driven path
  (CI diffs the two modes on real sweeps);
* outside windows, an SL tick whose pre-scheduling matrix is provably
  empty (:meth:`FastPath.handle_sl_tick`) skips the full pass and applies
  its only effects — cursor, rotation, pass counters — directly;
* :meth:`FastPath.transfer_slot` replaces the per-slot transfer loop with
  a vectorised grant/ready/pending mask plus an inlined partial-drain
  branch, and the scheduler's wavefront evaluator is swapped for
  :func:`~repro.sched.slarray.wavefront_batch` (bit-identical by
  construction; see its property tests).

A window may open, at the end of a normal slot tick at time ``t0``, only
when ALL of the following hold (checked against live state, never cached
across ticks):

* the run is fast-path eligible at all (:func:`fastpath_ineligible`);
* the predictor is the :class:`~repro.predict.base.NullPredictor`, no
  prefetcher and no boost policy are attached, and no preload-batch load
  is in flight — these act on their own clocks and would mutate scheduler
  state mid-window;
* every SL pass inside the window is provably inert: no dynamic slot
  holds a release candidate (``B(s) & ~(R | latched)``), and every
  establish candidate (``(R | latched) & ~B*``, slot-independent because
  ``B(s) <= B*``), if any exist, lacks a free input-and-output pair in
  every dynamic slot — grant signals only move on toggles, so entry
  occupancy alone decides, and each inert pass counts exactly the number
  of establish candidates as blocked;
* every connection in a slot the frozen TDM counter will apply either has
  no pending bytes, or is fully ready (its grant has propagated:
  ``conn_ready <= t0``) with an already-injected head message — otherwise
  service would start mid-window without a heap event marking the change.

The window then ends strictly before the earliest of: the first message
completion on any served connection, the tick at which the current preload
batch would drain to zero, and the first non-tick heap event (so nothing
at all happens *inside* a window; the breaking tick itself runs through
the fully general event-driven code).  A window no heap event bounds is
refused: a run that deadlocks with its clocks spinning must keep spinning
into the event valve exactly like the event path does.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, cast

import numpy as np

from ..predict.base import NullPredictor
from ..sched.scheduler import Scheduler
from ..sched.slarray import wavefront_batch
from ..types import MessageRecord
from .engine import Event, Priority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tdm imports us)
    from ..networks.base import BaseNetwork
    from ..networks.tdm import TdmNetwork
    from ..nic.queues import DrainedMessage
    from ..types import Message

__all__ = [
    "FAST_ENV_VAR",
    "MULTI_SWITCH_FALLBACK",
    "fast_from_env",
    "fastpath_ineligible",
    "FastPath",
]

#: the fallback reason for composite fabrics — shared with the multi-switch
#: network's counters and the scaleout summary so the three always agree
MULTI_SWITCH_FALLBACK = "multi-switch fabric is scheduled per hop"

#: environment variable that turns slot-synchronous execution on globally
#: (the CLI's ``--fast`` sets it so worker processes inherit the mode)
FAST_ENV_VAR = "REPRO_FAST"

#: a window shorter than this many slot ticks is not worth the entry
#: analysis plus the clock re-timing it buys
_MIN_WINDOW_SLOTS = 2


def fast_from_env() -> bool:
    """Resolve the ``REPRO_FAST`` environment default (unset/"0" = off)."""
    return os.environ.get(FAST_ENV_VAR, "") not in ("", "0")


def fastpath_ineligible(net: "BaseNetwork") -> str | None:
    """Why ``net``'s current run cannot use the fast path (None: it can).

    The fast path services exactly the regular core of the model: one
    crossbar driven by a plain single-unit
    :class:`~repro.sched.scheduler.Scheduler` with no tracing and no fault
    campaign.  Everything else — multi-switch fabrics with their per-hop
    trunk scheduling, fault injection with its watchdog windows, multi-unit
    or fabric-constrained schedulers, event tracing — falls back to the
    event-driven path, which remains the single source of truth.  The
    returned reason is always a nonempty string, fit for a CLI summary.
    """
    if not net.topology.is_single_switch:
        return MULTI_SWITCH_FALLBACK
    if net.tracer.enabled:
        return "event tracing is enabled"
    if net._faults_active:
        return "a fault schedule is active"
    tdm = cast("TdmNetwork", net)
    if type(tdm.scheduler) is not Scheduler:
        return "non-plain scheduler (multi-unit or fabric-constrained)"
    return None


def _count_before(positions: list[int], m: int, tau: int, p: int, w: int) -> int:
    """Occurrences among the first ``m`` ticks of a tail+cycle sequence.

    ``positions`` holds the (sorted) tick indices of one connection's
    service turns within the tail (indices ``< tau``) and the first cycle
    period (indices ``tau .. tau+p-1``); ``w`` of them lie in the cycle.
    """
    if m <= tau:
        return sum(1 for i in positions if i < m)
    full, rem = divmod(m - tau, p)
    base = len(positions) - w  # all tail occurrences
    in_rem = sum(1 for i in positions if i >= tau and i - tau < rem)
    return base + full * w + in_rem


def _index_of_occurrence(
    positions: list[int], k: int, tau: int, p: int, w: int
) -> int | None:
    """Tick index of the ``k``-th (1-based) service turn, or None if never."""
    if k <= len(positions) - w:
        return positions[k - 1]
    k -= len(positions) - w
    if w == 0:
        return None
    cyc = positions[len(positions) - w :]
    full, rem = divmod(k - 1, w)
    return full * p + cyc[rem]


class FastPath:
    """Per-run slot-synchronous execution state for one TdmNetwork run.

    Created in ``TdmNetwork._reset_scheme_state`` when the run is eligible;
    owns the shared queue-byte matrix, the vectorised transfer, and the
    quiescent-window machinery.  All effects are bit-identical to the
    event-driven path, so nothing here appears in ``RunResult`` counters;
    :meth:`stats` exposes diagnostics through a side channel instead.
    """

    def __init__(self, net: "TdmNetwork") -> None:
        assert net.scheduler is not None and net.crossbar is not None
        self.net = net
        self.sim = net.sim
        self.sched = net.scheduler
        n = net.params.n_ports
        #: all NICs' pending-byte vectors as rows of one matrix, so the
        #: per-slot transfer can gather pending state with one fancy index.
        #: The rows are *views*: every VOQ mutation lands here directly.
        self.queue_bytes = np.zeros((n, n), dtype=np.int64)
        for nic in net.nics:
            row = self.queue_bytes[nic.port]
            row[:] = nic.voqs.bytes_pending
            nic.voqs.bytes_pending = row
        # the batch wavefront is bit-identical to the sparse walk; dense
        # L matrices (phase starts, all-to-all) are where it pays off
        self.sched.wavefront = wavefront_batch
        self._path_ps = net.crossbar.path_latency_ps()
        self._quiet_capable = (
            isinstance(net.predictor, NullPredictor)
            and net.prefetcher is None
            and net.boost_policy is None
        )
        self._null_predictor = isinstance(net.predictor, NullPredictor)
        # diagnostics (side channel only — never RunResult counters)
        self.windows_opened = 0
        self.quiet_slot_ticks = 0
        self.quiet_sl_ticks = 0
        self.window_denials = 0
        self.trivial_sl_ticks = 0
        #: windows are impossible before this time (a near heap event was
        #: seen); purely an attempt filter — skipping an attempt never
        #: changes observables, only how fast a denial is reached
        self._skip_until = 0

    def stats(self) -> dict[str, int]:
        """Fast-path diagnostics (not part of any byte-compared output)."""
        return {
            "windows_opened": self.windows_opened,
            "quiet_slot_ticks": self.quiet_slot_ticks,
            "quiet_sl_ticks": self.quiet_sl_ticks,
            "window_denials": self.window_denials,
            "trivial_sl_ticks": self.trivial_sl_ticks,
        }

    # -- the provably-empty SL pass -------------------------------------------

    def handle_sl_tick(self) -> bool:
        """Run one SL tick whose pass is provably a no-op; False: run it.

        Outside quiescent windows most SL passes find an empty
        pre-scheduling matrix and change nothing but the cursor, the
        rotation, and the pass counters.  Emptiness is decided by the same
        Table-1 terms ``compute_l`` evaluates — establish
        ``(R|latched) & ~B*`` (slot-independent since ``B(s) <= B*``) and
        release ``B(s) & ~(R|latched)`` for the slot this pass would
        schedule — so the replicated effects are exact, not approximate.
        """
        if not self._quiet_capable:
            return False
        sched = self.sched
        if sched.dead_cells is not None:
            return False
        regs = sched.registers
        dynamic = regs.dynamic_slots()
        if not dynamic:
            sched.counters.inc("passes_idle")
        else:
            r = sched.r_view
            eff_r = (r | sched.latched) if sched.latched.any() else r
            cfg = regs.slots[dynamic[sched._sl_cursor % len(dynamic)]]
            if len(cfg) and bool(np.any(cfg.b & ~eff_r)):
                return False  # a release would toggle: run the real pass
            est = eff_r & ~regs.b_star
            blocked = 0
            if est.any():
                # establish candidates exist; the pass is still a no-op iff
                # each lacks a free input AND output in this slot (signals
                # only move on toggles, so entry occupancy decides alone)
                free = ~cfg.input_busy()[:, None] & ~cfg.output_busy()[None, :]
                if bool(np.any(est & free)):
                    return False
                blocked = int(np.count_nonzero(est))
            sched._sl_cursor += 1
            sched.rotation.next_rotation()
            sched.counters.inc("passes")
            sched.counters.inc("blocked", blocked)
        self.trivial_sl_ticks += 1
        net = self.net
        if net._phase_remaining > 0 or self.sim.pending > 0:
            self.sim.schedule(
                net.params.scheduler_pass_ps, net._sl_tick, priority=Priority.SCHEDULER
            )
        return True

    # -- quiescent windows -----------------------------------------------------

    def maybe_open_window(self) -> None:
        """Apply a quiescent window in closed form, if one is provable.

        Called at the end of a normal slot tick, after both clocks are
        re-armed.  On success every in-window tick's effect is applied
        immediately (nothing else can observe intermediate state: by
        construction no heap event fires strictly inside the window), the
        clocks are re-timed to their first post-window tick, and the
        skipped events are credited to the simulator's executed count.
        """
        net = self.net
        sched = self.sched
        if not self._quiet_capable or net._batch_loading:
            return
        t = self.sim.now
        if t < self._skip_until:
            self.window_denials += 1
            return
        slot_ps = net.params.slot_ps

        # scan the heap up front: it is the cheapest gate, and while wire
        # events are in flight (request/grant dances between phases) the
        # near horizon denies the window before any matrix analysis runs.
        # The same scan finds the armed clock events the commit re-times
        # and the first break: the earliest non-clock heap event.
        slot_fn = net._slot_tick
        sl_fn = net._sl_tick
        horizon: int | None = None
        slot_ev: Event | None = None
        sl_ev: Event | None = None
        for entry in self.sim._heap:
            ev = entry[3]
            fn = ev.fn
            if fn is None:
                continue
            if fn == slot_fn:
                slot_ev = ev
            elif fn == sl_fn:
                sl_ev = ev
            elif horizon is None or entry[0] < horizon:
                horizon = entry[0]
        if slot_ev is None or sl_ev is None:  # pragma: no cover - always armed
            self.window_denials += 1
            return
        if horizon is not None and horizon <= t + _MIN_WINDOW_SLOTS * slot_ps:
            # an event only leaves the heap by executing, so every slot
            # tick before `horizon` passes is denied for the same reason
            self._skip_until = horizon
            self.window_denials += 1
            return

        # scheduler inertness: every in-window pass must toggle nothing.
        # The release term of Table 1 must be empty for each dynamic slot;
        # establish candidates (slot-independent, since B(s) <= B*) are
        # tolerated only if every one is port-blocked in every dynamic
        # slot — grant signals move on toggles alone, so entry occupancy
        # decides, and each pass then counts exactly |E| blocked cells.
        r = sched.r_view
        eff_r = (r | sched.latched) if sched.latched.any() else r
        regs = sched.registers
        dynamic = regs.dynamic_slots()
        est_count = 0
        if dynamic:
            est = eff_r & ~regs.b_star
            has_est = bool(est.any())
            for s in dynamic:
                cfg = regs.slots[s]
                if len(cfg) and bool(np.any(cfg.b & ~eff_r)):
                    self.window_denials += 1
                    return
                if has_est:
                    free = (
                        ~cfg.input_busy()[:, None] & ~cfg.output_busy()[None, :]
                    )
                    if bool(np.any(est & free)):
                        self.window_denials += 1
                        return
            if has_est:
                est_count = int(np.count_nonzero(est))

        # the frozen TDM counter's slot sequence: a transient tail that
        # leads into a cycle (both of length <= k)
        pending = r if net.skip_idle_slots else None
        useful = []
        for s in range(regs.k):
            cfg = regs.slots[s]
            useful.append(
                s not in regs.quarantined
                and not cfg.is_empty
                and (pending is None or bool(np.any(cfg.b & pending)))
            )

        def nxt(cur: int) -> int | None:
            for step in range(1, regs.k + 1):
                cand = (cur + step) % regs.k
                if useful[cand]:
                    return cand
            return None

        first = nxt(sched.tdm.current)
        if first is None:
            tail: list[int] = []
            cycle: list[int] = []
            no_slots = True
        else:
            seq = [first]
            seen = {first: 0}
            while True:
                s2 = nxt(seq[-1])
                assert s2 is not None  # a useful slot always finds a successor
                if s2 in seen:
                    tail = seq[: seen[s2]]
                    cycle = seq[seen[s2] :]
                    break
                seen[s2] = len(seq)
                seq.append(s2)
            no_slots = False

        # per-connection service analysis over the slots that will be
        # applied; any connection whose service could *start* mid-window
        # (grant or head injection still in flight) vetoes the window
        conn_ready = net._conn_ready
        assert conn_ready is not None
        qb = self.queue_bytes
        slot_bytes = net.params.slot_bytes
        slot_opps: dict[int, int] = {}
        slot_moves: dict[int, int] = {}
        bslot: dict[int, int] = {}
        conn_head: dict[tuple[int, int], "Message"] = {}
        conn_slots: dict[tuple[int, int], set[int]] = {}
        for s in sorted(set(tail) | set(cycle)):
            cfg = regs.slots[s]
            rtc = cfg.row_to_col
            us = np.nonzero(rtc >= 0)[0]
            slot_opps[s] = len(us)
            vs = rtc[us]
            act = qb[us, vs] > 0
            moves = 0
            batch_moves = 0
            if act.any():
                aus = us[act]
                avs = vs[act]
                if bool(np.any(conn_ready[aus, avs] > t)):
                    self.window_denials += 1
                    return
                for u, v in zip(aus.tolist(), avs.tolist()):
                    head = net.nics[u].voqs.head(v)
                    assert head is not None
                    if head.inject_ps > t:
                        self.window_denials += 1
                        return
                    moves += 1
                    if (u, v) in net._batch_conns:
                        batch_moves += 1
                    conn_head[(u, v)] = head
                    conn_slots.setdefault((u, v), set()).add(s)
            slot_moves[s] = moves
            bslot[s] = batch_moves

        # first break: the earliest tick a served head would complete on
        tau = len(tail)
        p = len(cycle)
        break_idx: int | None = None
        served: list[tuple[int, int, "Message", list[int], int]] = []
        for (u, v), slots_of in sorted(conn_slots.items()):
            positions = [i for i, s in enumerate(tail) if s in slots_of]
            w0 = len(positions)
            positions += [tau + i for i, s in enumerate(cycle) if s in slots_of]
            w = len(positions) - w0
            head = conn_head[(u, v)]
            k_done = -(-head.remaining // slot_bytes)  # ceil: drains to finish
            idx = _index_of_occurrence(positions, k_done, tau, p, w)
            if idx is not None and (break_idx is None or idx < break_idx):
                break_idx = idx
            served.append((u, v, head, positions, w))

        # second break: the tick the current preload batch drains to zero
        # (that tick must run normally — it schedules the next batch load)
        if net._program is not None and net._batch_remaining > 0:
            units = -(-net._batch_remaining // slot_bytes)
            bidx = self._batch_break_index(tail, cycle, bslot, units)
            if bidx is not None and (break_idx is None or bidx < break_idx):
                break_idx = bidx

        end: int | None = None if break_idx is None else t + (break_idx + 1) * slot_ps
        if horizon is not None and (end is None or horizon < end):
            end = horizon
        if end is None:
            # nothing bounds the window: the event path would tick forever
            # into its per-phase event valve, and so must we
            self.window_denials += 1
            return
        m = (end - t - 1) // slot_ps  # slot ticks strictly inside the window
        if m < _MIN_WINDOW_SLOTS:
            # `end` only moves earlier as t advances (the same break is
            # still there), so attempts before it stay denied as well
            self._skip_until = end
            self.window_denials += 1
            return

        # ---- commit: apply every in-window tick in closed form ----------
        sl_ps = net.params.scheduler_pass_ps
        ts1 = sl_ev.time
        j_m = 0 if ts1 >= end else (end - ts1 - 1) // sl_ps + 1

        tdm = sched.tdm
        if no_slots:
            tdm.idle_ticks += m
        else:
            crossbar = net.crossbar
            assert crossbar is not None
            opps = 0
            moved_conns = 0
            for s in sorted(slot_opps):
                spos = [i for i, x in enumerate(tail) if x == s]
                w_s0 = len(spos)
                spos += [tau + i for i, x in enumerate(cycle) if x == s]
                occ = _count_before(spos, m, tau, p, len(spos) - w_s0)
                opps += occ * slot_opps[s]
                moved_conns += occ * slot_moves[s]
            net._slot_opportunities += opps
            net._slot_transfers += moved_conns
            tdm.advances += m
            last = tail[m - 1] if m - 1 < tau else cycle[(m - 1 - tau) % p]
            tdm.current = last
            # the event path reloads the active configuration every applied
            # slot; only the last load is observable
            crossbar.reconfigurations += m
            crossbar.active.load(regs.slots[last])
            for u, v, head, positions, w in served:
                occ = _count_before(positions, m, tau, p, w)
                if occ == 0:
                    continue
                voqs = net.nics[u].voqs
                if head.remaining == head.size and id(head) not in voqs._starts:
                    voqs._starts[id(head)] = t + (positions[0] + 1) * slot_ps
                moved = occ * slot_bytes
                head.remaining -= moved
                voqs.bytes_pending[v] -= moved
                assert head.remaining > 0, "window overran a message completion"
                net.ledger.send(u, v, moved)
                if (u, v) in net._batch_conns:
                    net._batch_remaining -= moved

        if j_m:
            if dynamic:
                # j_m inert passes: cursor and rotation advance, the passes
                # are counted, and each one blocks the same |E| cells
                sched._sl_cursor += j_m
                sched.rotation.advance(j_m)
                sched.counters.inc("passes", j_m)
                sched.counters.inc("blocked", j_m * est_count)
            else:
                sched.counters.inc("passes_idle", j_m)
            sl_ev.cancel()
            self.sim.schedule_at(
                ts1 + j_m * sl_ps, net._sl_tick, priority=Priority.SCHEDULER
            )

        slot_ev.cancel()
        self.sim.schedule_at(
            t + (m + 1) * slot_ps, net._slot_tick, priority=Priority.FABRIC
        )
        # the skipped periodic events *were* executed — in closed form,
        # above — so the executed count (and RunResult's "events" counter)
        # stays identical to the event-driven path
        self.sim.events_executed += m + j_m

        self.windows_opened += 1
        self.quiet_slot_ticks += m
        self.quiet_sl_ticks += j_m

    @staticmethod
    def _batch_break_index(
        tail: list[int], cycle: list[int], bslot: dict[int, int], units: int
    ) -> int | None:
        """Tick index at which ``units`` batch-connection drains accumulate."""
        acc = 0
        for i, s in enumerate(tail):
            acc += bslot.get(s, 0)
            if acc >= units:
                return i
        per_cycle = sum(bslot.get(s, 0) for s in cycle)
        if per_cycle == 0:
            return None
        need = units - acc
        full = (need - 1) // per_cycle
        need -= full * per_cycle
        acc = 0
        for j, s in enumerate(cycle):
            acc += bslot.get(s, 0)
            if acc >= need:
                return len(tail) + full * len(cycle) + j
        return None  # pragma: no cover - need <= per_cycle by construction

    # -- the vectorised per-slot transfer -------------------------------------

    def transfer_slot(self, slot: int, t: int) -> None:
        """Byte-identical replacement for ``TdmNetwork._transfer_slot``.

        Only reached when tracing is off and no faults are active (the
        eligibility gate), so those branches of the original are dead here;
        the grant/ready/pending skip cascade is evaluated as one vector
        mask and the common mid-message slot — a pure partial drain — is
        inlined without touching the deque.
        """
        net = self.net
        params = net.params
        cfg = self.sched.registers.slots[slot]
        rtc = cfg.row_to_col
        us = np.nonzero(rtc >= 0)[0]
        net._slot_opportunities += len(us)
        conn_ready = net._conn_ready
        assert conn_ready is not None
        vs = rtc[us]
        act = (conn_ready[us, vs] <= t) & (self.queue_bytes[us, vs] > 0)
        if not act.any():
            return
        slot_bytes = params.slot_bytes
        byte_ps = params.byte_ps
        batch = net._batch_conns
        sim = self.sim
        for u, v in zip(us[act].tolist(), vs[act].tolist()):
            voqs = net.nics[u].voqs
            head = voqs._queues[v][0]
            done: list[DrainedMessage]
            if head.inject_ps <= t and head.remaining > slot_bytes:
                if head.remaining == head.size and id(head) not in voqs._starts:
                    voqs._starts[id(head)] = t
                head.remaining -= slot_bytes
                voqs.bytes_pending[v] -= slot_bytes
                moved = slot_bytes
                done = []
            else:
                moved, done = voqs.drain(v, slot_bytes, t, byte_ps)
                if moved == 0:
                    continue  # the head is not yet injected
            net._slot_transfers += 1
            net.ledger.send(u, v, moved)
            if not self._null_predictor:
                net.predictor.on_use(u, v, t)
            if (u, v) in batch:
                net._batch_remaining -= moved
            for dm in done:
                record = MessageRecord(
                    src=u,
                    dst=v,
                    size=dm.message.size,
                    inject_ps=dm.message.inject_ps,
                    start_ps=dm.start_ps,
                    done_ps=dm.finish_ps + self._path_ps,
                    seq=dm.message.seq,
                )
                sim.schedule_at(
                    record.done_ps, net._deliver, record, priority=Priority.NIC
                )
                if net.prefetcher is not None:
                    net.prefetcher.observe(u, v, t)
                    conn = net.prefetcher.prefetch(u, v, t)
                    if conn is not None:
                        self.sched.latched[conn.src, conn.dst] = True
                if net.injection_window is not None:
                    net._feed_nic(u)
            if voqs.bytes_pending[v] == 0:
                hold = net.predictor.on_empty(u, v, t)
                sim.schedule(
                    params.request_wire_ps,
                    net._request_drop,
                    u,
                    v,
                    hold,
                    priority=Priority.WIRE,
                )

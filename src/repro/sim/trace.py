"""Structured event tracing.

A :class:`Tracer` records tuples of ``(time_ps, kind, payload)`` into a
bounded **ring buffer**: when the buffer is full the *oldest* event is
overwritten by the newest and ``dropped`` counts each overwrite, so after a
long run the buffer holds the trailing window of the run and ``dropped``
says how much history was lost.  Tracing is off by default — instrumentation
sites guard on :attr:`Tracer.enabled` before building payloads, so a
disabled tracer costs one attribute check and a branch in the hot path.

Event kinds are free-form strings at this layer; the typed catalog the
instrumentation points actually use lives in :mod:`repro.obs.events`, and
the exporters in :mod:`repro.obs.exporters` turn recorded events into
JSONL, CSV, or Chrome/Perfetto timelines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass(slots=True, frozen=True)
class TraceEvent:
    time_ps: int
    kind: str
    payload: dict[str, Any]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return f"[{self.time_ps/1000:.1f} ns] {self.kind} {fields}"


class Tracer:
    """Bounded in-memory ring-buffer trace recorder.

    The buffer keeps the most recent ``capacity`` events; recording into a
    full buffer overwrites the oldest event and increments :attr:`dropped`.
    :attr:`kind_counts` counts every event ever recorded (including ones
    later overwritten), so exporters and tests can check event conservation
    against run counters even when the window wrapped.
    """

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        self.enabled = enabled
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        #: events overwritten because the ring buffer was full
        self.dropped = 0
        #: per-kind totals over the whole run (overwritten events included)
        self.kind_counts: dict[str, int] = {}

    def record(self, time_ps: int, kind: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if len(self._buf) == self._buf.maxlen:
            self.dropped += 1
        self._buf.append(TraceEvent(time_ps, kind, payload))
        counts = self.kind_counts
        counts[kind] = counts.get(kind, 0) + 1

    def events(self, kind: str | None = None) -> Iterator[TraceEvent]:
        """Iterate recorded events, optionally filtered by kind."""
        for ev in self._buf:
            if kind is None or ev.kind == kind:
                yield ev

    def summary(self) -> dict[str, int]:
        """Per-kind totals plus buffer statistics, for quick inspection."""
        out = dict(sorted(self.kind_counts.items()))
        out["_retained"] = len(self._buf)
        out["_dropped"] = self.dropped
        return out

    def clear(self) -> None:
        self._buf.clear()
        self.dropped = 0
        self.kind_counts = {}

    def __len__(self) -> int:
        return len(self._buf)


class _NullTracer(Tracer):
    """A permanently disabled tracer shared by all runs that do not trace."""

    def __init__(self) -> None:
        super().__init__(capacity=1, enabled=False)

    def record(self, time_ps: int, kind: str, **payload: Any) -> None:
        return None


NULL_TRACER = _NullTracer()

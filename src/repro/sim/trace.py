"""Structured event tracing.

A :class:`Tracer` records tuples of ``(time_ps, kind, payload)`` into a
bounded ring buffer.  Tracing is off by default — the network models call
``tracer.record`` unconditionally, but a disabled tracer short-circuits to a
no-op, so the cost in the hot path is one attribute check.

Traces exist for debugging and for the worked examples; experiments never
depend on them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass(slots=True, frozen=True)
class TraceEvent:
    time_ps: int
    kind: str
    payload: dict[str, Any]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.payload.items()))
        return f"[{self.time_ps/1000:.1f} ns] {self.kind} {fields}"


class Tracer:
    """Bounded in-memory trace recorder."""

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        self.enabled = enabled
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, time_ps: int, kind: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if len(self._buf) == self._buf.maxlen:
            self.dropped += 1
        self._buf.append(TraceEvent(time_ps, kind, payload))

    def events(self, kind: str | None = None) -> Iterator[TraceEvent]:
        """Iterate recorded events, optionally filtered by kind."""
        for ev in self._buf:
            if kind is None or ev.kind == kind:
                yield ev

    def clear(self) -> None:
        self._buf.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buf)


class _NullTracer(Tracer):
    """A permanently disabled tracer shared by all runs that do not trace."""

    def __init__(self) -> None:
        super().__init__(capacity=1, enabled=False)

    def record(self, time_ps: int, kind: str, **payload: Any) -> None:
        return None


NULL_TRACER = _NullTracer()

"""A deterministic discrete-event simulation kernel.

The engine is a classic binary-heap event loop.  Three properties matter for
reproducing the paper's cycle-accurate results:

* **integer time** — events are stamped with integer picoseconds, so there
  is never floating point tie ambiguity;
* **total ordering** — simultaneous events are ordered by an explicit
  ``priority`` (lower runs first) and then by insertion sequence, so a run
  is bit-for-bit repeatable;
* **cancellation** — periodic processes (slot clocks, SL clocks) and
  time-out predictors need to cancel pending events cheaply; cancelled
  events stay in the heap but are skipped when popped.

Components register callbacks rather than subclassing anything; the network
models in :mod:`repro.networks` drive all their state machines through one
:class:`Simulator` instance per run.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Event", "Simulator", "Priority"]


class Priority:
    """Well-known event priorities (lower value runs first at equal time).

    The relative order encodes the hardware's intra-instant causality: at a
    slot boundary the fabric is reconfigured before any data moves, and
    request-wire updates are seen by the scheduler before the SL pass that
    could consume them.
    """

    FABRIC = 0  # fabric reconfiguration / TDM counter advance
    WIRE = 10  # request & grant wire arrivals
    SCHEDULER = 20  # SL array passes
    TRANSFER = 30  # data movement within a slot
    NIC = 40  # queue state changes, message completion
    MONITOR = 90  # measurement probes, drained-detection
    DEFAULT = 50


@dataclass(slots=True)
class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    time: int
    priority: int
    seq: int
    fn: Callable[..., Any] | None
    args: tuple

    def cancel(self) -> None:
        """Prevent the event from running; safe to call multiple times."""
        self.fn = None

    @property
    def cancelled(self) -> bool:
        return self.fn is None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


@dataclass
class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(ns(100), my_callback, arg1, arg2)
        sim.run()

    ``run`` executes events in time order until the heap is empty, an
    ``until`` horizon is reached, or ``stop()`` is called from inside a
    callback.

    Heap entries are plain ``(time, priority, seq, event)`` tuples so that
    ``heapq`` compares them in C: the unique ``seq`` guarantees the tuple
    comparison never falls through to the Event object.  (Profiling showed
    Python-level ``Event.__lt__`` dominating worm-heavy simulations.)
    """

    now: int = 0
    _heap: list[tuple[int, int, int, Event]] = field(default_factory=list)
    _seq: int = 0
    _stopped: bool = False
    events_executed: int = 0

    def schedule(
        self,
        delay_ps: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.DEFAULT,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ps`` after the current time."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule {delay_ps} ps in the past")
        return self.schedule_at(self.now + delay_ps, fn, *args, priority=priority)

    def schedule_at(
        self,
        time_ps: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.DEFAULT,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, current time is {self.now} ps"
            )
        ev = Event(time_ps, priority, self._seq, fn, args)
        heapq.heappush(self._heap, (time_ps, priority, self._seq, ev))
        self._seq += 1
        return ev

    def stop(self) -> None:
        """Stop the event loop after the current callback returns."""
        self._stopped = True

    def peek_time(self) -> int | None:
        """Time of the next non-cancelled event, or None if the heap is empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    #: events between wall-clock watchdog checks (a power of two so the
    #: test ``executed & MASK`` compiles to one AND per event)
    _WATCHDOG_STRIDE = 4096

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        max_wall_s: float | None = None,
    ) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute time horizon (inclusive); events after it stay queued.
        max_events:
            Safety valve for tests: raise after this many executions.
        max_wall_s:
            Wall-clock watchdog: raise :class:`SimulationError` once the
            loop has run this many real seconds.  Hung recovery loops (a
            fault-injection hazard) die with sim-time/event diagnostics
            instead of spinning; checked every ``_WATCHDOG_STRIDE`` events
            so the healthy path pays no ``time.monotonic`` cost per event.

        Returns the simulation time after the last executed event.
        """
        self._stopped = False
        executed = 0
        deadline = (
            time.monotonic() + max_wall_s if max_wall_s is not None else None
        )
        stride = self._WATCHDOG_STRIDE - 1
        while self._heap and not self._stopped:
            entry = heapq.heappop(self._heap)
            ev = entry[3]
            if ev.cancelled:
                continue
            if until is not None and ev.time > until:
                heapq.heappush(self._heap, entry)
                self.now = until
                break
            if ev.time < self.now:  # pragma: no cover - heap guarantees order
                raise SimulationError("event heap yielded a past event")
            self.now = ev.time
            fn, args = ev.fn, ev.args
            ev.cancel()  # guard against re-execution through stale references
            assert fn is not None
            fn(*args)
            executed += 1
            self.events_executed += 1
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a runaway loop"
                )
            if (
                deadline is not None
                and (executed & stride) == 0
                and time.monotonic() > deadline
            ):
                raise SimulationError(
                    f"wall-clock watchdog tripped after {max_wall_s} s: "
                    f"sim time {self.now} ps, {executed} events this run "
                    f"({self.events_executed} total), {len(self._heap)} queued"
                )
        return self.now

    def run_until_idle(self, idle_check: Callable[[], bool], poll_ps: int) -> int:
        """Run, polling ``idle_check`` every ``poll_ps``; stop when it is true.

        Useful for networks with periodic clocks that never drain the heap
        on their own.
        """
        def probe() -> None:
            if idle_check():
                self.stop()
            else:
                self.schedule(poll_ps, probe, priority=Priority.MONITOR)

        self.schedule(0, probe, priority=Priority.MONITOR)
        return self.run()

    @property
    def pending(self) -> int:
        """Number of (possibly cancelled) events still queued."""
        return len(self._heap)

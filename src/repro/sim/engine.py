"""A deterministic discrete-event simulation kernel.

The engine is a classic binary-heap event loop.  Three properties matter for
reproducing the paper's cycle-accurate results:

* **integer time** — events are stamped with integer picoseconds, so there
  is never floating point tie ambiguity;
* **total ordering** — simultaneous events are ordered by an explicit
  ``priority`` (lower runs first) and then by insertion sequence, so a run
  is bit-for-bit repeatable;
* **cancellation** — periodic processes (slot clocks, SL clocks) and
  time-out predictors need to cancel pending events cheaply; cancelled
  events stay in the heap and are skipped when popped, but the heap is
  lazily compacted whenever cancelled entries outnumber live ones, so
  long runs with heavy cancellation keep bounded memory.

Components register callbacks rather than subclassing anything; the network
models in :mod:`repro.networks` drive all their state machines through one
:class:`Simulator` instance per run.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Event", "Simulator", "Priority"]


class Priority:
    """Well-known event priorities (lower value runs first at equal time).

    The relative order encodes the hardware's intra-instant causality: at a
    slot boundary the fabric is reconfigured before any data moves, and
    request-wire updates are seen by the scheduler before the SL pass that
    could consume them.
    """

    FABRIC = 0  # fabric reconfiguration / TDM counter advance
    WIRE = 10  # request & grant wire arrivals
    SCHEDULER = 20  # SL array passes
    TRANSFER = 30  # data movement within a slot
    NIC = 40  # queue state changes, message completion
    MONITOR = 90  # measurement probes, drained-detection
    DEFAULT = 50


@dataclass(slots=True)
class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`."""

    time: int
    priority: int
    seq: int
    fn: Callable[..., Any] | None
    args: tuple
    owner: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent the event from running; safe to call multiple times."""
        if self.fn is None:
            return
        self.fn = None
        if self.owner is not None:
            self.owner._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self.fn is None


@dataclass
class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.schedule(ns(100), my_callback, arg1, arg2)
        sim.run()

    ``run`` executes events in time order until the heap is empty, an
    ``until`` horizon is reached, or ``stop()`` is called from inside a
    callback.

    Heap entries are plain ``(time, priority, seq, event)`` tuples so that
    ``heapq`` compares them in C: the unique ``seq`` guarantees the tuple
    comparison never falls through to the Event object, which therefore
    needs no ``__lt__`` at all.  (Profiling showed Python-level ordering
    dominating worm-heavy simulations.)
    """

    now: int = 0
    _heap: list[tuple[int, int, int, Event]] = field(default_factory=list)
    _seq: int = 0
    _stopped: bool = False
    events_executed: int = 0
    #: total live events ever cancelled via :meth:`Event.cancel`
    events_cancelled: int = 0
    #: deepest the heap has ever been (live + cancelled entries)
    heap_high_water: int = 0
    #: cumulative wall-clock seconds spent inside :meth:`run`
    run_wall_s: float = 0.0
    #: how many times the heap was rebuilt to shed cancelled entries
    compactions: int = 0
    #: cancelled events currently sitting in the heap (lazy-deletion debt)
    _dead_in_heap: int = 0

    def schedule(
        self,
        delay_ps: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.DEFAULT,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_ps`` after the current time."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule {delay_ps} ps in the past")
        return self.schedule_at(self.now + delay_ps, fn, *args, priority=priority)

    def schedule_at(
        self,
        time_ps: int,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.DEFAULT,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, current time is {self.now} ps"
            )
        ev = Event(time_ps, priority, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time_ps, priority, self._seq, ev))
        self._seq += 1
        if len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)
        return ev

    def stop(self) -> None:
        """Stop the event loop after the current callback returns."""
        self._stopped = True

    def peek_time(self) -> int | None:
        """Time of the next non-cancelled event, or None if the heap is empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            self._dead_in_heap -= 1
        return self._heap[0][0] if self._heap else None

    #: heap sizes below this are not worth compacting
    _COMPACT_FLOOR = 64

    def _note_cancelled(self) -> None:
        """A live scheduled event was cancelled (called by Event.cancel).

        Cancelled entries are skipped lazily at pop time; once they make up
        more than half the heap the whole heap is rebuilt without them, so
        timeout-predictor-heavy runs cannot grow memory without bound.
        """
        self.events_cancelled += 1
        self._dead_in_heap += 1
        if (
            self._dead_in_heap * 2 > len(self._heap)
            and len(self._heap) > self._COMPACT_FLOOR
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap keeping only live events.

        In place (``[:]``), never rebinding: :meth:`run` holds a local
        reference to the heap list across callbacks, and a callback's
        ``cancel()`` can compact mid-loop.
        """
        self._heap[:] = [entry for entry in self._heap if entry[3].fn is not None]
        heapq.heapify(self._heap)
        self._dead_in_heap = 0
        self.compactions += 1

    #: events between wall-clock watchdog checks (a power of two so the
    #: test ``executed & MASK`` compiles to one AND per event)
    _WATCHDOG_STRIDE = 4096

    def run(
        self,
        until: int | None = None,
        max_events: int | None = None,
        max_wall_s: float | None = None,
    ) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute time horizon (inclusive); events after it stay queued.
        max_events:
            Safety valve for tests: raise after this many executions.
        max_wall_s:
            Wall-clock watchdog: raise :class:`SimulationError` once the
            loop has run this many real seconds.  Hung recovery loops (a
            fault-injection hazard) die with sim-time/event diagnostics
            instead of spinning; checked every ``_WATCHDOG_STRIDE`` events
            so the healthy path pays no ``time.monotonic`` cost per event.

        Returns the simulation time after the last executed event.
        """
        self._stopped = False
        executed = 0
        wall_start = time.monotonic()
        deadline = (
            wall_start + max_wall_s if max_wall_s is not None else None
        )
        stride = self._WATCHDOG_STRIDE - 1
        # hot-loop locals: attribute lookups on ``heapq``/``time``/``self``
        # cost a dict probe per event at millions of events per run.  The
        # heap binding survives callbacks because _compact rebuilds it in
        # place; _stopped/_dead_in_heap stay attribute accesses (callbacks
        # mutate them mid-loop); events_executed is flushed in the finally.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        monotonic = time.monotonic
        try:
            while heap and not self._stopped:
                entry = heappop(heap)
                ev = entry[3]
                if ev.fn is None:
                    self._dead_in_heap -= 1
                    continue
                if until is not None and ev.time > until:
                    heappush(heap, entry)
                    self.now = until
                    break
                if ev.time < self.now:  # pragma: no cover - heap guarantees order
                    raise SimulationError("event heap yielded a past event")
                self.now = ev.time
                fn, args = ev.fn, ev.args
                # guard against re-execution through stale references; not
                # cancel() — the event has left the heap and must not count
                # against the lazy-deletion debt
                ev.fn = None
                fn(*args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway loop"
                    )
                if (
                    deadline is not None
                    and (executed & stride) == 0
                    and monotonic() > deadline
                ):
                    raise SimulationError(
                        f"wall-clock watchdog tripped after {max_wall_s} s: "
                        f"sim time {self.now} ps, {executed} events this run "
                        f"({self.events_executed + executed} total), "
                        f"{len(heap)} queued"
                    )
        finally:
            self.events_executed += executed
            self.run_wall_s += monotonic() - wall_start
        return self.now

    def run_until_idle(
        self,
        idle_check: Callable[[], bool],
        poll_ps: int,
        *,
        until: int | None = None,
        max_events: int | None = None,
        max_wall_s: float | None = None,
    ) -> int:
        """Run, polling ``idle_check`` every ``poll_ps``; stop when it is true.

        Useful for networks with periodic clocks that never drain the heap
        on their own.  The safety valves (``until``, ``max_events``,
        ``max_wall_s``) are forwarded to :meth:`run` unchanged, so a
        watchdog guards polled runs exactly like plain ones.
        """
        # Track the queued probe so every exit path can cancel it: leaving
        # via ``until``/``max_events``/the watchdog (or a ``stop()`` from
        # another callback) would otherwise leak the self-rescheduling
        # chain into every subsequent ``run()``.
        armed: list[Event | None] = [None]

        def probe() -> None:
            armed[0] = None
            if idle_check():
                self.stop()
            else:
                armed[0] = self.schedule(poll_ps, probe, priority=Priority.MONITOR)

        armed[0] = self.schedule(0, probe, priority=Priority.MONITOR)
        try:
            return self.run(until=until, max_events=max_events, max_wall_s=max_wall_s)
        finally:
            if armed[0] is not None:
                armed[0].cancel()

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._dead_in_heap

    def perf_counters(self) -> dict[str, float]:
        """Event-loop performance counters for the observability layer.

        ``events_per_sec`` covers time spent inside :meth:`run` only, so a
        caller that interleaves analysis between excursions does not dilute
        the kernel's own throughput number.
        """
        scheduled = self._seq
        return {
            "events_executed": self.events_executed,
            "events_scheduled": scheduled,
            "events_cancelled": self.events_cancelled,
            "cancelled_ratio": (
                self.events_cancelled / scheduled if scheduled else 0.0
            ),
            "heap_high_water": self.heap_high_water,
            "compactions": self.compactions,
            "pending": self.pending,
            "run_wall_s": self.run_wall_s,
            "events_per_sec": (
                self.events_executed / self.run_wall_s if self.run_wall_s > 0 else 0.0
            ),
        }

"""Online statistics accumulators used by the network models.

The simulators stream per-message and per-slot observations through these
accumulators instead of storing raw samples, which keeps memory flat for
multi-millisecond runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

from ..errors import ConfigurationError

__all__ = ["OnlineStats", "Histogram", "Counter"]


@dataclass(slots=True)
class OnlineStats:
    """Welford mean/variance plus min/max, in one pass.

    Works on ints or floats; all derived quantities are floats.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    total: float = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (Chan's parallel update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        n = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self.mean += delta * other.count / n
        self.count = n
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __len__(self) -> int:
        return self.count


@dataclass(slots=True)
class Histogram:
    """Fixed-width bin histogram over ``[0, bin_width * n_bins)``.

    Samples beyond the last bin land in an overflow bucket; totals and the
    ability to compute approximate quantiles are preserved.
    """

    bin_width: float
    n_bins: int
    counts: list[int] = field(default_factory=list)
    overflow: int = 0
    _stats: OnlineStats = field(default_factory=OnlineStats)
    _width_exact: Fraction = field(init=False)

    def __post_init__(self) -> None:
        if self.bin_width <= 0 or self.n_bins <= 0:
            raise ConfigurationError("histogram needs positive bin width and count")
        if not self.counts:
            self.counts = [0] * self.n_bins
        self._width_exact = Fraction(str(self.bin_width))

    def _bin_index(self, x: float) -> int:
        """Exact bin index for a non-negative sample.

        Both the sample and the bin width go through their decimal strings,
        so boundary samples land in the upper bin (0.3 with width 0.1 is
        bin 3 — float ``0.3 // 0.1`` would say 2).
        """
        if isinstance(x, int) and self._width_exact.denominator == 1:
            return x // self._width_exact.numerator
        return int(Fraction(str(x)) / self._width_exact)

    def add(self, x: float) -> None:
        if x < 0:
            raise ConfigurationError("histogram samples must be non-negative")
        idx = self._bin_index(x)
        if idx >= self.n_bins:
            self.overflow += 1
        else:
            self.counts[idx] += 1
        self._stats.add(x)

    @property
    def count(self) -> int:
        return self._stats.count

    @property
    def mean(self) -> float:
        return self._stats.mean

    def quantile(self, q: float) -> float:
        """Approximate quantile (bin upper edge).  ``q`` in [0, 1].

        ``q = 0`` returns the exact observed minimum: ``seen >= target`` is
        vacuously true at target 0, which would otherwise report the first
        bin's upper edge even when that bin is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0,1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self._stats.minimum
        # Exact rational target rank: float ``q * count`` can overshoot an
        # integer boundary (0.3 * 10 == 3.0000000000000004) and skip a bin.
        target = Fraction(str(q)) * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return (i + 1) * self.bin_width
        # The target rank lies beyond every bin, so it falls in the overflow
        # bucket [n_bins * bin_width, maximum]; the observed maximum is that
        # bucket's exact upper edge.
        seen += self.overflow
        assert seen >= target, "quantile target beyond all recorded samples"
        return self._stats.maximum


@dataclass(slots=True)
class Counter:
    """A named bag of integer counters with dict-like access."""

    values: dict[str, int] = field(default_factory=dict)

    def inc(self, name: str, by: int = 1) -> None:
        self.values[name] = self.values.get(name, 0) + by

    def __getitem__(self, name: str) -> int:
        return self.values.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self.values)

"""Time units and conversions.

All simulation time is an ``int`` count of **picoseconds**.  Every timing
constant of the paper is an exact integer in this unit:

* one byte at 6.4 Gb/s is exactly ``1250`` ps;
* a 100 ns TDM slot is exactly ``100_000`` ps;
* the 80 ns scheduler pass is exactly ``80_000`` ps.

Using integers keeps event ordering exact and the simulation bit-for-bit
deterministic across platforms — there is no floating point drift anywhere
in the engine.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from ..errors import ConfigurationError

__all__ = [
    "PS_PER_NS",
    "PS_PER_US",
    "PS_PER_MS",
    "ns",
    "us",
    "ps_to_ns",
    "byte_time_ps",
    "bytes_to_ps",
    "ps_to_bytes",
]

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000


def _exact_ps(value: float | int, scale: int, unit: str) -> int:
    """Convert ``value`` (in units of ``scale`` ps) to exact integer ps.

    Goes through the decimal string (like :func:`byte_time_ps`) so the
    check is exact for any magnitude: ``0.5 ns`` means 1/2 exactly, and a
    large float either scales to an integer or is rejected — there is no
    absolute tolerance that silently mis-rounds big inputs.
    """
    if isinstance(value, int):
        return value * scale
    try:
        exact = Fraction(str(value)) * scale
    except ValueError:
        raise ConfigurationError(
            f"{value} {unit} is not an integer picosecond count"
        ) from None
    if exact.denominator != 1:
        raise ConfigurationError(f"{value} {unit} is not an integer picosecond count")
    return int(exact)


def ns(value: float | int) -> int:
    """Convert nanoseconds to integer picoseconds.

    Accepts floats for convenience (``ns(0.5)``) but the result must be an
    exact integer number of picoseconds.
    """
    return _exact_ps(value, PS_PER_NS, "ns")


def us(value: float | int) -> int:
    """Convert microseconds to integer picoseconds."""
    return _exact_ps(value, PS_PER_US, "us")


def ps_to_ns(value_ps: int) -> float:
    """Convert picoseconds to (float) nanoseconds, for reporting only."""
    return value_ps / PS_PER_NS


@lru_cache(maxsize=64)
def byte_time_ps(gbps: float) -> int:
    """Time to serialise one byte on a link of ``gbps`` gigabits per second.

    The result must be an exact integer number of picoseconds; the paper's
    6.4 Gb/s links give exactly 1250 ps/byte.  Cached — the simulators read
    it on every slot tick.
    """
    if gbps <= 0:
        raise ConfigurationError(f"link rate must be positive, got {gbps}")
    # Go through the decimal string so that 6.4 means 32/5 exactly rather
    # than the nearest binary float.
    exact = Fraction(8_000) / Fraction(str(gbps))
    if exact.denominator != 1:
        raise ConfigurationError(
            f"a {gbps} Gb/s link does not give an integer ps/byte "
            f"({float(exact):.3f} ps); pick a rate with integer byte time"
        )
    return int(exact)


def bytes_to_ps(n_bytes: int, byte_ps: int) -> int:
    """Serialisation time of ``n_bytes`` at ``byte_ps`` picoseconds/byte."""
    if n_bytes < 0:
        raise ConfigurationError("byte count must be non-negative")
    return n_bytes * byte_ps


def ps_to_bytes(duration_ps: int, byte_ps: int) -> int:
    """How many whole bytes fit in ``duration_ps`` at ``byte_ps`` per byte."""
    if duration_ps < 0:
        raise ConfigurationError("duration must be non-negative")
    return duration_ps // byte_ps

"""Discrete-event simulation substrate (engine, clock, RNG, stats, trace)."""

from .clock import (
    PS_PER_MS,
    PS_PER_NS,
    PS_PER_US,
    byte_time_ps,
    bytes_to_ps,
    ns,
    ps_to_bytes,
    ps_to_ns,
    us,
)
from .engine import Event, Priority, Simulator
from .rng import RngStreams, stream
from .stats import Counter, Histogram, OnlineStats
from .trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "PS_PER_MS",
    "PS_PER_NS",
    "PS_PER_US",
    "byte_time_ps",
    "bytes_to_ps",
    "ns",
    "ps_to_bytes",
    "ps_to_ns",
    "us",
    "Event",
    "Priority",
    "Simulator",
    "RngStreams",
    "stream",
    "Counter",
    "Histogram",
    "OnlineStats",
    "NULL_TRACER",
    "TraceEvent",
    "Tracer",
]

"""Switch fabric substrate: configurations, register file, crossbar, timing."""

from .config import ConfigMatrix
from .crossbar import Crossbar
from .fattree import FatTree
from .multistage import BenesNetwork, OmegaNetwork, is_power_of_two
from .registers import ConfigRegisterFile
from .timing import FabricTechnology, FabricTiming

__all__ = [
    "ConfigMatrix",
    "Crossbar",
    "FatTree",
    "BenesNetwork",
    "OmegaNetwork",
    "is_power_of_two",
    "ConfigRegisterFile",
    "FabricTechnology",
    "FabricTiming",
]

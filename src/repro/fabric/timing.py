"""Fabric timing models.

Section 5 of the paper distinguishes two physical crossbar technologies:

* the **digital** crossbar used by the wormhole baseline — signals are
  converted to the digital domain at the switch, adding a 10 ns propagation
  delay per hop (plus SerDes at the switch boundary, which the paper folds
  into that figure);
* the **LVDS / optical** crossbar used by the circuit-switched and TDM
  systems — signals stay in the differential/optical domain, the switch
  adds "< 2 ns (equivalent to a 1 foot cable)" which the paper neglects,
  and no SerDes is required at the switch.

:class:`FabricTiming` captures one technology; the concrete values come
from :class:`repro.params.SystemParams`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from ..params import SystemParams

__all__ = ["FabricTechnology", "FabricTiming"]


class FabricTechnology(Enum):
    """Physical realisation of the crossbar."""

    DIGITAL = "digital"
    LVDS = "lvds"
    OPTICAL = "optical"


@dataclass(slots=True, frozen=True)
class FabricTiming:
    """Per-technology latency contributions of the switch fabric.

    Attributes
    ----------
    switch_hop_ps:
        Propagation delay through the crossbar itself.
    needs_switch_serdes:
        Whether signals are converted serial<->parallel *at the switch*
        (true only for the digital crossbar; the paper notes the LVDS
        switch avoids this conversion entirely).
    """

    technology: FabricTechnology
    switch_hop_ps: int
    needs_switch_serdes: bool

    def __post_init__(self) -> None:
        if self.switch_hop_ps < 0:
            raise ConfigurationError("switch hop delay must be non-negative")

    @classmethod
    def digital(cls, params: SystemParams) -> "FabricTiming":
        """The wormhole baseline's digital crossbar (10 ns per hop).

        The paper quotes a flat 10 ns propagation delay through the digital
        switch and does not charge a separate SerDes there, so
        ``needs_switch_serdes`` is False; the flag exists for experiments
        that want to model the conversion explicitly.
        """
        return cls(FabricTechnology.DIGITAL, params.digital_switch_ps, False)

    @classmethod
    def lvds(cls, params: SystemParams) -> "FabricTiming":
        """The TDM/circuit system's LVDS crossbar (delay neglected)."""
        return cls(FabricTechnology.LVDS, params.lvds_switch_ps, False)

    @classmethod
    def optical(cls, params: SystemParams) -> "FabricTiming":
        """All-optical fabric — same timing model as LVDS in the paper."""
        return cls(FabricTechnology.OPTICAL, params.lvds_switch_ps, False)

    def end_to_end_ps(self, params: SystemParams) -> int:
        """Latency of one byte from source NIC to destination NIC.

        NIC + SerDes + cable + switch (+ switch SerDes for digital fabrics)
        + cable + SerDes + NIC.
        """
        serdes_at_switch = 2 * params.serdes_ps if self.needs_switch_serdes else 0
        return (
            params.nic_delay_ps
            + params.serdes_ps
            + params.cable_ps
            + serdes_at_switch
            + self.switch_hop_ps
            + params.cable_ps
            + params.serdes_ps
            + params.nic_delay_ps
        )

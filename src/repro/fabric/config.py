"""Crossbar configuration matrices.

Section 4 of the paper: *"a configuration C may be represented by a Boolean
matrix B, where B[u,v] is 1 when input u is connected to output v ... for
the case of a crossbar fabric, the only constraints on B are that there is
at most one non-zero entry in each row and at most one non-zero entry in
each column"* — i.e. a configuration is a partial permutation matrix.

:class:`ConfigMatrix` enforces that invariant on every mutation, in O(1)
per operation, using cached row/column occupancy vectors.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..errors import ConfigurationError, InvariantError
from ..types import Connection

__all__ = ["ConfigMatrix"]


class ConfigMatrix:
    """A partial permutation matrix over ``n`` ports.

    The underlying storage is a dense boolean ndarray ``b`` plus two int
    vectors: ``row_to_col[u]`` is the output connected to input ``u`` (or
    -1), and ``col_to_row[v]`` is the input connected to output ``v`` (or
    -1).  The vectors are the authoritative state; the dense matrix is kept
    in sync for vectorised scheduler maths.
    """

    __slots__ = ("n", "b", "row_to_col", "col_to_row", "_size")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"port count must be positive, got {n}")
        self.n = n
        self.b = np.zeros((n, n), dtype=bool)
        self.row_to_col = np.full(n, -1, dtype=np.int32)
        self.col_to_row = np.full(n, -1, dtype=np.int32)
        self._size = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_pairs(cls, n: int, pairs: Iterable[tuple[int, int]]) -> "ConfigMatrix":
        """Build a configuration from (src, dst) pairs; conflicts raise."""
        cfg = cls(n)
        for u, v in pairs:
            cfg.establish(u, v)
        return cfg

    @classmethod
    def from_permutation(cls, perm: Iterable[int]) -> "ConfigMatrix":
        """Build from a full or partial permutation vector.

        ``perm[u] = v`` connects input ``u`` to output ``v``; ``perm[u] = -1``
        leaves input ``u`` unconnected.
        """
        perm = list(perm)
        cfg = cls(len(perm))
        for u, v in enumerate(perm):
            if v >= 0:
                cfg.establish(u, v)
        return cfg

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "ConfigMatrix":
        """Build from a dense 0/1 matrix, validating the crossbar invariant."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError("configuration matrix must be square")
        cfg = cls(matrix.shape[0])
        for u, v in zip(*np.nonzero(matrix)):
            cfg.establish(int(u), int(v))
        return cfg

    # -- mutation -----------------------------------------------------------

    def establish(self, u: int, v: int) -> None:
        """Connect input ``u`` to output ``v``; raises if either port is busy."""
        self._check_ports(u, v)
        if self.row_to_col[u] >= 0:
            raise ConfigurationError(
                f"input {u} already connected to output {self.row_to_col[u]}"
            )
        if self.col_to_row[v] >= 0:
            raise ConfigurationError(
                f"output {v} already connected to input {self.col_to_row[v]}"
            )
        self.b[u, v] = True
        self.row_to_col[u] = v
        self.col_to_row[v] = u
        self._size += 1

    def release(self, u: int, v: int) -> None:
        """Remove the connection (u, v); raises if it is not established."""
        self._check_ports(u, v)
        if not self.b[u, v]:
            raise ConfigurationError(f"connection ({u}, {v}) is not established")
        self.b[u, v] = False
        self.row_to_col[u] = -1
        self.col_to_row[v] = -1
        self._size -= 1

    def toggle(self, u: int, v: int) -> bool:
        """Flip the state of (u, v) — the scheduler's ``T`` signal.

        Returns True if the connection is established after the toggle.
        """
        if self.b[u, v]:
            self.release(u, v)
            return False
        self.establish(u, v)
        return True

    def clear(self) -> None:
        """Remove every connection (the scheduler's flush directive)."""
        self.b[:] = False
        self.row_to_col[:] = -1
        self.col_to_row[:] = -1
        self._size = 0

    def load(self, other: "ConfigMatrix") -> None:
        """Overwrite this configuration with a copy of ``other``."""
        if other.n != self.n:
            raise ConfigurationError("cannot load a configuration of different size")
        np.copyto(self.b, other.b)
        np.copyto(self.row_to_col, other.row_to_col)
        np.copyto(self.col_to_row, other.col_to_row)
        self._size = other._size

    # -- queries ------------------------------------------------------------

    def __contains__(self, conn: tuple[int, int]) -> bool:
        u, v = conn
        return bool(self.b[u, v])

    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        """True if no connection is established (TDM counter skips these)."""
        return self._size == 0

    def connections(self) -> Iterator[Connection]:
        """Iterate established connections in input-port order."""
        for u in range(self.n):
            v = int(self.row_to_col[u])
            if v >= 0:
                yield Connection(u, v)

    def output_of(self, u: int) -> int | None:
        """The output port input ``u`` is connected to, or None."""
        v = int(self.row_to_col[u])
        return v if v >= 0 else None

    def input_of(self, v: int) -> int | None:
        """The input port connected to output ``v``, or None."""
        u = int(self.col_to_row[v])
        return u if u >= 0 else None

    def grants(self) -> np.ndarray:
        """The grant matrix G (a copy of B): row u is the grant signal G_u."""
        return self.b.copy()

    def input_busy(self) -> np.ndarray:
        """Boolean vector AI: AI[u] == input u occupied in this slot."""
        return self.row_to_col >= 0

    def output_busy(self) -> np.ndarray:
        """Boolean vector AO: AO[v] == output v occupied in this slot."""
        return self.col_to_row >= 0

    def copy(self) -> "ConfigMatrix":
        out = ConfigMatrix(self.n)
        out.load(self)
        return out

    def check_invariants(self) -> None:
        """Verify dense matrix and occupancy vectors agree (test hook)."""
        rows = self.b.sum(axis=1)
        cols = self.b.sum(axis=0)
        if rows.max(initial=0) > 1 or cols.max(initial=0) > 1:
            raise InvariantError("configuration violates the crossbar constraint")
        for u in range(self.n):
            v = int(self.row_to_col[u])
            if v >= 0:
                if not self.b[u, v] or self.col_to_row[v] != u:
                    raise InvariantError(f"occupancy desync at input {u}")
            elif rows[u] != 0:
                raise InvariantError(f"occupancy desync at input {u}")
        if self._size != int(self.b.sum()):
            raise InvariantError("size counter desync")

    def _check_ports(self, u: int, v: int) -> None:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ConfigurationError(
                f"ports ({u}, {v}) out of range for {self.n}-port fabric"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigMatrix):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self.b, other.b))

    def __hash__(self) -> int:  # pragma: no cover - configs are mutable
        raise TypeError("ConfigMatrix is mutable and unhashable")

    def __repr__(self) -> str:
        conns = ", ".join(f"{u}->{v}" for u, v in self.connections())
        return f"ConfigMatrix(n={self.n}, [{conns}])"

"""The configuration register file.

Figure 2 of the paper: the scheduler maintains ``K`` configuration matrices
``B(0) .. B(K-1)``, one per TDM slot, plus the aggregate matrix
``B* = B(0) | ... | B(K-1)`` of *all* connections currently established in
any slot.  ``B*`` feeds the pre-scheduling logic (Table 1).

With the multi-slot extension (Section 4, extension 2) a connection may be
present in more than one slot, so ``B*`` is maintained from an integer
*count* matrix rather than recomputed by OR-ing K matrices on every pass.

Two fault conditions of :mod:`repro.faults` live at this layer:

* a **stuck** slot no longer accepts writes — establishes, releases, loads
  and clears silently have no effect, exactly as stuck register cells
  would behave in hardware (the frozen configuration keeps being applied
  at its TDM turn until the fault is detected);
* a **quarantined** slot has been taken out of service by the management
  plane after detection: its contribution is masked out of ``B*``, the TDM
  counter and the dynamic scheduler skip it, and loads into it are errors.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigurationError, InvariantError, SchedulingError
from ..types import Connection
from .config import ConfigMatrix

__all__ = ["ConfigRegisterFile"]


class ConfigRegisterFile:
    """``K`` slot configurations plus incrementally maintained ``B*``."""

    __slots__ = ("n", "k", "slots", "_counts", "pinned", "stuck", "quarantined")

    def __init__(self, n: int, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"multiplexing degree must be >= 1, got {k}")
        self.n = n
        self.k = k
        self.slots: list[ConfigMatrix] = [ConfigMatrix(n) for _ in range(k)]
        self._counts = np.zeros((n, n), dtype=np.int16)
        #: slots the dynamic scheduler must not touch (preloaded patterns)
        self.pinned: set[int] = set()
        #: slots whose physical cells no longer accept writes (fault model)
        self.stuck: set[int] = set()
        #: slots taken out of service after fault detection
        self.quarantined: set[int] = set()

    # -- slot access ----------------------------------------------------------

    def __getitem__(self, slot: int) -> ConfigMatrix:
        self._check_slot(slot)
        return self.slots[slot]

    def __iter__(self) -> Iterator[ConfigMatrix]:
        return iter(self.slots)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.k:
            raise SchedulingError(
                f"slot {slot} out of range for K={self.k} "
                f"(valid slots are 0..{self.k - 1})"
            )

    # -- mutation (keeps B* in sync) -------------------------------------------

    def establish(self, slot: int, u: int, v: int) -> None:
        """Establish (u, v) in ``slot`` and bump its presence count."""
        self._check_slot(slot)
        if slot in self.quarantined:
            raise SchedulingError(
                f"cannot establish ({u} -> {v}) in quarantined slot {slot}"
            )
        if slot in self.stuck:
            return  # stuck cells ignore writes
        self.slots[slot].establish(u, v)
        self._counts[u, v] += 1

    def release(self, slot: int, u: int, v: int) -> None:
        """Release (u, v) from ``slot`` and decrement its presence count."""
        self._check_slot(slot)
        if slot in self.stuck:
            return  # stuck cells ignore writes
        self.slots[slot].release(u, v)
        self._counts[u, v] -= 1
        if self._counts[u, v] < 0:  # pragma: no cover - guarded by release above
            raise InvariantError(
                f"B* count went negative for ({u} -> {v}) in slot {slot}"
            )

    def toggle(self, slot: int, u: int, v: int) -> bool:
        """Apply a scheduler T signal to (slot, u, v); True if now established.

        On a stuck slot the toggle silently has no effect (the write is
        lost in the faulty hardware) and the current state is returned.
        """
        self._check_slot(slot)
        if slot in self.stuck:
            return bool(self.slots[slot].b[u, v])
        if self.slots[slot].b[u, v]:
            self.release(slot, u, v)
            return False
        self.establish(slot, u, v)
        return True

    def load(self, slot: int, config: ConfigMatrix, *, pin: bool = False) -> None:
        """Overwrite ``slot`` with ``config`` (a preload directive).

        ``pin=True`` marks the slot as owned by compiled communication so
        the dynamic scheduler will neither add to nor release from it.
        """
        self._check_slot(slot)
        if slot in self.quarantined:
            raise SchedulingError(
                f"cannot load a configuration into quarantined slot {slot}"
            )
        if slot in self.stuck:
            return  # the directive is lost in the faulty hardware
        old = self.slots[slot]
        for u, v in old.connections():
            self._counts[u, v] -= 1
        old.load(config)
        for u, v in old.connections():
            self._counts[u, v] += 1
        if pin:
            self.pinned.add(slot)
        else:
            self.pinned.discard(slot)

    def clear_slot(self, slot: int) -> None:
        """Empty one slot (and unpin it)."""
        self._check_slot(slot)
        if slot in self.quarantined:
            return  # already out of service; its counts are masked out
        if slot in self.stuck:
            return  # the directive is lost in the faulty hardware
        for u, v in self.slots[slot].connections():
            self._counts[u, v] -= 1
        self.slots[slot].clear()
        self.pinned.discard(slot)

    def flush(self) -> None:
        """Empty every slot — the compiler's flush-all directive."""
        for s in range(self.k):
            if s not in self.quarantined:
                self.clear_slot(s)

    # -- fault management (repro.faults) ----------------------------------------

    def set_stuck(self, slot: int, stuck: bool = True) -> None:
        """Mark a slot's register cells as (no longer) accepting writes."""
        self._check_slot(slot)
        if stuck:
            self.stuck.add(slot)
        else:
            self.stuck.discard(slot)

    def quarantine(self, slot: int) -> list[Connection]:
        """Take ``slot`` out of service after a detected fault.

        Its connections are masked out of ``B*`` (the physical cells may
        still be frozen with garbage, but the TDM counter will never apply
        the slot again), it stops being pinned or dynamically schedulable,
        and loads into it raise.  Returns the connections that were
        established in the slot so the caller can trigger re-establishment
        in healthy slots.
        """
        self._check_slot(slot)
        if slot in self.quarantined:
            return []
        evicted = list(self.slots[slot].connections())
        for u, v in evicted:
            self._counts[u, v] -= 1
        self.quarantined.add(slot)
        self.pinned.discard(slot)
        return evicted

    def unpin(self, slot: int) -> None:
        """Hand a pinned slot back to the dynamic scheduler (keeps contents)."""
        self._check_slot(slot)
        self.pinned.discard(slot)

    # -- queries ----------------------------------------------------------------

    @property
    def b_star(self) -> np.ndarray:
        """Boolean matrix of connections established in *any* in-service slot."""
        return self._counts > 0

    def presence_counts(self) -> np.ndarray:
        """How many slots each connection occupies (multi-slot extension)."""
        return self._counts.copy()

    def slot_of(self, u: int, v: int) -> int | None:
        """The lowest in-service slot holding (u, v), or None."""
        for s, cfg in enumerate(self.slots):
            if s not in self.quarantined and cfg.b[u, v]:
                return s
        return None

    def slots_of(self, u: int, v: int) -> list[int]:
        """All in-service slots holding (u, v)."""
        return [
            s
            for s, cfg in enumerate(self.slots)
            if s not in self.quarantined and cfg.b[u, v]
        ]

    def active_slots(self) -> list[int]:
        """Indices of non-empty in-service slots (TDM counter input)."""
        return [
            s
            for s, cfg in enumerate(self.slots)
            if s not in self.quarantined and not cfg.is_empty
        ]

    def dynamic_slots(self) -> list[int]:
        """Slots the dynamic scheduler is allowed to modify."""
        return [
            s
            for s in range(self.k)
            if s not in self.pinned and s not in self.quarantined
        ]

    def all_connections(self) -> set[Connection]:
        """The set of distinct connections established in in-service slots."""
        out: set[Connection] = set()
        for s, cfg in enumerate(self.slots):
            if s not in self.quarantined:
                out.update(cfg.connections())
        return out

    def check_invariants(self) -> None:
        """Recompute B* from scratch and compare with the counts (test hook).

        Quarantined slots are excluded: their physical contents are defined
        to be out of service, so they no longer contribute to ``B*``.
        """
        fresh = np.zeros((self.n, self.n), dtype=np.int16)
        for s, cfg in enumerate(self.slots):
            cfg.check_invariants()
            if s not in self.quarantined:
                fresh += cfg.b
        if not np.array_equal(fresh, self._counts):
            bad = np.argwhere(fresh != self._counts)
            u, v = (int(bad[0][0]), int(bad[0][1])) if len(bad) else (-1, -1)
            raise InvariantError(
                f"B* count matrix out of sync with slot matrices at "
                f"connection ({u} -> {v}): counted {int(self._counts[u, v])}, "
                f"recomputed {int(fresh[u, v])}"
            )

    def __repr__(self) -> str:
        occ = [len(cfg) for cfg in self.slots]
        return f"ConfigRegisterFile(n={self.n}, k={self.k}, occupancy={occ})"

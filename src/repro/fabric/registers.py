"""The configuration register file.

Figure 2 of the paper: the scheduler maintains ``K`` configuration matrices
``B(0) .. B(K-1)``, one per TDM slot, plus the aggregate matrix
``B* = B(0) | ... | B(K-1)`` of *all* connections currently established in
any slot.  ``B*`` feeds the pre-scheduling logic (Table 1).

With the multi-slot extension (Section 4, extension 2) a connection may be
present in more than one slot, so ``B*`` is maintained from an integer
*count* matrix rather than recomputed by OR-ing K matrices on every pass.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigurationError, InvariantError, SchedulingError
from ..types import Connection
from .config import ConfigMatrix

__all__ = ["ConfigRegisterFile"]


class ConfigRegisterFile:
    """``K`` slot configurations plus incrementally maintained ``B*``."""

    __slots__ = ("n", "k", "slots", "_counts", "pinned")

    def __init__(self, n: int, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"multiplexing degree must be >= 1, got {k}")
        self.n = n
        self.k = k
        self.slots: list[ConfigMatrix] = [ConfigMatrix(n) for _ in range(k)]
        self._counts = np.zeros((n, n), dtype=np.int16)
        #: slots the dynamic scheduler must not touch (preloaded patterns)
        self.pinned: set[int] = set()

    # -- slot access ----------------------------------------------------------

    def __getitem__(self, slot: int) -> ConfigMatrix:
        self._check_slot(slot)
        return self.slots[slot]

    def __iter__(self) -> Iterator[ConfigMatrix]:
        return iter(self.slots)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.k:
            raise SchedulingError(f"slot {slot} out of range for K={self.k}")

    # -- mutation (keeps B* in sync) -------------------------------------------

    def establish(self, slot: int, u: int, v: int) -> None:
        """Establish (u, v) in ``slot`` and bump its presence count."""
        self._check_slot(slot)
        self.slots[slot].establish(u, v)
        self._counts[u, v] += 1

    def release(self, slot: int, u: int, v: int) -> None:
        """Release (u, v) from ``slot`` and decrement its presence count."""
        self._check_slot(slot)
        self.slots[slot].release(u, v)
        self._counts[u, v] -= 1
        if self._counts[u, v] < 0:  # pragma: no cover - guarded by release above
            raise InvariantError("B* count went negative")

    def toggle(self, slot: int, u: int, v: int) -> bool:
        """Apply a scheduler T signal to (slot, u, v); True if now established."""
        self._check_slot(slot)
        if self.slots[slot].b[u, v]:
            self.release(slot, u, v)
            return False
        self.establish(slot, u, v)
        return True

    def load(self, slot: int, config: ConfigMatrix, *, pin: bool = False) -> None:
        """Overwrite ``slot`` with ``config`` (a preload directive).

        ``pin=True`` marks the slot as owned by compiled communication so
        the dynamic scheduler will neither add to nor release from it.
        """
        self._check_slot(slot)
        old = self.slots[slot]
        for u, v in old.connections():
            self._counts[u, v] -= 1
        old.load(config)
        for u, v in old.connections():
            self._counts[u, v] += 1
        if pin:
            self.pinned.add(slot)
        else:
            self.pinned.discard(slot)

    def clear_slot(self, slot: int) -> None:
        """Empty one slot (and unpin it)."""
        self._check_slot(slot)
        for u, v in self.slots[slot].connections():
            self._counts[u, v] -= 1
        self.slots[slot].clear()
        self.pinned.discard(slot)

    def flush(self) -> None:
        """Empty every slot — the compiler's flush-all directive."""
        for s in range(self.k):
            self.clear_slot(s)

    # -- queries ----------------------------------------------------------------

    @property
    def b_star(self) -> np.ndarray:
        """Boolean matrix of connections established in *any* slot."""
        return self._counts > 0

    def presence_counts(self) -> np.ndarray:
        """How many slots each connection occupies (multi-slot extension)."""
        return self._counts.copy()

    def slot_of(self, u: int, v: int) -> int | None:
        """The lowest slot holding (u, v), or None."""
        for s, cfg in enumerate(self.slots):
            if cfg.b[u, v]:
                return s
        return None

    def slots_of(self, u: int, v: int) -> list[int]:
        """All slots holding (u, v)."""
        return [s for s, cfg in enumerate(self.slots) if cfg.b[u, v]]

    def active_slots(self) -> list[int]:
        """Indices of non-empty slots, in slot order (TDM counter input)."""
        return [s for s, cfg in enumerate(self.slots) if not cfg.is_empty]

    def dynamic_slots(self) -> list[int]:
        """Slots the dynamic scheduler is allowed to modify."""
        return [s for s in range(self.k) if s not in self.pinned]

    def all_connections(self) -> set[Connection]:
        """The set of distinct connections established anywhere."""
        out: set[Connection] = set()
        for cfg in self.slots:
            out.update(cfg.connections())
        return out

    def check_invariants(self) -> None:
        """Recompute B* from scratch and compare with the counts (test hook)."""
        fresh = np.zeros((self.n, self.n), dtype=np.int16)
        for cfg in self.slots:
            cfg.check_invariants()
            fresh += cfg.b
        if not np.array_equal(fresh, self._counts):
            raise InvariantError("B* count matrix out of sync with slot matrices")

    def __repr__(self) -> str:
        occ = [len(cfg) for cfg in self.slots]
        return f"ConfigRegisterFile(n={self.n}, k={self.k}, occupancy={occ})"

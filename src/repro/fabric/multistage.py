"""Multistage fabric extension.

The paper's detailed design targets a crossbar, but Section 4 notes that
*"more complicated constraints may be derived for fabrics that have limited
permutation capabilities (e.g. multistage networks)"* and the conclusion
lists extending the design to other fabrics as ongoing work.  This module
implements the two canonical cases:

* :class:`OmegaNetwork` — a blocking, self-routing shuffle-exchange network:
  a configuration is realisable iff the destination-tag routes of all its
  connections are link-disjoint.  This yields the *constraint predicate*
  that would replace the simple one-per-row/column crossbar rule in the
  pre-scheduling logic.
* :class:`BenesNetwork` — a rearrangeably non-blocking network: *every*
  partial permutation is realisable, and the classic looping algorithm
  computes explicit 2x2 switch settings.

Both operate on ``N = 2^m`` ports.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .config import ConfigMatrix

__all__ = ["OmegaNetwork", "BenesNetwork", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def _check_size(n: int) -> int:
    if not is_power_of_two(n) or n < 2:
        raise ConfigurationError(f"multistage fabrics need N = 2^m >= 2, got {n}")
    return int(np.log2(n))


class OmegaNetwork:
    """An N-port Omega (shuffle-exchange) network of 2x2 switches.

    The network has ``m = log2 N`` stages.  Between stages the wires apply
    a perfect shuffle (rotate the port address left by one bit); each stage
    of N/2 switches can pass straight or crossed.  Routing is by
    destination tag: at stage ``i`` the switch output is selected by bit
    ``m-1-i`` of the destination.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.m = _check_size(n)

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The sequence of (stage, switch-input-line) resources used.

        Returns ``m + 1`` link identifiers: the line entering each stage and
        the final output line.  Two connections conflict iff they share any
        identifier at the same stage.
        """
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise ConfigurationError(f"ports ({src}, {dst}) out of range")
        links: list[tuple[int, int]] = []
        addr = src
        for stage in range(self.m):
            # perfect shuffle: rotate left
            addr = ((addr << 1) | (addr >> (self.m - 1))) & (self.n - 1)
            # the switch replaces the low bit with the routing bit
            bit = (dst >> (self.m - 1 - stage)) & 1
            addr = (addr & ~1) | bit
            links.append((stage, addr))
        return links

    def is_realizable(self, config: ConfigMatrix) -> bool:
        """Can all connections of ``config`` coexist without link conflicts?"""
        return not self.conflicts(config)

    def conflicts(self, config: ConfigMatrix) -> list[tuple[int, int]]:
        """Stage-link resources demanded by more than one connection."""
        seen: dict[tuple[int, int], int] = {}
        clashes: set[tuple[int, int]] = set()
        for u, v in config.connections():
            for link in self.route(u, v):
                if link in seen and seen[link] != u:
                    clashes.add(link)
                seen[link] = u
        return sorted(clashes)

    def partition(self, config: ConfigMatrix) -> list[ConfigMatrix]:
        """Greedy split of a configuration into Omega-realisable passes.

        This is the multistage analogue of raising the multiplexing degree:
        each returned configuration is conflict-free on this network.
        """
        remaining = list(config.connections())
        passes: list[ConfigMatrix] = []
        while remaining:
            used: set[tuple[int, int]] = set()
            taken = ConfigMatrix(self.n)
            leftover = []
            for u, v in remaining:
                links = set(self.route(u, v))
                if links & used:
                    leftover.append((u, v))
                else:
                    used |= links
                    taken.establish(u, v)
            passes.append(taken)
            remaining = leftover
        return passes


class BenesNetwork:
    """An N-port Benes network (two back-to-back butterflies sharing a stage).

    Rearrangeably non-blocking: any (partial) permutation can be realised.
    :meth:`route_permutation` runs the recursive looping algorithm and
    returns the settings of every 2x2 switch as nested stage lists.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.m = _check_size(n)
        #: number of switch stages: 2*m - 1
        self.n_stages = 2 * self.m - 1

    def is_realizable(self, config: ConfigMatrix) -> bool:
        """Always true for a valid partial permutation (by construction)."""
        config.check_invariants()
        return True

    def route_permutation(self, perm: list[int]) -> list[list[bool]]:
        """Switch settings (True = crossed) realising ``perm``.

        ``perm`` must be a *full* permutation of ``range(n)``; complete a
        partial one with :meth:`complete_partial` first.
        """
        if sorted(perm) != list(range(self.n)):
            raise ConfigurationError("route_permutation needs a full permutation")
        stages: list[list[bool]] = [
            [False] * (self.n // 2) for _ in range(self.n_stages)
        ]
        self._route(perm, 0, 0, stages)
        return stages

    @staticmethod
    def complete_partial(row_to_col: np.ndarray) -> list[int]:
        """Extend a partial permutation (-1 = unset) to a full one."""
        n = len(row_to_col)
        used = {int(v) for v in row_to_col if v >= 0}
        free = iter(v for v in range(n) if v not in used)
        return [int(v) if v >= 0 else next(free) for v in row_to_col]

    # -- recursive looping algorithm ------------------------------------------

    def _route(
        self,
        perm: list[int],
        stage: int,
        offset: int,
        stages: list[list[bool]],
    ) -> None:
        n = len(perm)
        if n == 2:
            # base case: this position holds the single centre-column switch
            stages[stage][offset] = perm[0] == 1
            return
        half = n // 2
        inv = [0] * n
        for i, p in enumerate(perm):
            inv[p] = i

        # 2-colour the inputs with subnet 0 (upper) / 1 (lower) such that the
        # two inputs of every input switch differ and the two outputs of
        # every output switch differ.  The constraint graph is a disjoint
        # union of even cycles, so alternating colours along each cycle
        # always succeeds (this is the classic "looping" argument).
        color = [-1] * n
        for start in range(n):
            if color[start] != -1:
                continue
            i, c = start, 0
            while color[i] == -1:
                color[i] = c
                color[i ^ 1] = 1 - c
                # the switch-mate's output lands in subnet 1-c; the other
                # output of that *output* switch must come from subnet c
                i = inv[perm[i ^ 1] ^ 1]

        upper = [-1] * half
        lower = [-1] * half
        for i, p in enumerate(perm):
            if color[i] == 0:
                upper[i // 2] = p // 2
            else:
                lower[i // 2] = p // 2

        first = stage
        last = len(stages) - 1 - stage
        for s in range(n // 2):
            # straight routing sends the even input line to the upper subnet
            stages[first][offset + s] = color[2 * s] == 1
            stages[last][offset + s] = color[inv[2 * s]] == 1
        self._route(upper, stage + 1, offset, stages)
        self._route(lower, stage + 1, offset + half // 2, stages)

    def verify(self, perm: list[int], stages: list[list[bool]]) -> bool:
        """Simulate the switch settings and check they realise ``perm``."""
        for src in range(self.n):
            if self._trace(src, stages) != perm[src]:
                return False
        return True

    def _trace(self, src: int, stages: list[list[bool]]) -> int:
        """Follow one input through the switch settings to its output."""
        return self._trace_rec(src, stages, 0, 0, self.n)

    def _trace_rec(
        self, pos: int, stages: list[list[bool]], stage: int, offset: int, n: int
    ) -> int:
        if n == 2:
            crossed = stages[stage][offset]
            return pos ^ 1 if crossed else pos
        half = n // 2
        first = stage
        last = len(stages) - 1 - stage
        sw = pos // 2
        crossed = stages[first][offset + sw]
        line = pos % 2
        if crossed:
            line ^= 1
        # line 0 -> upper subnet, line 1 -> lower subnet, at position sw
        if line == 0:
            sub_out = self._trace_rec(sw, stages, stage + 1, offset, half)
            out_sw, out_line = sub_out, 0
        else:
            sub_out = self._trace_rec(
                sw, stages, stage + 1, offset + half // 2, half
            )
            out_sw, out_line = sub_out, 1
        out_crossed = stages[last][offset + out_sw]
        if out_crossed:
            out_line ^= 1
        return out_sw * 2 + out_line

"""Fat-tree fabric constraints.

Section 4 of the paper lists *"a fat tree organization"* among the fabrics
the switching system could use and notes that such fabrics have
*"multi-paths from inputs to outputs"*, which changes the constraint a
single configuration must satisfy: instead of the crossbar's
one-connection-per-port rule, a configuration is realisable iff no tree
edge is asked to carry more connections than its **capacity** (the number
of parallel links at that level — the "fatness").

:class:`FatTree` models a binary fat-tree over ``N = 2^m`` leaves.  The
edge above a subtree of size ``s`` has capacity ``ceil(s / taper)``:
``taper=1`` is the classic full-bisection fat-tree (every permutation
realisable), larger tapers thin the upper levels the way cost-reduced
installations do.  The class provides the realisability predicate the
pre-scheduling logic would use, the per-edge load analysis, a lower bound
on the multiplexing degree a connection set needs, and a greedy partition
into realisable passes (the fat-tree analogue of raising the TDM degree).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..types import Connection
from .config import ConfigMatrix
from .multistage import is_power_of_two

__all__ = ["FatTree"]


class FatTree:
    """A binary fat-tree over ``n = 2^m`` leaves with tapered capacities."""

    def __init__(self, n: int, taper: int = 1) -> None:
        if not is_power_of_two(n) or n < 2:
            raise ConfigurationError(f"fat-tree needs N = 2^m >= 2 leaves, got {n}")
        if taper < 1:
            raise ConfigurationError("taper must be >= 1")
        self.n = n
        self.m = int(np.log2(n))
        self.taper = taper

    # -- structure ----------------------------------------------------------------

    def subtree_of(self, leaf: int, level: int) -> int:
        """Index of the size-2^level subtree containing ``leaf``."""
        if not 0 <= leaf < self.n:
            raise ConfigurationError(f"leaf {leaf} out of range")
        if not 1 <= level <= self.m:
            raise ConfigurationError(f"level {level} out of range")
        return leaf >> level

    def edge_capacity(self, level: int) -> int:
        """Parallel links on the edge above a size-2^level subtree.

        The root has no upward edge, so ``level`` ranges over
        ``1 .. m-1``; a full-bisection tree (taper 1) gives ``2^level``.
        """
        if not 1 <= level < self.m:
            raise ConfigurationError(f"no upward edge at level {level}")
        return max(1, (1 << level) // self.taper)

    def crossing_level(self, u: int, v: int) -> int:
        """Size exponent of the smallest subtree containing both endpoints.

        A connection's route climbs to this level and back down; it loads
        the upward edges of every strictly smaller subtree on both sides.
        A self-connection (a loopback at the leaf) crosses nothing and
        returns 0.
        """
        return (u ^ v).bit_length()

    # -- load analysis ----------------------------------------------------------------

    def edge_loads(self, conns) -> dict[tuple[int, int, str], int]:
        """Connections on each (level, subtree, direction) link.

        Links are full duplex: a connection loads the **up** direction of
        the edges on its source's side of the tree and the **down**
        direction on its destination's side.
        """
        loads: dict[tuple[int, int, str], int] = {}
        for u, v in conns:
            for key in self._route_links(u, v):
                loads[key] = loads.get(key, 0) + 1
        return loads

    def _route_links(self, u: int, v: int) -> list[tuple[int, int, str]]:
        top = self.crossing_level(u, v)
        keys: list[tuple[int, int, str]] = []
        for level in range(1, min(top, self.m)):
            keys.append((level, self.subtree_of(u, level), "up"))
            keys.append((level, self.subtree_of(v, level), "down"))
        return keys

    def is_realizable(self, config: ConfigMatrix) -> bool:
        """Can the configuration's connections coexist on this tree?"""
        return not self.overloaded_edges(config)

    def overloaded_edges(
        self, config: ConfigMatrix
    ) -> list[tuple[int, int, str]]:
        """Links whose load exceeds capacity, as (level, subtree, dir)."""
        loads = self.edge_loads(config.connections())
        return sorted(
            key
            for key, load in loads.items()
            if load > self.edge_capacity(key[0])
        )

    def required_degree(self, conns) -> int:
        """Lower bound on TDM passes: the most oversubscribed edge's ratio."""
        conns = list(conns)
        if not conns:
            return 0
        loads = self.edge_loads(conns)
        worst = 1
        for (level, _, _), load in loads.items():
            need = -(-load // self.edge_capacity(level))
            worst = max(worst, need)
        return worst

    # -- partitioning -------------------------------------------------------------------

    def partition(self, config: ConfigMatrix) -> list[ConfigMatrix]:
        """Greedy split into realisable passes (multiplexed fat-tree use)."""
        remaining = list(config.connections())
        passes: list[ConfigMatrix] = []
        while remaining:
            taken = ConfigMatrix(self.n)
            loads: dict[tuple[int, int, str], int] = {}
            leftover: list[Connection] = []
            for u, v in remaining:
                keys = self._route_links(u, v)
                fits_tree = all(
                    loads.get(k, 0) + 1 <= self.edge_capacity(k[0]) for k in keys
                )
                fits_ports = (
                    taken.output_of(u) is None and taken.input_of(v) is None
                )
                if fits_tree and fits_ports:
                    for k in keys:
                        loads[k] = loads.get(k, 0) + 1
                    taken.establish(u, v)
                else:
                    leftover.append(Connection(u, v))
            passes.append(taken)
            remaining = leftover
        return passes

"""The passive crossbar fabric.

The paper's fabric is deliberately dumb: *"a passive fabric with no
buffering or control capabilities"*.  Its entire behaviour is: whatever
configuration matrix is currently loaded into the configuration register
defines which input port is wired to which output port.

:class:`Crossbar` models exactly that — a currently-active
:class:`~repro.fabric.config.ConfigMatrix`, a reconfiguration latency, and
byte-path timing from its :class:`~repro.fabric.timing.FabricTiming`.  All
intelligence lives in the scheduler (:mod:`repro.sched`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..params import SystemParams
from .config import ConfigMatrix
from .timing import FabricTiming

__all__ = ["Crossbar"]


@dataclass
class Crossbar:
    """A passive N x N crossbar with a single active configuration register.

    The scheduler copies one of its K configuration matrices into
    :attr:`active` at each TDM slot boundary (``apply``); data then flows
    along the established pipes for the rest of the slot.
    """

    params: SystemParams
    timing: FabricTiming
    reconfig_ps: int = 0
    active: ConfigMatrix = field(init=False)
    reconfigurations: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.reconfig_ps < 0:
            raise ConfigurationError("reconfiguration time must be non-negative")
        self.active = ConfigMatrix(self.params.n_ports)

    @property
    def n(self) -> int:
        return self.params.n_ports

    def apply(self, config: ConfigMatrix) -> None:
        """Copy ``config`` into the active configuration register."""
        self.active.load(config)
        self.reconfigurations += 1

    def connected(self, u: int, v: int) -> bool:
        """Is input ``u`` currently wired to output ``v``?"""
        return (u, v) in self.active

    def path_latency_ps(self) -> int:
        """End-to-end byte latency through the fabric (NIC to NIC)."""
        return self.timing.end_to_end_ps(self.params)

    def transfer_window_ps(self) -> int:
        """Usable data time within one TDM slot (slot minus guard band)."""
        return self.params.slot_bytes * self.params.byte_ps

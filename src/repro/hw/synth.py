"""The Table-3 scheduler latency model and area estimates.

We do not have the paper's VHDL or an Altera toolchain, so Table 3 is
reproduced structurally: the scheduler's combinational latency is

    t(N) = fixed + ceil(log2 N) * t_or + (2N - 1) * t_cell

and the three technology constants are calibrated by non-negative least
squares against the paper's six published FPGA points.  The calibrated
Stratix library reproduces Table 3 to within ~2 ns at every size (see
EXPERIMENTS.md), and the ASIC numbers follow the paper's own conservative
rule: *"ASIC results tend to be 5 to 10 times better than the FPGA
results ... we conservatively chose the ASIC performance to be 80 ns for a
128x128 scheduler (about 5x better)."*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .gates import GateLibrary, or_tree_depth, sl_critical_cells

__all__ = [
    "PAPER_TABLE3_NS",
    "PAPER_SIZES",
    "ASIC_SPEEDUP",
    "calibrate_library",
    "stratix_library",
    "asic_library",
    "scheduler_latency_table",
    "SchedulerAreaModel",
]

#: Table 3 of the paper: FPGA scheduling-circuit latency in ns per size
PAPER_TABLE3_NS: dict[int, float] = {4: 34, 8: 49, 16: 76, 32: 120, 64: 213, 128: 385}
PAPER_SIZES: tuple[int, ...] = tuple(sorted(PAPER_TABLE3_NS))
#: the paper's conservative FPGA -> ASIC factor
ASIC_SPEEDUP = 5.0


def calibrate_library(
    points_ns: dict[int, float], name: str = "calibrated"
) -> GateLibrary:
    """Fit the structural model's three constants to measured latencies.

    Uses non-negative least squares (physical delays cannot be negative)
    on the design matrix ``[1, ceil(log2 N), 2N - 1]``.
    """
    if len(points_ns) < 3:
        raise ConfigurationError("need at least 3 points to calibrate 3 constants")
    sizes = sorted(points_ns)
    a = np.array(
        [[1.0, or_tree_depth(n), sl_critical_cells(n)] for n in sizes], dtype=float
    )
    y = np.array([points_ns[n] * 1000.0 for n in sizes], dtype=float)  # -> ps
    try:
        from scipy.optimize import nnls

        coef, _ = nnls(a, y)
    except ImportError:  # pragma: no cover - scipy is an optional extra
        coef, *_ = np.linalg.lstsq(a, y, rcond=None)
        coef = np.clip(coef, 0.0, None)
    return GateLibrary(
        name=name,
        fixed_ps=float(coef[0]),
        or_level_ps=float(coef[1]),
        sl_cell_ps=float(coef[2]),
    )


def stratix_library() -> GateLibrary:
    """The FPGA library calibrated against the paper's Table 3."""
    return calibrate_library(PAPER_TABLE3_NS, name="stratix-ep1s25")


def asic_library() -> GateLibrary:
    """The ASIC library: the paper's conservative 5x FPGA speed-up."""
    return stratix_library().scaled(ASIC_SPEEDUP, name="asic-5x")


def scheduler_latency_table(
    sizes: tuple[int, ...] = PAPER_SIZES,
) -> list[dict[str, float]]:
    """Regenerate Table 3 (plus the derived ASIC column).

    Returns one row per size with keys ``n``, ``fpga_ns``, ``paper_ns``,
    ``error_ns``, ``asic_ns``.
    """
    fpga = stratix_library()
    asic = asic_library()
    rows = []
    for n in sizes:
        fpga_ns = fpga.scheduler_latency_ps(n) / 1000.0
        paper_ns = PAPER_TABLE3_NS.get(n, float("nan"))
        rows.append(
            {
                "n": n,
                "fpga_ns": fpga_ns,
                "paper_ns": paper_ns,
                "error_ns": fpga_ns - paper_ns if n in PAPER_TABLE3_NS else float("nan"),
                "asic_ns": asic.scheduler_latency_ps(n) / 1000.0,
            }
        )
    return rows


@dataclass(slots=True, frozen=True)
class SchedulerAreaModel:
    """First-order resource model of the scheduler.

    Counts scale as the structure dictates: one SL module per matrix cell,
    ``K`` configuration bits per cell, one request latch per cell, N-input
    OR trees per port vector.  ``le_per_*`` express the logic-element cost
    of each primitive (defaults approximate a 4-LUT FPGA fabric).
    """

    le_per_sl_cell: float = 4.0
    le_per_config_bit: float = 1.0
    le_per_latch: float = 1.0
    le_per_or2: float = 1.0

    def logic_elements(self, n: int, k: int) -> float:
        """Estimated logic elements for an N x N scheduler with K slots."""
        if n < 1 or k < 1:
            raise ConfigurationError("need positive N and K")
        sl = n * n * self.le_per_sl_cell
        config = k * n * n * self.le_per_config_bit
        latches = n * n * self.le_per_latch
        # 2N OR trees of N inputs each: N-1 two-input ORs per tree
        or_trees = 2 * n * (n - 1) * self.le_per_or2
        return sl + config + latches + or_trees

    def utilization(self, n: int, k: int, device_les: int = 25_660) -> float:
        """Fraction of the paper's EP1S25 device (25,660 LEs) consumed."""
        return self.logic_elements(n, k) / device_les

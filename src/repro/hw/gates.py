"""Gate-level delay primitives for the scheduler latency model.

The paper synthesised the scheduler in VHDL onto an Altera Stratix FPGA
(EP1S25F1020C-5) and reported the end-to-end combinational latency for six
system sizes (Table 3).  We model the same structure:

* the pre-scheduling logic computes the port-availability vectors ``AO``
  and ``AI`` with N-input OR trees — depth ``ceil(log2 N)`` gate levels;
* the SL array's critical path is the availability wavefront: the worst
  signal traverses a full column and then a full row, ``2N - 1`` SL cells;
* a constant term covers register setup/clock-to-out, request multiplexing
  and routing overhead.

:func:`or_tree_depth` and :class:`GateLibrary` express those components;
:mod:`repro.hw.synth` calibrates the three per-component delays against the
published Table 3 values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["or_tree_depth", "sl_critical_cells", "GateLibrary"]


def or_tree_depth(n: int) -> int:
    """Gate levels of a balanced N-input OR tree (0 for a single input)."""
    if n < 1:
        raise ConfigurationError("OR tree needs at least one input")
    return math.ceil(math.log2(n)) if n > 1 else 0


def sl_critical_cells(n: int) -> int:
    """SL modules on the array's critical path: a column plus a row."""
    if n < 1:
        raise ConfigurationError("SL array needs at least one port")
    return 2 * n - 1


@dataclass(slots=True, frozen=True)
class GateLibrary:
    """Per-component propagation delays of one technology, in picoseconds.

    ``fixed_ps`` — registers, request muxing, I/O;
    ``or_level_ps`` — one level of the AO/AI OR trees;
    ``sl_cell_ps`` — one SL module (Table 2 logic plus its A/D forwarding).
    """

    name: str
    fixed_ps: float
    or_level_ps: float
    sl_cell_ps: float

    def __post_init__(self) -> None:
        for field_name in ("fixed_ps", "or_level_ps", "sl_cell_ps"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")

    def scheduler_latency_ps(self, n: int) -> float:
        """Combinational latency of one N x N scheduler pass."""
        return (
            self.fixed_ps
            + or_tree_depth(n) * self.or_level_ps
            + sl_critical_cells(n) * self.sl_cell_ps
        )

    def scaled(self, factor: float, name: str | None = None) -> "GateLibrary":
        """A technology ``factor``x faster (the paper's FPGA -> ASIC rule)."""
        if factor <= 0:
            raise ConfigurationError("scaling factor must be positive")
        return GateLibrary(
            name=name or f"{self.name}/{factor:g}x",
            fixed_ps=self.fixed_ps / factor,
            or_level_ps=self.or_level_ps / factor,
            sl_cell_ps=self.sl_cell_ps / factor,
        )

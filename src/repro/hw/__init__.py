"""Hardware model: gate delays, the Table-3 latency model, area estimates."""

from .gates import GateLibrary, or_tree_depth, sl_critical_cells
from .rtl import SLArrayNetlist, SLCellGates, sl_cell_logic
from .synth import (
    ASIC_SPEEDUP,
    PAPER_SIZES,
    PAPER_TABLE3_NS,
    SchedulerAreaModel,
    asic_library,
    calibrate_library,
    scheduler_latency_table,
    stratix_library,
)

__all__ = [
    "GateLibrary",
    "SLArrayNetlist",
    "SLCellGates",
    "sl_cell_logic",
    "or_tree_depth",
    "sl_critical_cells",
    "ASIC_SPEEDUP",
    "PAPER_SIZES",
    "PAPER_TABLE3_NS",
    "SchedulerAreaModel",
    "asic_library",
    "calibrate_library",
    "scheduler_latency_table",
    "stratix_library",
]

"""Gate-level model of the SL array — the paper's VHDL, in boolean algebra.

Figure 3 shows the SL module's signal ports (``L`` in, ``A``/``D``
availability threaded through, ``T`` out), and Table 2's action column
refers to the slot's configuration bit (``B(s)[u,v] 1 -> 0``): each module
also reads the **configuration register cell sitting next to it**.  The
cell reduces to two-level logic on four inputs:

    release   = L and B                    (A = D = 1 is implied: the
                                            cell's own connection is what
                                            holds both ports)
    establish = L and not B and not A and not D
    T         = release or establish
    A_out     = establish or (A and not release)
    D_out     = establish or (D and not release)

The ``B`` input is load-bearing: within one wavefront an *earlier*
establish can raise a later candidate's ``A`` and ``D`` to 1 even though
that candidate holds no connection — a cell deciding release from
``L·A·D`` alone would toggle a phantom connection into the configuration.
(The property test in ``tests/hw/test_rtl.py`` reproduces exactly that
scenario; it is how this module's first draft was falsified.)

:class:`SLCellGates` counts the cell's primitive gates; the totals feed
:class:`repro.hw.synth.SchedulerAreaModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["sl_cell_logic", "SLCellGates", "SLArrayNetlist"]


def sl_cell_logic(
    l: bool, b: bool, a: bool, d: bool
) -> tuple[bool, bool, bool]:
    """One SL module: Table 2 as combinational logic.

    Inputs: ``l`` (pre-scheduling change signal), ``b`` (the adjacent
    configuration register bit), ``a``/``d`` (availability signals).
    Returns ``(t, a_out, d_out)``.
    """
    release = l and b
    establish = l and (not b) and (not a) and (not d)
    t = release or establish
    a_out = establish or (a and not release)
    d_out = establish or (d and not release)
    return t, a_out, d_out


@dataclass(slots=True, frozen=True)
class SLCellGates:
    """Primitive-gate inventory of one SL module.

    ``release``: one 2-input AND; ``establish``: one 4-input AND plus
    three inverters; ``T``: one OR; each availability output: one AND,
    one OR, one inverter for the shared ``not release`` literal.
    """

    and4: int = 1
    and2: int = 3
    or2: int = 3
    inverters: int = 4

    @property
    def total_gates(self) -> int:
        return self.and4 + self.and2 + self.or2 + self.inverters

    def lut4_estimate(self) -> int:
        """4-input LUTs: t/a_out/d_out each depend on (l, b, a, d)."""
        return 3


class SLArrayNetlist:
    """The full N x N array evaluated as wired gate logic.

    Signals flow exactly as in the paper: ``A`` enters row ``a`` of each
    column (value ``AO``) and propagates upward; ``D`` enters column ``b``
    of each row (value ``AI``) and propagates rightward; neither wraps
    past its injection point.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError("netlist needs a positive port count")
        self.n = n

    def evaluate(
        self,
        l: np.ndarray,
        b_s: np.ndarray,
        ao: np.ndarray,
        ai: np.ndarray,
        rotation: tuple[int, int] = (0, 0),
    ) -> np.ndarray:
        """Propagate the combinational array; returns the T matrix."""
        n = self.n
        if l.shape != (n, n) or b_s.shape != (n, n):
            raise ConfigurationError(f"L and B(s) must be {n}x{n}")
        a_rot, b_rot = rotation[0] % n, rotation[1] % n
        t_out = np.zeros((n, n), dtype=bool)
        a_sig = np.asarray(ao, dtype=bool).copy()
        for ui in range(n):
            u = (a_rot + ui) % n
            d_sig = bool(ai[u])
            for vi in range(n):
                v = (b_rot + vi) % n
                t, a_next, d_next = sl_cell_logic(
                    bool(l[u, v]), bool(b_s[u, v]), bool(a_sig[v]), d_sig
                )
                t_out[u, v] = t
                a_sig[v] = a_next
                d_sig = d_next
        return t_out

    def gate_count(self) -> int:
        """Primitive gates in the whole array."""
        return self.n * self.n * SLCellGates().total_gates

"""NIC substrate: virtual output queues, the NIC model, flow accounting."""

from .flow import FlowLedger
from .nic import Nic
from .queues import DrainedMessage, VirtualOutputQueues

__all__ = ["FlowLedger", "Nic", "DrainedMessage", "VirtualOutputQueues"]

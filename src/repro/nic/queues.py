"""Virtual output queues (VOQs).

The paper's NIC: *"The output buffer is used to implement N logical queues,
one for each destination."*  Keeping one logical queue per destination is
what lets a single NIC present its full communication demand to the
scheduler as the N-bit request vector ``R_u`` with no head-of-line
blocking on the request plane.

:class:`VirtualOutputQueues` stores the per-destination FIFOs of
:class:`~repro.types.Message` objects plus a NumPy byte-count vector that
the network models use for vectorised request computation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, InvariantError
from ..types import Message

__all__ = ["DrainedMessage", "VirtualOutputQueues"]


@dataclass(slots=True, frozen=True)
class DrainedMessage:
    """A message whose final byte just left the source NIC."""

    message: Message
    start_ps: int  # when its first byte left
    finish_ps: int  # when its last byte left


class VirtualOutputQueues:
    """N logical FIFO queues on the output side of one NIC."""

    __slots__ = ("n", "src", "_queues", "bytes_pending", "_starts", "enqueued_bytes")

    def __init__(self, n: int, src: int) -> None:
        if not 0 <= src < n:
            raise ConfigurationError(f"source {src} out of range for {n} ports")
        self.n = n
        self.src = src
        self._queues: list[deque[Message]] = [deque() for _ in range(n)]
        #: bytes not yet transmitted, per destination (authoritative)
        self.bytes_pending = np.zeros(n, dtype=np.int64)
        self._starts: dict[int, int] = {}  # id(message) -> first-byte time
        self.enqueued_bytes = 0

    def enqueue(self, msg: Message) -> None:
        """Append a message to its destination's logical queue."""
        if msg.src != self.src:
            raise ConfigurationError(
                f"message from {msg.src} enqueued at NIC {self.src}"
            )
        self._queues[msg.dst].append(msg)
        self.bytes_pending[msg.dst] += msg.size
        self.enqueued_bytes += msg.size

    def request_vector(self) -> np.ndarray:
        """The NIC's N-bit request signal R_u (True where a queue is non-empty)."""
        return self.bytes_pending > 0

    def has_traffic(self, dst: int) -> bool:
        return self.bytes_pending[dst] > 0

    def head(self, dst: int) -> Message | None:
        q = self._queues[dst]
        return q[0] if q else None

    def depth(self, dst: int) -> int:
        """Messages queued for ``dst``."""
        return len(self._queues[dst])

    def drain(
        self, dst: int, max_bytes: int, start_ps: int, byte_ps: int = 0
    ) -> tuple[int, list[DrainedMessage]]:
        """Transmit up to ``max_bytes`` towards ``dst`` starting at ``start_ps``.

        Consecutive messages to the same destination share the transfer
        window back-to-back (the established pipe is a DMA channel, so there
        is no per-message framing cost).  Bytes stream at ``byte_ps``
        picoseconds per byte, so a message completing after ``m`` bytes of
        the window gets ``finish_ps = start_ps + m * byte_ps``; messages
        not yet injected at their would-be start position are not drained.

        Returns the bytes actually moved and the messages completed within
        the window.
        """
        if max_bytes < 0:
            raise ConfigurationError("cannot drain a negative byte budget")
        q = self._queues[dst]
        moved = 0
        done: list[DrainedMessage] = []
        while q and moved < max_bytes:
            msg = q[0]
            if msg.inject_ps > start_ps + moved * byte_ps:
                break  # not yet available to the DMA engine
            if msg.remaining == msg.size and id(msg) not in self._starts:
                self._starts[id(msg)] = start_ps + moved * byte_ps
            take = min(msg.remaining, max_bytes - moved)
            msg.remaining -= take
            moved += take
            if msg.remaining == 0:
                q.popleft()
                done.append(
                    DrainedMessage(
                        message=msg,
                        start_ps=self._starts.pop(id(msg)),
                        finish_ps=start_ps + moved * byte_ps,
                    )
                )
        self.bytes_pending[dst] -= moved
        if self.bytes_pending[dst] < 0:  # pragma: no cover
            raise InvariantError("queue byte accounting went negative")
        return moved, done

    def purge(self, dst: int | None = None) -> list[Message]:
        """Remove every queued message (for ``dst``, or all destinations).

        Fault recovery uses this when a link dies: the messages can never
        be transmitted, so they leave the queues and are accounted as
        explicit drops by the caller.  Returns the removed messages (some
        may be partially transmitted — ``remaining < size``); byte counters
        and in-progress start times are cleaned up.
        """
        targets = range(self.n) if dst is None else (dst,)
        removed: list[Message] = []
        for v in targets:
            q = self._queues[v]
            while q:
                msg = q.popleft()
                self.bytes_pending[v] -= msg.remaining
                self._starts.pop(id(msg), None)
                removed.append(msg)
            if self.bytes_pending[v] != 0:  # pragma: no cover - defensive
                raise InvariantError(
                    f"queue ({self.src}->{v}) byte counter "
                    f"{self.bytes_pending[v]} nonzero after purge"
                )
        return removed

    @property
    def total_pending(self) -> int:
        return int(self.bytes_pending.sum())

    @property
    def is_empty(self) -> bool:
        return self.total_pending == 0

    def check_invariants(self) -> None:
        """Verify byte counters match the per-message remainders (test hook)."""
        for dst, q in enumerate(self._queues):
            actual = sum(m.remaining for m in q)
            if actual != self.bytes_pending[dst]:
                raise InvariantError(
                    f"queue ({self.src}->{dst}) bytes {self.bytes_pending[dst]} "
                    f"!= sum of remainders {actual}"
                )

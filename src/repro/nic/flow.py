"""End-to-end flow-control accounting.

Section 2 of the paper: with dedicated pipes *"no congestion control is
needed, no routing or control information has to be included with the data,
no intermediate buffering and routing is needed and only end-to-end flow
control is required."*

This module implements that end-to-end accounting: a
:class:`FlowLedger` tracks bytes that have left each source and bytes
that have arrived at each destination, and can verify conservation at any
time.  All three network models feed it, which gives the test suite a
single invariant — *no byte is created, lost, or duplicated* — that holds
across wormhole, circuit, and TDM switching.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvariantError

__all__ = ["FlowLedger"]


class FlowLedger:
    """Byte conservation ledger over all (src, dst) pairs."""

    __slots__ = ("n", "sent", "delivered", "offered")

    def __init__(self, n: int) -> None:
        self.n = n
        #: bytes that left each source NIC, per destination
        self.sent = np.zeros((n, n), dtype=np.int64)
        #: bytes that arrived at each destination NIC, per source
        self.delivered = np.zeros((n, n), dtype=np.int64)
        #: bytes enqueued by the traffic pattern
        self.offered = np.zeros((n, n), dtype=np.int64)

    def offer(self, src: int, dst: int, n_bytes: int) -> None:
        self.offered[src, dst] += n_bytes

    def send(self, src: int, dst: int, n_bytes: int) -> None:
        self.sent[src, dst] += n_bytes
        if self.sent[src, dst] > self.offered[src, dst]:
            raise InvariantError(
                f"({src}->{dst}) sent {self.sent[src, dst]} bytes "
                f"but only {self.offered[src, dst]} were offered"
            )

    def deliver(self, src: int, dst: int, n_bytes: int) -> None:
        self.delivered[src, dst] += n_bytes
        if self.delivered[src, dst] > self.sent[src, dst]:
            raise InvariantError(
                f"({src}->{dst}) delivered {self.delivered[src, dst]} bytes "
                f"but only {self.sent[src, dst]} were sent"
            )

    @property
    def in_flight(self) -> int:
        """Bytes sent but not yet delivered."""
        return int(self.sent.sum() - self.delivered.sum())

    @property
    def total_delivered(self) -> int:
        return int(self.delivered.sum())

    def assert_conserved(self) -> None:
        """At end of run: everything offered was sent and delivered."""
        if not np.array_equal(self.offered, self.sent):
            missing = int((self.offered - self.sent).sum())
            raise InvariantError(f"{missing} offered bytes never sent")
        if not np.array_equal(self.sent, self.delivered):
            raise InvariantError(f"{self.in_flight} bytes lost in flight")

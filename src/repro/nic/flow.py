"""End-to-end flow-control accounting.

Section 2 of the paper: with dedicated pipes *"no congestion control is
needed, no routing or control information has to be included with the data,
no intermediate buffering and routing is needed and only end-to-end flow
control is required."*

This module implements that end-to-end accounting: a
:class:`FlowLedger` tracks bytes that have left each source and bytes
that have arrived at each destination, and can verify conservation at any
time.  All network models feed it, which gives the test suite a single
invariant — *no byte is created, lost, or duplicated* — that holds across
wormhole, circuit, and TDM switching.

Fault campaigns (:mod:`repro.faults`) extend the invariant rather than
suspend it: a byte that cannot be delivered must be **explicitly**
surrendered, either as *dropped* (given up before leaving the source, e.g.
the destination link died) or as *lost* (transmitted, then destroyed in
flight or discarded as part of a truncated message).  Conservation then
reads::

    offered == sent + dropped          (source side)
    sent    == delivered + lost        (sink side)

so silent loss and silent duplication both still fail loudly.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvariantError

__all__ = ["FlowLedger"]


class FlowLedger:
    """Byte conservation ledger over all (src, dst) pairs."""

    __slots__ = ("n", "sent", "delivered", "offered", "dropped", "lost")

    def __init__(self, n: int) -> None:
        self.n = n
        #: bytes that left each source NIC, per destination
        self.sent = np.zeros((n, n), dtype=np.int64)
        #: bytes that arrived at each destination NIC, per source
        self.delivered = np.zeros((n, n), dtype=np.int64)
        #: bytes enqueued by the traffic pattern
        self.offered = np.zeros((n, n), dtype=np.int64)
        #: bytes explicitly given up before transmission (fault recovery)
        self.dropped = np.zeros((n, n), dtype=np.int64)
        #: bytes transmitted but explicitly written off (truncated messages)
        self.lost = np.zeros((n, n), dtype=np.int64)

    def offer(self, src: int, dst: int, n_bytes: int) -> None:
        self.offered[src, dst] += n_bytes

    def send(self, src: int, dst: int, n_bytes: int) -> None:
        self.sent[src, dst] += n_bytes
        if self.sent[src, dst] + self.dropped[src, dst] > self.offered[src, dst]:
            raise InvariantError(
                f"({src}->{dst}) sent {self.sent[src, dst]} + dropped "
                f"{self.dropped[src, dst]} bytes but only "
                f"{self.offered[src, dst]} were offered"
            )

    def deliver(self, src: int, dst: int, n_bytes: int) -> None:
        self.delivered[src, dst] += n_bytes
        if self.delivered[src, dst] > self.sent[src, dst]:
            raise InvariantError(
                f"({src}->{dst}) delivered {self.delivered[src, dst]} bytes "
                f"but only {self.sent[src, dst]} were sent"
            )

    def drop(self, src: int, dst: int, n_bytes: int) -> None:
        """Explicitly surrender ``n_bytes`` that were never transmitted."""
        self.dropped[src, dst] += n_bytes
        if self.dropped[src, dst] + self.sent[src, dst] > self.offered[src, dst]:
            raise InvariantError(
                f"({src}->{dst}) dropped {self.dropped[src, dst]} + sent "
                f"{self.sent[src, dst]} bytes but only "
                f"{self.offered[src, dst]} were offered"
            )

    def lose(self, src: int, dst: int, n_bytes: int) -> None:
        """Write off ``n_bytes`` that were transmitted but never delivered.

        Used when a partially-transmitted message is abandoned: the bytes
        already on the wire will never complete a message, so the receiver
        discards them.  Validated against ``sent`` only at
        :meth:`assert_conserved` time because the write-off may precede the
        in-flight segment's own ``send`` accounting.
        """
        self.lost[src, dst] += n_bytes

    @property
    def in_flight(self) -> int:
        """Bytes sent but not yet delivered or written off."""
        return int(self.sent.sum() - self.delivered.sum() - self.lost.sum())

    @property
    def total_delivered(self) -> int:
        return int(self.delivered.sum())

    @property
    def total_dropped(self) -> int:
        return int(self.dropped.sum())

    def assert_conserved(self) -> None:
        """At end of run: every offered byte was delivered or explicitly
        surrendered — never silently created, lost, or duplicated."""
        if not np.array_equal(self.offered, self.sent + self.dropped):
            missing = int((self.offered - self.sent - self.dropped).sum())
            raise InvariantError(
                f"{missing} offered bytes neither sent nor explicitly dropped"
            )
        if not np.array_equal(self.sent, self.delivered + self.lost):
            raise InvariantError(
                f"{self.in_flight} bytes lost in flight without accounting"
            )

"""The network interface card model.

Each processor in the paper's system is fronted by a NIC with an input
buffer and an output buffer of N logical queues (see
:class:`~repro.nic.queues.VirtualOutputQueues`).  The NIC

* raises its N-bit request signal ``R_u`` towards the scheduler whenever a
  logical queue is non-empty,
* transmits from queue ``v`` whenever the grant signal ``G_{u,v}`` is up
  (during TDM slots or over a held circuit), and
* receives data into its input buffer with a single-cycle (10 ns) delay.

The NIC itself is passive bookkeeping; the network models move the data.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..params import SystemParams
from ..sim.trace import NULL_TRACER, Tracer
from ..types import Message, MessageRecord
from .queues import VirtualOutputQueues

__all__ = ["Nic"]


class Nic:
    """One network interface: output VOQs plus receive-side accounting."""

    __slots__ = (
        "params",
        "port",
        "voqs",
        "bytes_received",
        "records",
        "last_request",
        "tracer",
        "clock",
    )

    def __init__(
        self,
        params: SystemParams,
        port: int,
        tracer: Tracer | None = None,
        clock: Callable[[], int] | None = None,
    ) -> None:
        self.params = params
        self.port = port
        self.voqs = VirtualOutputQueues(params.n_ports, port)
        self.bytes_received = 0
        #: completed deliveries *into* this NIC
        self.records: list[MessageRecord] = []
        #: last request vector communicated to the scheduler (for edge detection)
        self.last_request = np.zeros(params.n_ports, dtype=bool)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: simulation-time source for instrumentation timestamps
        self.clock = clock if clock is not None else (lambda: 0)

    def enqueue(self, msg: Message) -> None:
        self.voqs.enqueue(msg)
        if self.tracer.enabled:
            self.tracer.record(
                self.clock(),
                "nic-enqueue",
                port=self.port,
                dst=msg.dst,
                size=msg.size,
                depth=int(self.voqs.bytes_pending[msg.dst]),
            )

    def request_vector(self) -> np.ndarray:
        return self.voqs.request_vector()

    def request_changes(self) -> list[tuple[int, bool]]:
        """Destinations whose request bit flipped since the last sample.

        The network model calls this to generate request-wire update events
        (each flip travels to the scheduler with the request-wire delay).
        """
        current = self.request_vector()
        flips = np.nonzero(current != self.last_request)[0]
        changes = [(int(v), bool(current[v])) for v in flips]
        self.last_request = current
        return changes

    def receive(self, record: MessageRecord) -> None:
        """Account a completed delivery (last byte arrived)."""
        self.bytes_received += record.size
        self.records.append(record)
        if self.tracer.enabled:
            self.tracer.record(
                record.done_ps, "nic-rx", port=self.port, src=record.src, bytes=record.size
            )

    @property
    def idle(self) -> bool:
        """True when nothing is queued for transmission."""
        return self.voqs.is_empty

"""Core value types shared across the repro library.

The fundamental objects of the paper's system model are:

* a **port** — an integer in ``[0, N)`` identifying one NIC (the paper's
  processors are numbered the same way on the input and output side of the
  crossbar);
* a **connection** — an ordered pair ``(src, dst)`` of ports, corresponding
  to a ``1`` entry in a configuration matrix ``B``;
* a **message** — a block of bytes queued at a source NIC for one
  destination, transferred over an established connection in DMA fashion.

Time is always an ``int`` number of **picoseconds** (see
:mod:`repro.sim.clock`); sizes are ``int`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from .errors import ConfigurationError

__all__ = [
    "Connection",
    "DropRecord",
    "Message",
    "MessageRecord",
    "validate_port",
    "validate_connection",
]


class Connection(NamedTuple):
    """An ordered (source port, destination port) pair.

    A ``Connection`` identifies one potential circuit through the crossbar:
    ``B[src, dst] == 1`` in some configuration matrix means this connection
    is established during the corresponding TDM slot.
    """

    src: int
    dst: int

    def reversed(self) -> "Connection":
        """The connection carrying traffic in the opposite direction."""
        return Connection(self.dst, self.src)


def validate_port(port: int, n_ports: int, *, name: str = "port") -> int:
    """Check that ``port`` is a valid port index for an ``n_ports`` system.

    Returns the port unchanged so it can be used inline, raises
    :class:`~repro.errors.ConfigurationError` otherwise.
    """
    if not isinstance(port, (int,)) or isinstance(port, bool):
        raise ConfigurationError(f"{name} must be an int, got {port!r}")
    if not 0 <= port < n_ports:
        raise ConfigurationError(
            f"{name} {port} out of range for a {n_ports}-port system"
        )
    return port


def validate_connection(conn: Connection, n_ports: int) -> Connection:
    """Validate both endpoints of ``conn`` against ``n_ports``."""
    validate_port(conn.src, n_ports, name="src")
    validate_port(conn.dst, n_ports, name="dst")
    return conn


@dataclass(slots=True)
class Message:
    """One inter-processor message.

    ``Message`` objects are created by traffic patterns and mutated by the
    network models as data moves: ``remaining`` counts bytes that have not
    yet left the source NIC.

    Attributes
    ----------
    src, dst:
        Source and destination ports.
    size:
        Message length in bytes (must be positive).
    inject_ps:
        Time at which the message becomes available in the source NIC's
        logical queue.
    seq:
        A per-run unique sequence number, used for deterministic tie
        breaking and for reporting.
    """

    src: int
    dst: int
    size: int
    inject_ps: int = 0
    seq: int = 0
    remaining: int = field(init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"message size must be positive, got {self.size}")
        if self.src == self.dst:
            raise ConfigurationError("messages to self are not modelled")
        if self.inject_ps < 0:
            raise ConfigurationError("inject time must be non-negative")
        self.remaining = self.size

    @property
    def connection(self) -> Connection:
        """The connection this message travels on."""
        return Connection(self.src, self.dst)


@dataclass(slots=True, frozen=True)
class MessageRecord:
    """Immutable completion record for one delivered message.

    Produced by network models when a message's last byte arrives at the
    destination NIC.
    """

    src: int
    dst: int
    size: int
    inject_ps: int
    start_ps: int
    done_ps: int
    seq: int

    @property
    def latency_ps(self) -> int:
        """Time from injection to full delivery."""
        return self.done_ps - self.inject_ps

    @property
    def service_ps(self) -> int:
        """Time from first byte leaving the source to full delivery."""
        return self.done_ps - self.start_ps

    def __post_init__(self) -> None:
        if self.done_ps < self.start_ps or self.start_ps < self.inject_ps:
            raise ConfigurationError(
                "message record times must satisfy inject <= start <= done"
            )


@dataclass(slots=True, frozen=True)
class DropRecord:
    """Explicit give-up record for one undeliverable message.

    Produced by the network models when fault recovery concludes a message
    can never be delivered (dead destination link, unrecoverable scheduler
    fault after the retry budget).  Every injected message ends as exactly
    one :class:`MessageRecord` or one :class:`DropRecord` — the
    conservation property the fault campaigns assert.

    ``sent_bytes`` counts bytes that had already left the source when the
    message was abandoned (they are accounted as lost in flight);
    ``size - sent_bytes`` bytes were never transmitted.
    """

    src: int
    dst: int
    size: int
    sent_bytes: int
    seq: int
    time_ps: int
    reason: str


def iter_connections(messages: list[Message]) -> Iterator[Connection]:
    """Yield the connection of each message, in order (with duplicates)."""
    for m in messages:
        yield m.connection

"""Command-line interface: ``python -m repro <artifact>``.

Regenerates any paper artifact from the shell::

    python -m repro table3
    python -m repro figure4 --patterns scatter --sizes 8,64,512
    python -m repro --jobs 8 figure4
    python -m repro figure5 --ports 64
    python -m repro compare --ports 64 --out benchmarks/results/compare_bakeoff.md
    python -m repro ablations --only a1,a4
    python -m repro faults --rates 0,1,4 --schemes dynamic-tdm,preload
    python -m repro multihop --bytes 512 --hops 1,2,4,8
    python -m repro trace figure4 --format chrome -o fig4.json
    python -m repro cache stats
    python -m repro schemes
    python -m repro soak --seconds 10 --seed 7
    python -m repro serve --port 7521

``--ports`` scales the system (the paper uses 128; smaller is faster),
``--seed`` changes the workload realisation, ``--csv`` switches figure
output to machine-readable CSV.  Sweeps fan out over ``--jobs`` worker
processes (default: every core; also ``$REPRO_JOBS``) and reuse cached
cell results from ``~/.cache/repro`` (``$REPRO_CACHE_DIR``); output is
bit-identical for any job count and cache state.  ``--no-cache`` runs
cold, ``--refresh`` recomputes and overwrites, ``--exec-stats`` prints
the executor telemetry to stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from .experiments.ablations import ABLATIONS, run_ablations
from .experiments.common import DEFAULT_SEED
from .experiments.compare import COMPARE_SCHEMES, COMPARE_SIZES, run_compare
from .experiments.faults import FAULT_RATES, run_faults
from .experiments.figure4 import MESSAGE_SIZES, run_figure4
from .experiments.figure5 import DETERMINISM_SWEEP, run_figure5
from .experiments.loadlatency import LOADS, run_load_latency
from .experiments.reporting import run_all
from .experiments.scaleout import (
    SCALEOUT_ENDPOINTS,
    SCALEOUT_SCHEMES,
    run_scaleout,
)
from .experiments.table3 import format_table3
from .metrics.report import format_table
from .networks.multihop import MultiHopModel
from .params import PAPER_PARAMS, SystemParams
from .sim.fastpath import FAST_ENV_VAR

__all__ = ["main"]


def _params(args: argparse.Namespace) -> SystemParams:
    return PAPER_PARAMS.with_overrides(n_ports=args.ports)


def _exec_opts(args: argparse.Namespace) -> dict:
    """The engine knobs every sweep subcommand forwards to map_cells."""
    return dict(
        jobs=args.jobs,
        cache=not args.no_cache,
        refresh=args.refresh,
        progress=sys.stderr.isatty(),
    )


def _emit_exec_stats(args: argparse.Namespace, *stats) -> None:
    if not args.exec_stats:
        return
    from .obs import format_exec_stats

    for s in stats:
        if s is not None:
            print(format_exec_stats(s), file=sys.stderr)


def _csv_list(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _cmd_table3(args: argparse.Namespace) -> int:
    print(format_table3())
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    from .networks.registry import get_scheme, scheme_names

    rows = []
    for name in scheme_names():
        info = get_scheme(name)
        caps = info.capabilities
        feats = []
        if caps.tdm_modes:
            feats.append("tdm(" + ",".join(caps.tdm_modes) + ")")
        if caps.request_plane:
            feats.append("request-plane")
        if caps.fault_recovery:
            feats.append("fault-recovery")
        if caps.injection_window:
            feats.append("injection-window")
        if caps.preload:
            feats.append("preload")
        if caps.multi_switch:
            feats.append("multi-switch")
        rows.append(
            [
                name,
                ", ".join(info.aliases) if info.aliases else "-",
                " ".join(feats) if feats else "-",
                caps.description,
            ]
        )
    print(
        format_table(
            ["scheme", "aliases", "capabilities", "description"],
            rows,
            title="Registered switching schemes",
        )
    )
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    sizes = tuple(int(s) for s in _csv_list(args.sizes)) if args.sizes else MESSAGE_SIZES
    patterns = tuple(_csv_list(args.patterns)) if args.patterns else None
    schemes = tuple(_csv_list(args.schemes)) if args.schemes else None
    result = run_figure4(
        params=_params(args),
        sizes=sizes,
        patterns=patterns,
        schemes=schemes,
        seed=args.seed,
        **_exec_opts(args),
    )
    _emit_exec_stats(args, result.exec_stats)
    if args.csv:
        for pattern in result.series:
            print(f"# {pattern}")
            print(result.csv(pattern))
    else:
        print(result.format())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    sizes = (
        tuple(int(s) for s in _csv_list(args.sizes)) if args.sizes else COMPARE_SIZES
    )
    patterns = tuple(_csv_list(args.patterns)) if args.patterns else None
    schemes = tuple(_csv_list(args.schemes)) if args.schemes else None
    result = run_compare(
        params=_params(args),
        sizes=sizes,
        patterns=patterns,
        schemes=schemes,
        k=args.k,
        seed=args.seed,
        **_exec_opts(args),
    )
    _emit_exec_stats(args, result.exec_stats)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(result.markdown(), encoding="utf-8")
        print(f"wrote bake-off report ({len(result.points)} cells) to {args.out}")
    if args.csv:
        print(result.csv(), end="")
    elif not args.out:
        print(result.format())
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    determinism = (
        tuple(float(d) for d in _csv_list(args.determinism))
        if args.determinism
        else DETERMINISM_SWEEP
    )
    result = run_figure5(
        params=_params(args),
        determinism=determinism,
        messages_per_node=args.messages,
        seed=args.seed,
        **_exec_opts(args),
    )
    _emit_exec_stats(args, result.exec_stats)
    print(result.csv() if args.csv else result.format())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    rates = (
        tuple(float(r) for r in _csv_list(args.rates)) if args.rates else FAULT_RATES
    )
    schemes = tuple(_csv_list(args.schemes)) if args.schemes else None
    result = run_faults(
        params=_params(args),
        rates=rates,
        schemes=schemes,
        size_bytes=args.bytes,
        messages_per_node=args.messages,
        seed=args.seed,
        **_exec_opts(args),
    )
    _emit_exec_stats(args, result.healthy_exec_stats, result.exec_stats)
    print(result.csv() if args.csv else result.format())
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    wanted = _csv_list(args.only) if args.only else list(ABLATIONS)
    for key in wanted:
        if key not in ABLATIONS:
            print(f"unknown ablation {key!r}; choose from {sorted(ABLATIONS)}")
            return 2
    data, stats = run_ablations(
        wanted, params=_params(args), seed=args.seed, **_exec_opts(args)
    )
    _emit_exec_stats(args, stats)
    for key in wanted:
        title = ABLATIONS[key][0]
        rows = [[k, v] for k, v in data[key].items()]
        print(format_table(["setting", "value"], rows, title=f"{key.upper()} — {title}"))
    return 0


def _cmd_load_latency(args: argparse.Namespace) -> int:
    loads = (
        tuple(float(x) for x in _csv_list(args.loads)) if args.loads else LOADS
    )
    result = run_load_latency(
        params=_params(args),
        loads=loads,
        size_bytes=args.bytes,
        duration_ns=args.duration_ns,
        seed=args.seed,
        **_exec_opts(args),
    )
    _emit_exec_stats(args, result.exec_stats)
    print(result.csv() if args.csv else result.format())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    stats: list = []
    text = run_all(
        params=_params(args),
        quick=args.quick,
        seed=args.seed,
        stats_sink=stats,
        **_exec_opts(args),
    )
    _emit_exec_stats(args, *stats)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .exec import ResultCache

    store = ResultCache(args.dir)
    if args.action == "stats":
        s = store.stats()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["directory", s.root],
                    ["entries", s.entries],
                    ["size (KiB)", round(s.total_bytes / 1024, 1)],
                    ["compute saved (s)", round(s.saved_wall_s, 2)],
                ],
                title="Result cache",
            )
        )
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    else:
        ok, bad = store.verify()
        print(f"{ok} entries verified in {store.root}")
        if bad:
            for path in bad:
                print(f"corrupt: {path}")
            return 1
    return 0


def _cmd_scaleout(args: argparse.Namespace) -> int:
    schemes = (
        tuple(_csv_list(args.schemes)) if args.schemes else SCALEOUT_SCHEMES
    )
    endpoints = (
        tuple(int(n) for n in _csv_list(args.endpoints))
        if args.endpoints
        else SCALEOUT_ENDPOINTS
    )
    result = run_scaleout(
        params=PAPER_PARAMS,  # n_ports comes from the endpoint counts
        schemes=schemes,
        endpoints=endpoints,
        messages_per_endpoint=args.messages,
        size_bytes=args.bytes,
        seed=args.seed,
        faults=not args.no_faults,
        **_exec_opts(args),
    )
    _emit_exec_stats(args, result.exec_stats)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(result.csv())
        print(f"wrote {len(result.points)} rows to {args.out}")
    if args.csv:
        print(result.csv(), end="")
    elif not args.out:
        print(result.format())
    return 0


def _cmd_multihop(args: argparse.Namespace) -> int:
    hops = tuple(int(h) for h in _csv_list(args.hops))
    model = MultiHopModel(_params(args), msg_bytes=args.bytes, k=args.k)
    rows = model.sweep(hops)
    print(
        format_table(
            ["hops", "TDM 1st (ns)", "TDM cached (ns)", "wormhole (ns)",
             "TDM eff", "worm eff", "worm buffers (B)"],
            [
                [r.hops, round(r.tdm_first_message_ns, 1),
                 round(r.tdm_cached_message_ns, 1),
                 round(r.wormhole_message_ns, 1),
                 round(r.tdm_stream_efficiency, 3),
                 round(r.wormhole_stream_efficiency, 3),
                 r.wormhole_buffer_bytes]
                for r in rows
            ],
            title=f"Multi-hop comparison ({args.bytes}-byte messages)",
        )
    )
    return 0


#: experiments ``repro trace`` can instrument (figure4 = its random-mesh panel)
_TRACE_EXPERIMENTS = ("figure4", "scatter", "random-mesh", "ordered-mesh", "two-phase")

_TRACE_EXTENSIONS = {"chrome": "json", "jsonl": "jsonl", "csv": "csv"}


def _cmd_trace(args: argparse.Namespace) -> int:
    from .experiments.common import figure4_schemes
    from .experiments.figure4 import figure4_patterns
    from .obs import (
        TracedRun,
        profile_run,
        to_chrome_trace,
        to_csv,
        to_jsonl,
        utilization_report,
    )
    from .sim.rng import RngStreams
    from .sim.trace import Tracer

    params = _params(args)
    pattern_name = "random-mesh" if args.experiment == "figure4" else args.experiment
    factories = figure4_schemes(params)
    wanted = _csv_list(args.schemes) if args.schemes else list(factories)
    for name in wanted:
        if name not in factories:
            print(f"unknown scheme {name!r}; choose from {sorted(factories)}")
            return 2
    runs: list[TracedRun] = []
    for name in wanted:
        tracer = Tracer(capacity=args.capacity)
        net = factories[name](tracer)
        # every scheme sees a byte-identical workload realisation
        pattern = figure4_patterns(params)[pattern_name](args.bytes)
        phases = pattern.phases(RngStreams(args.seed))
        result, report = profile_run(
            lambda: net.run(phases, pattern.name),
            label=name,
            with_cprofile=args.profile,
        )
        report.perf.update(net.sim.perf_counters())
        events = list(tracer.events())
        runs.append(TracedRun(name, events, dict(result.counters)))
        print(
            f"{name}: {len(events)} events traced "
            f"({tracer.dropped} overwritten), makespan "
            f"{result.makespan_ps / 1000:.1f} ns"
        )
        if args.profile:
            print(report.format())
        if args.utilization:
            print(utilization_report(events, params.slot_ps, label=name))
    out = args.output or f"trace_{args.experiment}.{_TRACE_EXTENSIONS[args.format]}"
    if args.format == "chrome":
        counts = to_chrome_trace(runs, out)
        print(
            f"wrote {out}: {counts['spans']} spans + {counts['instants']} "
            f"instants across {counts['runs']} processes "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
    elif args.format == "jsonl":
        n = to_jsonl(runs, out)
        print(f"wrote {out}: {n} events")
    else:
        n = to_csv(runs, out)
        print(f"wrote {out}: {n} rows")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from .service import SoakConfig, run_soak

    cfg = SoakConfig(
        seed=args.seed,
        seconds=args.seconds,
        n_ports=args.soak_ports,
        k=args.k,
        scheme=args.scheme,
        fault_rate_per_us=args.fault_rate,
        availability_floor=args.floor,
        out_dir=args.out,
        trace=args.trace,
        max_wall_s=args.max_wall_s,
    )
    report = run_soak(cfg)
    print(report.summary())
    if cfg.out_dir is not None:
        print(f"  artifacts in {cfg.out_dir}/ (slo.jsonl, report.json"
              + (", soak-trace.json)" if cfg.trace else ")"))
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .params import SystemParams
    from .service import ServiceConfig, ServiceDaemon, SwitchService

    cfg = ServiceConfig(
        scheme=args.scheme,
        k=args.k,
        bucket_rate_per_s=args.bucket_rate,
        queue_depth=args.queue_depth,
    )
    service = SwitchService(cfg, SystemParams(n_ports=args.soak_ports))
    daemon = ServiceDaemon(
        service,
        host=args.host,
        port=args.port,
        us_per_wall_s=args.pace,
    )

    async def _run() -> None:
        await daemon.start()
        print(
            f"repro service on {daemon.host}:{daemon.port} "
            f"({cfg.scheme}, k={cfg.k}, {args.soak_ports} ports, "
            f"{daemon.us_per_wall_s:g} virtual us per wall second); Ctrl-C stops"
        )
        await daemon._stopping.wait()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nservice stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts from 'Switch Design to Enable "
        "Predictive Multiplexed Switching in Multiprocessor Networks' (IPPS 2005)",
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument("--ports", type=int, default=128, help="system size (default 128)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="workload seed")
    parser.add_argument(
        "--fast",
        action="store_true",
        help="slot-synchronous fast execution for the TDM schemes "
        "(byte-identical output; sets REPRO_FAST=1 so sweep workers inherit it)",
    )
    # the engine knobs are accepted both before and after the subcommand
    # (the parent parser uses SUPPRESS so a subcommand-position flag wins
    # and an absent one does not clobber the top-level value)
    parser.set_defaults(jobs=None, no_cache=False, refresh=False, exec_stats=False)
    exec_flags = argparse.ArgumentParser(add_help=False, argument_default=argparse.SUPPRESS)
    for p in (parser, exec_flags):
        p.add_argument(
            "--jobs",
            type=int,
            help="worker processes for sweeps (default: $REPRO_JOBS or all "
            "cores); output is bit-identical for any value",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="do not read or write the result cache",
        )
        p.add_argument(
            "--refresh",
            action="store_true",
            help="recompute every cell and overwrite its cache entry",
        )
        p.add_argument(
            "--exec-stats",
            action="store_true",
            help="print executor telemetry (cells run/cached, speedup) to stderr",
        )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table3", help="scheduler latency vs system size").set_defaults(
        fn=_cmd_table3
    )

    sub.add_parser(
        "schemes", help="list registered switching schemes and their capabilities"
    ).set_defaults(fn=_cmd_schemes)

    f4 = sub.add_parser(
        "figure4",
        help="pattern x scheme x size efficiency sweep",
        parents=[exec_flags],
    )
    f4.add_argument("--sizes", help="comma-separated byte sizes (default: paper sweep)")
    f4.add_argument("--patterns", help="scatter,random-mesh,ordered-mesh,two-phase")
    f4.add_argument("--schemes", help="wormhole,circuit,dynamic-tdm,preload")
    f4.add_argument("--csv", action="store_true", help="CSV output")
    f4.set_defaults(fn=_cmd_figure4)

    cp = sub.add_parser(
        "compare",
        help="scheduler bake-off: every discipline x pattern x size, ranked",
        parents=[exec_flags],
    )
    cp.add_argument(
        "--sizes",
        help="comma-separated byte sizes "
        f"(default {','.join(str(s) for s in COMPARE_SIZES)})",
    )
    cp.add_argument("--patterns", help="scatter,random-mesh,ordered-mesh,two-phase")
    cp.add_argument(
        "--schemes",
        help=f"comma-separated disciplines (default {','.join(COMPARE_SCHEMES)})",
    )
    cp.add_argument("--k", type=int, default=4, help="multiplexing degree (default 4)")
    cp.add_argument("--out", help="write the ranked markdown report to this path")
    cp.add_argument("--csv", action="store_true", help="CSV output (one row per cell)")
    cp.set_defaults(fn=_cmd_compare)

    f5 = sub.add_parser(
        "figure5",
        help="hybrid preload vs determinism sweep",
        parents=[exec_flags],
    )
    f5.add_argument("--determinism", help="comma-separated fractions (default: paper sweep)")
    f5.add_argument("--messages", type=int, default=64, help="messages per node")
    f5.add_argument("--csv", action="store_true", help="CSV output")
    f5.set_defaults(fn=_cmd_figure5)

    fl = sub.add_parser(
        "faults",
        help="fault-injection campaigns (rate x scheme)",
        parents=[exec_flags],
    )
    fl.add_argument("--rates", help="comma-separated faults/us (default sweep)")
    fl.add_argument("--schemes", help="wormhole,circuit,dynamic-tdm,preload")
    fl.add_argument("--bytes", type=int, default=512, help="message size")
    fl.add_argument("--messages", type=int, default=8, help="messages per node")
    fl.add_argument("--csv", action="store_true", help="CSV output")
    fl.set_defaults(fn=_cmd_faults)

    ab = sub.add_parser(
        "ablations",
        help="design-choice ablations (a1-a6, a8-a12)",
        parents=[exec_flags],
    )
    ab.add_argument("--only", help="subset, e.g. a1,a4")
    ab.set_defaults(fn=_cmd_ablations)

    ll = sub.add_parser(
        "load-latency",
        help="load vs latency curves (extension L1)",
        parents=[exec_flags],
    )
    ll.add_argument("--loads", help="comma-separated offered loads (default sweep)")
    ll.add_argument("--bytes", type=int, default=128, help="message size")
    ll.add_argument("--duration-ns", type=float, default=10_000.0, help="injection window")
    ll.add_argument("--csv", action="store_true", help="CSV output")
    ll.set_defaults(fn=_cmd_load_latency)

    rp = sub.add_parser(
        "report",
        help="regenerate every artifact as one markdown report",
        parents=[exec_flags],
    )
    rp.add_argument("--quick", action="store_true", help="reduced grid for smoke tests")
    rp.add_argument("--output", help="write to this file instead of stdout")
    rp.set_defaults(fn=_cmd_report)

    tr = sub.add_parser("trace", help="run an experiment traced and export a timeline")
    tr.add_argument(
        "experiment",
        choices=_TRACE_EXPERIMENTS,
        help="what to trace (figure4 = its random-mesh panel)",
    )
    tr.add_argument(
        "--format",
        choices=sorted(_TRACE_EXTENSIONS),
        default="chrome",
        help="export format (default: chrome, for chrome://tracing / Perfetto)",
    )
    tr.add_argument("-o", "--output", help="output file (default: trace_<experiment>.<ext>)")
    tr.add_argument("--bytes", type=int, default=512, help="message size")
    tr.add_argument("--schemes", help="wormhole,circuit,dynamic-tdm,preload")
    tr.add_argument(
        "--capacity", type=int, default=1 << 20, help="tracer ring-buffer capacity"
    )
    tr.add_argument(
        "--profile", action="store_true", help="perf counters + cProfile hotspots"
    )
    tr.add_argument(
        "--utilization", action="store_true", help="print slot/port utilization report"
    )
    tr.set_defaults(fn=_cmd_trace)

    ca = sub.add_parser("cache", help="inspect or clear the result cache")
    ca.add_argument(
        "action",
        choices=("stats", "clear", "verify"),
        help="stats: entry count/footprint; clear: delete entries; "
        "verify: re-hash every entry",
    )
    ca.add_argument("--dir", help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    ca.set_defaults(fn=_cmd_cache)

    sk = sub.add_parser(
        "soak",
        help="seeded chaos soak: faults + overload bursts, invariants at exit",
    )
    # --seed works in subcommand position too (SUPPRESS: absent keeps top-level)
    sk.add_argument("--seed", type=int, default=argparse.SUPPRESS, help="campaign seed")
    sk.add_argument(
        "--seconds", type=float, default=10.0,
        help="campaign length in soak seconds (each simulates 200 us of fabric time)",
    )
    sk.add_argument("--soak-ports", type=int, default=16, help="fabric size (default 16)")
    sk.add_argument("--k", type=int, default=4, help="multiplexing degree")
    sk.add_argument("--scheme", default="hybrid", help="dynamic-tdm, preload, or hybrid")
    sk.add_argument(
        "--fault-rate", type=float, default=0.02, help="faults per virtual us (0 = calm)"
    )
    sk.add_argument(
        "--floor", type=float, default=0.55, help="availability floor asserted at exit"
    )
    sk.add_argument("--out", help="write slo.jsonl + report.json to this directory")
    sk.add_argument("--trace", action="store_true", help="also export a Perfetto timeline")
    sk.add_argument(
        "--max-wall-s", type=float, default=120.0,
        help="wall-clock safety valve (never affects results)",
    )
    sk.set_defaults(fn=_cmd_soak)

    sv = sub.add_parser(
        "serve", help="run the switching service as a line-JSON TCP daemon"
    )
    sv.add_argument("--host", default="127.0.0.1", help="bind address")
    sv.add_argument("--port", type=int, default=7521, help="TCP port (0 = ephemeral)")
    sv.add_argument("--soak-ports", type=int, default=16, help="fabric size (default 16)")
    sv.add_argument("--k", type=int, default=4, help="multiplexing degree")
    sv.add_argument("--scheme", default="hybrid", help="dynamic-tdm, preload, or hybrid")
    sv.add_argument(
        "--bucket-rate", type=float, default=0.0,
        help="admission token-bucket rate per virtual second (0 = unlimited)",
    )
    sv.add_argument("--queue-depth", type=int, default=16, help="per-port queue bound")
    sv.add_argument(
        "--pace", type=float, default=200.0,
        help="virtual microseconds simulated per wall-clock second",
    )
    sv.set_defaults(fn=_cmd_serve)

    so = sub.add_parser(
        "scaleout",
        parents=[exec_flags],
        help="multi-switch TDM sweep: 256-1024 endpoints over mesh/fat-tree",
    )
    so.add_argument(
        "--schemes",
        help=f"comma-separated composite schemes (default {','.join(SCALEOUT_SCHEMES)})",
    )
    so.add_argument(
        "--endpoints",
        help="comma-separated endpoint counts "
        f"(default {','.join(str(n) for n in SCALEOUT_ENDPOINTS)})",
    )
    so.add_argument(
        "--messages", type=int, default=4, help="messages per endpoint (default 4)"
    )
    so.add_argument("--bytes", type=int, default=256, help="message size (default 256)")
    so.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the seeded per-hop trunk-fault campaign cells",
    )
    so.add_argument("--out", help="write the CSV to this path")
    so.add_argument("--csv", action="store_true", help="CSV output")
    so.set_defaults(fn=_cmd_scaleout)

    mh = sub.add_parser("multihop", help="multi-hop TDM vs wormhole model (A7)")
    mh.add_argument("--bytes", type=int, default=512, help="message size")
    mh.add_argument("--hops", default="1,2,4,8", help="comma-separated hop counts")
    mh.add_argument("--k", type=int, default=4, help="multiplexing degree")
    mh.set_defaults(fn=_cmd_multihop)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "fast", False):
        # the environment route reaches every construction site, including
        # the sweep executor's worker processes (they inherit the environ)
        os.environ[FAST_ENV_VAR] = "1"
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

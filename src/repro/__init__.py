"""repro — a reproduction of *Switch Design to Enable Predictive Multiplexed
Switching in Multiprocessor Networks* (Ding, Hoare, Jones, Li, Shao, Tung,
Zheng, Melhem; IPPS 2005).

The package implements the paper's predictive multiplexed switching system
and everything it is evaluated against:

* :mod:`repro.sched` — the hardware scheduler: pre-scheduling logic
  (Table 1), the SL systolic array (Table 2), TDM counter, priority
  rotation, and the multi-unit / multi-slot extensions;
* :mod:`repro.fabric` — configuration matrices, the K-slot register file,
  the passive crossbar, and multistage-fabric constraints;
* :mod:`repro.networks` — cycle-level simulations of TDM (dynamic /
  preload / hybrid), circuit switching, and wormhole routing;
* :mod:`repro.compiled` — compiled communication: bipartite edge colouring
  of connection sets into configurations, preload programs, working-set
  partitioning;
* :mod:`repro.predict` — the time-out and usage-counter eviction
  predictors plus compiler-hinted and oracle variants;
* :mod:`repro.traffic` — the paper's workloads (Scatter, Random/Ordered
  Mesh, Two Phase, the Figure-5 hybrid) and extra synthetic patterns;
* :mod:`repro.hw` — the calibrated Table-3 scheduler latency/area model;
* :mod:`repro.experiments` — drivers that regenerate every table and
  figure of the evaluation.

Quick start::

    from repro import PAPER_PARAMS, TdmNetwork, ScatterPattern, measure

    params = PAPER_PARAMS.with_overrides(n_ports=32)
    point = measure(ScatterPattern(32, 64), TdmNetwork(params, k=4))
    print(point.efficiency)
"""

from .errors import (
    ConfigurationError,
    InvariantError,
    ReproError,
    SchedulingError,
    SimulationError,
    TrafficError,
)
from .experiments import (
    DEFAULT_SEED,
    measure,
    run_faults,
    run_figure4,
    run_figure5,
    run_table3,
)
from .fabric import ConfigMatrix, ConfigRegisterFile, Crossbar
from .faults import FaultInjector, FaultKind, FaultSchedule, RetryPolicy
from .networks import (
    CircuitNetwork,
    IdealNetwork,
    RunResult,
    RunSpec,
    TdmNetwork,
    WormholeNetwork,
    build_network,
    run_scheme,
    scheme_names,
)
from .params import PAPER_PARAMS, SystemParams
from .predict import CounterPredictor, NullPredictor, TimeoutPredictor
from .sched import Scheduler
from .traffic import (
    AllToAllPattern,
    HybridPattern,
    OrderedMeshPattern,
    RandomMeshPattern,
    ScatterPattern,
    TwoPhasePattern,
)
from .types import Connection, Message, MessageRecord

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "InvariantError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TrafficError",
    "DEFAULT_SEED",
    "measure",
    "run_faults",
    "run_figure4",
    "run_figure5",
    "run_table3",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "RetryPolicy",
    "ConfigMatrix",
    "ConfigRegisterFile",
    "Crossbar",
    "CircuitNetwork",
    "IdealNetwork",
    "RunResult",
    "RunSpec",
    "TdmNetwork",
    "WormholeNetwork",
    "build_network",
    "run_scheme",
    "scheme_names",
    "PAPER_PARAMS",
    "SystemParams",
    "CounterPredictor",
    "NullPredictor",
    "TimeoutPredictor",
    "Scheduler",
    "AllToAllPattern",
    "HybridPattern",
    "OrderedMeshPattern",
    "RandomMeshPattern",
    "ScatterPattern",
    "TwoPhasePattern",
    "Connection",
    "Message",
    "MessageRecord",
    "__version__",
]

"""Concrete topology builders: FM16-style full mesh, 2-tier fat tree, line.

All builders return immutable :class:`repro.topo.Topology` instances and
take only plain integers, so the scheme registry can rebuild them from
``RunSpec.options`` in pool workers (see ``tools/check_construction.py``
pool rules — cells must stay plain data).

Port layout convention: every switch numbers its endpoint-facing ports
first, then its trunk ports, so local port arithmetic stays obvious in
traces and tests.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..fabric.fattree import FatTree
from .graph import Topology, TrunkLink

__all__ = ["full_mesh", "fat_tree", "line"]


def full_mesh(
    n_endpoints: int, n_switches: int = 16, links_per_pair: int = 4
) -> Topology:
    """An FM16-style full mesh: every switch pair joined by parallel trunks.

    Endpoints are striped contiguously: endpoint ``e`` sits on switch
    ``e // (n_endpoints // n_switches)``.  Any endpoint pair's route
    crosses at most two switches, so the mesh isolates the cost of the
    first trunk hop; the fat tree is the deeper counterpart.
    """
    if n_switches < 2:
        raise ConfigurationError("a full mesh needs at least 2 switches")
    if links_per_pair < 1:
        raise ConfigurationError("links_per_pair must be >= 1")
    if n_endpoints % n_switches != 0:
        raise ConfigurationError(
            f"n_endpoints ({n_endpoints}) must divide evenly over "
            f"{n_switches} switches"
        )
    per_switch = n_endpoints // n_switches
    if per_switch < 1:
        raise ConfigurationError("every mesh switch needs at least one endpoint")
    trunk_ports = (n_switches - 1) * links_per_pair
    ports = per_switch + trunk_ports
    endpoint_switch = tuple(e // per_switch for e in range(n_endpoints))
    endpoint_port = tuple(e % per_switch for e in range(n_endpoints))
    next_port = [per_switch] * n_switches
    links: list[TrunkLink] = []
    for a in range(n_switches):
        for b in range(a + 1, n_switches):
            for _ in range(links_per_pair):
                links.append(
                    TrunkLink(
                        index=len(links),
                        a=a,
                        b=b,
                        a_port=next_port[a],
                        b_port=next_port[b],
                    )
                )
                next_port[a] += 1
                next_port[b] += 1
    return Topology(
        name=f"mesh{n_switches}x{links_per_pair}",
        n_endpoints=n_endpoints,
        switch_ports=(ports,) * n_switches,
        endpoint_switch=endpoint_switch,
        endpoint_port=endpoint_port,
        links=tuple(links),
    )


def fat_tree(n_endpoints: int, leaf_size: int = 16, taper: int = 1) -> Topology:
    """A 2-tier leaf/spine fat tree.

    ``leaf_size`` endpoints hang off each leaf switch; every leaf has one
    uplink to each spine.  The spine count is the top-level edge capacity
    of the analytic :class:`repro.fabric.fattree.FatTree` with the same
    taper — ``max(1, leaf_size // taper)`` — so at ``taper=1`` the tree
    has full bisection (every permutation realisable in one pass) and at
    ``taper>1`` leaf uplinks oversubscribe exactly as the analytic
    model's ``edge_capacity`` predicts.  Routes cross 1 switch
    (same leaf) or 3 (leaf → spine → leaf).
    """
    if leaf_size < 2:
        raise ConfigurationError("leaf_size must be >= 2")
    if taper < 1:
        raise ConfigurationError("taper must be >= 1")
    if n_endpoints % leaf_size != 0:
        raise ConfigurationError(
            f"n_endpoints ({n_endpoints}) must divide evenly into leaves "
            f"of {leaf_size}"
        )
    n_leaves = n_endpoints // leaf_size
    if n_leaves < 2:
        raise ConfigurationError("a fat tree needs at least 2 leaves")
    if leaf_size & (leaf_size - 1) == 0:
        # power-of-two leaf: take the uplink count straight from the
        # analytic fat-tree's edge capacity at the leaf's crossing level
        level = int(math.log2(leaf_size))
        n_spines = FatTree(max(leaf_size * 2, 4), taper).edge_capacity(level)
    else:
        n_spines = max(1, leaf_size // taper)
    # switches: leaves 0..n_leaves-1, spines n_leaves..n_leaves+n_spines-1
    leaf_ports = leaf_size + n_spines
    spine_ports = n_leaves
    switch_ports = (leaf_ports,) * n_leaves + (spine_ports,) * n_spines
    endpoint_switch = tuple(e // leaf_size for e in range(n_endpoints))
    endpoint_port = tuple(e % leaf_size for e in range(n_endpoints))
    links: list[TrunkLink] = []
    for leaf in range(n_leaves):
        for spine in range(n_spines):
            links.append(
                TrunkLink(
                    index=len(links),
                    a=leaf,
                    b=n_leaves + spine,
                    a_port=leaf_size + spine,
                    b_port=leaf,
                )
            )
    return Topology(
        name=f"fattree{n_leaves}x{n_spines}t{taper}",
        n_endpoints=n_endpoints,
        switch_ports=switch_ports,
        endpoint_switch=endpoint_switch,
        endpoint_port=endpoint_port,
        links=tuple(links),
    )


def line(hops: int) -> Topology:
    """A chain of ``hops`` switches with one endpoint at each end.

    The minimal multi-hop shape: endpoint 0 on the first switch,
    endpoint 1 on the last, one trunk per adjacent pair.  Every
    0 -> 1 circuit traverses exactly ``hops`` switches, which is what the
    :class:`repro.networks.multihop.MultiHopModel` cross-validation
    needs — a contention-free path of known length.
    """
    if hops < 1:
        raise ConfigurationError("a line needs at least one switch")
    if hops == 1:
        return Topology(
            name="line1",
            n_endpoints=2,
            switch_ports=(2,),
            endpoint_switch=(0, 0),
            endpoint_port=(0, 1),
            links=(),
        )
    # every switch has 2 ports: port 0 faces "left" (endpoint 0 or the
    # previous switch), port 1 faces "right" (the next switch or endpoint 1)
    switch_ports = tuple(2 for _ in range(hops))
    links = tuple(
        TrunkLink(index=i, a=i, b=i + 1, a_port=1, b_port=0)
        for i in range(hops - 1)
    )
    return Topology(
        name=f"line{hops}",
        n_endpoints=2,
        switch_ports=switch_ports,
        endpoint_switch=(0, hops - 1),
        endpoint_port=(0, 1),
        links=links,
    )

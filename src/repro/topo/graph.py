"""The switch-graph topology layer.

Everything below the scheme registry used to assume one crossbar: a port
was simultaneously an endpoint, a switch input, and a switch output.  This
module makes the fabric shape explicit so the multi-switch schemes
(:mod:`repro.networks.multiswitch`) can model the paper's Section-6 claim
— multiplexed circuits over multi-hop networks — with real per-switch
SL arrays:

* a :class:`Topology` is a set of switches (each with its own local port
  space), an attachment map from endpoints to (switch, local port), and a
  set of full-duplex :class:`TrunkLink` s between switches — possibly
  several parallel links per switch pair (the FM16 full mesh runs four);
* :meth:`Topology.route` is **deterministic path selection**: a BFS
  shortest path whose tie-break among equal-cost next hops is a fixed
  mix of the endpoint pair, so repeated runs (and parallel sweep workers)
  pick byte-identical routes while different endpoint pairs still spread
  over the available multi-paths of a fat tree;
* :meth:`Topology.path_latency_ps` is the established-pipe fill time over
  ``h`` passive LVDS switches and equals
  :meth:`repro.networks.multihop.MultiHopModel.tdm_path_fill_ps` by
  construction — the analytic model and the simulator share one formula
  (the cross-validation test pins this).

The single-crossbar networks use :meth:`Topology.single_switch`, which
reproduces the old implicit shape exactly (endpoint ``i`` is local port
``i`` of switch 0, no trunks), so threading the topology through
:mod:`repro.networks.base` changes no existing byte of output.

Link *health* is run state, not topology state: the owning network keeps
per-link down/dead arrays (see
:class:`repro.networks.lifecycle.ConnectionManager`) and passes a healthy
mask into :meth:`route`, so one immutable topology serves every run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..params import SystemParams

__all__ = ["TrunkLink", "Topology"]

#: Knuth's multiplicative-hash constant; mixes (src, dst) into a stable
#: tie-break index so equal-cost multi-paths are spread deterministically
_SPREAD_MIX = 2654435761


@dataclass(slots=True, frozen=True)
class TrunkLink:
    """One full-duplex physical link between two switches.

    ``a < b`` by convention; ``a_port``/``b_port`` are the local port
    numbers the link occupies on each switch.  A configuration slot that
    establishes a connection through the link claims those ports in that
    slot's configuration matrix on both switches — port occupancy in the
    per-switch register files is what arbitrates parallel links.
    """

    index: int
    a: int
    b: int
    a_port: int
    b_port: int

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ConfigurationError(f"trunk link {self.index} loops switch {self.a}")
        if self.a > self.b:
            raise ConfigurationError(
                f"trunk link {self.index} must be ordered a < b, "
                f"got ({self.a}, {self.b})"
            )

    def port_on(self, switch: int) -> int:
        """The local port this link occupies on ``switch``."""
        if switch == self.a:
            return self.a_port
        if switch == self.b:
            return self.b_port
        raise ConfigurationError(
            f"link {self.index} ({self.a} <-> {self.b}) does not touch "
            f"switch {switch}"
        )

    def other(self, switch: int) -> int:
        """The switch on the far end of the link from ``switch``."""
        if switch == self.a:
            return self.b
        if switch == self.b:
            return self.a
        raise ConfigurationError(
            f"link {self.index} ({self.a} <-> {self.b}) does not touch "
            f"switch {switch}"
        )


class Topology:
    """An immutable switch graph with endpoint attachments and trunk links."""

    __slots__ = (
        "name",
        "n_endpoints",
        "switch_ports",
        "endpoint_switch",
        "endpoint_port",
        "links",
        "_trunks",
        "_neighbors",
    )

    def __init__(
        self,
        *,
        name: str,
        n_endpoints: int,
        switch_ports: tuple[int, ...],
        endpoint_switch: tuple[int, ...],
        endpoint_port: tuple[int, ...],
        links: tuple[TrunkLink, ...],
    ) -> None:
        if n_endpoints < 2:
            raise ConfigurationError("a topology needs at least 2 endpoints")
        if not switch_ports:
            raise ConfigurationError("a topology needs at least one switch")
        if len(endpoint_switch) != n_endpoints or len(endpoint_port) != n_endpoints:
            raise ConfigurationError(
                "endpoint attachment maps must cover every endpoint"
            )
        self.name = name
        self.n_endpoints = n_endpoints
        self.switch_ports = switch_ports
        self.endpoint_switch = endpoint_switch
        self.endpoint_port = endpoint_port
        self.links = links
        # trunk groups: (a, b) with a < b -> the parallel links' indices
        trunks: dict[tuple[int, int], list[int]] = {}
        for link in links:
            if link.index != links.index(link):
                pass  # indices are validated below by position instead
            trunks.setdefault((link.a, link.b), []).append(link.index)
        self._trunks: dict[tuple[int, int], tuple[int, ...]] = {
            pair: tuple(ids) for pair, ids in trunks.items()
        }
        neighbors: dict[int, set[int]] = {}
        for a, b in self._trunks:
            neighbors.setdefault(a, set()).add(b)
            neighbors.setdefault(b, set()).add(a)
        self._neighbors: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors.get(s, ()))) for s in range(self.n_switches)
        )
        self._validate()

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def single_switch(cls, n_endpoints: int) -> "Topology":
        """The classic shape: one crossbar, endpoint ``i`` on local port ``i``."""
        return cls(
            name="single-switch",
            n_endpoints=n_endpoints,
            switch_ports=(n_endpoints,),
            endpoint_switch=(0,) * n_endpoints,
            endpoint_port=tuple(range(n_endpoints)),
            links=(),
        )

    def _validate(self) -> None:
        n_sw = self.n_switches
        used: list[set[int]] = [set() for _ in range(n_sw)]
        for e in range(self.n_endpoints):
            sw, port = self.endpoint_switch[e], self.endpoint_port[e]
            if not 0 <= sw < n_sw:
                raise ConfigurationError(f"endpoint {e} on unknown switch {sw}")
            self._claim_port(used, sw, port, f"endpoint {e}")
        for pos, link in enumerate(self.links):
            if link.index != pos:
                raise ConfigurationError(
                    f"link at position {pos} carries index {link.index}"
                )
            if not 0 <= link.a < n_sw or not 0 <= link.b < n_sw:
                raise ConfigurationError(f"link {pos} touches an unknown switch")
            self._claim_port(used, link.a, link.a_port, f"link {pos}")
            self._claim_port(used, link.b, link.b_port, f"link {pos}")

    def _claim_port(
        self, used: list[set[int]], switch: int, port: int, owner: str
    ) -> None:
        if not 0 <= port < self.switch_ports[switch]:
            raise ConfigurationError(
                f"{owner}: port {port} out of range for switch {switch} "
                f"({self.switch_ports[switch]} ports)"
            )
        if port in used[switch]:
            raise ConfigurationError(
                f"{owner}: port {port} of switch {switch} is already claimed"
            )
        used[switch].add(port)

    # -- structure ---------------------------------------------------------------

    @property
    def n_switches(self) -> int:
        return len(self.switch_ports)

    @property
    def n_links(self) -> int:
        return len(self.links)

    @property
    def is_single_switch(self) -> bool:
        return self.n_switches == 1

    def trunk_links(self, a: int, b: int) -> tuple[int, ...]:
        """Indices of the parallel links between switches ``a`` and ``b``."""
        key = (a, b) if a < b else (b, a)
        return self._trunks.get(key, ())

    def neighbors(self, switch: int) -> tuple[int, ...]:
        """Switches reachable from ``switch`` over at least one trunk."""
        return self._neighbors[switch]

    def endpoints_of(self, switch: int) -> tuple[int, ...]:
        """Endpoints attached to ``switch``, in endpoint order."""
        return tuple(
            e for e in range(self.n_endpoints) if self.endpoint_switch[e] == switch
        )

    # -- deterministic path selection ----------------------------------------------

    def route(
        self, src: int, dst: int, healthy: np.ndarray | None = None
    ) -> tuple[int, ...] | None:
        """Shortest switch path from endpoint ``src`` to endpoint ``dst``.

        Returns the sequence of switch indices the circuit traverses
        (length 1 when both endpoints share a switch), or ``None`` when no
        healthy path exists.  ``healthy`` is an optional per-link boolean
        mask; a trunk is usable while at least one of its parallel links
        is healthy.  Among equal-cost next hops the choice is a fixed
        deterministic mix of the endpoint pair, so routes are
        reproducible while different pairs spread over a fat tree's
        multi-paths.
        """
        a = self.endpoint_switch[src]
        b = self.endpoint_switch[dst]
        if a == b:
            return (a,)
        dist = self._distances_to(b, healthy)
        if dist[a] < 0:
            return None
        path = [a]
        here = a
        while here != b:
            candidates = [
                nxt
                for nxt in self._neighbors[here]
                if dist[nxt] == dist[here] - 1
                and self._trunk_usable(here, nxt, healthy)
            ]
            # BFS reached `here`, so a strictly-closer healthy neighbor exists
            assert candidates, "inconsistent BFS distances"
            pick = (src * _SPREAD_MIX + dst) % len(candidates)
            here = candidates[pick]
            path.append(here)
        return tuple(path)

    def _trunk_usable(self, a: int, b: int, healthy: np.ndarray | None) -> bool:
        ids = self.trunk_links(a, b)
        if not ids:
            return False
        if healthy is None:
            return True
        return bool(any(healthy[i] for i in ids))

    def _distances_to(self, target: int, healthy: np.ndarray | None) -> list[int]:
        """BFS hop distances to ``target`` (-1: unreachable)."""
        dist = [-1] * self.n_switches
        dist[target] = 0
        frontier: deque[int] = deque((target,))
        while frontier:
            here = frontier.popleft()
            for nxt in self._neighbors[here]:
                if dist[nxt] < 0 and self._trunk_usable(here, nxt, healthy):
                    dist[nxt] = dist[here] + 1
                    frontier.append(nxt)
        return dist

    def diameter(self) -> int:
        """Largest switch count any endpoint pair's route traverses."""
        switches = sorted({self.endpoint_switch[e] for e in range(self.n_endpoints)})
        worst = 1
        for s in switches:
            dist = self._distances_to(s, None)
            for t in switches:
                if dist[t] < 0:
                    raise ConfigurationError(
                        f"topology {self.name!r} is disconnected "
                        f"(switch {t} cannot reach switch {s})"
                    )
                worst = max(worst, dist[t] + 1)
        return worst

    # -- timing --------------------------------------------------------------------

    def path_latency_ps(self, params: SystemParams, n_switches: int) -> int:
        """Established-pipe fill time over ``n_switches`` passive switches.

        NIC + SerDes + (cable + LVDS hop) per switch + final cable +
        SerDes + NIC — the same formula as
        :meth:`repro.networks.multihop.MultiHopModel.tdm_path_fill_ps`,
        and equal to :attr:`repro.params.SystemParams.pipe_latency_ps`
        for a single switch.
        """
        if n_switches < 1:
            raise ConfigurationError("a path traverses at least one switch")
        per_hop = params.cable_ps + params.lvds_switch_ps
        return (
            params.nic_delay_ps
            + params.serdes_ps
            + per_hop * n_switches
            + params.cable_ps
            + params.serdes_ps
            + params.nic_delay_ps
        )

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}: {self.n_endpoints} endpoints, "
            f"{self.n_switches} switches, {self.n_links} links)"
        )

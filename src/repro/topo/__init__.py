"""Switch-graph topology layer: graphs, port maps, deterministic routing."""

from .builders import fat_tree, full_mesh, line
from .graph import Topology, TrunkLink

__all__ = ["Topology", "TrunkLink", "fat_tree", "full_mesh", "line"]

"""Workload generators: the paper's patterns plus synthetic extras."""

from .alltoall import AllToAllPattern, shift_permutation
from .base import TrafficPattern, TrafficPhase, assign_seq, mesh_dims
from .hybrid import HybridPattern
from .mesh import (
    OrderedMeshPattern,
    RandomMeshPattern,
    neighbor_permutations,
    torus_neighbors,
)
from .nas import NasLikeTrace, PHASE_ARCHETYPES
from .openloop import OpenLoopUniformPattern
from .scatter import ScatterPattern
from .tracefile import TraceFilePattern, parse_trace, save_trace
from .synthetic import (
    BitComplementPattern,
    HotspotPattern,
    PermutationPattern,
    TornadoPattern,
    UniformRandomPattern,
)
from .twophase import TwoPhasePattern

__all__ = [
    "AllToAllPattern",
    "shift_permutation",
    "TrafficPattern",
    "TrafficPhase",
    "assign_seq",
    "mesh_dims",
    "HybridPattern",
    "OrderedMeshPattern",
    "RandomMeshPattern",
    "neighbor_permutations",
    "torus_neighbors",
    "NasLikeTrace",
    "OpenLoopUniformPattern",
    "PHASE_ARCHETYPES",
    "ScatterPattern",
    "BitComplementPattern",
    "HotspotPattern",
    "PermutationPattern",
    "TornadoPattern",
    "UniformRandomPattern",
    "TwoPhasePattern",
    "TraceFilePattern",
    "parse_trace",
    "save_trace",
]

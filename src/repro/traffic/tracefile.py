"""Trace-file traffic: record and replay message traces.

The paper drives each simulated processor from a *command file defining
the type and sequence of communications*.  This module provides that
interface for the library: a plain-text trace format, one message per
line::

    # phase <name>            -- starts a new phase (optional)
    <src> <dst> <size_bytes> [inject_ns]

Blank lines and ``#`` comments (other than phase markers) are ignored.
:class:`TraceFilePattern` replays a trace through any network model;
:func:`save_trace` writes one back out, so captured or externally
generated workloads round-trip.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from ..errors import TrafficError
from ..sim.clock import PS_PER_NS
from ..sim.rng import RngStreams
from ..types import Message
from .base import TrafficPattern, TrafficPhase

__all__ = ["TraceFilePattern", "parse_trace", "save_trace"]


def parse_trace(text: TextIO, n_ports: int) -> list[TrafficPhase]:
    """Parse a trace stream into phases (at least one)."""
    phases: list[TrafficPhase] = []
    name = "phase0"
    msgs: list[Message] = []

    def flush() -> None:
        nonlocal msgs, name
        if msgs:
            phases.append(TrafficPhase(name, msgs))
            msgs = []

    for lineno, raw in enumerate(text, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            marker = line[1:].strip()
            if marker.startswith("phase"):
                flush()
                parts = marker.split(maxsplit=1)
                name = parts[1].strip() if len(parts) > 1 else f"phase{len(phases)}"
            continue
        fields = line.split()
        if len(fields) not in (3, 4):
            raise TrafficError(
                f"trace line {lineno}: expected 'src dst size [inject_ns]', got {line!r}"
            )
        try:
            src, dst, size = int(fields[0]), int(fields[1]), int(fields[2])
            inject_ns = float(fields[3]) if len(fields) == 4 else 0.0
        except ValueError as exc:
            raise TrafficError(f"trace line {lineno}: {exc}") from exc
        if not (0 <= src < n_ports and 0 <= dst < n_ports):
            raise TrafficError(
                f"trace line {lineno}: ports ({src}, {dst}) out of range"
            )
        msgs.append(
            Message(
                src=src, dst=dst, size=size, inject_ps=int(inject_ns * PS_PER_NS)
            )
        )
    flush()
    if not phases:
        raise TrafficError("trace contains no messages")
    return phases


def save_trace(phases: Iterable[TrafficPhase], path: str | Path) -> None:
    """Write phases in the trace format (inject times in ns)."""
    out = io.StringIO()
    for phase in phases:
        out.write(f"# phase {phase.name}\n")
        for m in phase.messages:
            if m.inject_ps:
                out.write(f"{m.src} {m.dst} {m.size} {m.inject_ps / PS_PER_NS:g}\n")
            else:
                out.write(f"{m.src} {m.dst} {m.size}\n")
    Path(path).write_text(out.getvalue())


class TraceFilePattern(TrafficPattern):
    """Replay a recorded trace file as a traffic pattern."""

    name = "trace-file"

    def __init__(self, n_ports: int, path: str | Path) -> None:
        # size_bytes is per-message in the trace; use 1 as a placeholder
        super().__init__(n_ports, size_bytes=1)
        self.path = Path(path)
        if not self.path.exists():
            raise TrafficError(f"trace file {self.path} does not exist")

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        with self.path.open() as fh:
            return parse_trace(fh, self.n_ports)

"""Open-loop (rate-driven) traffic.

The paper's evaluation is trace-driven (command files), but the standard
methodology of the interconnection-network literature it builds on
(Duato/Yalamanchili/Ni, the paper's reference [1]) characterises a switch
by its **load–latency curve**: every node injects messages as a Poisson
process at a chosen fraction of link capacity, and mean delivery latency
is plotted against offered load until saturation.

:class:`OpenLoopUniformPattern` generates that workload: per node,
exponential inter-arrival times with rate

    lambda = load * link_rate / message_size

and uniformly random (non-self) destinations.  ``duration_ns`` bounds the
injection window; all messages injected inside it are delivered before
the run ends (the network drains), so near saturation the drain phase
naturally exposes the queueing blow-up.
"""

from __future__ import annotations

from ..errors import TrafficError
from ..sim.clock import PS_PER_NS
from ..sim.rng import RngStreams
from ..types import Message
from .base import TrafficPattern, TrafficPhase

__all__ = ["OpenLoopUniformPattern"]


class OpenLoopUniformPattern(TrafficPattern):
    """Poisson arrivals at a fixed fraction of link capacity."""

    name = "open-loop-uniform"

    def __init__(
        self,
        n_ports: int,
        size_bytes: int,
        load: float,
        duration_ns: float,
        byte_ps: int = 1250,
    ) -> None:
        super().__init__(n_ports, size_bytes)
        if not 0.0 < load <= 1.0:
            raise TrafficError(f"offered load must be in (0, 1], got {load}")
        if duration_ns <= 0:
            raise TrafficError("injection window must be positive")
        self.load = load
        self.duration_ns = duration_ns
        self.byte_ps = byte_ps

    @property
    def mean_gap_ps(self) -> float:
        """Mean inter-arrival time per node at the requested load."""
        service_ps = self.size_bytes * self.byte_ps
        return service_ps / self.load

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        gen = rng.get(f"{self.name}-l{self.load}")
        horizon_ps = int(self.duration_ns * PS_PER_NS)
        msgs: list[Message] = []
        for src in range(self.n_ports):
            t = 0.0
            while True:
                t += gen.exponential(self.mean_gap_ps)
                if t >= horizon_ps:
                    break
                dst = int(gen.integers(0, self.n_ports - 1))
                if dst >= src:
                    dst += 1
                msgs.append(
                    self._msg_at(src, dst, int(t))
                )
        if not msgs:
            raise TrafficError(
                "injection window too short: no messages were generated"
            )
        msgs.sort(key=lambda m: m.inject_ps)
        return [TrafficPhase(f"{self.name}-{self.load:.2f}", msgs)]

    def _msg_at(self, src: int, dst: int, inject_ps: int) -> Message:
        return Message(src=src, dst=dst, size=self.size_bytes, inject_ps=inject_ps)

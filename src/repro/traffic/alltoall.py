"""All-to-all exchange.

Every node sends one message to every other node.  Message order at each
source follows the classic shifted schedule — node ``u``'s ``i``-th message
goes to ``(u + i) mod N`` — so the offered load at any instant is close to
a permutation.  The connection set is the complete bipartite set minus the
diagonal: ``N(N-1)`` connections, decomposable into exactly ``N - 1`` shift
permutations (the preload schedule for this phase).
"""

from __future__ import annotations

from ..fabric.config import ConfigMatrix
from ..sim.rng import RngStreams
from ..types import Connection, Message
from .base import TrafficPattern, TrafficPhase

__all__ = ["AllToAllPattern", "shift_permutation"]


def shift_permutation(n: int, shift: int) -> list[int]:
    """The permutation dest[u] = (u + shift) mod n (shift != 0 mod n)."""
    if shift % n == 0:
        raise ValueError("shift 0 maps nodes to themselves")
    return [(u + shift) % n for u in range(n)]


class AllToAllPattern(TrafficPattern):
    """Complete exchange: each node sends to all N-1 others."""

    name = "all-to-all"

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        n = self.n_ports
        msgs: list[Message] = []
        # round i: every node sends to its shift-i partner (a permutation),
        # so sources progress through disjoint destinations in lock-step
        for shift in range(1, n):
            for u in range(n):
                msgs.append(self._msg(u, (u + shift) % n))
        static = {Connection(u, v) for u in range(n) for v in range(n) if u != v}
        # program-order preload: the shift permutations, in round order
        preload = [
            ConfigMatrix.from_permutation(shift_permutation(n, s))
            for s in range(1, n)
        ]
        return [
            TrafficPhase(
                self.name, msgs, static_conns=static, preload_configs=preload
            )
        ]

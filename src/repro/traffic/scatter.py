"""The Scatter test pattern.

Paper, Section 5: *"The Scatter test sends a unique message from a single
processor to all 128 processors."*  One source, ``N - 1`` messages (self
delivery is a local copy and is not modelled), all queued at time zero.

Scatter's entire connection set ``{(s, v) : v != s}`` is statically known,
but it can never be multiplexed wider than one connection per slot (every
connection shares the source's input port), which is why the paper finds
preloaded and dynamic TDM nearly identical on this pattern.
"""

from __future__ import annotations

from ..errors import TrafficError
from ..fabric.config import ConfigMatrix
from ..sim.rng import RngStreams
from ..types import Connection
from .base import TrafficPattern, TrafficPhase

__all__ = ["ScatterPattern"]


class ScatterPattern(TrafficPattern):
    """One processor sends a unique message to every other processor."""

    name = "scatter"

    def __init__(self, n_ports: int, size_bytes: int, source: int = 0) -> None:
        super().__init__(n_ports, size_bytes)
        if not 0 <= source < n_ports:
            raise TrafficError(f"scatter source {source} out of range")
        self.source = source

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        msgs = [
            self._msg(self.source, dst)
            for dst in range(self.n_ports)
            if dst != self.source
        ]
        static = {Connection(self.source, m.dst) for m in msgs}
        # program-order preload schedule: one single-connection configuration
        # per destination, in send order (all share the source's input port,
        # so no configuration can hold more than one of them)
        preload = [
            ConfigMatrix.from_pairs(self.n_ports, [(self.source, m.dst)])
            for m in msgs
        ]
        return [
            TrafficPhase(
                "scatter", msgs, static_conns=static, preload_configs=preload
            )
        ]

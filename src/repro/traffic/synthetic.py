"""Additional synthetic patterns.

These are not in the paper's Figure 4 sweep but exercise the same machinery
for the ablation benches and the examples: uniform random (no locality at
all), hotspot (one over-subscribed destination), a fixed random permutation
(perfect spatial locality, working set of one), bit-complement, and tornado
(ring shift by N/2 - 1).
"""

from __future__ import annotations

import numpy as np

from ..errors import TrafficError
from ..sim.rng import RngStreams
from ..types import Connection, Message
from .base import TrafficPattern, TrafficPhase

__all__ = [
    "UniformRandomPattern",
    "HotspotPattern",
    "PermutationPattern",
    "BitComplementPattern",
    "TornadoPattern",
]


class UniformRandomPattern(TrafficPattern):
    """Every message picks a uniformly random non-self destination."""

    name = "uniform"

    def __init__(
        self, n_ports: int, size_bytes: int, messages_per_node: int = 16
    ) -> None:
        super().__init__(n_ports, size_bytes)
        if messages_per_node < 1:
            raise TrafficError("need at least one message per node")
        self.messages_per_node = messages_per_node

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        gen = rng.get(self.name)
        n = self.n_ports
        msgs: list[Message] = []
        for _ in range(self.messages_per_node):
            draws = gen.integers(0, n - 1, size=n)
            for u in range(n):
                dst = int(draws[u])
                if dst >= u:
                    dst += 1
                msgs.append(self._msg(u, dst))
        return [TrafficPhase(self.name, msgs)]


class HotspotPattern(TrafficPattern):
    """A fraction of all traffic converges on one hot destination."""

    name = "hotspot"

    def __init__(
        self,
        n_ports: int,
        size_bytes: int,
        hotspot: int = 0,
        hot_fraction: float = 0.25,
        messages_per_node: int = 16,
    ) -> None:
        super().__init__(n_ports, size_bytes)
        if not 0 <= hotspot < n_ports:
            raise TrafficError("hotspot node out of range")
        if not 0.0 <= hot_fraction <= 1.0:
            raise TrafficError("hot fraction must be in [0,1]")
        self.hotspot = hotspot
        self.hot_fraction = hot_fraction
        self.messages_per_node = messages_per_node

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        gen = rng.get(self.name)
        n = self.n_ports
        msgs: list[Message] = []
        for _ in range(self.messages_per_node):
            coins = gen.random(n)
            draws = gen.integers(0, n - 1, size=n)
            for u in range(n):
                if coins[u] < self.hot_fraction and u != self.hotspot:
                    dst = self.hotspot
                else:
                    dst = int(draws[u])
                    if dst >= u:
                        dst += 1
                msgs.append(self._msg(u, dst))
        static = {Connection(u, self.hotspot) for u in range(n) if u != self.hotspot}
        return [TrafficPhase(self.name, msgs, static_conns=static)]


class PermutationPattern(TrafficPattern):
    """Every node repeatedly sends to one fixed partner (a random permutation)."""

    name = "permutation"

    def __init__(
        self, n_ports: int, size_bytes: int, messages_per_node: int = 16
    ) -> None:
        super().__init__(n_ports, size_bytes)
        self.messages_per_node = messages_per_node

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        gen = rng.get(self.name)
        n = self.n_ports
        # draw a derangement-ish permutation: retry until no fixed points
        identity = np.arange(n)
        while True:
            perm = gen.permutation(n)
            if not (perm == identity).any():
                break
        msgs: list[Message] = []
        for _ in range(self.messages_per_node):
            for u in range(n):
                msgs.append(self._msg(u, int(perm[u])))
        static = {Connection(u, int(perm[u])) for u in range(n)}
        return [TrafficPhase(self.name, msgs, static_conns=static)]


class BitComplementPattern(TrafficPattern):
    """dest(u) = ~u — the classic worst case for dimension-ordered meshes."""

    name = "bit-complement"

    def __init__(
        self, n_ports: int, size_bytes: int, messages_per_node: int = 16
    ) -> None:
        super().__init__(n_ports, size_bytes)
        if n_ports & (n_ports - 1):
            raise TrafficError("bit-complement needs a power-of-two node count")
        self.messages_per_node = messages_per_node

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        n = self.n_ports
        mask = n - 1
        msgs: list[Message] = []
        for _ in range(self.messages_per_node):
            for u in range(n):
                msgs.append(self._msg(u, u ^ mask))
        static = {Connection(u, u ^ mask) for u in range(n)}
        return [TrafficPhase(self.name, msgs, static_conns=static)]


class TornadoPattern(TrafficPattern):
    """dest(u) = (u + N//2 - 1) mod N — adversarial for ring topologies."""

    name = "tornado"

    def __init__(
        self, n_ports: int, size_bytes: int, messages_per_node: int = 16
    ) -> None:
        super().__init__(n_ports, size_bytes)
        self.messages_per_node = messages_per_node

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        n = self.n_ports
        shift = max(1, n // 2 - 1)
        msgs: list[Message] = []
        for _ in range(self.messages_per_node):
            for u in range(n):
                msgs.append(self._msg(u, (u + shift) % n))
        static = {Connection(u, (u + shift) % n) for u in range(n)}
        return [TrafficPhase(self.name, msgs, static_conns=static)]

"""Traffic pattern framework.

A :class:`TrafficPattern` turns its parameters into one or more
:class:`TrafficPhase` objects.  A *phase* matches the paper's notion of a
communication working set ``W(j)``: a batch of messages whose connection
set is (potentially) cacheable in the network at once.  Network models
inject phase ``j+1`` only after phase ``j`` has fully drained — the
barrier a bulk-synchronous parallel program would impose.

Each phase also reports which of its connections are *statically known*
(compile-time determinable in the paper's terminology).  The compiled
communication layer (:mod:`repro.compiled`) turns exactly that set into
preloaded configurations; the dynamic scheduler handles the rest.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import TrafficError
from ..sim.rng import RngStreams
from ..types import Connection, Message

__all__ = ["TrafficPhase", "TrafficPattern", "mesh_dims", "assign_seq"]


@dataclass(slots=True)
class TrafficPhase:
    """One communication working set: messages plus static-knowledge info."""

    name: str
    messages: list[Message]
    #: connections the compiler could know before the phase runs
    static_conns: set[Connection] = field(default_factory=set)
    #: optional compiled preload schedule: configurations in *program order*
    #: (a compiler that knows the send order emits batches aligned with it;
    #: when absent, the generic edge-colouring compiler is used instead)
    preload_configs: list | None = None

    def connection_set(self) -> set[Connection]:
        """All distinct connections the phase's traffic uses."""
        return {m.connection for m in self.messages}

    def dynamic_conns(self) -> set[Connection]:
        """Connections not statically known (need run-time scheduling)."""
        return self.connection_set() - self.static_conns

    @property
    def total_bytes(self) -> int:
        return sum(m.size for m in self.messages)

    def __post_init__(self) -> None:
        if not self.messages:
            raise TrafficError(f"phase {self.name!r} has no messages")


class TrafficPattern(ABC):
    """Base class for workload generators.

    Subclasses implement :meth:`build_phases`; the public :meth:`phases`
    wraps it with sequence numbering so every message in a run carries a
    unique ``seq``.
    """

    #: short name used in reports ("scatter", "ordered-mesh", ...)
    name: str = "pattern"

    def __init__(self, n_ports: int, size_bytes: int) -> None:
        if n_ports < 2:
            raise TrafficError("patterns need at least two ports")
        if size_bytes <= 0:
            raise TrafficError("message size must be positive")
        self.n_ports = n_ports
        self.size_bytes = size_bytes

    @abstractmethod
    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        """Generate the phase list (messages carry seq = 0; fixed later)."""

    def phases(self, rng: RngStreams) -> list[TrafficPhase]:
        """Generate phases with globally unique message sequence numbers."""
        out = self.build_phases(rng)
        assign_seq(out)
        return out

    def total_bytes(self, rng: RngStreams) -> int:
        return sum(p.total_bytes for p in self.phases(rng))

    def _msg(self, src: int, dst: int, size: int | None = None) -> Message:
        return Message(src=src, dst=dst, size=size or self.size_bytes)


def assign_seq(phases: list[TrafficPhase]) -> None:
    """Stamp unique, deterministic sequence numbers across all phases."""
    counter = itertools.count()
    for phase in phases:
        for msg in phase.messages:
            msg.seq = next(counter)


def mesh_dims(n: int) -> tuple[int, int]:
    """Most-square (rows, cols) factorisation of ``n`` with both dims >= 2.

    The paper's 128-processor system maps to a 16 x 8 torus.  Raises for
    node counts (primes, < 4) that admit no such factorisation.
    """
    if n < 4:
        raise TrafficError(f"cannot build a 2-D mesh of {n} nodes")
    best: tuple[int, int] | None = None
    r = int(n**0.5)
    while r >= 2:
        if n % r == 0 and n // r >= 2:
            best = (max(r, n // r), min(r, n // r))
            break
        r -= 1
    if best is None:
        raise TrafficError(f"{n} nodes do not factor into a 2-D mesh")
    return best

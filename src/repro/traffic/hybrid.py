"""The hybrid determinism pattern (Figure 5 of the paper).

Paper, Section 5: *"a percentage of the communications are to specific
processors and the remaining are randomly sent to any processor.  We select
a multiplexing degree and we use k slots to preload the static patterns,
while the other 3-k slots are used to schedule dynamic communication."*

Each node owns ``n_static`` *specific* destinations — the ring-shift
partners ``(u + 1) mod N, (u + 2) mod N, ...`` — so the static pattern is a
set of ``n_static`` permutations, each preloadable into one configuration.
Every message independently targets a static destination with probability
``determinism`` (chosen round-robin among the static partners) and a
uniformly random non-self destination otherwise.
"""

from __future__ import annotations

from ..errors import TrafficError
from ..fabric.config import ConfigMatrix
from ..sim.rng import RngStreams
from ..types import Connection, Message
from .alltoall import shift_permutation
from .base import TrafficPattern, TrafficPhase

__all__ = ["HybridPattern"]


class HybridPattern(TrafficPattern):
    """Mixed static/random traffic parameterised by a determinism fraction."""

    name = "hybrid"

    def __init__(
        self,
        n_ports: int,
        size_bytes: int,
        determinism: float,
        messages_per_node: int = 32,
        n_static: int = 2,
    ) -> None:
        super().__init__(n_ports, size_bytes)
        if not 0.0 <= determinism <= 1.0:
            raise TrafficError(f"determinism must be in [0,1], got {determinism}")
        if not 1 <= n_static < n_ports:
            raise TrafficError(f"n_static {n_static} out of range")
        if messages_per_node < 1:
            raise TrafficError("need at least one message per node")
        self.determinism = determinism
        self.messages_per_node = messages_per_node
        self.n_static = n_static

    def static_permutations(self) -> list[list[int]]:
        """The static pattern: one ring-shift permutation per static partner."""
        return [
            shift_permutation(self.n_ports, s) for s in range(1, self.n_static + 1)
        ]

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        n = self.n_ports
        gen = rng.get(f"{self.name}-d{self.determinism}")
        msgs: list[Message] = []
        # interleave rounds so the instantaneous load mixes static/random
        for i in range(self.messages_per_node):
            # one coin and one random destination per node per round
            coins = gen.random(n)
            randoms = gen.integers(0, n - 1, size=n)
            for u in range(n):
                if coins[u] < self.determinism:
                    dst = (u + 1 + i % self.n_static) % n
                else:
                    dst = int(randoms[u])
                    if dst >= u:  # skip self without biasing
                        dst += 1
                msgs.append(self._msg(u, dst))
        static = {
            Connection(u, (u + s) % n)
            for u in range(n)
            for s in range(1, self.n_static + 1)
        }
        return [
            TrafficPhase(
                f"hybrid-d{int(self.determinism * 100)}",
                msgs,
                static_conns=static,
                preload_configs=[
                    ConfigMatrix.from_permutation(p)
                    for p in self.static_permutations()
                ],
            )
        ]

"""Nearest-neighbour 2-D mesh patterns.

Paper, Section 5: *"Random Mesh represents nearest neighbor communications
in a 2D mesh but without any predictability while Ordered Mesh represents
an ordered nearest neighbor communication pattern."*  Each node has four
favoured destinations — its torus neighbours East, West, North, South
(wrap-around keeps the destination working set at exactly four for every
node, matching the paper's "4 destinations were used").

* :class:`OrderedMeshPattern` — every node sends its four messages in the
  fixed global order E, W, N, S each round.  The four rounds' connection
  sets are four disjoint permutations, ideal for preloading.
* :class:`RandomMeshPattern` — identical messages, but each node permutes
  the destination order independently at random each round: the *set* is
  still local (4 destinations) but the *sequence* is unpredictable.
"""

from __future__ import annotations


from ..fabric.config import ConfigMatrix
from ..sim.rng import RngStreams
from ..types import Connection, Message
from .base import TrafficPattern, TrafficPhase, mesh_dims

__all__ = [
    "torus_neighbors",
    "neighbor_permutations",
    "OrderedMeshPattern",
    "RandomMeshPattern",
]

_DIRECTIONS = ("E", "W", "N", "S")


def torus_neighbors(n: int) -> dict[int, dict[str, int]]:
    """E/W/N/S torus neighbour of every node on the mesh_dims(n) torus."""
    rows, cols = mesh_dims(n)
    out: dict[int, dict[str, int]] = {}
    for node in range(n):
        r, c = divmod(node, cols)
        out[node] = {
            "E": r * cols + (c + 1) % cols,
            "W": r * cols + (c - 1) % cols,
            "N": ((r - 1) % rows) * cols + c,
            "S": ((r + 1) % rows) * cols + c,
        }
    return out


def neighbor_permutations(n: int) -> dict[str, list[int]]:
    """The four global shift permutations (dest[u] per direction).

    Each direction's map is a permutation of the nodes, so each fits in a
    single crossbar configuration — the natural 4-slot preload for mesh
    traffic.
    """
    nbrs = torus_neighbors(n)
    return {d: [nbrs[u][d] for u in range(n)] for d in _DIRECTIONS}


class _MeshBase(TrafficPattern):
    """Shared machinery for the two mesh variants."""

    def __init__(self, n_ports: int, size_bytes: int, rounds: int = 1) -> None:
        super().__init__(n_ports, size_bytes)
        if rounds < 1:
            raise ValueError("need at least one round")
        self.rounds = rounds
        self.neighbors = torus_neighbors(n_ports)

    def _static_conns(self) -> set[Connection]:
        return {
            Connection(u, v)
            for u, dirs in self.neighbors.items()
            for v in dirs.values()
        }

    def _preload_configs(self) -> list[ConfigMatrix]:
        """The four direction-shift permutations, in E/W/N/S order."""
        perms = neighbor_permutations(self.n_ports)
        return [ConfigMatrix.from_permutation(perms[d]) for d in _DIRECTIONS]


class OrderedMeshPattern(_MeshBase):
    """All nodes send E, W, N, S in the same fixed order every round."""

    name = "ordered-mesh"

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        msgs: list[Message] = []
        for _ in range(self.rounds):
            for direction in _DIRECTIONS:
                for u in range(self.n_ports):
                    msgs.append(self._msg(u, self.neighbors[u][direction]))
        return [
            TrafficPhase(
                self.name,
                msgs,
                static_conns=self._static_conns(),
                preload_configs=self._preload_configs(),
            )
        ]


class RandomMeshPattern(_MeshBase):
    """Same four destinations per node, unpredictable per-node order."""

    name = "random-mesh"

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        gen = rng.get(f"{self.name}-order")
        msgs: list[Message] = []
        for _ in range(self.rounds):
            per_node: list[list[int]] = []
            for u in range(self.n_ports):
                dirs = list(_DIRECTIONS)
                order = gen.permutation(4)
                per_node.append([self.neighbors[u][dirs[i]] for i in order])
            # interleave: step j of every node, preserving per-node order
            for j in range(4):
                for u in range(self.n_ports):
                    msgs.append(self._msg(u, per_node[u][j]))
        # the destination *set* is known (spatial locality) but the order is
        # not; the set is still what a predictor/preloader would cache
        return [
            TrafficPhase(
                self.name,
                msgs,
                static_conns=self._static_conns(),
                preload_configs=self._preload_configs(),
            )
        ]

"""The Two Phase test pattern.

Paper, Section 5: *"The Two Phase test represents those programs that
contain global communication and local communication.  In this test, there
is one 128-processor all-to-all communication followed by 16 random nearest
neighbor communications."*

Phase 1 is the all-to-all exchange; phase 2 is sixteen rounds of
random-order nearest-neighbour traffic.  The phase boundary is exactly the
point where the paper's compiler-assisted design would insert a flush
directive (Section 3.3): the all-to-all working set is useless to the mesh
phase and would only cause mispredictions.
"""

from __future__ import annotations

from ..sim.rng import RngStreams
from .alltoall import AllToAllPattern
from .base import TrafficPattern, TrafficPhase
from .mesh import RandomMeshPattern

__all__ = ["TwoPhasePattern"]


class TwoPhasePattern(TrafficPattern):
    """One all-to-all phase followed by ``nn_rounds`` random-NN rounds."""

    name = "two-phase"

    def __init__(self, n_ports: int, size_bytes: int, nn_rounds: int = 16) -> None:
        super().__init__(n_ports, size_bytes)
        if nn_rounds < 1:
            raise ValueError("need at least one nearest-neighbour round")
        self.nn_rounds = nn_rounds
        self._global = AllToAllPattern(n_ports, size_bytes)
        self._local = RandomMeshPattern(n_ports, size_bytes, rounds=nn_rounds)

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        global_phase = self._global.build_phases(rng)[0]
        global_phase.name = "two-phase/all-to-all"
        local_phase = self._local.build_phases(rng)[0]
        local_phase.name = "two-phase/random-mesh"
        return [global_phase, local_phase]

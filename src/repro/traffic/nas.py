"""NAS-like multi-phase synthetic traces.

The paper selected its four test patterns *"based on a study of the NAS
benchmarks that contain many statically known communication operations that
do not require run-time prediction.  The remaining communication operations
in the NAS benchmarks can be easily predicted by simple hardware
predictors."*

:class:`NasLikeTrace` synthesises a program in that spirit: a seeded
sequence of phases drawn from the archetypes NAS codes exhibit —

* ``stencil`` — nearest-neighbour exchange (CG/BT/SP/LU halo swaps),
* ``transpose`` — all-to-all (FT's global transpose),
* ``reduce`` — many-to-one towards a root (MG/CG reductions),
* ``broadcast`` — one-to-many from a root,
* ``random`` — a small unpredictable remainder.

Each phase reports its statically-known connection set, so the trace
exercises the compiled-communication and predictor layers end to end.
"""

from __future__ import annotations

from ..errors import TrafficError
from ..sim.rng import RngStreams
from ..types import Connection, Message
from .base import TrafficPattern, TrafficPhase, mesh_dims
from .mesh import torus_neighbors

__all__ = ["NasLikeTrace", "PHASE_ARCHETYPES"]

PHASE_ARCHETYPES = ("stencil", "transpose", "reduce", "broadcast", "random")


class NasLikeTrace(TrafficPattern):
    """A randomised multi-phase program trace in the NAS benchmark style."""

    name = "nas-like"

    def __init__(
        self,
        n_ports: int,
        size_bytes: int,
        n_phases: int = 8,
        rounds_per_phase: int = 4,
        static_fraction: float = 0.9,
    ) -> None:
        super().__init__(n_ports, size_bytes)
        if n_phases < 1 or rounds_per_phase < 1:
            raise TrafficError("phase and round counts must be positive")
        if not 0.0 <= static_fraction <= 1.0:
            raise TrafficError("static fraction must be in [0,1]")
        mesh_dims(n_ports)  # stencil phases need a mesh factorisation
        self.n_phases = n_phases
        self.rounds_per_phase = rounds_per_phase
        self.static_fraction = static_fraction

    def build_phases(self, rng: RngStreams) -> list[TrafficPhase]:
        gen = rng.get(self.name)
        nbrs = torus_neighbors(self.n_ports)
        phases: list[TrafficPhase] = []
        for p in range(self.n_phases):
            kind = PHASE_ARCHETYPES[int(gen.integers(len(PHASE_ARCHETYPES)))]
            builder = getattr(self, f"_build_{kind}")
            phases.append(builder(p, gen, nbrs))
        return phases

    # -- archetype builders ------------------------------------------------------

    def _build_stencil(self, p, gen, nbrs) -> TrafficPhase:
        msgs: list[Message] = []
        dirs = ("E", "W", "N", "S")
        for _ in range(self.rounds_per_phase):
            for d in dirs:
                for u in range(self.n_ports):
                    msgs.append(self._msg(u, nbrs[u][d]))
        static = {Connection(u, nbrs[u][d]) for u in range(self.n_ports) for d in dirs}
        return TrafficPhase(f"phase{p}-stencil", msgs, static_conns=static)

    def _build_transpose(self, p, gen, nbrs) -> TrafficPhase:
        n = self.n_ports
        msgs = [
            self._msg(u, (u + s) % n)
            for s in range(1, n)
            for u in range(n)
        ]
        static = {Connection(u, v) for u in range(n) for v in range(n) if u != v}
        return TrafficPhase(f"phase{p}-transpose", msgs, static_conns=static)

    def _build_reduce(self, p, gen, nbrs) -> TrafficPhase:
        n = self.n_ports
        root = int(gen.integers(n))
        msgs = [
            self._msg(u, root)
            for _ in range(self.rounds_per_phase)
            for u in range(n)
            if u != root
        ]
        static = {Connection(u, root) for u in range(n) if u != root}
        return TrafficPhase(f"phase{p}-reduce", msgs, static_conns=static)

    def _build_broadcast(self, p, gen, nbrs) -> TrafficPhase:
        n = self.n_ports
        root = int(gen.integers(n))
        msgs = [
            self._msg(root, v)
            for _ in range(self.rounds_per_phase)
            for v in range(n)
            if v != root
        ]
        static = {Connection(root, v) for v in range(n) if v != root}
        return TrafficPhase(f"phase{p}-broadcast", msgs, static_conns=static)

    def _build_random(self, p, gen, nbrs) -> TrafficPhase:
        n = self.n_ports
        msgs: list[Message] = []
        static: set[Connection] = set()
        for _ in range(self.rounds_per_phase):
            coins = gen.random(n)
            draws = gen.integers(0, n - 1, size=n)
            for u in range(n):
                dst = int(draws[u])
                if dst >= u:
                    dst += 1
                msgs.append(self._msg(u, dst))
                if coins[u] < self.static_fraction:
                    static.add(Connection(u, dst))
        return TrafficPhase(f"phase{p}-random", msgs, static_conns=static)

"""Service invariants asserted at campaign exit.

A drained service (no events left on the virtual clock) must satisfy all
of these; the soak harness fails a campaign on any violation, and the CI
smoke job runs one on every push.  Each check returns human-readable
violation strings instead of raising, so one broken campaign reports
*every* broken invariant at once.

1. **Request conservation** — every submitted request reached exactly one
   terminal outcome; the SLO ledger agrees with the per-request records.
2. **Lease conservation** — every granted lease was released; broken
   leases (port death, unrecoverable circuit loss) are explicitly
   accounted, never silently lost.
3. **No deadlock** — nothing is pending, queued, or watched after the
   drain: the watchdog retry budget bounds every wait.
4. **Queue bounds** — no per-port admission queue ever exceeded its
   configured depth.
5. **Register-file integrity** — the hardware model's own structural
   invariants hold, and no circuit is left resident in a healthy dynamic
   slot (pinned preloads and stuck-slot orphans are the accounted
   exceptions).
6. **Availability floor** — campaign availability stayed at or above the
   configured floor (dead-endpoint rejects excluded by definition).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ReproError
from .model import Outcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import SwitchService

__all__ = ["check_invariants"]


def check_invariants(service: "SwitchService") -> list[str]:
    """All violated service invariants of a drained campaign (empty = pass)."""
    violations: list[str] = []
    slo = service.slo

    # 1. request conservation
    by_outcome: dict[Outcome, int] = {}
    for req in service.requests:
        by_outcome[req.outcome] = by_outcome.get(req.outcome, 0) + 1
    pending_reqs = by_outcome.get(Outcome.PENDING, 0)
    if pending_reqs:
        violations.append(f"{pending_reqs} requests never reached a terminal outcome")
    if len(service.requests) != slo.arrivals:
        violations.append(
            f"request ledger mismatch: {len(service.requests)} records vs "
            f"{slo.arrivals} recorded arrivals"
        )
    granted = by_outcome.get(Outcome.GRANTED, 0)
    shed = sum(n for o, n in by_outcome.items() if o.is_shed)
    rejected = by_outcome.get(Outcome.REJECTED_DEAD, 0)
    if granted != slo.granted or shed != slo.shed or rejected != slo.rejected_dead:
        violations.append(
            f"outcome counters disagree with SLO ledger: "
            f"granted {granted}/{slo.granted}, shed {shed}/{slo.shed}, "
            f"rejected {rejected}/{slo.rejected_dead}"
        )
    if granted + shed + rejected + pending_reqs != len(service.requests):
        violations.append("outcome partition does not cover every request")

    # 2. lease conservation
    unreleased = sum(
        1 for r in service.requests if r.outcome is Outcome.GRANTED and not r.released
    )
    if unreleased:
        violations.append(f"{unreleased} granted leases were never released")
    if slo.released != granted:
        violations.append(
            f"release ledger mismatch: {slo.released} releases for {granted} grants"
        )

    # 3. no deadlock after the drain
    if service.pending:
        violations.append(f"{len(service.pending)} connection pairs still pending")
    if service.leases:
        violations.append(f"{len(service.leases)} lease refcounts still live")
    if service.queues.total:
        violations.append(f"{service.queues.total} requests still in admission queues")
    if service.lifecycle.watch_count:
        violations.append(f"{service.lifecycle.watch_count} watchdogs still armed")
    if service.sim.pending:
        violations.append(f"{service.sim.pending} events still queued after drain")

    # 4. queue bounds
    if service.queues.high_water > service.cfg.queue_depth:
        violations.append(
            f"queue high-water {service.queues.high_water} exceeded depth "
            f"{service.cfg.queue_depth}"
        )

    # 5. register-file integrity
    regs = service.fabric.scheduler.registers
    try:
        regs.check_invariants()
    except ReproError as exc:
        violations.append(f"register-file invariants: {exc}")
    leaked = 0
    for slot in range(regs.k):
        if slot in regs.pinned or slot in regs.stuck or slot in regs.quarantined:
            continue  # preload residents and orphaned circuits are accounted
        leaked += len(list(regs[slot].connections()))
    if leaked:
        violations.append(f"{leaked} circuits leaked in healthy dynamic slots")

    # 6. availability floor
    if slo.availability < service.cfg.availability_floor:
        violations.append(
            f"availability {slo.availability:.4f} below floor "
            f"{service.cfg.availability_floor:.4f}"
        )
    return violations

"""Admission control: the token-bucket front door and bounded port queues.

Both structures are pure integer state machines over virtual time, so the
service core stays bit-identical for a fixed seed: the bucket tracks its
refill remainder exactly (token-picoseconds, never floats), and the queue
accounting is plain counters.  Neither structure stores requests — the
core owns the pending map; these own the *bounds* and their bookkeeping.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .model import PS_PER_S

__all__ = ["TokenBucket", "PortQueues"]

#: bucket rates are fixed-point with this many micro-token units per token
_RATE_SCALE = 1_000_000

#: denominator of the exact refill division (micro-tokens x ps-per-second)
_REFILL_DENOM = PS_PER_S * _RATE_SCALE


class TokenBucket:
    """A deterministic token bucket over integer virtual time.

    ``rate_per_s`` tokens arrive per virtual second (fractional rates are
    held as exact micro-token integers), capped at ``burst``.  A rate of
    zero disables the bucket entirely — every take succeeds — which is the
    "no admission throttling" configuration.
    """

    __slots__ = ("burst", "_rate_micro", "_tokens", "_acc", "_last_ps", "taken", "denied")

    def __init__(self, rate_per_s: float, burst: int) -> None:
        if rate_per_s < 0:
            raise ConfigurationError(f"bucket rate must be >= 0, got {rate_per_s}")
        if burst < 1:
            raise ConfigurationError(f"bucket burst must be >= 1, got {burst}")
        self.burst = burst
        self._rate_micro = round(rate_per_s * _RATE_SCALE)
        self._tokens = burst
        self._acc = 0  # refill remainder in micro-token-picoseconds
        self._last_ps = 0
        self.taken = 0
        self.denied = 0

    @property
    def enabled(self) -> bool:
        return self._rate_micro > 0

    @property
    def rate_per_s(self) -> float:
        return self._rate_micro / _RATE_SCALE

    def tokens(self, now_ps: int) -> int:
        """Tokens available at ``now_ps`` (after refill)."""
        self._refill(now_ps)
        return self._tokens

    def _refill(self, now_ps: int) -> None:
        elapsed = now_ps - self._last_ps
        if elapsed < 0:  # pragma: no cover - callers advance monotonically
            raise ConfigurationError("token bucket time went backwards")
        self._last_ps = now_ps
        if not self._rate_micro or not elapsed:
            return
        self._acc += elapsed * self._rate_micro
        gained, self._acc = divmod(self._acc, _REFILL_DENOM)
        if gained:
            self._tokens = min(self.burst, self._tokens + int(gained))

    def try_take(self, now_ps: int) -> bool:
        """Consume one token at ``now_ps``; False when the bucket is dry."""
        if not self.enabled:
            self.taken += 1
            return True
        self._refill(now_ps)
        if self._tokens > 0:
            self._tokens -= 1
            self.taken += 1
            return True
        self.denied += 1
        return False

    def set_rate(self, now_ps: int, rate_per_s: float) -> None:
        """Change the refill rate (the ladder's throttle rung).

        The bucket is refilled at the *old* rate up to ``now_ps`` first, so
        a rate change never rewrites history.
        """
        if rate_per_s < 0:
            raise ConfigurationError(f"bucket rate must be >= 0, got {rate_per_s}")
        self._refill(now_ps)
        self._rate_micro = round(rate_per_s * _RATE_SCALE)
        self._acc = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TokenBucket(rate={self.rate_per_s}/s, burst={self.burst}, "
            f"tokens={self._tokens})"
        )


class PortQueues:
    """Bounded per-source-port admission-queue accounting.

    The service core keeps the actual request objects (keyed by connection
    pair); this tracks how many are queued per *source port* and enforces
    the bound, so one hot-spot source cannot grow state without limit.
    """

    __slots__ = ("depth", "_depths", "high_water", "enqueued", "refused")

    def __init__(self, n_ports: int, depth: int) -> None:
        if depth < 1:
            raise ConfigurationError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._depths = [0] * n_ports
        #: deepest any port queue has ever been
        self.high_water = 0
        self.enqueued = 0
        self.refused = 0

    def try_enqueue(self, port: int) -> bool:
        """Reserve a queue slot on ``port``; False when it is full."""
        if self._depths[port] >= self.depth:
            self.refused += 1
            return False
        self._depths[port] += 1
        self.enqueued += 1
        if self._depths[port] > self.high_water:
            self.high_water = self._depths[port]
        return True

    def dequeue(self, port: int) -> None:
        """Release one queue slot on ``port`` (grant, shed, or reject)."""
        if self._depths[port] <= 0:
            raise ConfigurationError(f"port {port} queue underflow")
        self._depths[port] -= 1

    def depth_of(self, port: int) -> int:
        return self._depths[port]

    @property
    def total(self) -> int:
        """Requests currently queued across every port."""
        return sum(self._depths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        busy = {p: d for p, d in enumerate(self._depths) if d}
        return f"PortQueues(depth={self.depth}, busy={busy})"

"""The online switching service: a long-running front door for the fabric.

Everything else in the repo is a batch sweep — build a network, replay a
workload, report.  This package adds the *service* view of the paper's
switch: a daemon that accepts a live stream of connection requests and
releases against a simulated fabric built from the real scheduler
machinery (:mod:`repro.sched`, :mod:`repro.fabric`), with

* **admission control** — a token-bucket front door plus bounded per-port
  request queues that shed load deterministically instead of growing
  without bound (:mod:`repro.service.admission`);
* **an overload/degradation ladder** — reject new circuits, fall back
  preload -> dynamic, serve best-effort (:mod:`repro.service.ladder`),
  reusing the :mod:`repro.faults` recovery hooks so availability degrades
  gracefully instead of the service falling over;
* **SLO accounting** — p50/p99 request-to-grant latency, availability and
  shed rate per window, exported as JSONL snapshots and Perfetto
  timelines via :mod:`repro.obs` (:mod:`repro.service.slo`);
* **seeded workload generators** — open-loop Poisson, bursty on/off and
  adversarial hot-spot mixes (:mod:`repro.service.workload`);
* **chaos soak campaigns** — ``repro soak`` runs a seeded, time-bounded
  storm of faults and overload bursts and asserts service invariants at
  exit (:mod:`repro.service.soak`, :mod:`repro.service.invariants`).

The deterministic core (:class:`~repro.service.core.SwitchService`) runs
entirely in virtual time on the :class:`~repro.sim.engine.Simulator`, so
a soak is bit-identical for a fixed seed; the asyncio front door
(:mod:`repro.service.daemon`, ``repro serve``) wraps the same core and
paces it against the wall clock.
"""

from .admission import PortQueues, TokenBucket
from .core import SwitchService
from .daemon import ServiceDaemon
from .fabric import LiveFabric
from .invariants import check_invariants
from .ladder import OverloadLadder, ServiceLevel
from .model import Outcome, ServiceConfig, ServiceRequest
from .slo import SloRecorder, SloSnapshot
from .soak import SoakConfig, SoakReport, run_soak
from .workload import Arrival, WorkloadSpec, predicted_pairs

__all__ = [
    "Arrival",
    "LiveFabric",
    "Outcome",
    "OverloadLadder",
    "PortQueues",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceLevel",
    "ServiceRequest",
    "SloRecorder",
    "SloSnapshot",
    "SoakConfig",
    "SoakReport",
    "SwitchService",
    "TokenBucket",
    "WorkloadSpec",
    "check_invariants",
    "predicted_pairs",
    "run_soak",
]

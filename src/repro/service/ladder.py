"""The overload/degradation ladder.

Sustained overload is a design input, not an error path (Tiny Tera's
lesson — see PAPERS.md): when a window's shed rate crosses the configured
threshold the service steps *down* one rung, trading fidelity for
availability, and steps back up only when the shed rate stays below the
recovery threshold.  The rungs:

====================  ==============================================
rung                  behaviour change
====================  ==============================================
NORMAL                full service
THROTTLED             token-bucket rate scaled down — new circuits
                      are rejected earlier to protect queued ones
DEGRADED              preloaded (pinned) slots fall back to the
                      dynamic scheduler — the paper's preload->dynamic
                      degradation, reused from :mod:`repro.faults`
BEST_EFFORT           no queueing: requests are placed immediately by
                      the management plane or shed on the spot, so
                      latency stays bounded while the storm lasts
====================  ==============================================

Losing a pinned slot to a fault (the :meth:`lifecycle_pinned_lost` hook
of the lifecycle layer) forces the DEGRADED rung directly — preload
integrity is gone either way, so the ladder records it and moves on.
The preload *fallback* is one-way (re-pinning would need a recompiled
working set; :attr:`OverloadLadder.preload_degraded` stays set), but the
*rung* recovers normally once the pressure signal clears — a dead pinned
slot costs preload fidelity, not admission capacity.
"""

from __future__ import annotations

import enum

from .model import ServiceConfig

__all__ = ["ServiceLevel", "OverloadLadder"]


class ServiceLevel(enum.IntEnum):
    """Ladder rungs, best to worst (higher = more degraded)."""

    NORMAL = 0
    THROTTLED = 1
    DEGRADED = 2
    BEST_EFFORT = 3


class OverloadLadder:
    """Window-driven hysteresis controller for the service level."""

    __slots__ = ("cfg", "level", "preload_degraded", "transitions")

    def __init__(self, cfg: ServiceConfig) -> None:
        self.cfg = cfg
        self.level = ServiceLevel.NORMAL
        #: set once preload slots were handed to the dynamic scheduler
        self.preload_degraded = False
        #: every transition as (time_ps, old, new, reason)
        self.transitions: list[tuple[int, ServiceLevel, ServiceLevel, str]] = []

    def note_pinned_lost(self, now_ps: int) -> bool:
        """A fault destroyed a pinned slot: force the DEGRADED rung.

        Returns True when this call caused the preload fallback (the
        fabric should unpin the surviving preloaded slots exactly once).
        The rung itself recovers once the pressure clears; only the
        preload fallback is permanent.
        """
        first = not self.preload_degraded
        self.preload_degraded = True
        if self.level < ServiceLevel.DEGRADED:
            self._move(now_ps, ServiceLevel.DEGRADED, "pinned-slot-lost")
        return first

    def evaluate(self, now_ps: int, pressure: float) -> ServiceLevel:
        """One window closed with shed ``pressure``; maybe change rung.

        ``pressure`` is the window's shed rate *excluding* throttle sheds
        (see :meth:`repro.service.slo.SloRecorder.window_pressure_rate`) —
        overload the admission throttle failed to absorb.  One rung per
        window in either direction: overload must *persist* to reach
        BEST_EFFORT, and recovery climbs back gradually.
        """
        if pressure >= self.cfg.degrade_shed_rate and self.level < ServiceLevel.BEST_EFFORT:
            self._move(now_ps, ServiceLevel(self.level + 1), f"pressure {pressure:.3f}")
        elif pressure <= self.cfg.recover_shed_rate and self.level > ServiceLevel.NORMAL:
            self._move(now_ps, ServiceLevel(self.level - 1), f"pressure {pressure:.3f}")
        return self.level

    def _move(self, now_ps: int, new: ServiceLevel, reason: str) -> None:
        self.transitions.append((now_ps, self.level, new, reason))
        self.level = new

    def bucket_rate(self, base_rate_per_s: float) -> float:
        """The admission rate at the current rung (throttled below NORMAL)."""
        if self.level == ServiceLevel.NORMAL or base_rate_per_s == 0:
            return base_rate_per_s
        return base_rate_per_s * (self.cfg.throttle_factor ** int(self.level))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OverloadLadder(level={self.level.name}, transitions={len(self.transitions)})"

"""The asyncio front door: ``repro serve``.

:class:`ServiceDaemon` wraps one deterministic
:class:`~repro.service.core.SwitchService` in a line-delimited-JSON TCP
protocol and paces its virtual clock against the wall clock.  The daemon
adds *no* service behaviour — every admission, grant, shed, and ladder
decision happens in the core, in virtual time; the daemon only decides
*when* virtual time advances (a fixed number of virtual microseconds per
wall second) and at which virtual instant an external request lands.

All state is touched from one asyncio event loop, and no handler awaits
mid-mutation, so the simulator needs no locking.

Protocol (one JSON object per line, response per request)::

    -> {"op": "request", "src": 0, "dst": 5, "hold_ns": 8000}
    <- {"ok": true, "req_id": 17, "outcome": "pending"}
    -> {"op": "poll", "req_id": 17}
    <- {"ok": true, "req_id": 17, "outcome": "granted", "latency_ps": 240000}
    -> {"op": "release", "req_id": 17}
    <- {"ok": true, "req_id": 17, "released": true}
    -> {"op": "stats"}
    <- {"ok": true, "stats": {...}}         # see SwitchService.stats()
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ConfigurationError, ReproError
from ..sim.clock import PS_PER_NS, PS_PER_US
from .core import SwitchService
from .model import Outcome

__all__ = ["ServiceDaemon"]


class ServiceDaemon:
    """Serve one :class:`SwitchService` over line-JSON TCP."""

    def __init__(
        self,
        service: SwitchService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        us_per_wall_s: float = 200.0,
        tick_s: float = 0.005,
    ) -> None:
        if us_per_wall_s <= 0:
            raise ConfigurationError(f"pacing rate must be positive, got {us_per_wall_s}")
        if tick_s <= 0:
            raise ConfigurationError(f"pacing tick must be positive, got {tick_s}")
        self.service = service
        self.host = host
        self.port = port
        #: virtual microseconds simulated per wall-clock second
        self.us_per_wall_s = us_per_wall_s
        self.tick_s = tick_s
        self._server: asyncio.AbstractServer | None = None
        self._pacer: asyncio.Task | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the virtual-clock pacer."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._pacer = asyncio.create_task(self._pace())

    async def stop(self) -> None:
        self._stopping.set()
        if self._pacer is not None:
            self._pacer.cancel()
            try:
                await self._pacer
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def run_forever(self) -> None:
        await self.start()
        await self._stopping.wait()

    async def _pace(self) -> None:
        """Advance virtual time in fixed steps, executing due events."""
        step_ps = max(1, int(self.tick_s * self.us_per_wall_s * PS_PER_US))
        while not self._stopping.is_set():
            await asyncio.sleep(self.tick_s)
            self.service.sim.run(until=self.service.sim.now + step_ps)

    # -- the wire protocol ---------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while line := await reader.readline():
                reply = self.handle_line(line.decode("utf-8", errors="replace"))
                writer.write((json.dumps(reply, separators=(",", ":")) + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()

    def handle_line(self, line: str) -> dict:
        """Process one protocol line synchronously (virtual clock frozen)."""
        try:
            msg = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad json: {exc.msg}"}
        if not isinstance(msg, dict):
            return {"ok": False, "error": "expected a json object"}
        op = msg.get("op")
        try:
            if op == "request":
                return self._op_request(msg)
            if op == "poll":
                return self._op_poll(msg)
            if op == "release":
                return self._op_release(msg)
            if op == "stats":
                return {"ok": True, "stats": self.service.stats()}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}

    def _op_request(self, msg: dict) -> dict:
        hold_ps = int(msg["hold_ns"]) * PS_PER_NS if "hold_ns" in msg else int(msg["hold_ps"])
        req = self.service.submit(int(msg["src"]), int(msg["dst"]), hold_ps)
        return {"ok": True, "req_id": req.req_id, "outcome": req.outcome.value}

    def _find(self, msg: dict):
        req_id = int(msg["req_id"])
        requests = self.service.requests
        if not 0 <= req_id < len(requests):
            raise ConfigurationError(f"unknown req_id {req_id}")
        return requests[req_id]

    def _op_poll(self, msg: dict) -> dict:
        req = self._find(msg)
        reply = {"ok": True, "req_id": req.req_id, "outcome": req.outcome.value}
        if req.outcome is Outcome.GRANTED:
            reply["latency_ps"] = req.latency_ps
            reply["released"] = req.released
        return reply

    def _op_release(self, msg: dict) -> dict:
        """Release a granted lease early (before its hold expires)."""
        req = self._find(msg)
        if req.outcome is not Outcome.GRANTED:
            return {"ok": False, "error": f"req {req.req_id} is {req.outcome.value}, not granted"}
        self.service._release(req)
        return {"ok": True, "req_id": req.req_id, "released": req.released}

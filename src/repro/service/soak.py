"""Chaos soak campaigns: seeded storms of faults and overload bursts.

``repro soak`` builds one fully-seeded campaign — an adversarial hot-spot
workload with overload bursts riding on it, plus a fault storm from
:meth:`repro.faults.schedule.FaultSchedule.generate` — replays it through
a :class:`~repro.service.core.SwitchService` to a complete drain, and
asserts the service invariants (:mod:`repro.service.invariants`) at exit.

Everything is virtual time, so the campaign is *bit-identical* for a
fixed ``(seed, seconds)``: the SLO snapshot JSONL, the report JSON, and
the Perfetto trace all come out byte-for-byte the same across runs — the
property the CI smoke job and the determinism test both lean on.  The
``seconds`` knob scales the virtual horizon (one soak second simulates
:data:`VIRTUAL_PS_PER_SOAK_SECOND` of fabric time); wall clock is only a
safety valve (``max_wall_s``), never an input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..obs.exporters import to_chrome_trace
from ..sim.clock import us
from ..sim.trace import Tracer
from ..params import SystemParams
from .core import SwitchService
from .model import PS_PER_S, ServiceConfig
from .invariants import check_invariants
from .workload import WorkloadSpec, predicted_pairs

__all__ = ["SoakConfig", "SoakReport", "run_soak", "VIRTUAL_PS_PER_SOAK_SECOND"]

#: virtual fabric time simulated per soak "second" (the --seconds unit)
VIRTUAL_PS_PER_SOAK_SECOND = us(200)


@dataclass(slots=True, frozen=True)
class SoakConfig:
    """One seeded chaos campaign (every field feeds the seed, none the clock)."""

    seed: int
    #: campaign length in soak seconds (scales the virtual horizon)
    seconds: float = 10.0
    n_ports: int = 16
    k: int = 4
    scheme: str = "hybrid"
    #: base offered arrival rate (requests per virtual second)
    rate_per_s: float = 1_500_000.0
    #: mean circuit-lease hold time
    mean_hold_ps: int = us(8)
    #: fault storm intensity (faults per virtual microsecond)
    fault_rate_per_us: float = 0.02
    #: campaign availability floor asserted at exit
    availability_floor: float = 0.55
    #: where to write slo.jsonl / report.json / trace (None = nowhere)
    out_dir: str | None = None
    #: also export a Perfetto timeline (needs out_dir)
    trace: bool = False
    #: wall-clock safety valve for the drain (never affects results)
    max_wall_s: float | None = 120.0

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ConfigurationError(f"soak seconds must be positive, got {self.seconds}")
        if self.fault_rate_per_us < 0:
            raise ConfigurationError("fault rate must be >= 0")

    @property
    def horizon_ps(self) -> int:
        return int(self.seconds * VIRTUAL_PS_PER_SOAK_SECOND)


@dataclass(slots=True)
class SoakReport:
    """Everything one soak campaign produced (JSON-stable field order)."""

    seed: int
    horizon_ps: int
    arrivals: int
    granted: int
    shed: int
    rejected_dead: int
    broken_leases: int
    availability: float
    shed_rate: float
    p50_grant_ps: int
    p99_grant_ps: int
    resident_hits: int
    best_effort_grants: int
    snapshots: int
    final_level: str
    transitions: list[list] = field(default_factory=list)
    shed_by_outcome: dict[str, int] = field(default_factory=dict)
    fault_counters: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "horizon_ps": self.horizon_ps,
            "arrivals": self.arrivals,
            "granted": self.granted,
            "shed": self.shed,
            "rejected_dead": self.rejected_dead,
            "broken_leases": self.broken_leases,
            "availability": round(self.availability, 6),
            "shed_rate": round(self.shed_rate, 6),
            "p50_grant_ps": self.p50_grant_ps,
            "p99_grant_ps": self.p99_grant_ps,
            "resident_hits": self.resident_hits,
            "best_effort_grants": self.best_effort_grants,
            "snapshots": self.snapshots,
            "final_level": self.final_level,
            "transitions": self.transitions,
            "shed_by_outcome": {k: self.shed_by_outcome[k] for k in sorted(self.shed_by_outcome)},
            "fault_counters": {k: self.fault_counters[k] for k in sorted(self.fault_counters)},
            "violations": self.violations,
        }
        return json.dumps(payload, indent=2, sort_keys=False) + "\n"

    def summary(self) -> str:
        lines = [
            f"soak seed={self.seed}: {self.arrivals} arrivals over "
            f"{self.horizon_ps / 1_000_000:.1f} us virtual",
            f"  granted {self.granted}  shed {self.shed}  "
            f"rejected-dead {self.rejected_dead}  broken-leases {self.broken_leases}",
            f"  availability {self.availability:.4f}  "
            f"p50 {self.p50_grant_ps / 1000:.1f} ns  p99 {self.p99_grant_ps / 1000:.1f} ns",
            f"  faults applied "
            f"{sum(v for k, v in self.fault_counters.items() if k.startswith('applied_'))}  "
            f"ladder transitions {len(self.transitions)}  final level {self.final_level}",
        ]
        if self.violations:
            lines.append(f"  INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {v}" for v in self.violations)
        else:
            lines.append("  invariants: all hold")
        return "\n".join(lines)


def build_service(cfg: SoakConfig, *, tracer: Tracer | None = None) -> tuple:
    """Construct the seeded (service, arrivals) pair for one campaign."""
    horizon = cfg.horizon_ps
    # overload bursts: a hard spike mid-campaign and a long shoulder later
    workload = WorkloadSpec(
        kind="hotspot",
        n_ports=cfg.n_ports,
        rate_per_s=cfg.rate_per_s,
        mean_hold_ps=cfg.mean_hold_ps,
        duration_ps=horizon,
        hotspot_fraction=0.35,
        n_hot=max(1, cfg.n_ports // 8),
        overload=(
            (int(horizon * 0.35), int(horizon * 0.45), 3.0),
            (int(horizon * 0.70), int(horizon * 0.80), 2.0),
        ),
    )
    arrivals = workload.generate(cfg.seed)
    service_cfg = ServiceConfig(
        scheme=cfg.scheme,
        k=cfg.k,
        bucket_rate_per_s=cfg.rate_per_s * 1.5,
        bucket_burst=48,
        queue_depth=12,
        window_ps=us(10),
        availability_floor=cfg.availability_floor,
        degrade_shed_rate=0.15,
        recover_shed_rate=0.02,
    )
    schedule = (
        FaultSchedule.generate(
            seed=cfg.seed,
            rate_per_us=cfg.fault_rate_per_us,
            horizon_ps=horizon,
            n_ports=cfg.n_ports,
            k=cfg.k,
        )
        if cfg.fault_rate_per_us > 0
        else FaultSchedule(())
    )
    injector = FaultInjector(schedule, retry=service_cfg.retry)
    params = SystemParams(n_ports=cfg.n_ports)
    predicted = predicted_pairs(arrivals, count=cfg.n_ports)
    service = SwitchService(
        service_cfg,
        params,
        tracer=tracer,
        faults=injector,
        predicted=predicted,
    )
    return service, arrivals


def run_soak(cfg: SoakConfig) -> SoakReport:
    """Run one seeded chaos campaign to a full drain and check invariants."""
    tracer = Tracer(capacity=1 << 18) if cfg.trace else None
    service, arrivals = build_service(cfg, tracer=tracer)
    service.run_campaign(arrivals, max_wall_s=cfg.max_wall_s)
    violations = check_invariants(service)
    slo = service.slo
    p50, p99 = slo.latency_percentiles()
    injector = service.fabric.fault_injector
    assert injector is not None
    report = SoakReport(
        seed=cfg.seed,
        horizon_ps=cfg.horizon_ps,
        arrivals=slo.arrivals,
        granted=slo.granted,
        shed=slo.shed,
        rejected_dead=slo.rejected_dead,
        broken_leases=service.broken_leases,
        availability=slo.availability,
        shed_rate=slo.shed_rate,
        p50_grant_ps=p50,
        p99_grant_ps=p99,
        resident_hits=service.resident_hits,
        best_effort_grants=service.best_effort_grants,
        snapshots=len(slo.snapshots),
        final_level=service.ladder.level.name,
        transitions=[
            [t_ps, old.name, new.name, reason]
            for t_ps, old, new, reason in service.ladder.transitions
        ],
        shed_by_outcome=dict(slo.shed_by_outcome),
        fault_counters=dict(injector.counters.as_dict()),
        violations=violations,
    )
    if cfg.out_dir is not None:
        out = Path(cfg.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        slo.write_jsonl(out / "slo.jsonl")
        (out / "report.json").write_text(report.to_json(), encoding="utf-8")
        if tracer is not None:
            to_chrome_trace(tracer, out / "soak-trace.json", label=f"soak-{cfg.seed}")
    return report

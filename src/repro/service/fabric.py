"""The live fabric a service instance administers.

:class:`LiveFabric` is a :class:`~repro.networks.base.BaseNetwork` that is
never driven by traffic phases: the service core establishes and releases
circuits *online* through the same machinery the batch schemes use — the
real :class:`~repro.sched.scheduler.Scheduler` (SL array, configuration
registers, management plane), the
:class:`~repro.networks.lifecycle.ConnectionManager` (link state,
watchdogs, retry/escalate/give-up), and the
:class:`~repro.faults.injector.FaultInjector` hooks inherited from the
base class.  Because the fault hooks are the inherited ones, a chaos
campaign hits the service through exactly the code path the batch fault
sweeps exercise.

The scheme is resolved through the registry
(:func:`repro.networks.registry.get_scheme`) and must be one of the TDM
modes — the service needs a request plane and a central register file.
Preload/hybrid modes pin slots with configurations compiled (greedy edge
colouring) from the workload's *predicted* hot pairs, the paper's
predictive-preload idea applied to a live working set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..compiled.coloring import decompose
from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..networks.base import BaseNetwork
from ..networks.registry import get_scheme
from ..obs.events import Kind
from ..params import SystemParams
from ..sched.scheduler import Scheduler
from ..sim.trace import Tracer
from ..traffic.base import TrafficPhase
from .model import ServiceConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import SwitchService

__all__ = ["LiveFabric"]


class LiveFabric(BaseNetwork):
    """One crossbar + scheduler administered online by a service core."""

    scheme = "service"

    def __init__(
        self,
        cfg: ServiceConfig,
        params: SystemParams,
        *,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        strict: bool | None = None,
    ) -> None:
        info = get_scheme(cfg.scheme)
        caps = info.capabilities
        if not caps.request_plane or not caps.tdm_modes:
            raise ConfigurationError(
                f"the service needs a TDM scheme with a request plane; "
                f"{info.name!r} provides neither (choose one of "
                f"dynamic-tdm, preload, hybrid)"
            )
        super().__init__(params, tracer, faults=faults, strict=strict)
        self.cfg = cfg
        self.scheme = f"service-{info.name}"
        self.mode = caps.tdm_modes[0]
        if self.mode == "dynamic":
            self.k_preload = 0
        elif self.mode == "preload":
            self.k_preload = cfg.k
        else:  # hybrid
            self.k_preload = cfg.k_preload if cfg.k_preload is not None else max(1, cfg.k // 2)
        self.scheduler = Scheduler(params, cfg.k)
        self.scheduler.tracer = self.tracer
        self.scheduler.clock = lambda: self.sim.now
        #: pairs currently resident in pinned (preloaded) slots
        self.preloaded_pairs: set[tuple[int, int]] = set()
        #: circuits left behind in stuck slots by a failed teardown
        self.orphaned = 0

    # -- wiring ------------------------------------------------------------------

    def attach(self, service: "SwitchService") -> None:
        """Bind the service core as lifecycle client and arm the injector."""
        self.lifecycle.attach_scheduler(self.scheduler, service)
        if self.fault_injector is not None:
            self.fault_injector.bind(self)

    def _execute_phase(self, phase: TrafficPhase) -> None:  # pragma: no cover
        raise ConfigurationError(
            "LiveFabric is driven online by a service core, not by traffic phases"
        )

    # -- predictive preload ---------------------------------------------------------

    def preload_pairs(self, pairs: Iterable[tuple[int, int]]) -> int:
        """Pin up to ``k_preload`` slots with the predicted working set.

        ``pairs`` (most-likely-first) are greedily edge-coloured into
        configurations; the first ``k_preload`` configurations are loaded
        pinned.  Returns how many pairs ended up resident.
        """
        if self.k_preload == 0:
            return 0
        wanted = list(dict.fromkeys(pairs))
        if not wanted:
            return 0
        # keep only as many pairs as k_preload slots can possibly hold
        configs = decompose(wanted, self.params.n_ports)[: self.k_preload]
        self.scheduler.preload(configs, pin=True)
        for index, cfg in enumerate(configs):
            conns = list(cfg.connections())
            self.preloaded_pairs.update(conns)
            self.tracer.record(
                self.sim.now, Kind.PRELOAD_BATCH, index=index, conns=len(conns)
            )
        return len(self.preloaded_pairs)

    def degrade_preload(self) -> int:
        """Preload -> dynamic fallback: hand pinned slots to the scheduler.

        Resident preload circuits stay established until the dynamic
        scheduler releases them for new work (their request bits are only
        high while leased), so the fallback is graceful, not a flush.
        Returns the number of slots unpinned.
        """
        regs = self.scheduler.registers
        slots = sorted(regs.pinned)
        for slot in slots:
            regs.unpin(slot)
        if slots:
            self.tracer.record(self.sim.now, Kind.DEGRADE, slots=len(slots))
            self.preloaded_pairs.clear()
        return len(slots)

    # -- circuit plane (called by the service core) ----------------------------------

    def established(self, u: int, v: int) -> bool:
        return bool(self.scheduler.registers.b_star[u, v])

    def raise_request(self, u: int, v: int) -> None:
        self.scheduler.set_request(u, v, True)
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, Kind.REQ_RISE, src=u, dst=v)

    def drop_request(self, u: int, v: int) -> None:
        self.scheduler.set_request(u, v, False)
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, Kind.REQ_DROP, src=u, dst=v)

    def sl_pass(self) -> list:
        """One SL clock period; returns the pass's toggles (may be empty)."""
        outcome = self.scheduler.sl_pass().outcome
        return list(outcome.toggles) if outcome is not None else []

    def mgmt_place(self, u: int, v: int) -> int | None:
        """Management-plane direct placement (the best-effort data path)."""
        return self.scheduler.mgmt_establish(u, v)

    def teardown(self, u: int, v: int) -> int:
        """Release (u, v) from every non-pinned in-service slot.

        Pinned slots keep their compiled circuits (preload residents are
        permanent until degradation unpins them).  A stuck slot silently
        keeps the circuit — hardware writes are lost — so the connection
        is counted as *orphaned* until the scrubber quarantines the slot.
        Returns the number of slots actually released.
        """
        regs = self.scheduler.registers
        removed = 0
        for slot in regs.slots_of(u, v):
            if slot in regs.pinned:
                continue
            if slot in regs.stuck:
                self.orphaned += 1
                continue
            regs.release(slot, u, v)
            removed += 1
            if self.tracer.enabled:
                self.tracer.record(
                    self.sim.now, Kind.CONN_RELEASE, src=u, dst=v, slot=slot, via="svc"
                )
        return removed

    # -- link-state reactions (ConnectionManager calls these) --------------------------

    def _on_link_dead(self, port: int) -> None:
        self.lifecycle.disarm_port(port)
        service = self._service()
        if service is not None:
            service.on_port_dead(port)

    def _on_link_down(self, port: int) -> None:
        service = self._service()
        if service is not None:
            service.on_port_down(port)

    def _on_link_up(self, port: int) -> None:
        service = self._service()
        if service is not None:
            service.on_port_up(port)

    def _service(self) -> "SwitchService | None":
        client = self.lifecycle._client
        return client if client is not None else None  # type: ignore[return-value]

    def counters(self) -> dict[str, int]:
        """Fabric-side counters folded into SLO snapshots."""
        regs = self.scheduler.registers
        out = {
            "slots_pinned": len(regs.pinned),
            "slots_stuck": len(regs.stuck),
            "slots_quarantined": len(regs.quarantined),
            "circuits_resident": int(regs.b_star.sum()),
            "orphaned": self.orphaned,
            "ports_down": int(self.lifecycle.link_down.sum()),
            "ports_dead": int(self.lifecycle.link_dead.sum()),
        }
        for key, value in self.scheduler.counters.as_dict().items():
            out[f"sched_{key}"] = value
        return out

"""Value objects of the service layer: requests, outcomes, configuration.

A :class:`ServiceRequest` is one circuit *lease* request: "connect input
``src`` to output ``dst`` and hold the circuit for ``hold_ps``".  The
service grants it (possibly after queueing), sheds it deterministically
under overload, or rejects it outright when an endpoint is dead.  Every
request ends in exactly one :class:`Outcome` — the conservation invariant
the soak harness asserts (:mod:`repro.service.invariants`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..faults.recovery import RetryPolicy
from ..networks.registry import DEFAULT_K
from ..sim.clock import us

__all__ = ["Outcome", "ServiceRequest", "ServiceConfig", "PS_PER_S"]

#: one virtual second in picoseconds
PS_PER_S = 1_000_000_000_000


class Outcome(enum.Enum):
    """How one service request ended (exactly one per request)."""

    #: still queued or in flight (never legal after a campaign drains)
    PENDING = "pending"
    #: circuit established and leased to the requester
    GRANTED = "granted"
    #: the token-bucket front door had no token (admission overload)
    SHED_THROTTLE = "shed-throttle"
    #: the source port's bounded request queue was full
    SHED_QUEUE_FULL = "shed-queue-full"
    #: retry/management ladder exhausted without a healthy slot
    SHED_TIMEOUT = "shed-timeout"
    #: best-effort mode found no free slot for immediate placement
    SHED_BEST_EFFORT = "shed-best-effort"
    #: an endpoint's links were dead (at arrival, or died while queued)
    REJECTED_DEAD = "rejected-dead"

    @property
    def is_shed(self) -> bool:
        """Sheds count against availability; dead-endpoint rejects do not."""
        return self in (
            Outcome.SHED_THROTTLE,
            Outcome.SHED_QUEUE_FULL,
            Outcome.SHED_TIMEOUT,
            Outcome.SHED_BEST_EFFORT,
        )


@dataclass(slots=True)
class ServiceRequest:
    """One circuit-lease request moving through the admission pipeline."""

    req_id: int
    src: int
    dst: int
    arrive_ps: int
    #: how long the granted circuit is leased before auto-release
    hold_ps: int
    outcome: Outcome = Outcome.PENDING
    grant_ps: int = -1
    released: bool = field(default=False)

    @property
    def pair(self) -> tuple[int, int]:
        return (self.src, self.dst)

    @property
    def latency_ps(self) -> int:
        """Request-to-grant latency (only meaningful once granted)."""
        return self.grant_ps - self.arrive_ps


@dataclass(slots=True, frozen=True)
class ServiceConfig:
    """Everything the service core needs beyond the system parameters.

    The admission knobs (``bucket_rate_per_s``, ``bucket_burst``,
    ``queue_depth``) bound the resources a request can consume before it
    is either granted or shed; the ladder thresholds control when the
    service steps down through its degradation rungs.  All validation is
    eager so a bad config fails at construction, not mid-campaign.
    """

    #: registered scheme name (must have a request plane: the TDM modes)
    scheme: str = "hybrid"
    #: multiplexing degree (slots per TDM rotation)
    k: int = DEFAULT_K
    #: pinned (preloaded) slots for the hybrid scheme; None = scheme default
    k_preload: int | None = None
    #: token-bucket refill rate, tokens per virtual second (0 = unlimited)
    bucket_rate_per_s: float = 0.0
    #: token-bucket capacity (burst tolerance)
    bucket_burst: int = 64
    #: bounded per-source-port request queue depth
    queue_depth: int = 16
    #: SLO snapshot window
    window_ps: int = us(500)
    #: campaign-level availability floor asserted by the soak harness
    availability_floor: float = 0.75
    #: window shed rate at or above which the ladder steps down a rung
    degrade_shed_rate: float = 0.10
    #: window shed rate at or below which the ladder steps back up a rung
    recover_shed_rate: float = 0.02
    #: bucket-rate multiplier applied per ladder rung below NORMAL
    throttle_factor: float = 0.5
    #: watchdog retry/backoff policy (shared with repro.faults recovery)
    retry: RetryPolicy = RetryPolicy()
    #: re-derive structural invariants at every snapshot window
    strict: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"multiplexing degree must be >= 1, got {self.k}")
        if self.k_preload is not None and not 0 <= self.k_preload <= self.k:
            raise ConfigurationError(
                f"k_preload must be in [0, {self.k}], got {self.k_preload}"
            )
        if self.bucket_rate_per_s < 0:
            raise ConfigurationError(
                f"bucket rate must be >= 0 (0 disables), got {self.bucket_rate_per_s}"
            )
        if self.bucket_burst < 1:
            raise ConfigurationError(f"bucket burst must be >= 1, got {self.bucket_burst}")
        if self.queue_depth < 1:
            raise ConfigurationError(f"queue depth must be >= 1, got {self.queue_depth}")
        if self.window_ps <= 0:
            raise ConfigurationError(f"snapshot window must be positive, got {self.window_ps}")
        if not 0.0 <= self.availability_floor <= 1.0:
            raise ConfigurationError("availability floor must be in [0, 1]")
        if not 0.0 <= self.recover_shed_rate <= self.degrade_shed_rate <= 1.0:
            raise ConfigurationError(
                "need 0 <= recover_shed_rate <= degrade_shed_rate <= 1, got "
                f"{self.recover_shed_rate} / {self.degrade_shed_rate}"
            )
        if not 0.0 < self.throttle_factor <= 1.0:
            raise ConfigurationError("throttle factor must be in (0, 1]")

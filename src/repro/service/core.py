"""The deterministic service core: admission -> scheduler -> lease -> release.

:class:`SwitchService` administers one :class:`~repro.service.fabric.LiveFabric`
entirely in virtual time on the repo's event kernel, so every campaign is
a pure function of (config, workload, fault schedule, seed).  The asyncio
daemon (:mod:`repro.service.daemon`) and the soak harness
(:mod:`repro.service.soak`) both drive this same core; neither adds any
behaviour of its own.

One request's life::

    submit ──dead endpoint──────────────► REJECTED_DEAD
       │ ───no token───────────────────► SHED_THROTTLE
       │ ───queue full─────────────────► SHED_QUEUE_FULL
       │ (BEST_EFFORT rung: immediate management placement or
       │  SHED_BEST_EFFORT, no queueing)
       ▼
    queued ──request wire──► scheduler r_view bit high
       │                        │ SL pass establishes ──grant wire──┐
       │ watchdog: retry ×N,    ▼                                   ▼
       │ mgmt remap ×M ──────► GRANTED ──hold──► release ──► teardown
       ▼
    SHED_TIMEOUT (retry budget exhausted: the no-deadlock bound)

The watchdog ladder is the :class:`~repro.networks.lifecycle.ConnectionManager`'s
— the service implements the :class:`~repro.networks.lifecycle.LifecycleClient`
policy surface, so fault recovery *and* overload starvation share one
bounded state machine: a request can wait at most the retry policy's
total backoff before it is granted or shed, which is what makes a drain
provably finite (asserted by :mod:`repro.service.invariants`).
"""

from __future__ import annotations

from typing import Hashable

from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..networks.base import MAX_EVENTS_PER_PHASE
from ..obs.events import Kind
from ..params import SystemParams
from ..sim.engine import Priority
from ..sim.trace import Tracer
from .admission import PortQueues, TokenBucket
from .fabric import LiveFabric
from .ladder import OverloadLadder, ServiceLevel
from .model import Outcome, ServiceConfig, ServiceRequest
from .slo import SloRecorder
from .workload import Arrival

__all__ = ["SwitchService"]

Pair = tuple[int, int]


class SwitchService:
    """Admission control + lease lifecycle over one live fabric."""

    def __init__(
        self,
        cfg: ServiceConfig,
        params: SystemParams,
        *,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        predicted: tuple[Pair, ...] = (),
        strict: bool | None = None,
    ) -> None:
        if faults is None:
            # the lifecycle watchdogs need an injector for their retry
            # policy even when the campaign injects nothing
            faults = FaultInjector(FaultSchedule(()), retry=cfg.retry)
        self.cfg = cfg
        self.fabric = LiveFabric(cfg, params, tracer=tracer, faults=faults, strict=strict)
        self.params = params
        self.sim = self.fabric.sim
        self.tracer = self.fabric.tracer
        self.lifecycle = self.fabric.lifecycle
        self.bucket = TokenBucket(cfg.bucket_rate_per_s, cfg.bucket_burst)
        self.queues = PortQueues(params.n_ports, cfg.queue_depth)
        self.ladder = OverloadLadder(cfg)
        self.slo = SloRecorder(cfg.window_ps)
        #: every request ever submitted, in submission order
        self.requests: list[ServiceRequest] = []
        #: queued requests awaiting a circuit, keyed by connection pair
        self.pending: dict[Pair, list[ServiceRequest]] = {}
        #: granted-and-held lease refcounts per connection pair
        self.leases: dict[Pair, int] = {}
        #: leases written off (port death / unrecoverable circuit loss)
        self.broken_leases = 0
        #: grants satisfied by a resident (preloaded or shared) circuit
        self.resident_hits = 0
        #: grants placed directly by the management plane (BEST_EFFORT rung)
        self.best_effort_grants = 0
        self._next_id = 0
        self._sl_armed = False
        self._applied_level = ServiceLevel.NORMAL
        self.fabric.attach(self)
        if predicted:
            self.fabric.preload_pairs(predicted)

    # -- the front door ---------------------------------------------------------------

    def submit(self, src: int, dst: int, hold_ps: int) -> ServiceRequest:
        """One lease request arrives *now* (an event on the virtual clock)."""
        n = self.params.n_ports
        if not (0 <= src < n and 0 <= dst < n) or src == dst:
            raise ConfigurationError(f"bad connection ({src} -> {dst}) for {n} ports")
        if hold_ps <= 0:
            raise ConfigurationError(f"lease hold must be positive, got {hold_ps}")
        now = self.sim.now
        req = ServiceRequest(
            req_id=self._next_id, src=src, dst=dst, arrive_ps=now, hold_ps=hold_ps
        )
        self._next_id += 1
        self.requests.append(req)
        self.slo.note_arrival()
        if self.tracer.enabled:
            self.tracer.record(now, Kind.SVC_SUBMIT, req=req.req_id, src=src, dst=dst)
        dead = self.lifecycle.link_dead
        if dead[src] or dead[dst]:
            self._finish(req, Outcome.REJECTED_DEAD)
            return req
        if not self.bucket.try_take(now):
            self._finish(req, Outcome.SHED_THROTTLE)
            return req
        if self.ladder.level == ServiceLevel.BEST_EFFORT:
            self._best_effort(req)
            return req
        if not self.queues.try_enqueue(src):
            self._finish(req, Outcome.SHED_QUEUE_FULL)
            return req
        self.pending.setdefault(req.pair, []).append(req)
        self.sim.schedule(
            self.params.request_wire_ps,
            self._request_seen,
            req.pair,
            priority=Priority.WIRE,
        )
        return req

    def _best_effort(self, req: ServiceRequest) -> None:
        """BEST_EFFORT rung: place immediately or shed on the spot."""
        u, v = req.pair
        if self.fabric.established(u, v) or self.fabric.mgmt_place(u, v) is not None:
            self.fabric.raise_request(u, v)  # keep the SL from reclaiming it
            self.best_effort_grants += 1
            self._grant(req, self.sim.now)
            self._ensure_sl_tick()
        else:
            self._finish(req, Outcome.SHED_BEST_EFFORT)

    # -- request plane ------------------------------------------------------------------

    def _request_seen(self, pair: Pair) -> None:
        """The request wire delivered the pair's request edge to the scheduler."""
        if not self.pending.get(pair):
            return  # resolved (or rejected) while the edge was in flight
        u, v = pair
        self.fabric.raise_request(u, v)
        if self.fabric.established(u, v):
            # resident circuit (preload hit, or an active lease's): share it
            self.resident_hits += 1
            self._grant_pair(pair)
            return
        self.lifecycle.arm(u, v)
        self._ensure_sl_tick()

    def _ensure_sl_tick(self) -> None:
        if not self._sl_armed:
            self._sl_armed = True
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )

    def _sl_tick(self) -> None:
        """One SL clock period; runs while any request or lease is live."""
        self._sl_armed = False
        for toggle in self.fabric.sl_pass():
            pair = (toggle.u, toggle.v)
            if toggle.establish:
                self.sim.schedule(
                    self.params.grant_wire_ps,
                    self._grant_pair,
                    pair,
                    priority=Priority.WIRE,
                )
            elif self.leases.get(pair):
                # the scheduler reclaimed a leased circuit (its request bit
                # was lost to a fault): that lease is disrupted
                self._lease_disrupted(pair)
        if self.pending or self.leases:
            self._ensure_sl_tick()

    def _lease_disrupted(self, pair: Pair) -> None:
        u, v = pair
        injector = self.fabric.fault_injector
        assert injector is not None
        injector.note_disrupted(u, v)
        self.fabric.raise_request(u, v)
        self.lifecycle.arm(u, v)

    # -- grants --------------------------------------------------------------------------

    def _grant_pair(self, pair: Pair) -> None:
        """A circuit for ``pair`` is up (SL grant wire, or direct placement)."""
        u, v = pair
        injector = self.fabric.fault_injector
        self.lifecycle.disarm(pair)
        reqs = self.pending.pop(pair, None)
        if not reqs:
            if self.leases.get(pair):
                # a disrupted lease's circuit came back — recovery closed
                if injector is not None:
                    injector.note_progress(u, v)
            elif self.fabric.established(u, v):
                # granted, but every waiter gave up first: return the slot
                self.fabric.drop_request(u, v)
                self.fabric.teardown(u, v)
            return
        if not self.fabric.established(u, v):
            # the circuit vanished between grant and wire delivery (fault
            # strike in the window): go back to waiting
            self.pending[pair] = reqs
            self.fabric.raise_request(u, v)
            self.lifecycle.arm(u, v)
            self._ensure_sl_tick()
            return
        now = self.sim.now
        for req in reqs:
            self.queues.dequeue(req.src)
            self._grant(req, now)
        if injector is not None:
            injector.note_progress(u, v)

    def _grant(self, req: ServiceRequest, now: int) -> None:
        req.outcome = Outcome.GRANTED
        req.grant_ps = now
        self.leases[req.pair] = self.leases.get(req.pair, 0) + 1
        self.slo.note_grant(req.latency_ps)
        if self.tracer.enabled:
            self.tracer.record(
                now,
                Kind.SVC_GRANT,
                req=req.req_id,
                src=req.src,
                dst=req.dst,
                latency_ps=req.latency_ps,
            )
        self.sim.schedule(req.hold_ps, self._release, req, priority=Priority.NIC)

    # -- releases ------------------------------------------------------------------------

    def _release(self, req: ServiceRequest) -> None:
        """A lease's hold expired: release the circuit (refcounted per pair)."""
        if req.released or req.outcome is not Outcome.GRANTED:
            return
        req.released = True
        self.slo.note_release()
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now, Kind.SVC_RELEASE, req=req.req_id, src=req.src, dst=req.dst
            )
        pair = req.pair
        count = self.leases.get(pair, 0)
        if count == 0:
            return  # the lease was already written off (port death etc.)
        if count > 1:
            self.leases[pair] = count - 1
            return
        del self.leases[pair]
        if not self.pending.get(pair):
            self.fabric.drop_request(*pair)
            self.fabric.teardown(*pair)

    # -- the LifecycleClient policy surface ----------------------------------------------
    #
    # ConnectionManager drives retries, management escalation, and give-up
    # through these; the service's answers make overload starvation and
    # fault recovery share the same bounded watchdog ladder.

    def lifecycle_watch_ref(self, u: int, v: int) -> tuple[Hashable, int | None]:
        return ((u, v), None)

    def lifecycle_watch_resolved(self, u: int, v: int, seq: int | None) -> bool:
        pair = (u, v)
        if self.pending.get(pair):
            return False
        if self.leases.get(pair) and not self.fabric.established(u, v):
            return False
        return True

    def lifecycle_awaiting_grant(self, u: int, v: int) -> bool:
        pair = (u, v)
        if self.pending.get(pair):
            return True
        return bool(self.leases.get(pair)) and not self.fabric.established(u, v)

    def lifecycle_awaiting_sl_dead(self, u: int, v: int) -> bool:
        return self.lifecycle_awaiting_grant(u, v)

    def lifecycle_retry(self, u: int, v: int) -> None:
        self.sim.schedule(
            self.params.request_wire_ps, self._retry_seen, (u, v), priority=Priority.WIRE
        )

    def _retry_seen(self, pair: Pair) -> None:
        if self.pending.get(pair) or self.leases.get(pair):
            self.fabric.raise_request(*pair)
            self._ensure_sl_tick()

    def lifecycle_mgmt_remap(self, u: int, v: int) -> bool:
        slot = self.fabric.mgmt_place(u, v)
        if slot is None:
            return False
        self.fabric.raise_request(u, v)
        self.sim.schedule(
            self.params.grant_wire_ps, self._grant_pair, (u, v), priority=Priority.WIRE
        )
        return True

    def lifecycle_give_up(self, u: int, v: int) -> None:
        """Retry budget exhausted: shed the waiters, write off broken leases."""
        pair = (u, v)
        for req in self.pending.pop(pair, ()):  # type: ignore[arg-type]
            self.queues.dequeue(req.src)
            self._finish(req, Outcome.SHED_TIMEOUT)
        broken = self.leases.pop(pair, 0)
        self.broken_leases += broken
        self.fabric.drop_request(u, v)
        self.fabric.teardown(u, v)

    def lifecycle_pinned_lost(self) -> None:
        now = self.sim.now
        if self.ladder.note_pinned_lost(now):
            self.fabric.degrade_preload()
        self._apply_level("pinned-slot-lost")

    # -- link-state reactions (forwarded by LiveFabric) ----------------------------------

    def on_port_dead(self, port: int) -> None:
        """A port died for good: its queued and leased work cannot survive."""
        for pair in [p for p in self.pending if port in p]:
            for req in self.pending.pop(pair):
                self.queues.dequeue(req.src)
                self._finish(req, Outcome.REJECTED_DEAD)
            self.fabric.drop_request(*pair)
        for pair in [p for p in self.leases if port in p]:
            self.broken_leases += self.leases.pop(pair)
            self.fabric.drop_request(*pair)
            self.fabric.teardown(*pair)

    def on_port_down(self, port: int) -> None:
        """Transient outage: leases ride it out; the watchdogs cover stalls."""

    def on_port_up(self, port: int) -> None:
        """Transient outage over; nothing to rebuild."""

    # -- outcomes and the overload ladder ------------------------------------------------

    def _finish(self, req: ServiceRequest, outcome: Outcome) -> None:
        req.outcome = outcome
        now = self.sim.now
        if outcome is Outcome.REJECTED_DEAD:
            self.slo.note_reject_dead()
            if self.tracer.enabled:
                self.tracer.record(
                    now, Kind.SVC_REJECT, req=req.req_id, src=req.src, dst=req.dst
                )
        else:
            self.slo.note_shed(outcome)
            if self.tracer.enabled:
                self.tracer.record(
                    now,
                    Kind.SVC_SHED,
                    req=req.req_id,
                    src=req.src,
                    dst=req.dst,
                    reason=outcome.value,
                )

    def _apply_level(self, reason: str) -> None:
        level = self.ladder.level
        if level == self._applied_level:
            return
        self._applied_level = level
        self.bucket.set_rate(self.sim.now, self.ladder.bucket_rate(self.cfg.bucket_rate_per_s))
        if self.tracer.enabled:
            self.tracer.record(self.sim.now, Kind.SVC_LEVEL, level=level.name, reason=reason)

    def _window_tick(self) -> None:
        now = self.sim.now
        pressure = self.slo.window_pressure_rate
        snap = self.slo.close_window(
            now,
            self.ladder.level.name,
            queued=self.queues.total,
            fabric=self.fabric.counters(),
        )
        if self.tracer.enabled:
            self.tracer.record(
                now,
                Kind.SVC_SNAPSHOT,
                level=snap.level,
                granted=snap.granted,
                shed=snap.shed,
                p99_grant_ps=snap.p99_grant_ps,
            )
        old = self.ladder.level
        new = self.ladder.evaluate(now, pressure)
        if new != old:
            if new >= ServiceLevel.DEGRADED and not self.ladder.preload_degraded:
                # the DEGRADED rung *is* the preload -> dynamic fallback
                self.ladder.preload_degraded = True
                self.fabric.degrade_preload()
            self._apply_level(f"pressure {pressure:.3f}")
        if self.fabric.strict:
            self.fabric.scheduler.registers.check_invariants()
        if self.sim.pending > 0:
            self.sim.schedule(self.cfg.window_ps, self._window_tick, priority=Priority.MONITOR)

    # -- campaigns -----------------------------------------------------------------------

    def run_campaign(
        self, arrivals: tuple[Arrival, ...] | list[Arrival], *, max_wall_s: float | None = None
    ) -> None:
        """Replay a materialised workload to completion (fully drained).

        Every arrival becomes a :meth:`submit` event; the run ends when the
        event heap empties, which the watchdog retry budget guarantees is
        finite.  SLO windows close on the virtual clock throughout; a final
        partial window is sealed after the drain.
        """
        for a in arrivals:
            self.sim.schedule_at(
                a.time_ps, self.submit, a.src, a.dst, a.hold_ps, priority=Priority.NIC
            )
        self.sim.schedule(self.cfg.window_ps, self._window_tick, priority=Priority.MONITOR)
        self.sim.run(max_events=MAX_EVENTS_PER_PHASE, max_wall_s=max_wall_s)
        if self.slo.window_dirty:
            self.slo.close_window(
                self.sim.now,
                self.ladder.level.name,
                queued=self.queues.total,
                fabric=self.fabric.counters(),
            )

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict:
        """A point-in-time summary (the daemon's ``stats`` op)."""
        p50, p99 = self.slo.latency_percentiles()
        return {
            "t_ps": self.sim.now,
            "level": self.ladder.level.name,
            "arrivals": self.slo.arrivals,
            "granted": self.slo.granted,
            "shed": self.slo.shed,
            "rejected_dead": self.slo.rejected_dead,
            "released": self.slo.released,
            "availability": round(self.slo.availability, 6),
            "shed_rate": round(self.slo.shed_rate, 6),
            "p50_grant_ps": p50,
            "p99_grant_ps": p99,
            "queued": self.queues.total,
            "active_leases": sum(self.leases.values()),
            "broken_leases": self.broken_leases,
            "resident_hits": self.resident_hits,
            "best_effort_grants": self.best_effort_grants,
            "shed_by_outcome": {
                k: self.slo.shed_by_outcome[k] for k in sorted(self.slo.shed_by_outcome)
            },
            "fabric": self.fabric.counters(),
        }

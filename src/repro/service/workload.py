"""Seeded open-loop workload generators for the service layer.

Three arrival mixes, all materialised up front from a named RNG stream
(:func:`repro.sim.rng.stream`), so a campaign is a pure function of
``(spec, seed)``:

* ``poisson`` — open-loop Poisson arrivals at a constant rate, the
  classic offered-load model;
* ``bursty`` — on/off modulated Poisson (rate high during ``on_ps``,
  zero during ``off_ps``), the pattern token buckets are built for;
* ``hotspot`` — an adversarial mix where a fraction of arrivals targets
  a handful of hot destination ports, starving their queues first.

Time-varying rates (the on/off envelope and the configured *overload
bursts*) are realised by thinning a homogeneous Poisson process at the
peak rate, the standard exact method — no discretisation error, and the
draw sequence is identical for a fixed seed regardless of how the rate
envelope slices the horizon.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..sim.rng import stream
from .model import PS_PER_S

__all__ = ["Arrival", "WorkloadSpec", "predicted_pairs"]

_KINDS = ("poisson", "bursty", "hotspot")


@dataclass(slots=True, frozen=True)
class Arrival:
    """One lease request arriving at the service front door."""

    time_ps: int
    src: int
    dst: int
    hold_ps: int


@dataclass(slots=True, frozen=True)
class WorkloadSpec:
    """A seeded arrival process over one campaign horizon."""

    #: arrival mix: "poisson", "bursty", or "hotspot"
    kind: str
    n_ports: int
    #: offered arrival rate (requests per virtual second, whole fabric)
    rate_per_s: float
    #: mean circuit-lease duration (exponentially distributed)
    mean_hold_ps: int
    #: campaign horizon — no arrivals at or beyond this time
    duration_ps: int
    #: bursty mix: on/off envelope period halves
    on_ps: int = 0
    off_ps: int = 0
    #: hotspot mix: fraction of arrivals aimed at the hot ports
    hotspot_fraction: float = 0.5
    #: hotspot mix: how many destination ports are hot
    n_hot: int = 1
    #: overload bursts: (start_ps, end_ps, rate multiplier) intervals
    overload: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.n_ports < 2:
            raise ConfigurationError("a workload needs at least 2 ports")
        if self.rate_per_s <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {self.rate_per_s}")
        if self.mean_hold_ps <= 0:
            raise ConfigurationError(f"mean hold must be positive, got {self.mean_hold_ps}")
        if self.duration_ps <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration_ps}")
        if self.kind == "bursty" and (self.on_ps <= 0 or self.off_ps < 0):
            raise ConfigurationError("bursty workloads need on_ps > 0 and off_ps >= 0")
        if self.kind == "hotspot":
            if not 0.0 <= self.hotspot_fraction <= 1.0:
                raise ConfigurationError("hotspot fraction must be in [0, 1]")
            if not 1 <= self.n_hot < self.n_ports:
                raise ConfigurationError(
                    f"n_hot must be in [1, {self.n_ports - 1}], got {self.n_hot}"
                )
        for start, end, mult in self.overload:
            if not 0 <= start < end:
                raise ConfigurationError(f"bad overload interval [{start}, {end})")
            if mult <= 0:
                raise ConfigurationError(f"overload multiplier must be positive, got {mult}")

    # -- the rate envelope -----------------------------------------------------------

    def _envelope(self, t_ps: int) -> float:
        """Instantaneous rate multiplier at ``t_ps`` (1.0 = base rate)."""
        mult = 1.0
        if self.kind == "bursty":
            period = self.on_ps + self.off_ps
            mult = 1.0 if (t_ps % period) < self.on_ps else 0.0
        for start, end, m in self.overload:
            if start <= t_ps < end:
                mult *= m
        return mult

    def _peak_multiplier(self) -> float:
        peak = 1.0
        for _, _, m in self.overload:
            if m > 1.0:
                peak *= m  # conservative: overlapping bursts multiply
        return peak

    # -- generation --------------------------------------------------------------------

    def generate(self, seed: int) -> tuple[Arrival, ...]:
        """Materialise the full arrival sequence (sorted by time)."""
        rng = stream(seed, f"svc-workload-{self.kind}")
        rate_peak_per_ps = self.rate_per_s * self._peak_multiplier() / PS_PER_S
        arrivals: list[Arrival] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate_peak_per_ps)
            t_ps = int(t)
            if t_ps >= self.duration_ps:
                break
            keep = rng.random()  # drawn unconditionally: one draw per candidate
            envelope = self._envelope(t_ps)
            if envelope <= 0.0:
                continue
            if keep * self._peak_multiplier() >= envelope:
                continue
            src, dst = self._draw_pair(rng)
            hold = max(1, int(rng.exponential(float(self.mean_hold_ps))))
            arrivals.append(Arrival(time_ps=t_ps, src=src, dst=dst, hold_ps=hold))
        return tuple(arrivals)

    def _draw_pair(self, rng) -> tuple[int, int]:
        n = self.n_ports
        if self.kind == "hotspot" and rng.random() < self.hotspot_fraction:
            dst = int(rng.integers(0, self.n_hot))
            src = int(rng.integers(0, n - 1))
            if src >= dst:
                src += 1  # uniform over ports != dst
            return src, dst
        src = int(rng.integers(0, n))
        dst = int(rng.integers(0, n - 1))
        if dst >= src:
            dst += 1
        return src, dst

    def hot_pairs(self, count: int) -> tuple[tuple[int, int], ...]:
        """The spec-level prediction of the working set (hotspot mixes only).

        For hotspot workloads the hot destinations are known a priori;
        other mixes have no structural prediction (use
        :func:`predicted_pairs` over generated arrivals instead).
        """
        if self.kind != "hotspot":
            return ()
        pairs = []
        for dst in range(self.n_hot):
            for src in range(self.n_ports):
                if src != dst:
                    pairs.append((src, dst))
                    if len(pairs) >= count:
                        return tuple(pairs)
        return tuple(pairs)


def predicted_pairs(
    arrivals: Iterable[Arrival] | Sequence[Arrival], count: int
) -> tuple[tuple[int, int], ...]:
    """The ``count`` most frequent (src, dst) pairs, most frequent first.

    This is the service's stand-in for the paper's traffic predictor: the
    pairs a prediction oracle would preload.  Ties break on (src, dst) so
    the result is deterministic.
    """
    if count <= 0:
        return ()
    freq: Counter[tuple[int, int]] = Counter()
    for a in arrivals:
        freq[(a.src, a.dst)] += 1
    ranked = sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))
    return tuple(pair for pair, _ in ranked[:count])

"""SLO accounting: windowed and cumulative service-level objectives.

The recorder tracks three SLOs the paper's switch would be operated
against as a shared service:

* **request-to-grant latency** — p50/p99 over each window and the whole
  campaign, exact nearest-rank percentiles over integer picoseconds (no
  estimator, so snapshots are bit-identical for a fixed seed);
* **availability** — granted / (granted + shed); dead-endpoint rejects
  are excluded because no admission policy can serve a dead port (the
  exclusion is part of the SLO definition, see ``docs/service.md``);
* **shed rate** — the fraction of admission decisions in a window that
  shed, which is also the signal the overload ladder steps on.

Snapshots serialise to JSONL with a fixed key order and contain only
virtual-time quantities, so two runs of the same seeded campaign emit
byte-identical files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Iterable

from ..errors import ConfigurationError
from .model import Outcome

__all__ = ["percentile_ps", "SloRecorder", "SloSnapshot"]


def percentile_ps(sorted_values: list[int], q: float) -> int:
    """Exact nearest-rank percentile of pre-sorted integers (-1 if empty)."""
    if not sorted_values:
        return -1
    try:
        exact_q = Fraction(str(q))
    except ValueError:
        raise ConfigurationError(f"percentile must be in (0, 100], got {q}") from None
    if not 0 < exact_q <= 100:
        raise ConfigurationError(f"percentile must be in (0, 100], got {q}")
    # ceil(n * q / 100) in exact integer arithmetic; q goes through its
    # decimal string so 99.9 means 999/10, not the nearest binary float.
    num = len(sorted_values) * exact_q.numerator
    den = 100 * exact_q.denominator
    rank = -(-num // den)
    return sorted_values[rank - 1]


@dataclass(slots=True, frozen=True)
class SloSnapshot:
    """One closed SLO window (all times in integer virtual picoseconds)."""

    t_ps: int
    window_ps: int
    level: str
    arrivals: int
    granted: int
    shed: int
    rejected_dead: int
    released: int
    p50_grant_ps: int
    p99_grant_ps: int
    shed_rate: float
    availability: float
    queued: int
    cum_arrivals: int
    cum_granted: int
    cum_shed: int
    cum_availability: float
    fabric: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise with a fixed key order (dataclass field order)."""
        payload = {
            "t_ps": self.t_ps,
            "window_ps": self.window_ps,
            "level": self.level,
            "arrivals": self.arrivals,
            "granted": self.granted,
            "shed": self.shed,
            "rejected_dead": self.rejected_dead,
            "released": self.released,
            "p50_grant_ps": self.p50_grant_ps,
            "p99_grant_ps": self.p99_grant_ps,
            "shed_rate": round(self.shed_rate, 6),
            "availability": round(self.availability, 6),
            "queued": self.queued,
            "cum_arrivals": self.cum_arrivals,
            "cum_granted": self.cum_granted,
            "cum_shed": self.cum_shed,
            "cum_availability": round(self.cum_availability, 6),
            "fabric": {k: self.fabric[k] for k in sorted(self.fabric)},
        }
        return json.dumps(payload, separators=(",", ":"))


class SloRecorder:
    """Windowed + cumulative SLO counters for one service instance."""

    def __init__(self, window_ps: int) -> None:
        if window_ps <= 0:
            raise ConfigurationError(f"SLO window must be positive, got {window_ps}")
        self.window_ps = window_ps
        self.snapshots: list[SloSnapshot] = []
        # current window
        self._w_arrivals = 0
        self._w_granted = 0
        self._w_shed = 0
        self._w_shed_pressure = 0
        self._w_rejected = 0
        self._w_released = 0
        self._w_latencies: list[int] = []
        # campaign totals
        self.arrivals = 0
        self.granted = 0
        self.shed = 0
        self.rejected_dead = 0
        self.released = 0
        self.shed_by_outcome: dict[str, int] = {}
        self.latencies_ps: list[int] = []

    # -- feeding ------------------------------------------------------------------

    def note_arrival(self) -> None:
        self._w_arrivals += 1
        self.arrivals += 1

    def note_grant(self, latency_ps: int) -> None:
        self._w_granted += 1
        self.granted += 1
        self._w_latencies.append(latency_ps)
        self.latencies_ps.append(latency_ps)

    def note_shed(self, outcome: Outcome) -> None:
        if not outcome.is_shed:
            raise ConfigurationError(f"{outcome} is not a shed outcome")
        self._w_shed += 1
        self.shed += 1
        if outcome is not Outcome.SHED_THROTTLE:
            # throttle sheds are the front door *working*; the rest are
            # overload it failed to absorb (the ladder's pressure signal)
            self._w_shed_pressure += 1
        key = outcome.value
        self.shed_by_outcome[key] = self.shed_by_outcome.get(key, 0) + 1

    def note_reject_dead(self) -> None:
        self._w_rejected += 1
        self.rejected_dead += 1

    def note_release(self) -> None:
        self._w_released += 1
        self.released += 1

    # -- windows ------------------------------------------------------------------

    @property
    def window_decisions(self) -> int:
        """Admission decisions resolved in the open window (grants + sheds)."""
        return self._w_granted + self._w_shed

    @property
    def window_shed_rate(self) -> float:
        decisions = self.window_decisions
        return self._w_shed / decisions if decisions else 0.0

    @property
    def window_pressure_rate(self) -> float:
        """Window shed rate *excluding* throttle sheds — the ladder's signal.

        Counting throttle sheds here would create a positive feedback
        loop: stepping down lowers the bucket rate, which manufactures
        throttle sheds, which would read as more overload, pinning the
        service at BEST_EFFORT long after the storm passed.
        """
        decisions = self._w_granted + self._w_shed_pressure
        return self._w_shed_pressure / decisions if decisions else 0.0

    @property
    def window_dirty(self) -> bool:
        """Did anything at all happen in the open window?"""
        return bool(
            self._w_arrivals
            or self._w_granted
            or self._w_shed
            or self._w_rejected
            or self._w_released
        )

    def close_window(
        self, t_ps: int, level: str, *, queued: int, fabric: dict[str, int]
    ) -> SloSnapshot:
        """Seal the open window into a snapshot and reset window state."""
        lat = sorted(self._w_latencies)
        decisions = self._w_granted + self._w_shed
        snap = SloSnapshot(
            t_ps=t_ps,
            window_ps=self.window_ps,
            level=level,
            arrivals=self._w_arrivals,
            granted=self._w_granted,
            shed=self._w_shed,
            rejected_dead=self._w_rejected,
            released=self._w_released,
            p50_grant_ps=percentile_ps(lat, 50),
            p99_grant_ps=percentile_ps(lat, 99),
            shed_rate=self._w_shed / decisions if decisions else 0.0,
            availability=self._w_granted / decisions if decisions else 1.0,
            queued=queued,
            cum_arrivals=self.arrivals,
            cum_granted=self.granted,
            cum_shed=self.shed,
            cum_availability=self.availability,
            fabric=dict(fabric),
        )
        self.snapshots.append(snap)
        self._w_arrivals = 0
        self._w_granted = 0
        self._w_shed = 0
        self._w_shed_pressure = 0
        self._w_rejected = 0
        self._w_released = 0
        self._w_latencies = []
        return snap

    # -- campaign-level readouts ------------------------------------------------------

    @property
    def availability(self) -> float:
        decisions = self.granted + self.shed
        return self.granted / decisions if decisions else 1.0

    @property
    def shed_rate(self) -> float:
        decisions = self.granted + self.shed
        return self.shed / decisions if decisions else 0.0

    def latency_percentiles(self) -> tuple[int, int]:
        """Campaign-wide (p50, p99) request-to-grant latency."""
        lat = sorted(self.latencies_ps)
        return percentile_ps(lat, 50), percentile_ps(lat, 99)

    def write_jsonl(self, path: str | Path) -> int:
        """Write every snapshot as one JSON object per line; returns count."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_jsonl(), encoding="utf-8")
        return len(self.snapshots)

    def to_jsonl(self, snapshots: Iterable[SloSnapshot] | None = None) -> str:
        snaps = self.snapshots if snapshots is None else list(snapshots)
        return "".join(s.to_json() + "\n" for s in snaps)

"""Trace exporters: JSONL, CSV, and Chrome/Perfetto timeline format.

All exporters accept either a :class:`~repro.sim.trace.Tracer`, an iterable
of :class:`~repro.sim.trace.TraceEvent`, or a list of :class:`TracedRun`
(one labelled run per switching scheme, so a whole Figure-4 comparison fits
in one file).

The Chrome exporter emits the legacy JSON trace format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly: one
*process* per run (named after its scheme), one *thread* per source port
plus dedicated threads for the TDM slots and the scheduler, complete
(``ph: "X"``) events for message / connection / recovery spans derived via
:data:`repro.obs.events.SPAN_RULES`, and instant events for everything
else.  Timestamps convert from integer picoseconds to the format's
microseconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..sim.trace import TraceEvent, Tracer
from .events import CATEGORIES, SPAN_RULES, Kind

__all__ = [
    "TracedRun",
    "Span",
    "derive_spans",
    "to_jsonl",
    "from_jsonl",
    "to_csv",
    "to_chrome_trace",
]


@dataclass(slots=True)
class TracedRun:
    """One traced simulation run, labelled for multi-run exports."""

    label: str
    events: list[TraceEvent]
    #: optional run counters (e.g. ``RunResult.counters``) archived alongside
    counters: dict[str, int] = field(default_factory=dict)


EventSource = "Tracer | Iterable[TraceEvent] | list[TracedRun]"


def _as_runs(source: Any, label: str = "run") -> list[TracedRun]:
    if isinstance(source, TracedRun):
        return [source]
    if isinstance(source, Tracer):
        return [TracedRun(label, list(source.events()))]
    source = list(source)
    if source and isinstance(source[0], TracedRun):
        return source
    return [TracedRun(label, source)]


# -- spans ----------------------------------------------------------------------


@dataclass(slots=True, frozen=True)
class Span:
    """A derived begin/end interval (message, connection, or recovery)."""

    name: str
    category: str
    start_ps: int
    end_ps: int
    key: tuple
    args: dict[str, Any]
    #: True when no end event was recorded (closed at trace end)
    open: bool = False

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


def derive_spans(events: Iterable[TraceEvent]) -> list[Span]:
    """Pair point events into spans per :data:`~repro.obs.events.SPAN_RULES`.

    Events must be in record order (tracers preserve it).  Spans still
    open when the trace ends are closed at the last recorded timestamp and
    flagged ``open=True``.
    """
    begin_of = {rule.begin: rule for rule in SPAN_RULES}
    end_of: dict[str, list] = {}
    for rule in SPAN_RULES:
        for kind in rule.end:
            end_of.setdefault(kind, []).append(rule)
    opened: dict[tuple, tuple] = {}  # (rule.name, key) -> (start_ps, payload)
    spans: list[Span] = []
    last_ps = 0
    for ev in events:
        last_ps = max(last_ps, ev.time_ps)
        rule = begin_of.get(ev.kind)
        if rule is not None:
            key = (rule.name,) + tuple(ev.payload.get(k) for k in rule.keys)
            opened.setdefault(key, (ev.time_ps, ev.payload))
        for rule in end_of.get(ev.kind, ()):
            key = (rule.name,) + tuple(ev.payload.get(k) for k in rule.keys)
            start = opened.pop(key, None)
            if start is not None:
                args = dict(start[1])
                args["end"] = ev.kind
                spans.append(
                    Span(rule.name, rule.category, start[0], ev.time_ps, key, args)
                )
    for key, (start_ps, payload) in opened.items():
        rule = next(r for r in SPAN_RULES if r.name == key[0])
        spans.append(
            Span(
                rule.name,
                rule.category,
                start_ps,
                max(last_ps, start_ps),
                key,
                dict(payload),
                open=True,
            )
        )
    spans.sort(key=lambda s: (s.start_ps, s.end_ps))
    return spans


# -- JSONL ----------------------------------------------------------------------


def to_jsonl(source: Any, path: str | Path, label: str = "run") -> int:
    """Write one JSON object per event; returns the number of lines.

    Each line carries ``{"t": time_ps, "kind": ..., "run": label, ...payload}``
    with payload fields inlined, so the file greps and streams well.
    """
    n = 0
    with open(path, "w") as fp:
        for run in _as_runs(source, label):
            for ev in run.events:
                obj = {"t": ev.time_ps, "kind": ev.kind, "run": run.label}
                obj.update(ev.payload)
                fp.write(json.dumps(obj, separators=(",", ":")) + "\n")
                n += 1
    return n


def from_jsonl(path: str | Path) -> dict[str, list[TraceEvent]]:
    """Read a :func:`to_jsonl` file back into events grouped by run label."""
    runs: dict[str, list[TraceEvent]] = {}
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            t = obj.pop("t")
            kind = obj.pop("kind")
            run = obj.pop("run", "run")
            runs.setdefault(run, []).append(TraceEvent(t, kind, obj))
    return runs


# -- CSV ------------------------------------------------------------------------


def to_csv(source: Any, path: str | Path, label: str = "run") -> int:
    """Write events as CSV with a union-of-payload-keys header."""
    runs = _as_runs(source, label)
    keys: list[str] = []
    seen = set()
    for run in runs:
        for ev in run.events:
            for k in ev.payload:
                if k not in seen:
                    seen.add(k)
                    keys.append(k)
    keys.sort()
    n = 0
    with open(path, "w") as fp:
        fp.write(",".join(["time_ps", "kind", "run"] + keys) + "\n")
        for run in runs:
            for ev in run.events:
                row = [str(ev.time_ps), ev.kind, run.label]
                row += [str(ev.payload.get(k, "")) for k in keys]
                fp.write(",".join(row) + "\n")
                n += 1
    return n


# -- Chrome trace ---------------------------------------------------------------

_PS_PER_US = 1_000_000.0

#: thread-id bases within one process (ports occupy 0 .. n-1)
_TID_SLOTS = 1000  # slot s -> 1000 + s
_TID_SCHEDULER = 900
_TID_CONTROL = 990


def _instant_tid(ev: TraceEvent) -> int:
    p = ev.payload
    if ev.kind in (Kind.SL_PASS, Kind.SLOT_TRANSFER, Kind.PRELOAD_BATCH):
        slot = p.get("slot", p.get("index"))
        if ev.kind == Kind.SL_PASS:
            return _TID_SCHEDULER
        return _TID_SLOTS + int(slot) if slot is not None else _TID_CONTROL
    if "slot" in p and ev.kind.startswith("fault-slot"):
        return _TID_SLOTS + int(p["slot"])
    if "src" in p:
        return int(p["src"])
    if "port" in p:
        return int(p["port"])
    return _TID_CONTROL


def _span_tid(span: Span) -> int:
    src = span.args.get("src")
    return int(src) if src is not None else _TID_CONTROL


def to_chrome_trace(
    source: Any,
    path: str | Path,
    label: str = "run",
    *,
    include_instants: bool = True,
) -> dict[str, int]:
    """Write a Chrome/Perfetto JSON trace; returns per-category counts.

    One process per run (named after its label), message/connection/
    recovery spans as complete events, everything else as instants.
    """
    trace: list[dict[str, Any]] = []
    counts = {"runs": 0, "spans": 0, "instants": 0}
    for pid, run in enumerate(_as_runs(source, label), start=1):
        counts["runs"] += 1
        trace.append(
            {
                "ph": "M",
                "pid": pid,
                "name": "process_name",
                "args": {"name": run.label},
            }
        )
        tids: dict[int, str] = {}

        def thread_name(tid: int) -> None:
            if tid in tids:
                return
            if tid < _TID_SCHEDULER:
                name = f"port {tid}"
            elif tid == _TID_SCHEDULER:
                name = "scheduler"
            elif tid == _TID_CONTROL:
                name = "control"
            else:
                name = f"slot {tid - _TID_SLOTS}"
            tids[tid] = name

        spans = derive_spans(run.events)
        for span in spans:
            tid = _span_tid(span)
            thread_name(tid)
            src, dst = span.args.get("src"), span.args.get("dst")
            trace.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "name": f"{span.name} {src}->{dst}",
                    "cat": span.category,
                    "ts": span.start_ps / _PS_PER_US,
                    "dur": span.duration_ps / _PS_PER_US,
                    "args": span.args,
                }
            )
            counts["spans"] += 1
        if include_instants:
            span_kinds = {rule.begin for rule in SPAN_RULES}
            for rule in SPAN_RULES:
                span_kinds.update(rule.end)
            for ev in run.events:
                if ev.kind in span_kinds:
                    continue  # already represented by a span boundary
                tid = _instant_tid(ev)
                thread_name(tid)
                trace.append(
                    {
                        "ph": "i",
                        "pid": pid,
                        "tid": tid,
                        "name": ev.kind,
                        "cat": CATEGORIES.get(ev.kind, "misc"),
                        "ts": ev.time_ps / _PS_PER_US,
                        "s": "t",
                        "args": dict(ev.payload),
                    }
                )
                counts["instants"] += 1
        for tid, name in sorted(tids.items()):
            trace.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": name},
                }
            )
    with open(path, "w") as fp:
        json.dump({"traceEvents": trace, "displayTimeUnit": "ns"}, fp)
    return counts

"""Observability: typed trace events, exporters, timelines, and profiling.

The simulators record structured events through :class:`repro.sim.trace.Tracer`;
this package gives those events a shared vocabulary (:mod:`~repro.obs.events`),
turns them into JSONL / CSV / Chrome-trace files (:mod:`~repro.obs.exporters`),
reduces them to slot-occupancy and duty-cycle reports
(:mod:`~repro.obs.timeline`), and wraps runs in perf-counter / cProfile
reports (:mod:`~repro.obs.profile`).
"""

from .events import CATEGORIES, SPAN_RULES, TRANSFER_KINDS, Kind, SpanRule
from .executor import format_exec_stats
from .exporters import (
    Span,
    TracedRun,
    derive_spans,
    from_jsonl,
    to_chrome_trace,
    to_csv,
    to_jsonl,
)
from .profile import ProfileReport, format_perf, profile_run
from .timeline import (
    PortStats,
    SlotStats,
    port_duty_cycle,
    request_latencies,
    slot_occupancy,
    utilization_report,
)

__all__ = [
    "Kind",
    "SpanRule",
    "CATEGORIES",
    "SPAN_RULES",
    "TRANSFER_KINDS",
    "TracedRun",
    "Span",
    "derive_spans",
    "to_jsonl",
    "from_jsonl",
    "to_csv",
    "to_chrome_trace",
    "SlotStats",
    "PortStats",
    "slot_occupancy",
    "port_duty_cycle",
    "request_latencies",
    "utilization_report",
    "ProfileReport",
    "profile_run",
    "format_perf",
    "format_exec_stats",
]

"""Executor telemetry rendered through the observability vocabulary.

The execution engine (:mod:`repro.exec.engine`) measures every sweep —
cells run vs served from cache, per-cell wall time, pool utilization, and
the speedup over a cold serial run — and reports it as an
:class:`~repro.exec.engine.ExecStats`.  This module renders those
counters in the same aligned style as the simulator perf counters, so
``repro ... --perf`` output reads as one report.
"""

from __future__ import annotations

from ..exec import ExecStats
from .profile import format_perf

__all__ = ["format_exec_stats"]


def format_exec_stats(stats: ExecStats) -> str:
    """Render one sweep's executor counters as aligned lines."""
    out = [f"=== executor: {stats.label} ===", format_perf(stats.as_counters())]
    wall = [w for w in stats.cell_wall if w > 0]
    if wall:
        out.append(
            format_perf(
                {
                    "cell_wall_min_s": min(wall),
                    "cell_wall_max_s": max(wall),
                    "cell_wall_mean_s": sum(wall) / len(wall),
                }
            )
        )
    return "\n".join(out)

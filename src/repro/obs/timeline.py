"""Slot-utilization timelines and per-port duty cycles from trace events.

These reductions answer the questions the paper's Figure-4 experiments keep
raising: *which TDM slots actually carried data*, *how busy was each source
port*, and *how long did a raised request wire wait before the SL array
granted it a connection*.  They operate purely on recorded
:class:`~repro.sim.trace.TraceEvent` streams, so they work on live tracers
and on events re-read from a JSONL export alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..sim.trace import TraceEvent
from .events import TRANSFER_KINDS, Kind

__all__ = [
    "SlotStats",
    "PortStats",
    "slot_occupancy",
    "port_duty_cycle",
    "request_latencies",
    "utilization_report",
]


@dataclass(slots=True)
class SlotStats:
    """Aggregate activity of one TDM slot across all its periods."""

    slot: int
    periods: int = 0
    active_periods: int = 0
    conns: int = 0
    bytes: int = 0

    @property
    def occupancy(self) -> float:
        """Fraction of this slot's periods that moved at least one byte."""
        return self.active_periods / self.periods if self.periods else 0.0


@dataclass(slots=True)
class PortStats:
    """Transfer activity attributed to one source port."""

    port: int
    transfers: int = 0
    bytes: int = 0
    first_ps: int = 0
    last_ps: int = 0
    _buckets: set = field(default_factory=set, repr=False)
    duty_cycle: float = 0.0


def slot_occupancy(events: Iterable[TraceEvent]) -> dict[int, SlotStats]:
    """Per-slot occupancy from ``slot-transfer`` events (TDM schemes only).

    Each ``slot-transfer`` event is one period of one slot; a period is
    *active* when it moved bytes.  Slots the fabric never clocked do not
    appear.
    """
    slots: dict[int, SlotStats] = {}
    for ev in events:
        if ev.kind != Kind.SLOT_TRANSFER:
            continue
        s = slots.get(ev.payload["slot"])
        if s is None:
            s = slots[ev.payload["slot"]] = SlotStats(ev.payload["slot"])
        s.periods += 1
        moved = ev.payload.get("bytes", 0)
        if moved:
            s.active_periods += 1
            s.bytes += moved
        s.conns += ev.payload.get("conns", 0)
    return slots


def port_duty_cycle(
    events: Iterable[TraceEvent], period_ps: int
) -> dict[int, PortStats]:
    """Per-source-port duty cycle over the traced span.

    Time is bucketed into ``period_ps`` windows (use the scheme's slot
    period, or a flit time for wormhole); a port's duty cycle is the
    fraction of buckets in the traced span during which it sourced at
    least one transfer event (:data:`~repro.obs.events.TRANSFER_KINDS`).
    """
    if period_ps <= 0:
        raise ValueError(f"period_ps must be positive, got {period_ps}")
    ports: dict[int, PortStats] = {}
    span_lo: int | None = None
    span_hi = 0
    for ev in events:
        if ev.kind not in TRANSFER_KINDS:
            continue
        src = ev.payload.get("src")
        if src is None:
            continue
        p = ports.get(src)
        if p is None:
            p = ports[src] = PortStats(src, first_ps=ev.time_ps, last_ps=ev.time_ps)
        p.transfers += 1
        p.bytes += ev.payload.get("bytes", 0)
        p.first_ps = min(p.first_ps, ev.time_ps)
        p.last_ps = max(p.last_ps, ev.time_ps)
        p._buckets.add(ev.time_ps // period_ps)
        span_lo = ev.time_ps if span_lo is None else min(span_lo, ev.time_ps)
        span_hi = max(span_hi, ev.time_ps)
    if span_lo is not None:
        total_buckets = span_hi // period_ps - span_lo // period_ps + 1
        for p in ports.values():
            p.duty_cycle = len(p._buckets) / total_buckets
    return ports


def request_latencies(events: Iterable[TraceEvent]) -> list[int]:
    """Request-wire-to-grant latencies, in picoseconds.

    Pairs each ``req-rise`` with the first subsequent ``conn-establish``
    for the same (src, dst); re-rises while a request is already pending
    keep the original timestamp (the wire stayed high the whole time).
    """
    pending: dict[tuple, int] = {}
    out: list[int] = []
    for ev in events:
        key = (ev.payload.get("src"), ev.payload.get("dst"))
        if ev.kind == Kind.REQ_RISE:
            pending.setdefault(key, ev.time_ps)
        elif ev.kind == Kind.CONN_ESTABLISH:
            raised = pending.pop(key, None)
            if raised is not None:
                out.append(ev.time_ps - raised)
        elif ev.kind == Kind.REQ_DROP:
            pending.pop(key, None)
    return out


def utilization_report(
    events: Iterable[TraceEvent], period_ps: int, label: str = "run"
) -> str:
    """Human-readable utilization summary for the CLI and benchmarks."""
    events = list(events)
    lines = [f"=== utilization: {label} ==="]
    slots = slot_occupancy(events)
    if slots:
        lines.append("slot  periods  active  occupancy     bytes")
        for s in sorted(slots.values(), key=lambda s: s.slot):
            lines.append(
                f"{s.slot:4d}  {s.periods:7d}  {s.active_periods:6d}"
                f"  {s.occupancy:9.3f}  {s.bytes:8d}"
            )
    ports = port_duty_cycle(events, period_ps)
    if ports:
        lines.append("port  transfers     bytes  duty-cycle")
        for p in sorted(ports.values(), key=lambda p: p.port):
            lines.append(
                f"{p.port:4d}  {p.transfers:9d}  {p.bytes:8d}  {p.duty_cycle:10.3f}"
            )
    lat = request_latencies(events)
    if lat:
        lat.sort()
        mid = lat[len(lat) // 2]
        lines.append(
            f"request->grant latency: n={len(lat)} min={lat[0]} "
            f"median={mid} max={lat[-1]} ps"
        )
    if len(lines) == 1:
        lines.append("(no transfer activity traced)")
    return "\n".join(lines)

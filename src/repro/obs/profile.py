"""Event-loop profiling: perf counters plus an opt-in cProfile wrapper.

The :class:`~repro.sim.engine.Simulator` keeps its own cheap counters
(events/sec, heap high-water mark, cancelled-event ratio); this module
formats them and, when asked, wraps a run in :mod:`cProfile` to attribute
wall time to simulator internals — all standard library, nothing to
install.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ProfileReport", "profile_run", "format_perf"]


def format_perf(perf: dict[str, float]) -> str:
    """Render :meth:`Simulator.perf_counters` output as aligned lines."""
    lines = []
    for key, value in perf.items():
        if isinstance(value, float):
            text = f"{value:,.3f}" if value < 1e6 else f"{value:,.0f}"
        else:
            text = f"{value:,}"
        lines.append(f"  {key:<18} {text}")
    return "\n".join(lines)


@dataclass(slots=True)
class ProfileReport:
    """What one profiled excursion observed."""

    label: str
    wall_s: float = 0.0
    #: simulator perf counters, if the caller attached them
    perf: dict[str, float] = field(default_factory=dict)
    #: top cProfile entries (empty unless profiling was enabled)
    hotspots: str = ""

    def format(self) -> str:
        out = [f"=== profile: {self.label} (wall {self.wall_s:.3f} s) ==="]
        if self.perf:
            out.append(format_perf(self.perf))
        if self.hotspots:
            out.append(self.hotspots.rstrip())
        return "\n".join(out)


def profile_run(
    fn: Callable[[], Any],
    *,
    label: str = "run",
    with_cprofile: bool = False,
    top: int = 15,
) -> tuple[Any, ProfileReport]:
    """Run ``fn()`` and report wall time and, optionally, cProfile hotspots.

    Returns ``(fn's result, report)``.  The caller typically follows up
    with ``report.perf.update(sim.perf_counters())`` once it can reach the
    simulator that ran.
    """
    report = ProfileReport(label)
    start = time.monotonic()
    if with_cprofile:
        profiler = cProfile.Profile()
        result = profiler.runcall(fn)
        report.wall_s = time.monotonic() - start
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats(pstats.SortKey.CUMULATIVE)
        stats.print_stats(top)
        report.hotspots = buf.getvalue()
    else:
        result = fn()
        report.wall_s = time.monotonic() - start
    return result, report

"""The typed event-kind catalog of the observability layer.

Every instrumentation point in the simulators records one of the kinds
below; free-form strings are still legal at the :class:`~repro.sim.trace.Tracer`
layer, but everything the package itself emits is listed here so exporters,
timelines, and tests share one vocabulary.

The catalog also declares how point events pair up into **spans** (a
begin/end interval with an identity): messages live from injection to
delivery (or an explicit drop under faults), connections from establishment
to release, and fault-recovery windows from disruption to the next
transferred byte.  :func:`repro.obs.exporters.derive_spans` applies these
rules when building Chrome/Perfetto timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Kind", "CATEGORIES", "SPAN_RULES", "SpanRule", "TRANSFER_KINDS"]


class Kind:
    """String constants for every event kind the instrumentation emits."""

    # message lifecycle (all schemes)
    MSG_INJECT = "msg-inject"  # src, dst, size, seq — entered the source NIC
    DELIVER = "deliver"  # src, dst, size, seq — last byte reached memory
    DROP = "drop"  # src, dst, size, seq — explicitly given up under faults

    # connection lifecycle (scheduler, management, and preload planes)
    CONN_ESTABLISH = "conn-establish"  # src, dst, slot[, via]
    CONN_RELEASE = "conn-release"  # src, dst, slot[, via]
    MGMT_REMAP = "mgmt-remap"  # src, dst, slot — management-plane placement
    PRELOAD_BATCH = "preload-batch"  # index, conns — compiled batch loaded

    # the SL-array scheduler
    SL_PASS = "sl-pass"  # slot, toggles, blocked — one SL clock period

    # data plane
    SLOT_TRANSFER = "slot-transfer"  # slot, conns, bytes — one TDM slot's work
    XFER = "xfer"  # src, dst, bytes, slot — one connection's slot transfer
    WORM_GRANTED = "worm-granted"  # src, dst, bytes — wormhole grant
    WORM_BLOCKED = "worm-blocked"  # src, dst — head blocked at a busy port
    CIRCUIT_TX = "circuit-tx"  # src, dst, bytes, reused — circuit transmission

    # request plane (NIC -> scheduler wires)
    REQ_RISE = "req-rise"  # src, dst — request line seen by the scheduler
    REQ_DROP = "req-drop"  # src, dst — queue-empty edge seen by the scheduler

    # the NIC itself
    NIC_ENQUEUE = "nic-enqueue"  # port, dst, size, depth — message entered VOQs
    NIC_RX = "nic-rx"  # port, src, bytes — delivery into the input buffer

    # faults and recovery (repro.faults)
    FAULT_LINK_DOWN = "fault-link-down"
    FAULT_LINK_UP = "fault-link-up"
    FAULT_LINK_DEAD = "fault-link-dead"
    FAULT_SLOT_STUCK = "fault-slot-stuck"
    FAULT_SLOT_CORRUPT = "fault-slot-corrupt"
    FAULT_SLOT_QUARANTINE = "fault-slot-quarantine"
    FAULT_REQ_DROP = "fault-req-drop"
    FAULT_SL_DEAD = "fault-sl-dead"
    DEGRADE = "degrade-to-dynamic"
    RECOVERY_OPEN = "recovery-open"  # src, dst — disruption with traffic pending
    RECOVERY_CLOSED = "recovery-closed"  # src, dst, latency_ps — bytes flow again

    # the online switching service (repro.service)
    SVC_SUBMIT = "svc-submit"  # req, src, dst — lease request entered admission
    SVC_GRANT = "svc-grant"  # req, src, dst, latency_ps — circuit leased
    SVC_SHED = "svc-shed"  # req, src, dst, reason — deterministically shed
    SVC_REJECT = "svc-reject"  # req, src, dst — endpoint dead, not counted as shed
    SVC_RELEASE = "svc-release"  # req, src, dst — lease expired / torn down
    SVC_LEVEL = "svc-level"  # level, reason — overload ladder transition
    SVC_SNAPSHOT = "svc-snapshot"  # window SLO counters (see service/slo.py)


#: Chrome-trace category per kind (used for filtering in the viewer).
CATEGORIES: dict[str, str] = {
    Kind.MSG_INJECT: "message",
    Kind.DELIVER: "message",
    Kind.DROP: "message",
    Kind.CONN_ESTABLISH: "connection",
    Kind.CONN_RELEASE: "connection",
    Kind.MGMT_REMAP: "connection",
    Kind.PRELOAD_BATCH: "connection",
    Kind.SL_PASS: "scheduler",
    Kind.SLOT_TRANSFER: "data",
    Kind.XFER: "data",
    Kind.WORM_GRANTED: "data",
    Kind.WORM_BLOCKED: "data",
    Kind.CIRCUIT_TX: "data",
    Kind.REQ_RISE: "request",
    Kind.REQ_DROP: "request",
    Kind.NIC_ENQUEUE: "nic",
    Kind.NIC_RX: "nic",
    Kind.FAULT_LINK_DOWN: "fault",
    Kind.FAULT_LINK_UP: "fault",
    Kind.FAULT_LINK_DEAD: "fault",
    Kind.FAULT_SLOT_STUCK: "fault",
    Kind.FAULT_SLOT_CORRUPT: "fault",
    Kind.FAULT_SLOT_QUARANTINE: "fault",
    Kind.FAULT_REQ_DROP: "fault",
    Kind.FAULT_SL_DEAD: "fault",
    Kind.DEGRADE: "fault",
    Kind.RECOVERY_OPEN: "fault",
    Kind.RECOVERY_CLOSED: "fault",
    Kind.SVC_SUBMIT: "service",
    Kind.SVC_GRANT: "service",
    Kind.SVC_SHED: "service",
    Kind.SVC_REJECT: "service",
    Kind.SVC_RELEASE: "service",
    Kind.SVC_LEVEL: "service",
    Kind.SVC_SNAPSHOT: "service",
}

#: kinds that move bytes over a port (used by the duty-cycle timeline)
TRANSFER_KINDS = (Kind.XFER, Kind.WORM_GRANTED, Kind.CIRCUIT_TX)


@dataclass(slots=True, frozen=True)
class SpanRule:
    """How two point events pair into one timeline span.

    ``keys`` name the payload fields forming the span's identity: a begin
    event opens the span for its key tuple, the first matching end event
    closes it.  Re-opening an already-open key is ignored (the span is
    already running), and spans still open when the trace ends are closed
    at the last recorded timestamp.
    """

    name: str
    category: str
    begin: str
    end: tuple[str, ...]
    keys: tuple[str, ...]


SPAN_RULES: tuple[SpanRule, ...] = (
    SpanRule(
        name="message",
        category="message",
        begin=Kind.MSG_INJECT,
        end=(Kind.DELIVER, Kind.DROP),
        keys=("src", "dst", "seq"),
    ),
    SpanRule(
        name="connection",
        category="connection",
        begin=Kind.CONN_ESTABLISH,
        end=(Kind.CONN_RELEASE,),
        keys=("src", "dst"),
    ),
    SpanRule(
        name="recovery",
        category="fault",
        begin=Kind.RECOVERY_OPEN,
        end=(Kind.RECOVERY_CLOSED,),
        keys=("src", "dst"),
    ),
    SpanRule(
        name="admission",
        category="service",
        begin=Kind.SVC_SUBMIT,
        end=(Kind.SVC_GRANT, Kind.SVC_SHED, Kind.SVC_REJECT),
        keys=("req",),
    ),
    SpanRule(
        name="lease",
        category="service",
        begin=Kind.SVC_GRANT,
        end=(Kind.SVC_RELEASE,),
        keys=("req",),
    ),
)

"""Canonical cell encoding, seed derivation, and the code fingerprint.

The execution engine (:mod:`repro.exec.engine`) identifies a run cell by
*value*, never by position: the cache key and the per-cell seed are both
derived from a canonical JSON encoding of the cell, so neither can depend
on worker index, completion order, or dict insertion order.  Three pieces
live here:

* :func:`canonical_json` — a deterministic JSON encoding for the plain
  values cells are built from (primitives, lists/tuples, string-keyed
  dicts, and dataclasses such as :class:`~repro.params.SystemParams` or
  the per-driver cell records).  Dataclasses are tagged with their
  qualified class name so two cell types with identical fields can never
  collide; anything unencodable (functions, tracers, arrays) raises
  :class:`CellEncodingError` — such values must not ride in a cell.
* :func:`derive_seed` — the stable per-cell seed: a SHA-256 hash of the
  canonical encoding mixed with the root seed, masked to 63 bits.  It is
  a pure function of (root seed, cell value); running the same cell on
  any worker, in any order, on any machine derives the same seed.
* :func:`code_fingerprint` — a digest over every ``.py`` file under the
  installed ``repro`` package.  It participates in every cache key, so a
  result computed by old code can never be served after a source change.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError

__all__ = [
    "CellEncodingError",
    "canonical_encode",
    "canonical_json",
    "derive_seed",
    "code_fingerprint",
]


class CellEncodingError(ConfigurationError):
    """A cell carries a value with no canonical encoding."""


#: primitive types encoded as themselves
_PRIMITIVES = (str, int, float, bool, type(None))


def canonical_encode(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-safe tree with a unique canonical form.

    Tuples and lists both encode as JSON arrays (a cell's geometry is the
    value, not the Python container); dict keys must be strings and are
    emitted sorted; dataclass instances carry their qualified class name.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (str, int)):
        return obj
    if isinstance(obj, float):
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise CellEncodingError(f"non-finite float {obj!r} has no canonical form")
        return obj
    if isinstance(obj, (list, tuple)):
        return [canonical_encode(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj):
            if not isinstance(key, str):
                raise CellEncodingError(
                    f"dict key {key!r} is not a string; cells must use "
                    "string-keyed dicts"
                )
            out[key] = canonical_encode(obj[key])
        return out
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonical_encode(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    raise CellEncodingError(
        f"{type(obj).__qualname__} value {obj!r} cannot ride in a run cell; "
        "cells must be plain data (primitives, lists, string-keyed dicts, "
        "dataclasses of those)"
    )


def canonical_json(obj: Any) -> str:
    """The canonical JSON string for ``obj`` (compact, keys sorted)."""
    return json.dumps(
        canonical_encode(obj), sort_keys=True, separators=(",", ":")
    )


#: seeds are masked to 63 bits so they fit any signed 64-bit consumer
_SEED_MASK = (1 << 63) - 1


def derive_seed(root_seed: int, cell_key: str) -> int:
    """The deterministic seed for the cell encoded as ``cell_key``.

    ``seed = SHA256(root_seed ":" cell_key)[:8]`` — a pure function of its
    arguments, never of worker identity or scheduling order.  Golden
    values are pinned by the test suite; changing this function invalidates
    every cached result (the fingerprint does that automatically) but must
    never happen silently.
    """
    digest = hashlib.sha256(f"{int(root_seed)}:{cell_key}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & _SEED_MASK


def _package_root() -> Path:
    from .. import __file__ as pkg_file

    return Path(pkg_file).resolve().parent


@lru_cache(maxsize=None)
def _fingerprint_of(root: str) -> str:
    h = hashlib.sha256()
    base = Path(root)
    for path in sorted(base.rglob("*.py")):
        rel = path.relative_to(base).as_posix()
        h.update(rel.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (cached per process)."""
    return _fingerprint_of(str(_package_root()))

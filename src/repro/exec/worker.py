"""Worker-side plumbing for the parallel execution engine.

A pool worker is a long-lived process that runs many cells back to back,
so any module-global mutable state one cell touches would leak into the
next — and, under the default ``fork`` start method, state the *parent*
process dirtied before the pool was created is inherited too.  Both leaks
are closed the same way: :func:`reset_process_state` restores every known
piece of process-global state to its import-time value, and it runs both
as the pool initializer (scrubs the inherited fork image) and at the top
of every task (scrubs whatever the previous cell left behind).

The known global state, and what reset does to it:

* **scheme registry** (:mod:`repro.networks.registry`) — cells could
  register ad-hoc schemes; registrations made after import are removed
  (the import-time set is snapshotted the first time this module loads).
* **null tracer** (:data:`repro.sim.trace.NULL_TRACER`) — shared across
  every untraced run; drained so no recorded event can cross cells.
* **RNG streams** (:mod:`repro.sim.rng`) — stateless by construction
  (generators are derived per call from (seed, name)); nothing to reset,
  asserted here so a future singleton cannot appear unnoticed.

Fault injectors, simulators, lifecycle managers, and NIC state are all
per-run objects created inside the cell; they need no scrubbing.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["reset_process_state", "run_task"]


def _registry_baseline() -> frozenset[str]:
    from ..networks import registry

    return frozenset(registry._ALIAS_TO_NAME)


#: scheme names + aliases present when this module was first imported
_BASELINE_SCHEMES = _registry_baseline()


def reset_process_state() -> None:
    """Restore every known piece of process-global state.

    Idempotent and cheap (no I/O, no allocation beyond a few dict ops);
    safe to call in the parent process as well as in pool workers.
    """
    from ..networks import registry
    from ..sim import rng
    from ..sim.trace import NULL_TRACER

    # schemes registered after import (a cell's ad-hoc register_scheme)
    for alias in set(registry._ALIAS_TO_NAME) - _BASELINE_SCHEMES:
        name = registry._ALIAS_TO_NAME.pop(alias)
        registry._REGISTRY.pop(name, None)

    # the shared disabled tracer must never carry events between cells
    NULL_TRACER.clear()
    NULL_TRACER.enabled = False

    # repro.sim.rng keeps no module-level generator state; if a singleton
    # ever appears there this assertion forces this reset to learn about it
    assert not any(
        isinstance(v, (dict, list, set)) and v
        for k, v in vars(rng).items()
        if k.startswith("_") and not k.startswith("__")
    ), "repro.sim.rng grew module-level mutable state; reset it here"


def init_worker() -> None:
    """Pool initializer: scrub state inherited from the forked parent."""
    reset_process_state()


def run_task(
    runner: Callable[..., Any],
    cell: Any,
    cell_seed: int,
    with_seed: bool,
) -> tuple[Any, float]:
    """Execute one cell in a clean process state; returns (payload, wall_s).

    Runs in the pool worker (or inline for the serial path's pooled tests).
    The reset at the top is what makes a *reused* worker equivalent to a
    fresh process: cell N+1 cannot observe anything cell N did to module
    globals.
    """
    reset_process_state()
    start = time.perf_counter()
    payload = runner(cell, cell_seed) if with_seed else runner(cell)
    return payload, time.perf_counter() - start

"""The content-addressed RunSpec result cache.

Every cache entry is addressed by a SHA-256 key over four components:

* the runner's qualified name (which reducer produced the payload),
* the canonical JSON of the cell (:func:`repro.exec.canonical.canonical_json`),
* the root seed of the sweep,
* the :func:`~repro.exec.canonical.code_fingerprint` of ``src/repro``.

The fingerprint makes staleness structurally impossible: any source change
under ``repro`` changes every key, so old entries simply stop being found
(``repro cache clear`` reclaims the disk).  Values are the cell's metrics
payload, pickled, with the payload digest stored alongside so
``repro cache verify`` can detect bit rot; a corrupt or truncated entry
reads as a miss and is recomputed, never served.

The cache directory defaults to ``~/.cache/repro`` and is overridden by
the ``REPRO_CACHE_DIR`` environment variable.  Writes are atomic
(temp file + rename), so concurrent sweeps sharing a cache cannot observe
half-written entries.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["CACHE_DIR_ENV_VAR", "CacheEntry", "CacheStats", "ResultCache"]

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: bump when the on-disk entry layout changes
_ENTRY_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass(slots=True, frozen=True)
class CacheEntry:
    """One cache hit: the payload plus what producing it originally cost."""

    payload: Any
    wall_s: float


@dataclass(slots=True, frozen=True)
class CacheStats:
    """What ``repro cache stats`` reports."""

    root: str
    entries: int
    total_bytes: int
    #: cumulative wall-clock seconds the cached computations originally took
    saved_wall_s: float


class ResultCache:
    """Content-addressed store of cell payloads under one directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def key(
        runner_id: str, cell_json: str, root_seed: int, fingerprint: str
    ) -> str:
        """The content address of one (runner, cell, seed, code) value."""
        h = hashlib.sha256()
        for part in (runner_id, cell_json, str(int(root_seed)), fingerprint):
            h.update(part.encode())
            h.update(b"\0")
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    # -- get / put -------------------------------------------------------------

    def get(self, key: str) -> CacheEntry | None:
        """The entry under ``key``, or None (unreadable entries are misses)."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        entry = self._decode(raw)
        if entry is None or entry.get("key") != key:
            return None
        try:
            payload = pickle.loads(entry["payload"])
        except Exception:
            return None
        return CacheEntry(payload=payload, wall_s=float(entry["wall_s"]))

    def put(
        self,
        key: str,
        payload: Any,
        *,
        wall_s: float,
        runner_id: str = "",
        cell_json: str = "",
    ) -> None:
        """Store ``payload`` under ``key`` atomically.

        An unpicklable payload raises immediately — silently uncacheable
        cells would make warm-cache timing claims a lie.
        """
        payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        entry = {
            "version": _ENTRY_VERSION,
            "key": key,
            "runner": runner_id,
            "cell": cell_json,
            "wall_s": float(wall_s),
            "payload_sha256": hashlib.sha256(payload_bytes).hexdigest(),
            "payload": payload_bytes,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            # never leave a half-written temp behind on crash/interrupt
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    @staticmethod
    def _decode(raw: bytes) -> dict | None:
        try:
            entry = pickle.loads(raw)
        except Exception:
            return None
        if not isinstance(entry, dict) or entry.get("version") != _ENTRY_VERSION:
            return None
        digest = hashlib.sha256(entry.get("payload", b"")).hexdigest()
        if digest != entry.get("payload_sha256"):
            return None
        return entry

    # -- maintenance (the ``repro cache`` subcommand) --------------------------

    def _entry_paths(self) -> list[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.rglob("*.pkl"))

    def _stale_tmp_paths(self) -> list[Path]:
        """Temp files orphaned by a crash mid-``put`` (never read as entries)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(p for p in objects.rglob("*.tmp.*") if p.is_file())

    def stats(self) -> CacheStats:
        """Entry count, footprint, and the wall time the entries represent."""
        entries = 0
        total_bytes = 0
        saved = 0.0
        for path in self._entry_paths():
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            total_bytes += len(raw)
            entry = self._decode(raw)
            if entry is not None:
                entries += 1
                saved += float(entry["wall_s"])
        return CacheStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total_bytes,
            saved_wall_s=saved,
        )

    def clear(self) -> int:
        """Delete every entry and stale temp file; returns files removed."""
        removed = 0
        for path in self._entry_paths() + self._stale_tmp_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def verify(self) -> tuple[int, list[str]]:
        """Re-hash every entry; returns (ok_count, bad entry paths)."""
        ok = 0
        bad: list[str] = []
        for path in self._entry_paths():
            try:
                raw = path.read_bytes()
            except OSError:
                bad.append(str(path))
                continue
            entry = self._decode(raw)
            if entry is None or self._path(entry.get("key", "")) != path:
                bad.append(str(path))
            else:
                ok += 1
        # surface crash leftovers too: a stale temp is disk the cache owns
        bad.extend(str(p) for p in self._stale_tmp_paths())
        return ok, bad

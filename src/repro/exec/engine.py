"""The deterministic parallel experiment engine.

:func:`map_cells` is the one entry point every sweep driver uses: it takes
a module-level ``runner`` function and a list of *cells* (plain-data
values describing one independent unit of work each — one (pattern,
scheme, size) simulation, one fault campaign, one ablation) and returns
the payloads **in cell order**, bit-identical no matter how many worker
processes ran them or in what order they completed.  Determinism rests on
three rules:

* **cells are values** — each cell is canonically encoded
  (:mod:`repro.exec.canonical`); its seed is derived from that encoding
  plus the root seed, never from a worker index or a submission counter;
* **ordered reduction** — results are placed by cell index, so completion
  order is invisible to the caller;
* **no shared state** — every cell builds its own simulator/network/RNGs,
  and pool workers scrub process-global state before every cell
  (:mod:`repro.exec.worker`), so a reused worker is indistinguishable
  from a fresh process.

``jobs`` resolves as: explicit argument, else the ``REPRO_JOBS``
environment variable, else ``os.cpu_count()``.  ``jobs=1`` runs every
cell in-process, in order, with no pool and no pickling — exactly the
pre-engine serial path.  An optional content-addressed
:class:`~repro.exec.cache.ResultCache` short-circuits cells whose payload
is already on disk; ``refresh=True`` recomputes and overwrites.

Direct ``ProcessPoolExecutor``/``multiprocessing`` use anywhere else in
the repo is forbidden by ``tools/check_construction.py`` — all fan-out
goes through here so the determinism rules cannot be bypassed.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..errors import ConfigurationError
from .cache import ResultCache
from .canonical import canonical_json, code_fingerprint, derive_seed
from .worker import init_worker, run_task

__all__ = ["JOBS_ENV_VAR", "ExecStats", "ExecOutcome", "map_cells", "resolve_jobs"]

JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Explicit value, else ``$REPRO_JOBS``, else ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        jobs = int(env) if env else (os.cpu_count() or 1)
    jobs = int(jobs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _resolve_cache(cache: ResultCache | str | os.PathLike | bool | None) -> ResultCache | None:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


@dataclass(slots=True)
class ExecStats:
    """Executor telemetry for one :func:`map_cells` call.

    ``serial_estimate_s`` sums what every cell cost (fresh cells as
    measured, cached cells as originally recorded), so ``speedup`` is the
    sweep's wall-clock advantage over running everything serially, cold.
    """

    label: str
    jobs: int
    cells_total: int = 0
    cells_run: int = 0
    cells_cached: int = 0
    #: wall-clock seconds spent inside freshly-run cells (summed)
    cell_wall_s: float = 0.0
    #: original cost of the cells served from the cache (summed)
    cached_wall_s: float = 0.0
    #: end-to-end wall-clock of the map_cells call
    elapsed_s: float = 0.0
    #: per-cell wall seconds, by cell index (cached cells report their
    #: originally recorded cost)
    cell_wall: list[float] = field(default_factory=list)

    @property
    def serial_estimate_s(self) -> float:
        return self.cell_wall_s + self.cached_wall_s

    @property
    def speedup(self) -> float:
        return self.serial_estimate_s / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def pool_utilization(self) -> float:
        """Fraction of the pool's capacity spent inside cells."""
        if self.elapsed_s <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.cell_wall_s / (self.jobs * self.elapsed_s))

    def as_counters(self) -> dict[str, float]:
        """Counters in the shape :func:`repro.obs.format_perf` renders."""
        return {
            "cells_total": self.cells_total,
            "cells_run": self.cells_run,
            "cells_cached": self.cells_cached,
            "jobs": self.jobs,
            "cell_wall_s": self.cell_wall_s,
            "cached_wall_s": self.cached_wall_s,
            "elapsed_s": self.elapsed_s,
            "serial_estimate_s": self.serial_estimate_s,
            "speedup_vs_serial": self.speedup,
            "pool_utilization": self.pool_utilization,
        }

    def summary(self) -> str:
        """The one-line progress/telemetry summary."""
        return (
            f"{self.label}: {self.cells_total} cells "
            f"({self.cells_run} run, {self.cells_cached} cached, "
            f"jobs {self.jobs}) in {self.elapsed_s:.2f} s — "
            f"serial estimate {self.serial_estimate_s:.2f} s, "
            f"{self.speedup:.1f}x, pool {self.pool_utilization:.0%}"
        )


@dataclass(slots=True)
class ExecOutcome:
    """Ordered payloads plus telemetry for one :func:`map_cells` call."""

    payloads: list[Any]
    stats: ExecStats
    #: the per-cell derived seeds, aligned with ``payloads``
    cell_seeds: list[int]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.payloads)

    def __len__(self) -> int:
        return len(self.payloads)

    def __getitem__(self, index: int) -> Any:
        return self.payloads[index]


def _emit_progress(stats: ExecStats, done: int, stream: Any) -> None:
    stream.write(
        f"\r{stats.label}: {done}/{stats.cells_total} cells "
        f"({stats.cells_cached} cached, jobs {stats.jobs})"
    )
    stream.flush()


def map_cells(
    runner: Callable[..., Any],
    cells: Iterable[Any],
    *,
    root_seed: int = 0,
    jobs: int | None = None,
    cache: ResultCache | str | os.PathLike | bool | None = None,
    refresh: bool = False,
    with_seed: bool = False,
    label: str = "",
    progress: bool = False,
    force_pool: bool = False,
) -> ExecOutcome:
    """Run every cell and return payloads in cell order.

    Parameters
    ----------
    runner:
        Module-level function mapping one cell to its payload.  Called as
        ``runner(cell)``, or ``runner(cell, cell_seed)`` when
        ``with_seed`` is set.  Must be picklable by reference (pools send
        the qualified name, not the code).
    cells:
        Plain-data cell values (see :mod:`repro.exec.canonical` for what
        encodes).  Each must fully describe its computation — the cache
        addresses payloads by cell content.
    root_seed:
        The sweep's master seed; mixed into every derived cell seed and
        every cache key.
    jobs:
        Worker processes (see :func:`resolve_jobs`).  ``1`` = in-process
        serial execution, no pool.
    cache:
        ``None``/``False`` = no caching; ``True`` = the default cache
        directory; a path or :class:`ResultCache` = that cache.
    refresh:
        Recompute every cell and overwrite its cache entry.
    with_seed:
        Pass the derived per-cell seed as a second runner argument.
        Sweeps that must show *identical* workloads to every cell (the
        paper's cross-scheme comparison rule) leave this off and carry
        the root seed inside the cell instead.
    progress:
        Write a carriage-return progress line and a final summary to
        stderr.
    force_pool:
        Use a worker pool even for ``jobs=1`` (tests exercise worker
        reuse with it; the serial path never resets in-process state).
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    store = _resolve_cache(cache)
    runner_id = f"{runner.__module__}:{runner.__qualname__}"
    stats = ExecStats(
        label=label or runner_id,
        jobs=jobs,
        cells_total=len(cells),
        cell_wall=[0.0] * len(cells),
    )
    cell_jsons = [canonical_json(cell) for cell in cells]
    cell_seeds = [derive_seed(root_seed, js) for js in cell_jsons]
    keys: list[str] = []
    if store is not None:
        fingerprint = code_fingerprint()
        keys = [
            ResultCache.key(runner_id, js, root_seed, fingerprint)
            for js in cell_jsons
        ]

    start = time.perf_counter()
    payloads: list[Any] = [None] * len(cells)
    pending: list[int] = []
    completed = 0
    stream = sys.stderr
    for i in range(len(cells)):
        hit = store.get(keys[i]) if store is not None and not refresh else None
        if hit is not None:
            payloads[i] = hit.payload
            stats.cells_cached += 1
            stats.cached_wall_s += hit.wall_s
            stats.cell_wall[i] = hit.wall_s
            completed += 1
        else:
            pending.append(i)
    if progress and completed:
        _emit_progress(stats, completed, stream)

    def finish(i: int, payload: Any, wall_s: float) -> None:
        nonlocal completed
        payloads[i] = payload
        stats.cells_run += 1
        stats.cell_wall_s += wall_s
        stats.cell_wall[i] = wall_s
        completed += 1
        if store is not None:
            store.put(
                keys[i],
                payload,
                wall_s=wall_s,
                runner_id=runner_id,
                cell_json=cell_jsons[i],
            )
        if progress:
            _emit_progress(stats, completed, stream)

    if pending and jobs == 1 and not force_pool:
        # the serial path: in order, in process, no pickling, and no
        # worker-state scrubbing (the caller's process is its own)
        for i in pending:
            t0 = time.perf_counter()
            payload = (
                runner(cells[i], cell_seeds[i]) if with_seed else runner(cells[i])
            )
            finish(i, payload, time.perf_counter() - t0)
    elif pending:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=init_worker
        ) as pool:
            futures = {
                pool.submit(run_task, runner, cells[i], cell_seeds[i], with_seed): i
                for i in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in finished:
                    payload, wall_s = fut.result()
                    finish(futures[fut], payload, wall_s)

    stats.elapsed_s = time.perf_counter() - start
    if progress:
        stream.write(f"\r{stats.summary()}\n")
        stream.flush()
    return ExecOutcome(payloads=payloads, stats=stats, cell_seeds=cell_seeds)

"""Parallel experiment execution with a content-addressed result cache.

The package behind ``--jobs`` and ``repro cache``:

* :mod:`~repro.exec.engine` — :func:`map_cells`, the deterministic
  fan-out/ordered-reduce executor every sweep driver uses;
* :mod:`~repro.exec.cache` — the content-addressed
  :class:`~repro.exec.cache.ResultCache` (cell + seed + code fingerprint
  address a metrics payload);
* :mod:`~repro.exec.canonical` — canonical cell encoding, per-cell seed
  derivation, and the source fingerprint that makes stale cache hits
  structurally impossible;
* :mod:`~repro.exec.worker` — per-process state scrubbing so reused pool
  workers cannot leak state between cells.

See ``docs/performance.md`` for the determinism guarantees and the knobs
(``--jobs N`` / ``REPRO_JOBS``, ``REPRO_CACHE_DIR``, ``--no-cache``,
``--refresh``).
"""

from .cache import CACHE_DIR_ENV_VAR, CacheEntry, CacheStats, ResultCache
from .canonical import (
    CellEncodingError,
    canonical_encode,
    canonical_json,
    code_fingerprint,
    derive_seed,
)
from .engine import JOBS_ENV_VAR, ExecOutcome, ExecStats, map_cells, resolve_jobs
from .worker import reset_process_state

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "JOBS_ENV_VAR",
    "CacheEntry",
    "CacheStats",
    "CellEncodingError",
    "ExecOutcome",
    "ExecStats",
    "ResultCache",
    "canonical_encode",
    "canonical_json",
    "code_fingerprint",
    "derive_seed",
    "map_cells",
    "reset_process_state",
    "resolve_jobs",
]

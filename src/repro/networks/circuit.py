"""Pure circuit switching — the paper's first baseline.

Section 3: *"circuit switching amounts to TDM with a multiplexing degree of
one"*.  A dedicated path is established per message and torn down when the
message completes.  The cost accounting follows Section 5 exactly:

* the request travels to the scheduler over an 80 ns wire;
* the scheduler resolves contention with the same SL array as the TDM
  system (one pass per 80 ns, K = 1);
* the grant travels back over an 80 ns wire;
* data then streams at full link rate over the LVDS pipe
  (30 + 20 + 20 + 30 ns point-to-point latency);
* when the tail leaves, the request line drops (another 80 ns) and the
  next SL pass releases the circuit — ports stay blocked until then, which
  is the teardown overhead circuit switching pays per message.

Each NIC services its message script in FIFO order: one output link means
one circuit at a time, so only the head message's destination is
requested.  Back-to-back messages to the same destination reuse the
established circuit without teardown (the request line simply never
drops) — the best case the paper's Section 2 analysis describes.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..params import SystemParams
from ..sched.priority import RotationPolicy, RoundRobinPriority
from ..sched.scheduler import Scheduler
from ..sched.slarray import wavefront_batch
from ..sim.engine import Priority
from ..sim.trace import Tracer
from ..topo import Topology
from ..traffic.base import TrafficPhase
from ..types import Message, MessageRecord
from .base import BaseNetwork

__all__ = ["CircuitNetwork"]

# NIC service states
_IDLE = 0
_WAITING = 1  # request raised, circuit not granted yet
_SENDING = 2


class CircuitNetwork(BaseNetwork):
    """Per-message circuit establishment over a single crossbar."""

    scheme = "circuit"

    def __init__(
        self,
        params: SystemParams,
        rotation: RotationPolicy | None = None,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        fast: bool | None = None,
        strict: bool | None = None,
        max_wall_s: float | None = None,
        topology: Topology | None = None,
    ) -> None:
        super().__init__(
            params,
            tracer,
            faults=faults,
            strict=strict,
            max_wall_s=max_wall_s,
            topology=topology,
        )
        if not self.topology.is_single_switch:
            raise ConfigurationError(
                f"CircuitNetwork models one crossbar; topology "
                f"{self.topology.name!r} has {self.topology.n_switches} "
                f"switches (use the mesh-tdm / fattree-tdm schemes)"
            )
        #: accepted for RunSpec symmetry with the TDM schemes and ignored:
        #: circuit switching has no periodic slot clock, so there is no
        #: slot-synchronous fast path to select (repro.sim.fastpath)
        self.fast = False if fast is None else bool(fast)
        self.rotation_template = rotation
        self.scheduler: Scheduler | None = None
        self._fifo: list[deque[Message]] = []
        self._state: list[int] = []
        self._current: list[Message | None] = []
        self._clock_started = False
        self.circuits_established = 0

    def _reset_scheme_state(self) -> None:
        n = self.params.n_ports
        rotation = self.rotation_template or RoundRobinPriority(n)
        rotation.reset()
        self.scheduler = Scheduler(self.params, k=1, rotation=rotation)
        self.scheduler.tracer = self.tracer
        self.scheduler.clock = lambda: self.sim.now
        if self.fast:
            # circuit switching has no slot clock to batch, but its SL
            # passes can use the vectorised wavefront (bit-identical)
            self.scheduler.wavefront = wavefront_batch
        self._fifo = [deque() for _ in range(n)]
        self._state = [_IDLE] * n
        self._current = [None] * n
        self._clock_started = False
        self.circuits_established = 0
        # fault recovery (watchdogs, retries, give-up) is driven by the
        # lifecycle layer through the lifecycle_* callbacks below
        self.lifecycle.attach_scheduler(self.scheduler, client=self)
        self._link_blocked: set[int] = set()

    def _accept(self, msg, at_phase_start: bool) -> None:
        """Messages join the source NIC's sequential script on arrival."""
        self._fifo[msg.src].append(msg)
        if not at_phase_start and self._state[msg.src] == _IDLE:
            self._advance_nic(msg.src)

    def _execute_phase(self, phase: TrafficPhase) -> None:
        # circuit switching serves each source's messages in program order
        for u in range(self.params.n_ports):
            if self._state[u] == _IDLE and self._fifo[u]:
                self._advance_nic(u)
        if not self._clock_started:
            self._clock_started = True
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )
        self._run_event_loop()

    def _collect_counters(self) -> dict[str, int]:
        out = super()._collect_counters()
        out["circuits_established"] = self.circuits_established
        if self.scheduler is not None:
            out.update(self.scheduler.counters.as_dict())
        return out

    # -- NIC state machine ------------------------------------------------------

    def _advance_nic(self, u: int) -> None:
        """Start serving the next queued message at NIC ``u`` (if any)."""
        fifo = self._fifo[u]
        while True:
            if not fifo:
                self._state[u] = _IDLE
                return
            msg = fifo.popleft()
            if self._faults_active and (
                self._link_dead[u] or self._link_dead[msg.dst]
            ):
                self._drop_message(msg, "dead-link")
                continue
            break
        self._current[u] = msg
        self._state[u] = _WAITING
        sched = self.scheduler
        assert sched is not None
        if sched.registers.b_star[u, msg.dst]:
            # circuit still up from the previous message — reuse it now
            self._start_transmission(u, reused=True)
        else:
            # raise the request line; it reaches the scheduler after the wire
            self.sim.schedule(
                self.params.request_wire_ps,
                self._request_up,
                u,
                msg.dst,
                priority=Priority.WIRE,
            )
            if self._faults_active:
                self.lifecycle.arm(u, msg.dst)

    def _request_up(self, u: int, v: int) -> None:
        sched = self.scheduler
        assert sched is not None
        if self.tracer.enabled and not sched.r_view[u, v]:
            self.tracer.record(self.sim.now, "req-rise", src=u, dst=v)
        sched.r_view[u, v] = True

    def _request_down(self, u: int, v: int) -> None:
        sched = self.scheduler
        assert sched is not None
        # the NIC may have raised the line again for a same-destination
        # message while the drop was in flight
        msg = self._current[u]
        if msg is not None and msg.dst == v and self._state[u] != _IDLE:
            return
        if self.tracer.enabled and sched.r_view[u, v]:
            self.tracer.record(self.sim.now, "req-drop", src=u, dst=v)
        sched.r_view[u, v] = False

    # -- scheduler clock -----------------------------------------------------------

    def _sl_tick(self) -> None:
        sched = self.scheduler
        assert sched is not None
        if 0 in sched.registers.quarantined:
            # the single slot is out of service; only the management plane
            # (or a message drop) can make progress now
            if self._phase_remaining > 0 or self.sim.pending > 0:
                self.sim.schedule(
                    self.params.scheduler_pass_ps,
                    self._sl_tick,
                    priority=Priority.SCHEDULER,
                )
            return
        result = sched.sl_pass(0)
        if result.outcome is not None:
            for t in result.outcome.established:
                self.circuits_established += 1
                # the pass takes one scheduler period to latch its result,
                # then the grant travels back to the NIC (paper: 80 + 80 ns)
                self.sim.schedule(
                    self.params.scheduler_pass_ps + self.params.grant_wire_ps,
                    self._granted,
                    t.u,
                    t.v,
                    priority=Priority.WIRE,
                )
        if self._phase_remaining > 0 or self.sim.pending > 0:
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )

    def _granted(self, u: int, v: int) -> None:
        msg = self._current[u]
        if msg is None or msg.dst != v or self._state[u] != _WAITING:
            # stale grant (the message was served over a reused circuit)
            return
        self._start_transmission(u, reused=False)

    # -- data plane -------------------------------------------------------------------

    def _start_transmission(self, u: int, reused: bool) -> None:
        msg = self._current[u]
        assert msg is not None
        params = self.params
        if self._faults_active and (
            self._link_down[u] or self._link_down[msg.dst]
        ):
            if self._link_dead[u] or self._link_dead[msg.dst]:
                v = msg.dst
                self._current[u] = None
                self._drop_message(msg, "dead-link")
                self._advance_nic(u)
                nxt = self._current[u]
                if nxt is None or nxt.dst != v:
                    self.sim.schedule(
                        params.request_wire_ps,
                        self._request_down,
                        u,
                        v,
                        priority=Priority.WIRE,
                    )
                return
            # transient outage: hold the circuit, resume on link-up
            self._state[u] = _WAITING
            self._link_blocked.add(u)
            return
        if self._faults_active:
            self._link_blocked.discard(u)
            assert self.fault_injector is not None
            self.fault_injector.note_progress(u, msg.dst)
        self._state[u] = _SENDING
        t = self.sim.now
        tail_ps = t + params.message_bytes_ps(msg.size)
        # fill time of the established pipe; == params.pipe_latency_ps for
        # the single crossbar this scheme models
        done_ps = tail_ps + self.topology.path_latency_ps(params, 1)
        self.ledger.send(u, msg.dst, msg.size)
        record = MessageRecord(
            src=u,
            dst=msg.dst,
            size=msg.size,
            inject_ps=msg.inject_ps,
            start_ps=t,
            done_ps=done_ps,
            seq=msg.seq,
        )
        self.tracer.record(
            t, "circuit-tx", src=u, dst=msg.dst, bytes=msg.size, reused=reused
        )
        self.sim.schedule_at(tail_ps, self._tail_left, u, priority=Priority.NIC)
        self.sim.schedule_at(done_ps, self._deliver, record, priority=Priority.NIC)

    def _tail_left(self, u: int) -> None:
        """The message's last byte left NIC ``u``: advance to the next one."""
        msg = self._current[u]
        assert msg is not None
        v = msg.dst
        self._current[u] = None
        self._advance_nic(u)
        nxt = self._current[u]
        if nxt is None or nxt.dst != v:
            # destination changed (or no more traffic): drop the request line
            self.sim.schedule(
                self.params.request_wire_ps,
                self._request_down,
                u,
                v,
                priority=Priority.WIRE,
            )

    def _deliver(self, record: MessageRecord) -> None:
        super()._deliver(record)
        if self.phase_done:
            self.sim.stop()

    # -- lifecycle policy callbacks (repro.networks.lifecycle) ----------------------
    #
    # The ConnectionManager drives watchdogs, retries, management-plane
    # escalation, and give-up; these callbacks supply circuit switching's
    # policy: a watch covers a NIC's head-of-line message (the ``seq`` field
    # self-cancels stale fires after the head advances), and giving up drops
    # the head plus everything else queued to the same destination.

    def lifecycle_watch_ref(self, u: int, v: int) -> tuple[int, int | None]:
        msg = self._current[u]
        assert msg is not None and msg.dst == v
        return u, msg.seq

    def lifecycle_watch_resolved(self, u: int, v: int, seq: int | None) -> bool:
        msg = self._current[u]
        # progressed — or blocked on a link, which the data plane handles
        return (
            msg is None
            or msg.seq != seq
            or self._state[u] != _WAITING
            or u in self._link_blocked
        )

    def lifecycle_awaiting_grant(self, u: int, v: int) -> bool:
        # in-flight transmissions complete; WAITING NICs whose circuit just
        # evaporated are re-granted by later passes (their request is still up)
        msg = self._current[u]
        return msg is not None and msg.dst == v and self._state[u] == _WAITING

    def lifecycle_awaiting_sl_dead(self, u: int, v: int) -> bool:
        return self.lifecycle_awaiting_grant(u, v)

    def lifecycle_retry(self, u: int, v: int) -> None:
        self.sim.schedule(
            self.params.request_wire_ps,
            self._request_up,
            u,
            v,
            priority=Priority.WIRE,
        )

    def lifecycle_mgmt_remap(self, u: int, v: int) -> bool:
        sched = self.scheduler
        assert sched is not None
        sched.r_view[u, v] = True  # management refreshes the request latch
        slot = sched.mgmt_establish(u, v)
        if slot is None:
            return False
        self.tracer.record(self.sim.now, "mgmt-remap", src=u, dst=v, slot=slot)
        self.sim.schedule(
            self.params.grant_wire_ps,
            self._granted,
            u,
            v,
            priority=Priority.WIRE,
        )
        return True

    def lifecycle_give_up(self, u: int, v: int) -> None:
        """Recovery failed: drop the head message and everything else to v."""
        sched = self.scheduler
        assert sched is not None
        msg = self._current[u]
        assert msg is not None and msg.dst == v
        self._current[u] = None
        self._state[u] = _IDLE
        victims: list[Message] = [msg]
        keep: deque[Message] = deque()
        for m in self._fifo[u]:
            (victims if m.dst == v else keep).append(m)
        self._fifo[u] = keep
        for m in victims:
            self._drop_message(m, "unrecoverable")
        sched.r_view[u, v] = False
        self._advance_nic(u)

    def lifecycle_pinned_lost(self) -> None:
        """Circuit switching (k=1) never pins a slot."""

    # -- link-state reactions (repro.faults) ----------------------------------------

    def _on_link_down(self, port: int) -> None:
        inj = self.fault_injector
        assert inj is not None
        for u, msg in enumerate(self._current):
            if msg is None or self._state[u] == _SENDING:
                continue  # transmissions in flight complete (convention)
            if u == port or msg.dst == port:
                inj.note_disrupted(u, msg.dst)

    def _on_link_dead(self, port: int) -> None:
        """A port died: drop everything queued through it, advance the NICs."""
        n = self.params.n_ports
        sched = self.scheduler
        assert sched is not None
        victims: list[Message] = []
        to_advance: list[int] = []
        for u in range(n):
            fifo = self._fifo[u]
            if u == port:
                victims.extend(fifo)
                fifo.clear()
            else:
                keep: deque[Message] = deque()
                for m in fifo:
                    (victims if m.dst == port else keep).append(m)
                self._fifo[u] = keep
            msg = self._current[u]
            if (
                msg is not None
                and self._state[u] != _SENDING
                and (u == port or msg.dst == port)
            ):
                self._current[u] = None
                self._state[u] = _IDLE
                self._link_blocked.discard(u)
                self.lifecycle.disarm(u)
                victims.append(msg)
                to_advance.append(u)
        for m in victims:
            self._drop_message(m, "dead-link")
        sched.r_view[port, :] = False
        sched.r_view[:, port] = False
        for u in to_advance:
            self._advance_nic(u)

    def _on_link_up(self, port: int) -> None:
        """A transient outage ended: resume the NICs it was blocking."""
        sched = self.scheduler
        assert sched is not None
        for u in list(self._link_blocked):
            msg = self._current[u]
            if msg is None:
                self._link_blocked.discard(u)
                continue
            if self._link_down[u] or self._link_down[msg.dst]:
                continue  # still blocked on the other endpoint
            self._link_blocked.discard(u)
            if sched.registers.b_star[u, msg.dst]:
                self._start_transmission(u, reused=True)
            else:
                # the circuit was torn down while blocked: request again
                self.sim.schedule(
                    self.params.request_wire_ps,
                    self._request_up,
                    u,
                    msg.dst,
                    priority=Priority.WIRE,
                )
                self.lifecycle.arm(u, msg.dst)

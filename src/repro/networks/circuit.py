"""Pure circuit switching — the paper's first baseline.

Section 3: *"circuit switching amounts to TDM with a multiplexing degree of
one"*.  A dedicated path is established per message and torn down when the
message completes.  The cost accounting follows Section 5 exactly:

* the request travels to the scheduler over an 80 ns wire;
* the scheduler resolves contention with the same SL array as the TDM
  system (one pass per 80 ns, K = 1);
* the grant travels back over an 80 ns wire;
* data then streams at full link rate over the LVDS pipe
  (30 + 20 + 20 + 30 ns point-to-point latency);
* when the tail leaves, the request line drops (another 80 ns) and the
  next SL pass releases the circuit — ports stay blocked until then, which
  is the teardown overhead circuit switching pays per message.

Each NIC services its message script in FIFO order: one output link means
one circuit at a time, so only the head message's destination is
requested.  Back-to-back messages to the same destination reuse the
established circuit without teardown (the request line simply never
drops) — the best case the paper's Section 2 analysis describes.
"""

from __future__ import annotations

from collections import deque

from ..params import SystemParams
from ..sched.priority import RotationPolicy, RoundRobinPriority
from ..sched.scheduler import Scheduler
from ..sim.engine import Priority
from ..sim.trace import Tracer
from ..traffic.base import TrafficPhase
from ..types import Message, MessageRecord
from .base import MAX_EVENTS_PER_PHASE, BaseNetwork

__all__ = ["CircuitNetwork"]

# NIC service states
_IDLE = 0
_WAITING = 1  # request raised, circuit not granted yet
_SENDING = 2


class CircuitNetwork(BaseNetwork):
    """Per-message circuit establishment over a single crossbar."""

    scheme = "circuit"

    def __init__(
        self,
        params: SystemParams,
        rotation: RotationPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(params, tracer)
        self.rotation_template = rotation
        self.scheduler: Scheduler | None = None
        self._fifo: list[deque[Message]] = []
        self._state: list[int] = []
        self._current: list[Message | None] = []
        self._clock_started = False
        self.circuits_established = 0

    def _reset_scheme_state(self) -> None:
        n = self.params.n_ports
        rotation = self.rotation_template or RoundRobinPriority(n)
        rotation.reset()
        self.scheduler = Scheduler(self.params, k=1, rotation=rotation)
        self._fifo = [deque() for _ in range(n)]
        self._state = [_IDLE] * n
        self._current = [None] * n
        self._clock_started = False
        self.circuits_established = 0

    def _accept(self, msg, at_phase_start: bool) -> None:
        """Messages join the source NIC's sequential script on arrival."""
        self._fifo[msg.src].append(msg)
        if not at_phase_start and self._state[msg.src] == _IDLE:
            self._advance_nic(msg.src)

    def _execute_phase(self, phase: TrafficPhase) -> None:
        # circuit switching serves each source's messages in program order
        for u in range(self.params.n_ports):
            if self._state[u] == _IDLE and self._fifo[u]:
                self._advance_nic(u)
        if not self._clock_started:
            self._clock_started = True
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )
        self.sim.run(max_events=MAX_EVENTS_PER_PHASE)

    def _collect_counters(self) -> dict[str, int]:
        out = super()._collect_counters()
        out["circuits_established"] = self.circuits_established
        if self.scheduler is not None:
            out.update(self.scheduler.counters.as_dict())
        return out

    # -- NIC state machine ------------------------------------------------------

    def _advance_nic(self, u: int) -> None:
        """Start serving the next queued message at NIC ``u`` (if any)."""
        fifo = self._fifo[u]
        if not fifo:
            self._state[u] = _IDLE
            return
        msg = fifo.popleft()
        self._current[u] = msg
        self._state[u] = _WAITING
        sched = self.scheduler
        assert sched is not None
        if sched.registers.b_star[u, msg.dst]:
            # circuit still up from the previous message — reuse it now
            self._start_transmission(u, reused=True)
        else:
            # raise the request line; it reaches the scheduler after the wire
            self.sim.schedule(
                self.params.request_wire_ps,
                self._request_up,
                u,
                msg.dst,
                priority=Priority.WIRE,
            )

    def _request_up(self, u: int, v: int) -> None:
        sched = self.scheduler
        assert sched is not None
        sched.r_view[u, v] = True

    def _request_down(self, u: int, v: int) -> None:
        sched = self.scheduler
        assert sched is not None
        # the NIC may have raised the line again for a same-destination
        # message while the drop was in flight
        msg = self._current[u]
        if msg is not None and msg.dst == v and self._state[u] != _IDLE:
            return
        sched.r_view[u, v] = False

    # -- scheduler clock -----------------------------------------------------------

    def _sl_tick(self) -> None:
        sched = self.scheduler
        assert sched is not None
        result = sched.sl_pass(0)
        if result.outcome is not None:
            for t in result.outcome.established:
                self.circuits_established += 1
                # the pass takes one scheduler period to latch its result,
                # then the grant travels back to the NIC (paper: 80 + 80 ns)
                self.sim.schedule(
                    self.params.scheduler_pass_ps + self.params.grant_wire_ps,
                    self._granted,
                    t.u,
                    t.v,
                    priority=Priority.WIRE,
                )
        if self._phase_remaining > 0 or self.sim.pending > 0:
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )

    def _granted(self, u: int, v: int) -> None:
        msg = self._current[u]
        if msg is None or msg.dst != v or self._state[u] != _WAITING:
            # stale grant (the message was served over a reused circuit)
            return
        self._start_transmission(u, reused=False)

    # -- data plane -------------------------------------------------------------------

    def _start_transmission(self, u: int, reused: bool) -> None:
        msg = self._current[u]
        assert msg is not None
        params = self.params
        self._state[u] = _SENDING
        t = self.sim.now
        tail_ps = t + params.message_bytes_ps(msg.size)
        done_ps = tail_ps + params.pipe_latency_ps
        self.ledger.send(u, msg.dst, msg.size)
        record = MessageRecord(
            src=u,
            dst=msg.dst,
            size=msg.size,
            inject_ps=msg.inject_ps,
            start_ps=t,
            done_ps=done_ps,
            seq=msg.seq,
        )
        self.tracer.record(t, "circuit-tx", src=u, dst=msg.dst, reused=reused)
        self.sim.schedule_at(tail_ps, self._tail_left, u, priority=Priority.NIC)
        self.sim.schedule_at(done_ps, self._deliver, record, priority=Priority.NIC)

    def _tail_left(self, u: int) -> None:
        """The message's last byte left NIC ``u``: advance to the next one."""
        msg = self._current[u]
        assert msg is not None
        v = msg.dst
        self._current[u] = None
        self._advance_nic(u)
        nxt = self._current[u]
        if nxt is None or nxt.dst != v:
            # destination changed (or no more traffic): drop the request line
            self.sim.schedule(
                self.params.request_wire_ps,
                self._request_down,
                u,
                v,
                priority=Priority.WIRE,
            )

    def _deliver(self, record: MessageRecord) -> None:
        super()._deliver(record)
        if self.phase_done:
            self.sim.stop()

"""The connection-lifecycle layer shared by every switching scheme.

Every scheme that recovers from faults needs the same machinery: per-port
link up/down/dead state, NIC-side watchdog timers with bounded retries,
escalation to the management plane, explicit give-up, and the
scheme-independent halves of the scheduler-plane fault hooks (stuck /
corrupt / quarantined configuration slots, dropped request bits, dead SL
cells).  Before this module existed, :mod:`repro.networks.circuit` and
:mod:`repro.networks.tdm` each carried a private copy of all of it — and
any new scheme would have needed a third.

:class:`ConnectionManager` owns that machinery exactly once.  A scheme
participates by implementing the small :class:`LifecycleClient` policy
surface — *what counts as still-waiting*, *how to retry a request*, *how
to ask the management plane for a slot*, *what to drop on give-up* — and
the manager drives the state machine:

.. code-block:: text

    armed --timeout--> retry request      (policy.max_retries times)
          --timeout--> management remap   (until policy.total_attempts)
          --timeout--> give up connection (drop its queued messages)

A watchdog disarms itself the moment its connection progresses (grant
seen, queue drained, or the stall turns out to be a link outage the data
plane already handles).  All of it is inert unless a
:class:`~repro.faults.injector.FaultInjector` with a non-empty schedule
is attached, so healthy runs are bit-identical with or without it.

Layering (see ``docs/architecture.md``):

.. code-block:: text

    sim kernel -> fabric -> lifecycle (this module) -> schemes -> experiments/CLI
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Protocol

import numpy as np

from ..sim.engine import Event, Priority
from ..types import Connection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector
    from ..sched.scheduler import Scheduler
    from .base import BaseNetwork

__all__ = ["ConnectionManager", "LifecycleClient"]


@dataclass(slots=True)
class _Watch:
    """NIC-side watchdog state for one stalled connection.

    ``seq`` lets schemes whose watch outlives the message it was armed for
    (circuit switching watches the head-of-line message of a port) detect
    staleness: a fire whose ``seq`` no longer matches self-cancels.
    Schemes that key watches purely by connection leave it ``None``.
    """

    u: int
    v: int
    attempts: int
    seq: int | None
    event: Event


class LifecycleClient(Protocol):
    """The policy surface a scheme supplies to :class:`ConnectionManager`.

    These callbacks are the *scheme-specific* halves of fault recovery;
    everything else — timers, retry budgets, escalation order, link-state
    bookkeeping, recovery-latency accounting — lives in the manager.
    """

    def lifecycle_watch_ref(self, u: int, v: int) -> tuple[Hashable, int | None]:
        """The (key, seq) a watchdog for connection (u, v) should carry."""
        ...

    def lifecycle_watch_resolved(self, u: int, v: int, seq: int | None) -> bool:
        """Has the watched connection progressed (or stopped mattering)?"""
        ...

    def lifecycle_awaiting_grant(self, u: int, v: int) -> bool:
        """Is (u, v) still waiting on the scheduler after losing its slot
        or request bit?"""
        ...

    def lifecycle_awaiting_sl_dead(self, u: int, v: int) -> bool:
        """Is (u, v) disrupted by its SL cell dying?"""
        ...

    def lifecycle_retry(self, u: int, v: int) -> None:
        """Re-raise the request line for (u, v) (wire delay included)."""
        ...

    def lifecycle_mgmt_remap(self, u: int, v: int) -> bool:
        """Ask the management plane to place (u, v) directly into a slot;
        True on success (the manager then retires the watchdog)."""
        ...

    def lifecycle_give_up(self, u: int, v: int) -> None:
        """Recovery failed for good: drop everything queued on (u, v)."""
        ...

    def lifecycle_pinned_lost(self) -> None:
        """A pinned (preloaded) slot was lost to a fault (degrade hook)."""
        ...


class ConnectionManager:
    """Scheme-independent connection-lifecycle state for one run.

    Created by :class:`~repro.networks.base.BaseNetwork` at run start; it
    always owns the per-port link state.  Schemes with a scheduler attach
    it (:meth:`attach_scheduler`) to also get the watchdog machinery and
    the scheduler-plane fault-hook halves.
    """

    def __init__(self, net: BaseNetwork) -> None:
        self._net = net
        n = net.params.n_ports
        #: per-port transient-outage state (True while links are down)
        self.link_down: np.ndarray = np.zeros(n, dtype=bool)
        #: per-port permanent-failure state (dead implies down)
        self.link_dead: np.ndarray = np.zeros(n, dtype=bool)
        # test fakes may not model a fabric shape; no topology = no trunks
        topo = getattr(net, "topology", None)
        n_trunks = 0 if topo is None else topo.n_links
        #: per-trunk-link transient-outage state (multi-switch fabrics)
        self.trunk_down: np.ndarray = np.zeros(n_trunks, dtype=bool)
        #: per-trunk-link permanent-failure state (dead implies down)
        self.trunk_dead: np.ndarray = np.zeros(n_trunks, dtype=bool)
        self.scheduler: Scheduler | None = None
        self._client: LifecycleClient | None = None
        self._watches: dict[Hashable, _Watch] = {}

    def attach_scheduler(
        self, scheduler: Scheduler | None, client: LifecycleClient
    ) -> None:
        """Register the scheme's lifecycle policy (and single scheduler).

        Multi-switch schemes own one scheduler *per switch* and pass
        ``None`` here: they get the watchdog ladder and link-state
        machinery, while the single-scheduler fault-hook halves
        (:meth:`slot_stuck` … :meth:`sl_dead`) stay unreachable — their
        network-level hooks decline those faults instead.
        """
        self.scheduler = scheduler
        self._client = client

    # -- introspection -------------------------------------------------------------

    @property
    def watch_count(self) -> int:
        return len(self._watches)

    def has_watch(self, key: Hashable) -> bool:
        return key in self._watches

    def _injector(self) -> FaultInjector:
        injector = self._net.fault_injector
        assert injector is not None
        return injector

    # -- per-port link transitions ---------------------------------------------------

    def port_link_down(self, port: int, duration_ps: int) -> bool:
        """A transient outage takes both of ``port``'s links down."""
        if self.link_down[port]:
            return False  # already down (dead, or overlapping transient)
        net = self._net
        self.link_down[port] = True
        net.tracer.record(net.sim.now, "fault-link-down", port=port)
        net._on_link_down(port)
        return True

    def port_link_up(self, port: int) -> None:
        """A transient outage ends (never fires for dead ports)."""
        if self.link_dead[port]:
            return
        net = self._net
        self.link_down[port] = False
        net.tracer.record(net.sim.now, "fault-link-up", port=port)
        net._on_link_up(port)

    def port_link_dead(self, port: int) -> bool:
        """A permanent failure kills both of ``port``'s links."""
        if self.link_dead[port]:
            return False
        net = self._net
        self.link_dead[port] = True
        self.link_down[port] = True
        net.tracer.record(net.sim.now, "fault-link-dead", port=port)
        if net.fault_injector is not None:
            net.fault_injector.cancel_awaiting_port(port)
        net._on_link_dead(port)
        return True

    # -- per-trunk-link transitions (multi-switch fabrics) ----------------------------

    @property
    def trunk_healthy(self) -> np.ndarray:
        """Per-trunk-link usability mask (True while the link carries data)."""
        return ~self.trunk_down

    def trunk_link_down(self, link: int, duration_ps: int) -> bool:
        """A transient outage takes inter-switch trunk ``link`` down."""
        if self.trunk_down[link]:
            return False  # already down (dead, or overlapping transient)
        net = self._net
        self.trunk_down[link] = True
        net.tracer.record(net.sim.now, "fault-trunk-down", link=link)
        net._on_trunk_down(link)
        return True

    def trunk_link_up(self, link: int) -> None:
        """A trunk's transient outage ends (never fires for dead links)."""
        if self.trunk_dead[link]:
            return
        net = self._net
        self.trunk_down[link] = False
        net.tracer.record(net.sim.now, "fault-trunk-up", link=link)
        net._on_trunk_up(link)

    def trunk_link_dead(self, link: int) -> bool:
        """A permanent failure kills inter-switch trunk ``link``."""
        if self.trunk_dead[link]:
            return False
        net = self._net
        self.trunk_dead[link] = True
        self.trunk_down[link] = True
        net.tracer.record(net.sim.now, "fault-trunk-dead", link=link)
        net._on_trunk_dead(link)
        return True

    # -- scheduler-plane fault hooks (scheme-independent halves) ----------------------

    def slot_stuck(self, slot: int) -> bool:
        """A configuration register froze: writes are silently lost."""
        sched = self.scheduler
        assert sched is not None
        regs = sched.registers
        if not 0 <= slot < sched.k or slot in regs.stuck or slot in regs.quarantined:
            return False
        regs.set_stuck(slot)
        net = self._net
        net.tracer.record(net.sim.now, "fault-slot-stuck", slot=slot)
        return True

    def slot_corrupt(self, slot: int) -> bool:
        """A register's configuration scrambled: its connections evaporate."""
        sched = self.scheduler
        assert sched is not None
        regs = sched.registers
        if not 0 <= slot < sched.k or slot in regs.stuck or slot in regs.quarantined:
            return False
        evicted = list(regs[slot].connections())
        was_pinned = slot in regs.pinned
        regs.clear_slot(slot)
        net = self._net
        net.tracer.record(net.sim.now, "fault-slot-corrupt", slot=slot)
        if was_pinned:
            self._require_client().lifecycle_pinned_lost()
        self.watch_disrupted(evicted)
        return True

    def slot_quarantine(self, slot: int) -> None:
        """Detection follow-up: take a stuck slot out of service."""
        sched = self.scheduler
        assert sched is not None
        regs = sched.registers
        if not 0 <= slot < sched.k or slot in regs.quarantined:
            return
        was_pinned = slot in regs.pinned
        evicted = sched.quarantine_slot(slot)
        net = self._net
        net.tracer.record(net.sim.now, "fault-slot-quarantine", slot=slot)
        if was_pinned:
            self._require_client().lifecycle_pinned_lost()
        self.watch_disrupted(evicted)

    def request_drop(self, u: int, v: int) -> bool:
        """A pending request bit (u -> v) was lost on the wire."""
        sched = self.scheduler
        assert sched is not None
        sched.set_request(u, v, False)
        net = self._net
        net.tracer.record(net.sim.now, "fault-req-drop", src=u, dst=v)
        client = self._require_client()
        if client.lifecycle_awaiting_grant(u, v):
            self._injector().note_disrupted(u, v)
            self.arm(u, v)
        return True

    def sl_dead(self, u: int, v: int) -> bool:
        """An SL cell died: (u, v) can never be scheduled dynamically."""
        sched = self.scheduler
        assert sched is not None
        sched.kill_cell(u, v)
        net = self._net
        net.tracer.record(net.sim.now, "fault-sl-dead", src=u, dst=v)
        client = self._require_client()
        if client.lifecycle_awaiting_sl_dead(u, v):
            self._injector().note_disrupted(u, v)
            self.arm(u, v)
        return True

    def watch_disrupted(self, evicted: list[Connection]) -> None:
        """Connections lost their slot; watch the ones still waiting."""
        client = self._require_client()
        injector = self._injector()
        for u, v in evicted:
            if client.lifecycle_awaiting_grant(u, v):
                injector.note_disrupted(u, v)
                self.arm(u, v)

    def _require_client(self) -> LifecycleClient:
        client = self._client
        assert client is not None, "scheme never called attach_scheduler()"
        return client

    # -- the NIC-side watchdogs -------------------------------------------------------

    def arm(self, u: int, v: int) -> None:
        """Start (or keep) a watchdog for connection (u, v).

        A watch already covering the same (key, seq) is kept as-is; a
        stale one (circuit switching's head-of-line message changed) is
        cancelled and re-armed from attempt zero.  Dead endpoints never
        get watches — their traffic is dropped, not recovered.
        """
        if self.link_dead[u] or self.link_dead[v]:
            return
        client = self._require_client()
        key, seq = client.lifecycle_watch_ref(u, v)
        watch = self._watches.get(key)
        if watch is not None:
            if watch.seq == seq:
                return
            watch.event.cancel()
        policy = self._injector().retry
        event = self._net.sim.schedule(
            policy.delay_ps(0), self._watch_fire, key, seq, priority=Priority.NIC
        )
        self._watches[key] = _Watch(u=u, v=v, attempts=0, seq=seq, event=event)

    def disarm(self, key: Hashable) -> None:
        """Cancel one watchdog (the scheme resolved its connection itself)."""
        watch = self._watches.pop(key, None)
        if watch is not None:
            watch.event.cancel()

    def disarm_port(self, port: int) -> None:
        """A port died: none of its watches can ever succeed."""
        for key in [k for k, w in self._watches.items() if port in (w.u, w.v)]:
            self._watches.pop(key).event.cancel()

    def phase_reset(self) -> None:
        """Phase barrier: stale watchdogs must not leak into the next phase."""
        for watch in self._watches.values():
            watch.event.cancel()
        self._watches.clear()

    def _watch_fire(self, key: Hashable, seq: int | None) -> None:
        watch = self._watches.get(key)
        if watch is None or watch.seq != seq:
            return  # superseded while the timeout event was in flight
        u, v = watch.u, watch.v
        client = self._require_client()
        if client.lifecycle_watch_resolved(u, v, seq):
            del self._watches[key]  # progressed — nothing to recover
            return
        injector = self._injector()
        policy = injector.retry
        attempt = watch.attempts
        watch.attempts += 1
        if attempt < policy.max_retries:
            # re-raise the request line and back off
            injector.counters.inc("request_retries")
            client.lifecycle_retry(u, v)
        elif attempt < policy.total_attempts:
            # escalate: ask the management plane for a direct slot placement
            injector.counters.inc("mgmt_attempts")
            if client.lifecycle_mgmt_remap(u, v):
                del self._watches[key]
                return
        else:
            # retry budget exhausted and no healthy slot: give it up
            del self._watches[key]
            self.give_up(u, v)
            return
        watch.event = self._net.sim.schedule(
            policy.delay_ps(watch.attempts),
            self._watch_fire,
            key,
            seq,
            priority=Priority.NIC,
        )

    def give_up(self, u: int, v: int) -> None:
        """Recovery failed: account the loss, then let the scheme drop."""
        injector = self._injector()
        injector.cancel_awaiting(u, v)
        injector.counters.inc("unrecoverable_connections")
        self._require_client().lifecycle_give_up(u, v)

"""Common machinery for the switching-scheme network models.

Every scheme (wormhole, circuit, dynamic/preload/hybrid TDM) simulates the
same physical plant — N NICs around one crossbar — and reports a
:class:`RunResult`.  The base class owns the parts the paper holds constant
across its comparison: message injection, the phase barrier (phase ``j+1``
enters the NICs only after phase ``j`` fully drains, as in a
bulk-synchronous program), byte-conservation accounting, and completion
bookkeeping.  Subclasses implement :meth:`_execute_phase`, which must run
the event loop until the injected phase has fully drained.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..nic.flow import FlowLedger
from ..nic.nic import Nic
from ..params import SystemParams
from ..sim.engine import Priority, Simulator
from ..sim.stats import OnlineStats
from ..sim.trace import NULL_TRACER, Tracer
from ..traffic.base import TrafficPhase
from ..types import MessageRecord

__all__ = ["PhaseResult", "RunResult", "BaseNetwork"]

#: events per run safety valve (a 128-port millisecond-scale run stays far
#: below this; hitting it means a scheduling livelock bug)
MAX_EVENTS_PER_PHASE = 40_000_000


@dataclass(slots=True)
class PhaseResult:
    """Timing of one traffic phase."""

    name: str
    start_ps: int
    end_ps: int
    bytes: int
    messages: int

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


@dataclass
class RunResult:
    """Everything one simulation run produced."""

    scheme: str
    pattern: str
    params: SystemParams
    makespan_ps: int
    total_bytes: int
    records: list[MessageRecord]
    phases: list[PhaseResult]
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_bytes_per_ns(self) -> float:
        if self.makespan_ps == 0:
            return 0.0
        return self.total_bytes * 1000.0 / self.makespan_ps

    def latency_stats(self) -> OnlineStats:
        stats = OnlineStats()
        for r in self.records:
            stats.add(r.latency_ps)
        return stats

    def __repr__(self) -> str:
        return (
            f"RunResult({self.scheme} on {self.pattern}: "
            f"{self.total_bytes} B in {self.makespan_ps / 1000:.1f} ns)"
        )


class BaseNetwork(ABC):
    """Shared simulation scaffolding for all switching schemes."""

    #: scheme label used in reports ("wormhole", "circuit", "tdm-dynamic", ...)
    scheme: str = "abstract"

    def __init__(self, params: SystemParams, tracer: Tracer | None = None) -> None:
        self.params = params
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # per-run state, created in run()
        self.sim: Simulator = Simulator()
        self.nics: list[Nic] = []
        self.ledger: FlowLedger = FlowLedger(params.n_ports)
        self.records: list[MessageRecord] = []
        self._phase_remaining = 0

    # -- the public entry point -------------------------------------------------

    def run(self, phases: list[TrafficPhase], pattern_name: str = "") -> RunResult:
        """Simulate all phases back to back and return the result."""
        if not phases:
            raise SimulationError("nothing to run: no phases")
        n = self.params.n_ports
        self.sim = Simulator()
        self.nics = [Nic(self.params, p) for p in range(n)]
        self.ledger = FlowLedger(n)
        self.records = []
        self._reset_scheme_state()

        phase_results: list[PhaseResult] = []
        for phase in phases:
            start = self.sim.now
            self._inject(phase)
            self._execute_phase(phase)
            if self._phase_remaining != 0:
                raise SimulationError(
                    f"phase {phase.name!r} ended with "
                    f"{self._phase_remaining} undelivered messages"
                )
            phase_results.append(
                PhaseResult(
                    name=phase.name,
                    start_ps=start,
                    end_ps=self.sim.now,
                    bytes=phase.total_bytes,
                    messages=len(phase.messages),
                )
            )
        self.ledger.assert_conserved()
        return RunResult(
            scheme=self.scheme,
            pattern=pattern_name or phases[0].name,
            params=self.params,
            makespan_ps=self.sim.now,
            total_bytes=sum(p.total_bytes for p in phases),
            records=list(self.records),
            phases=phase_results,
            counters=self._collect_counters(),
        )

    # -- hooks for subclasses ------------------------------------------------------

    def _reset_scheme_state(self) -> None:
        """Initialise scheme-specific state for a new run."""

    @abstractmethod
    def _execute_phase(self, phase: TrafficPhase) -> None:
        """Run the event loop until the injected phase drains."""

    def _collect_counters(self) -> dict[str, int]:
        return {"events": self.sim.events_executed}

    # -- shared plumbing --------------------------------------------------------------

    def _inject(self, phase: TrafficPhase) -> None:
        """Queue a phase's messages into the source NICs.

        Messages whose (phase-relative) ``inject_ps`` lies in the future
        arrive at their NIC via a scheduled event, so source queues really
        are empty between traffic bursts — predictors and request lines
        see the same edges the paper's hardware would.
        """
        now = self.sim.now
        n = self.params.n_ports
        self._phase_remaining = len(phase.messages)
        for msg in phase.messages:
            if not (0 <= msg.src < n and 0 <= msg.dst < n):
                raise SimulationError(
                    f"message ({msg.src} -> {msg.dst}) does not fit a "
                    f"{n}-port system; pattern/params size mismatch?"
                )
            # phase-relative injection offsets become absolute times
            msg.inject_ps += now
            self.ledger.offer(msg.src, msg.dst, msg.size)
            if msg.inject_ps <= now:
                self._accept(msg, at_phase_start=True)
            else:
                self.sim.schedule_at(
                    msg.inject_ps, self._accept, msg, False, priority=Priority.NIC
                )

    def _accept(self, msg, at_phase_start: bool) -> None:
        """A message arrives at its source NIC (override per scheme)."""
        self.nics[msg.src].enqueue(msg)

    def _deliver(self, record: MessageRecord) -> None:
        """Account one completed message delivery."""
        self.ledger.deliver(record.src, record.dst, record.size)
        self.nics[record.dst].receive(record)
        self.records.append(record)
        self._phase_remaining -= 1
        if self._phase_remaining < 0:  # pragma: no cover
            raise SimulationError("delivered more messages than injected")
        self.tracer.record(
            record.done_ps, "deliver", src=record.src, dst=record.dst, size=record.size
        )

    @property
    def phase_done(self) -> bool:
        return self._phase_remaining == 0

"""Common machinery for the switching-scheme network models.

Every scheme (wormhole, circuit, dynamic/preload/hybrid TDM) simulates the
same physical plant — N NICs around one crossbar — and reports a
:class:`RunResult`.  The base class owns the parts the paper holds constant
across its comparison: message injection, the phase barrier (phase ``j+1``
enters the NICs only after phase ``j`` fully drains, as in a
bulk-synchronous program), byte-conservation accounting, and completion
bookkeeping.  Subclasses implement :meth:`_execute_phase`, which must run
the event loop until the injected phase has fully drained.

The base class also hosts the public ``fault_*`` hooks the injector
dispatches to and explicit message drops; the scheme-independent halves of
fault recovery — per-port link state, watchdog timers, retry/give-up
policy — live in the :class:`~repro.networks.lifecycle.ConnectionManager`
each run creates (:attr:`BaseNetwork.lifecycle`).  Under faults the
phase barrier's completion condition becomes *delivered or explicitly
dropped* — every injected message must end as exactly one
:class:`~repro.types.MessageRecord` or one
:class:`~repro.types.DropRecord`, and the ledger still has to balance.
All fault machinery is inert (and a run bit-identical to the fault-free
build) unless an injector with a non-empty schedule is attached.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..faults.injector import FaultInjector
from ..nic.flow import FlowLedger
from ..nic.nic import Nic
from ..params import SystemParams
from ..sim.engine import Priority, Simulator
from ..sim.stats import OnlineStats
from ..sim.trace import NULL_TRACER, Tracer
from ..topo import Topology
from ..traffic.base import TrafficPhase
from ..types import DropRecord, Message, MessageRecord
from .lifecycle import ConnectionManager

__all__ = ["PhaseResult", "RunResult", "BaseNetwork"]

#: events per run safety valve (a 128-port millisecond-scale run stays far
#: below this; hitting it means a scheduling livelock bug)
MAX_EVENTS_PER_PHASE = 40_000_000

#: environment variable that turns strict invariant checking on globally
STRICT_ENV_VAR = "REPRO_STRICT"


@dataclass(slots=True)
class PhaseResult:
    """Timing of one traffic phase."""

    name: str
    start_ps: int
    end_ps: int
    bytes: int
    messages: int

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


@dataclass
class RunResult:
    """Everything one simulation run produced."""

    scheme: str
    pattern: str
    params: SystemParams
    makespan_ps: int
    total_bytes: int
    records: list[MessageRecord]
    phases: list[PhaseResult]
    counters: dict[str, int] = field(default_factory=dict)
    #: messages explicitly given up under faults (empty in healthy runs)
    drops: list[DropRecord] = field(default_factory=list)
    #: per-disruption recovery latencies (fault to next transferred byte)
    recovery_ps: list[int] = field(default_factory=list)

    @property
    def throughput_bytes_per_ns(self) -> float:
        if self.makespan_ps == 0:
            return 0.0
        return self.total_bytes * 1000.0 / self.makespan_ps

    @property
    def delivered_fraction(self) -> float:
        """Fraction of injected messages that were fully delivered."""
        total = len(self.records) + len(self.drops)
        return 1.0 if total == 0 else len(self.records) / total

    @property
    def delivered_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def latency_stats(self) -> OnlineStats:
        stats = OnlineStats()
        for r in self.records:
            stats.add(r.latency_ps)
        return stats

    def recovery_stats(self) -> OnlineStats:
        stats = OnlineStats()
        for r_ps in self.recovery_ps:
            stats.add(r_ps)
        return stats

    def __repr__(self) -> str:
        return (
            f"RunResult({self.scheme} on {self.pattern}: "
            f"{self.total_bytes} B in {self.makespan_ps / 1000:.1f} ns)"
        )


class BaseNetwork(ABC):
    """Shared simulation scaffolding for all switching schemes."""

    #: scheme label used in reports ("wormhole", "circuit", "tdm-dynamic", ...)
    scheme: str = "abstract"

    def __init__(
        self,
        params: SystemParams,
        tracer: Tracer | None = None,
        *,
        faults: FaultInjector | None = None,
        strict: bool | None = None,
        max_wall_s: float | None = None,
        topology: Topology | None = None,
    ) -> None:
        self.params = params
        #: the fabric shape; defaults to the paper's single crossbar, where
        #: endpoint i is local port i of the one switch
        self.topology = (
            topology if topology is not None else Topology.single_switch(params.n_ports)
        )
        if self.topology.n_endpoints != params.n_ports:
            raise SimulationError(
                f"topology {self.topology.name!r} attaches "
                f"{self.topology.n_endpoints} endpoints but params define "
                f"{params.n_ports} ports"
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fault_injector = faults
        if strict is None:
            strict = os.environ.get(STRICT_ENV_VAR, "") not in ("", "0")
        #: strict mode: re-derive structural invariants at phase boundaries
        self.strict = bool(strict)
        #: wall-clock budget per event-loop excursion (None: unlimited)
        self.max_wall_s = max_wall_s
        # per-run state, created in run()
        self.sim: Simulator = Simulator()
        self.nics: list[Nic] = []
        self.ledger: FlowLedger = FlowLedger(params.n_ports)
        self.records: list[MessageRecord] = []
        self.drops: list[DropRecord] = []
        self._phase_remaining = 0
        self._faults_active = False
        #: connection-lifecycle state (link up/down/dead, watchdogs, retry
        #: policy); recreated per run, attached to the scheme's scheduler
        self.lifecycle: ConnectionManager = ConnectionManager(self)

    # -- the public entry point -------------------------------------------------

    def run(self, phases: list[TrafficPhase], pattern_name: str = "") -> RunResult:
        """Simulate all phases back to back and return the result."""
        if not phases:
            raise SimulationError("nothing to run: no phases")
        n = self.params.n_ports
        self.sim = Simulator()
        clock = lambda: self.sim.now  # noqa: E731 - rebinds to the fresh sim
        self.nics = [Nic(self.params, p, self.tracer, clock) for p in range(n)]
        self.ledger = FlowLedger(n)
        self.records = []
        self.drops = []
        self.lifecycle = ConnectionManager(self)
        self._faults_active = (
            self.fault_injector is not None and self.fault_injector.active
        )
        self._reset_scheme_state()
        if self.fault_injector is not None:
            self.fault_injector.bind(self)

        phase_results: list[PhaseResult] = []
        for phase in phases:
            start = self.sim.now
            self._inject(phase)
            if not self.phase_done:
                # a phase can end at injection only when faults dropped it all
                self._execute_phase(phase)
            if self._phase_remaining != 0:
                raise SimulationError(
                    f"phase {phase.name!r} ended with {self._phase_remaining} "
                    f"unfinished messages at sim time {self.sim.now} ps "
                    f"({self.sim.pending} events still queued)"
                )
            if self._faults_active:
                self._fault_phase_reset()
            if self.strict:
                self._check_invariants()
            phase_results.append(
                PhaseResult(
                    name=phase.name,
                    start_ps=start,
                    end_ps=self.sim.now,
                    bytes=phase.total_bytes,
                    messages=len(phase.messages),
                )
            )
        self.ledger.assert_conserved()
        recovery = (
            list(self.fault_injector.recovery_ps) if self._faults_active else []
        )
        return RunResult(
            scheme=self.scheme,
            pattern=pattern_name or phases[0].name,
            params=self.params,
            makespan_ps=self.sim.now,
            total_bytes=sum(p.total_bytes for p in phases),
            records=list(self.records),
            phases=phase_results,
            counters=self._collect_counters(),
            drops=list(self.drops),
            recovery_ps=recovery,
        )

    # -- hooks for subclasses ------------------------------------------------------

    def _reset_scheme_state(self) -> None:
        """Initialise scheme-specific state for a new run."""

    @abstractmethod
    def _execute_phase(self, phase: TrafficPhase) -> None:
        """Run the event loop until the injected phase drains."""

    def _collect_counters(self) -> dict[str, int]:
        counters = {"events": self.sim.events_executed}
        if self._faults_active:
            assert self.fault_injector is not None
            counters["messages_dropped"] = len(self.drops)
            for key, value in sorted(self.fault_injector.counters.as_dict().items()):
                counters[f"fault_{key}"] = value
        return counters

    def _check_invariants(self) -> None:
        """Strict mode: re-derive structural invariants from scratch.

        Called at every phase boundary when :attr:`strict` is set (or the
        ``REPRO_STRICT=1`` environment variable is present).  Subclasses
        extend this with any further scheme-specific checks.
        """
        for nic in self.nics:
            nic.voqs.check_invariants()
        if self.lifecycle.scheduler is not None:
            self.lifecycle.scheduler.registers.check_invariants()

    # -- shared plumbing --------------------------------------------------------------

    def _run_event_loop(self) -> None:
        """One excursion of the event loop with the standard safety valves."""
        self.sim.run(max_events=MAX_EVENTS_PER_PHASE, max_wall_s=self.max_wall_s)

    def _inject(self, phase: TrafficPhase) -> None:
        """Queue a phase's messages into the source NICs.

        Messages whose (phase-relative) ``inject_ps`` lies in the future
        arrive at their NIC via a scheduled event, so source queues really
        are empty between traffic bursts — predictors and request lines
        see the same edges the paper's hardware would.
        """
        now = self.sim.now
        n = self.params.n_ports
        self._phase_remaining = len(phase.messages)
        for msg in phase.messages:
            if not (0 <= msg.src < n and 0 <= msg.dst < n):
                raise SimulationError(
                    f"message ({msg.src} -> {msg.dst}) does not fit a "
                    f"{n}-port system; pattern/params size mismatch?"
                )
            # phase-relative injection offsets become absolute times
            msg.inject_ps += now
            self.ledger.offer(msg.src, msg.dst, msg.size)
            if msg.inject_ps <= now:
                self._accept_or_drop(msg, at_phase_start=True)
            else:
                self.sim.schedule_at(
                    msg.inject_ps,
                    self._accept_or_drop,
                    msg,
                    False,
                    priority=Priority.NIC,
                )

    def _accept_or_drop(self, msg: Message, at_phase_start: bool) -> None:
        """Admit a message, unless an endpoint's links are already dead."""
        if self._faults_active and (
            self._link_dead[msg.src] or self._link_dead[msg.dst]
        ):
            self._drop_message(msg, "dead-link")
            return
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now,
                "msg-inject",
                src=msg.src,
                dst=msg.dst,
                size=msg.size,
                seq=msg.seq,
            )
        self._accept(msg, at_phase_start)

    def _accept(self, msg: Message, at_phase_start: bool) -> None:
        """A message arrives at its source NIC (override per scheme)."""
        self.nics[msg.src].enqueue(msg)

    def _deliver(self, record: MessageRecord) -> None:
        """Account one completed message delivery."""
        self.ledger.deliver(record.src, record.dst, record.size)
        self.nics[record.dst].receive(record)
        self.records.append(record)
        self._phase_remaining -= 1
        if self._phase_remaining < 0:  # pragma: no cover
            raise SimulationError("delivered more messages than injected")
        self.tracer.record(
            record.done_ps,
            "deliver",
            src=record.src,
            dst=record.dst,
            size=record.size,
            seq=record.seq,
        )

    def _drop_message(self, msg: Message, reason: str) -> None:
        """Explicitly give a message up: account every byte, record the drop.

        Bytes still queued are *dropped* (never transmitted); bytes already
        sent are written off as *lost in flight*.  The message counts
        against the phase barrier exactly like a delivery, so a phase under
        faults completes when every message is delivered or dropped.
        """
        sent = msg.size - msg.remaining
        if msg.remaining:
            self.ledger.drop(msg.src, msg.dst, msg.remaining)
        if sent:
            self.ledger.lose(msg.src, msg.dst, sent)
        self.drops.append(
            DropRecord(
                src=msg.src,
                dst=msg.dst,
                size=msg.size,
                sent_bytes=sent,
                seq=msg.seq,
                time_ps=self.sim.now,
                reason=reason,
            )
        )
        self._phase_remaining -= 1
        if self._phase_remaining < 0:  # pragma: no cover
            raise SimulationError("dropped more messages than injected")
        self.tracer.record(
            self.sim.now, "drop", src=msg.src, dst=msg.dst, size=msg.size, seq=msg.seq
        )
        if self._phase_remaining == 0:
            self.sim.stop()

    # -- fault hooks (dispatched by repro.faults.FaultInjector) ---------------------
    #
    # The hooks delegate to the run's ConnectionManager, which owns the
    # scheme-independent halves; schemes react through _on_link_* and the
    # lifecycle_* policy callbacks.

    @property
    def _link_down(self) -> np.ndarray:
        """Per-port transient-outage state (owned by the lifecycle layer)."""
        return self.lifecycle.link_down

    @property
    def _link_dead(self) -> np.ndarray:
        """Per-port permanent-failure state (owned by the lifecycle layer)."""
        return self.lifecycle.link_dead

    def _link_ok(self, u: int, v: int) -> bool:
        """Can connection (u, v) move bytes right now?"""
        down = self.lifecycle.link_down
        return not (down[u] or down[v])

    def fault_link_down(self, port: int, duration_ps: int) -> bool:
        """A transient outage takes both of ``port``'s links down."""
        return self.lifecycle.port_link_down(port, duration_ps)

    def fault_link_up(self, port: int) -> None:
        """A transient outage ends (never fires for dead ports)."""
        self.lifecycle.port_link_up(port)

    def fault_link_dead(self, port: int) -> bool:
        """A permanent failure kills both of ``port``'s links."""
        return self.lifecycle.port_link_dead(port)

    # scheduler-plane faults only apply to schemes that attached a scheduler
    # to the lifecycle manager; otherwise the injector counts the skip

    def fault_slot_stuck(self, slot: int) -> bool:
        if self.lifecycle.scheduler is None:
            return False
        return self.lifecycle.slot_stuck(slot)

    def fault_slot_corrupt(self, slot: int) -> bool:
        if self.lifecycle.scheduler is None:
            return False
        return self.lifecycle.slot_corrupt(slot)

    def fault_slot_quarantine(self, slot: int) -> None:
        """Detection follow-up for a stuck slot (no-op without a scheduler)."""
        if self.lifecycle.scheduler is not None:
            self.lifecycle.slot_quarantine(slot)

    def fault_request_drop(self, u: int, v: int) -> bool:
        if self.lifecycle.scheduler is None:
            return False
        return self.lifecycle.request_drop(u, v)

    def fault_sl_dead(self, u: int, v: int) -> bool:
        if self.lifecycle.scheduler is None:
            return False
        return self.lifecycle.sl_dead(u, v)

    # scheme-specific reactions to link state changes

    def _on_link_down(self, port: int) -> None:
        """React to a transient outage starting (override per scheme)."""

    def _on_link_up(self, port: int) -> None:
        """React to a transient outage ending (override per scheme)."""

    def _on_link_dead(self, port: int) -> None:
        """React to a permanent port death (override per scheme)."""

    # trunk (inter-switch) link state changes; only multi-switch schemes
    # have trunks, so the defaults are no-ops

    def _on_trunk_down(self, link: int) -> None:
        """React to a trunk link's transient outage starting."""

    def _on_trunk_up(self, link: int) -> None:
        """React to a trunk link's transient outage ending."""

    def _on_trunk_dead(self, link: int) -> None:
        """React to a trunk link dying permanently."""

    def _fault_phase_reset(self) -> None:
        """Cancel per-phase recovery state at the phase barrier."""
        self.lifecycle.phase_reset()

    @property
    def phase_done(self) -> bool:
        return self._phase_remaining == 0

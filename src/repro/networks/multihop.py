"""Multi-hop extension — the conclusion's claim, quantified.

Paper, Section 6: *"The advantages of our approach are expected to be
amplified when multi-hop networks are considered since it avoids buffering
at intermediate switches.  This may be particularly efficient if we use
LVDS-based switching where signals are not converted from the differential
domain to the digital domain at the switches."*

This module models a path of ``h`` switches between source and destination
under both paradigms, extending the paper's single-switch accounting
additively:

* **multiplexed circuit (TDM)** — the pipe is established end to end once
  (the request/grant handshake crosses the path), after which every byte
  flows through passive LVDS switches: per hop only a cable delay plus a
  negligible (<2 ns) differential-domain traversal; **no buffering, no
  per-hop arbitration, no SerDes at switches**;
* **wormhole** — every worm head arbitrates at *every* switch (the 80 ns
  scheduler pass of Section 5), each digital switch adds its 10 ns
  traversal, and each switch must provide at least a worm of buffering so
  a blocked worm does not corrupt the link.

:class:`MultiHopModel` returns contention-free message latency, sustained
streaming efficiency, and switch buffering requirements as functions of
hop count; the ablation bench A7 prints the comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..params import SystemParams

__all__ = ["MultiHopModel", "HopComparison"]


@dataclass(slots=True, frozen=True)
class HopComparison:
    """Latency/efficiency/buffering of both paradigms at one hop count."""

    hops: int
    tdm_first_message_ns: float  # includes path establishment
    tdm_cached_message_ns: float  # connection already in the working set
    wormhole_message_ns: float
    tdm_stream_efficiency: float
    wormhole_stream_efficiency: float
    wormhole_buffer_bytes: int
    tdm_buffer_bytes: int


class MultiHopModel:
    """Additive multi-hop extension of the paper's timing accounting."""

    def __init__(self, params: SystemParams, msg_bytes: int, k: int = 4) -> None:
        if msg_bytes <= 0:
            raise ConfigurationError("message size must be positive")
        if k < 1:
            raise ConfigurationError("multiplexing degree must be >= 1")
        self.params = params
        self.msg_bytes = msg_bytes
        self.k = k

    # -- path latencies ------------------------------------------------------------

    def tdm_path_fill_ps(self, hops: int) -> int:
        """Pipe fill time over ``hops`` passive LVDS switches."""
        p = self._check(hops)
        per_hop = p.cable_ps + p.lvds_switch_ps
        return (
            p.nic_delay_ps
            + p.serdes_ps
            + per_hop * hops
            + p.cable_ps  # final cable into the destination
            + p.serdes_ps
            + p.nic_delay_ps
        )

    def tdm_establishment_ps(self, hops: int) -> int:
        """Request + distributed schedule + grant across the path.

        The request and grant signals cross the same physical distance;
        each switch's scheduler contributes one pass (a hierarchical
        control plane could overlap these, so this is conservative).
        """
        p = self._check(hops)
        wire = p.request_wire_ps + p.grant_wire_ps
        return wire + hops * p.scheduler_pass_ps

    def tdm_transfer_ps(self, spacing: int | None = None) -> int:
        """Slot-quantised transfer time of one message.

        ``spacing`` is the number of slot periods between the connection's
        successive slot occurrences: 1 when the rest of the network is
        quiet (idle-slot skipping hands the stream every slot — the
        contention-free case, matching the contention-free wormhole
        numbers), ``k`` when all ``k`` configurations carry traffic.
        """
        p = self.params
        if spacing is None:
            spacing = 1
        if spacing < 1:
            raise ConfigurationError("slot spacing must be >= 1")
        slots = p.slots_for(self.msg_bytes)
        return ((slots - 1) * spacing + 1) * p.slot_ps

    def tdm_first_message_ps(self, hops: int) -> int:
        return (
            self.tdm_establishment_ps(hops)
            + self.tdm_transfer_ps()
            + self.tdm_path_fill_ps(hops)
        )

    def tdm_cached_message_ps(self, hops: int) -> int:
        """Connection already cached: transfer plus pipe fill only."""
        return self.tdm_transfer_ps() + self.tdm_path_fill_ps(hops)

    def wormhole_message_ps(self, hops: int) -> int:
        """Contention-free wormhole delivery over ``hops`` digital switches.

        The head arbitrates (80 ns) and traverses (10 ns) at every switch;
        worms of one message pipeline, so the body streams behind the head
        and the message completes one worm-serialisation after the head
        path plus the final worm's body.
        """
        p = self._check(hops)
        head_path = (
            p.nic_delay_ps
            + p.serdes_ps
            + hops * (p.cable_ps + p.scheduler_pass_ps + p.digital_switch_ps)
            + p.cable_ps
            + p.serdes_ps
            + p.nic_delay_ps
        )
        n_worms = -(-self.msg_bytes // p.worm_max_bytes)
        last_worm = self.msg_bytes - (n_worms - 1) * p.worm_max_bytes
        # successive worms each re-arbitrate at every switch, but those
        # passes overlap the previous worm's body when bodies are longer
        # than a pass; the steady-state inter-worm gap is the max of the two
        worm_gap = max(
            p.worm_max_bytes * p.byte_ps, p.scheduler_pass_ps
        )
        return head_path + (n_worms - 1) * worm_gap + last_worm * p.byte_ps

    # -- sustained streaming --------------------------------------------------------

    def tdm_stream_efficiency(self, hops: int) -> float:
        """Sustained share of link bandwidth for a cached TDM stream.

        Hop count does not matter: the pipe is passive.  The cost is the
        slot quantisation — a message of ``b`` bytes occupies
        ``ceil(b / slot_bytes)`` whole slots — plus any guard band folded
        into ``slot_bytes``.
        """
        self._check(hops)
        p = self.params
        slots = p.slots_for(self.msg_bytes)
        return self.msg_bytes * p.byte_ps / (slots * p.slot_ps)

    def wormhole_stream_efficiency(self, hops: int) -> float:
        """Sustained wormhole throughput share over ``hops`` switches.

        Each worm's head re-arbitrates per switch; heads of successive
        worms pipeline across switches, so the bottleneck is one 80 ns
        arbitration per worm at whichever switch is busiest.
        """
        self._check(hops)
        p = self.params
        worm_ps = p.worm_max_bytes * p.byte_ps
        return worm_ps / (worm_ps + p.scheduler_pass_ps)

    # -- buffering -------------------------------------------------------------------

    def wormhole_buffer_bytes(self, hops: int) -> int:
        """Minimum switch buffering: one worm per traversed switch."""
        self._check(hops)
        return hops * self.params.worm_max_bytes

    # -- the comparison table -----------------------------------------------------------

    def compare(self, hops: int) -> HopComparison:
        return HopComparison(
            hops=hops,
            tdm_first_message_ns=self.tdm_first_message_ps(hops) / 1000.0,
            tdm_cached_message_ns=self.tdm_cached_message_ps(hops) / 1000.0,
            wormhole_message_ns=self.wormhole_message_ps(hops) / 1000.0,
            tdm_stream_efficiency=self.tdm_stream_efficiency(hops),
            wormhole_stream_efficiency=self.wormhole_stream_efficiency(hops),
            wormhole_buffer_bytes=self.wormhole_buffer_bytes(hops),
            tdm_buffer_bytes=0,
        )

    def sweep(self, hop_counts: tuple[int, ...] = (1, 2, 4, 8)) -> list[HopComparison]:
        return [self.compare(h) for h in hop_counts]

    def crossover_reuses(self, hops: int) -> int:
        """Connection reuses needed before TDM beats wormhole on latency.

        The first TDM message pays establishment; every further message on
        the cached connection saves the per-hop arbitration wormhole keeps
        paying.  Returns the smallest number of messages m for which
        ``m`` TDM messages (1 establishment) finish before ``m`` wormhole
        messages.
        """
        establishment = self.tdm_establishment_ps(hops)
        tdm_per_msg = self.tdm_cached_message_ps(hops)
        worm_per_msg = self.wormhole_message_ps(hops)
        if worm_per_msg <= tdm_per_msg:
            return 0  # wormhole never loses per-message: no crossover
        saving = worm_per_msg - tdm_per_msg
        return -(-establishment // saving)

    def _check(self, hops: int) -> SystemParams:
        if hops < 1:
            raise ConfigurationError("need at least one hop")
        return self.params

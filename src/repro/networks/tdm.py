"""The predictive multiplexed switching network — the paper's system.

One :class:`TdmNetwork` simulates the full Figure-1 plant:

* N NICs with virtual output queues raising request lines;
* the scheduler (Figure 2): K configuration registers, the SL array run
  every ``scheduler_pass_ps`` (one pass schedules one slot), request
  latches driven by a :class:`~repro.predict.base.Predictor`;
* the TDM slot clock: every ``slot_ps`` the TDM counter advances to the
  next non-empty configuration, the crossbar is reconfigured, and every
  granted connection moves up to ``slot_bytes`` over its pipe;
* optional **compiled communication**: per phase, the statically-known
  connection set is compiled (bipartite edge colouring) into a
  :class:`~repro.compiled.directives.PreloadProgram` whose batches occupy
  ``k_preload`` pinned registers; batches advance as their traffic drains.

Three operating modes reproduce the paper's configurations:

=============  ============  =========================================
mode           k_preload     corresponds to
=============  ============  =========================================
``dynamic``    0             Figure 4 "Dynamic TDM" (degree ``k``)
``preload``    k             Figure 4 "Preload"
``hybrid``     1 .. k-1      Figure 5 "k-preload / (K-k)-dynamic"
=============  ============  =========================================

Request and grant wires carry their physical delays: a queue-state change
reaches the scheduler ``request_wire_ps`` later, and transfers happen in
the slot after the configuration is actually loaded — the overheads whose
amortisation is the point of the paper.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..compiled.coloring import decompose
from ..compiled.directives import PreloadProgram
from ..compiled.patterns import StaticPattern
from ..errors import ConfigurationError, SchedulingError
from ..faults.injector import FaultInjector
from ..fabric.config import ConfigMatrix
from ..fabric.crossbar import Crossbar
from ..fabric.timing import FabricTiming
from ..params import SystemParams
from ..predict.base import NullPredictor, Predictor
from ..predict.markov import MarkovPrefetcher
from ..sched.constrained import ConstrainedScheduler, FabricConstraint
from ..sched.multislot import QueueDepthBoostPolicy
from ..sched.multiunit import MultiUnitScheduler
from ..sched.priority import RotationPolicy, RoundRobinPriority
from ..sched.scheduler import Scheduler
from ..sched.solstice import solstice_schedule
from ..sim.engine import Priority
from ..sim.fastpath import FastPath, fast_from_env, fastpath_ineligible
from ..sim.trace import Tracer
from ..topo import Topology
from ..traffic.base import TrafficPhase
from ..types import Connection, Message, MessageRecord
from .base import BaseNetwork

__all__ = ["TdmNetwork"]

_MODES = ("dynamic", "preload", "hybrid")


class TdmNetwork(BaseNetwork):
    """TDM multiplexed switching with dynamic, preloaded, or hybrid control."""

    def __init__(
        self,
        params: SystemParams,
        k: int = 4,
        mode: str = "dynamic",
        k_preload: int | None = None,
        predictor: Predictor | None = None,
        rotation: RotationPolicy | None = None,
        tracer: Tracer | None = None,
        flush_on_phase: bool = False,
        n_sl_units: int = 1,
        multislot_threshold_bytes: int | None = None,
        batch_load_ps: int | None = None,
        injection_window: int | None = None,
        skip_idle_slots: bool = True,
        prefetcher: MarkovPrefetcher | None = None,
        fabric_constraint: FabricConstraint | None = None,
        schedule_computer: str = "coloring",
        coloring: str = "kempe",
        faults: FaultInjector | None = None,
        fast: bool | None = None,
        strict: bool | None = None,
        max_wall_s: float | None = None,
        topology: Topology | None = None,
    ) -> None:
        super().__init__(
            params,
            tracer,
            faults=faults,
            strict=strict,
            max_wall_s=max_wall_s,
            topology=topology,
        )
        if not self.topology.is_single_switch:
            raise ConfigurationError(
                f"TdmNetwork models one crossbar; topology "
                f"{self.topology.name!r} has {self.topology.n_switches} "
                f"switches (use the mesh-tdm / fattree-tdm schemes)"
            )
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        if k < 1:
            raise ConfigurationError("multiplexing degree must be >= 1")
        if mode == "dynamic":
            k_preload = 0
        elif mode == "preload":
            k_preload = k if k_preload is None else k_preload
        elif k_preload is None or not 0 < k_preload < k:
            raise ConfigurationError(
                f"hybrid mode needs 0 < k_preload < k, got {k_preload}"
            )
        if mode == "preload" and k_preload != k:
            raise ConfigurationError("preload mode pins all k slots")
        self.k = k
        self.mode = mode
        self.k_preload = int(k_preload)
        self.predictor_template = predictor
        self.rotation_template = rotation
        self.flush_on_phase = flush_on_phase
        self.n_sl_units = n_sl_units
        self.multislot_threshold_bytes = multislot_threshold_bytes
        if injection_window is not None and injection_window < 1:
            raise ConfigurationError("injection window must be >= 1")
        #: max outstanding (queued, not fully transmitted) messages per NIC.
        #: The paper's processors are sequential command-file generators with
        #: a bounded number of in-flight non-blocking sends; None models
        #: NICs deep enough to expose the whole phase at once.
        self.injection_window = injection_window
        #: generalise the TDM counter's empty-configuration skipping to
        #: configurations with no pending requests (B(t) AND R == 0); the
        #: scheduler holds both matrices, so the AND is free in hardware
        self.skip_idle_slots = skip_idle_slots
        self.batch_load_ps = (
            params.scheduler_pass_ps if batch_load_ps is None else batch_load_ps
        )
        #: optional next-connection prefetcher (Section 3.2's proactive
        #: establishment, realised through the extension-3 request latches)
        self.prefetcher = prefetcher
        #: optional non-crossbar fabric predicate (Omega, fat-tree, ...);
        #: switches the scheduler to the constraint-checked generalisation
        self.fabric_constraint = fabric_constraint
        if fabric_constraint is not None and n_sl_units > 1:
            raise ConfigurationError(
                "fabric constraints and multiple SL units are mutually exclusive"
            )
        if schedule_computer not in ("coloring", "solstice"):
            raise ConfigurationError(
                f"schedule_computer must be 'coloring' or 'solstice', "
                f"got {schedule_computer!r}"
            )
        if coloring not in ("kempe", "packed"):
            raise ConfigurationError(
                f"coloring must be 'kempe' or 'packed', got {coloring!r}"
            )
        #: how the preload compiler turns a phase's static connections into
        #: configurations: the paper's edge colouring, or the Solstice-style
        #: demand-ranked extraction (sched/solstice.py)
        self.schedule_computer = schedule_computer
        #: decomposition flavour for the colouring computer: "kempe" is the
        #: paper's exact-Δ frame, "packed" the demand-weighted variant
        self.coloring = coloring
        self.scheme = f"tdm-{mode}"
        #: slot-synchronous fast execution (repro.sim.fastpath) — byte-
        #: identical to the event path; irregular runs fall back per run
        self.fast = fast_from_env() if fast is None else bool(fast)
        # per-run state
        self._fastpath: FastPath | None = None
        self.scheduler: Scheduler | None = None
        self.predictor: Predictor = NullPredictor()
        self.crossbar: Crossbar | None = None
        self.boost_policy: QueueDepthBoostPolicy | None = None
        self._program: PreloadProgram | None = None
        self._batch_idx = 0
        self._batch_conns: set[Connection] = set()
        self._batch_remaining = 0
        self._batch_loading = False
        self._program_gen = 0
        self._clocks_started = False
        self._slot_transfers = 0
        self._slot_opportunities = 0
        self._scripts: list = []
        self._script_bytes: np.ndarray | None = None
        self._conn_ready: np.ndarray | None = None

    # -- run scaffolding -----------------------------------------------------------

    def _reset_scheme_state(self) -> None:
        n = self.params.n_ports
        rotation = self.rotation_template or RoundRobinPriority(n)
        rotation.reset()
        if self.fabric_constraint is not None:
            self.scheduler = ConstrainedScheduler(
                self.params, self.k, self.fabric_constraint, rotation
            )
        elif self.n_sl_units > 1:
            self.scheduler = MultiUnitScheduler(
                self.params, self.k, self.n_sl_units, rotation
            )
        else:
            self.scheduler = Scheduler(self.params, self.k, rotation)
        self.scheduler.tracer = self.tracer
        self.scheduler.clock = lambda: self.sim.now
        self.predictor = self.predictor_template or NullPredictor()
        self.crossbar = Crossbar(self.params, FabricTiming.lvds(self.params))
        if self.multislot_threshold_bytes is not None:
            self.boost_policy = QueueDepthBoostPolicy(
                self.scheduler, self.multislot_threshold_bytes, max_slots=2
            )
        else:
            self.boost_policy = None
        self._program = None
        self._batch_idx = 0
        self._batch_conns = set()
        self._batch_remaining = 0
        self._batch_loading = False
        self._clocks_started = False
        self._slot_transfers = 0
        self._slot_opportunities = 0
        self._scripts = []
        self._script_bytes = None
        # grant-wire visibility: a connection established at time t can first
        # carry data at t + grant_wire_ps, when the NIC has seen its grant
        self._conn_ready = np.zeros(
            (self.params.n_ports, self.params.n_ports), dtype=np.int64
        )
        # fault recovery (watchdogs, retries, give-up) is driven by the
        # lifecycle layer through the lifecycle_* callbacks below
        self._degraded = False
        self.lifecycle.attach_scheduler(self.scheduler, client=self)
        # slot-synchronous execution: decided per run, after the fault and
        # scheduler state above is known (_faults_active is set by run())
        if self.fast and fastpath_ineligible(self) is None:
            self._fastpath = FastPath(self)
        else:
            self._fastpath = None

    def _inject(self, phase: TrafficPhase) -> None:
        """Inject a phase, honouring the per-NIC injection window.

        With a window of W, each NIC holds at most W outstanding messages
        in its VOQs; the rest wait in the NIC's sequential script and enter
        as earlier messages finish transmitting — the behaviour of the
        paper's command-file packet generators with bounded non-blocking
        sends.
        """
        if self.injection_window is None:
            super()._inject(phase)
            return
        now = self.sim.now
        n = self.params.n_ports
        self._scripts = [deque() for _ in range(n)]
        self._script_bytes = np.zeros((n, n), dtype=np.int64)
        for msg in phase.messages:
            if not (0 <= msg.src < n and 0 <= msg.dst < n):
                raise SchedulingError(
                    f"message ({msg.src} -> {msg.dst}) does not fit a "
                    f"{n}-port system; pattern/params size mismatch?"
                )
            msg.inject_ps += now
            self.ledger.offer(msg.src, msg.dst, msg.size)
            self._scripts[msg.src].append(msg)
            self._script_bytes[msg.src, msg.dst] += msg.size
            if self.tracer.enabled:
                self.tracer.record(
                    msg.inject_ps,
                    "msg-inject",
                    src=msg.src,
                    dst=msg.dst,
                    size=msg.size,
                    seq=msg.seq,
                )
        self._phase_remaining = len(phase.messages)
        for u in range(n):
            for _ in range(self.injection_window):
                self._feed_nic(u, initial=True)

    def _feed_nic(self, u: int, initial: bool = False) -> None:
        """Move the next scripted message of NIC ``u`` into its VOQs."""
        if not self._scripts:
            return
        script = self._scripts[u]
        if not script:
            return
        msg = script.popleft()
        assert self._script_bytes is not None
        self._script_bytes[u, msg.dst] -= msg.size
        self.nics[u].enqueue(msg)
        if not initial:
            # a fresh request edge travels to the scheduler
            self.sim.schedule(
                self.params.request_wire_ps,
                self._request_rise,
                u,
                msg.dst,
                priority=Priority.WIRE,
            )

    def _request_rise(self, u: int, v: int) -> None:
        sched = self.scheduler
        assert sched is not None
        if self.nics[u].voqs.bytes_pending[v] > 0:
            if self.tracer.enabled and not sched.r_view[u, v]:
                self.tracer.record(self.sim.now, "req-rise", src=u, dst=v)
            sched.r_view[u, v] = True
            if self._faults_active and not sched.established_anywhere(u, v):
                self.lifecycle.arm(u, v)

    def _accept(self, msg, at_phase_start: bool) -> None:
        """A message arrives mid-phase: raise its request after the wire."""
        super()._accept(msg, at_phase_start)
        if not at_phase_start:
            self.sim.schedule(
                self.params.request_wire_ps,
                self._request_rise,
                msg.src,
                msg.dst,
                priority=Priority.WIRE,
            )

    def _execute_phase(self, phase: TrafficPhase) -> None:
        sched = self.scheduler
        assert sched is not None
        if self.flush_on_phase and self.sim.now > 0:
            sched.flush()
            self.predictor.on_flush(self.sim.now)

        if self.k_preload > 0 and not self._degraded:
            self._compile_phase_program(phase)
        elif not self._degraded:
            self._program = None

        # the request wires settle request_wire_ps after injection
        self.sim.schedule(
            self.params.request_wire_ps,
            self._sync_requests,
            priority=Priority.WIRE,
        )
        if not self._clocks_started:
            self._clocks_started = True
            self.sim.schedule(self.params.slot_ps, self._slot_tick, priority=Priority.FABRIC)
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )
        self._run_event_loop()
        if self._phase_remaining != 0:  # pragma: no cover - debugging aid
            raise SchedulingError(
                f"TDM run stalled with {self._phase_remaining} messages pending "
                f"at sim time {self.sim.now} ps "
                f"({self.sim.pending} events still queued)"
            )

    def _collect_counters(self) -> dict[str, int]:
        out = super()._collect_counters()
        if self.scheduler is not None:
            out.update(self.scheduler.counters.as_dict())
            out["tdm_advances"] = self.scheduler.tdm.advances
            out["tdm_idle_ticks"] = self.scheduler.tdm.idle_ticks
        out["slot_transfers"] = self._slot_transfers
        if self.crossbar is not None:
            out["fabric_reconfigurations"] = self.crossbar.reconfigurations
        out["slot_opportunities"] = self._slot_opportunities
        out.update({f"predictor_{k}": v for k, v in self.predictor.stats().items()})
        if self.prefetcher is not None:
            out.update(
                {f"prefetch_{k}": v for k, v in self.prefetcher.stats().items()}
            )
        if self._program is not None:
            out["preload_batches"] = self._program.n_batches
        return out

    # -- compiled communication ------------------------------------------------------

    def _compile_phase_program(self, phase: TrafficPhase) -> None:
        """Compile the phase's static connections into a preload program.

        When the pattern supplies a program-order preload schedule (the
        compiler knows the send order), its configurations are batched as
        given; otherwise the generic edge-colouring compiler runs on the
        phase's static connection set.

        Each compilation starts a new program *generation*; batch-load
        events scheduled under an older generation (a previous phase) are
        ignored when they fire.
        """
        self._program_gen += 1
        if phase.preload_configs:
            configs = list(phase.preload_configs)
            self._program = PreloadProgram(
                n=self.params.n_ports,
                k_preload=self.k_preload,
                batches=[
                    configs[i : i + self.k_preload]
                    for i in range(0, len(configs), self.k_preload)
                ],
            )
            self._batch_idx = 0
            self._load_batch(self._batch_idx, self._program_gen)
            if self.mode == "preload" and phase.dynamic_conns():
                raise SchedulingError(
                    f"pure preload mode cannot serve statically-unknown "
                    f"traffic in phase {phase.name!r}: "
                    f"{len(phase.dynamic_conns())} dynamic connections "
                    f"(e.g. {sorted(phase.dynamic_conns())[0]}); use hybrid mode"
                )
            return
        static = StaticPattern(self.params.n_ports, phase.static_conns)
        if len(static) == 0:
            if self.mode == "preload" and phase.messages:
                raise SchedulingError(
                    f"pure preload mode cannot serve phase {phase.name!r}: "
                    f"{len(phase.messages)} messages but no static "
                    "communication information; use hybrid or dynamic mode"
                )
            # a phase with nothing to preload: hand any previously pinned
            # registers back to the dynamic scheduler
            self._program = None
            self._batch_conns = set()
            self._batch_remaining = 0
            regs = self.scheduler.registers
            for slot in list(regs.pinned):
                regs.clear_slot(slot)
            return
        configs = self._compute_schedule(static, phase)
        if configs is None:
            self._program = PreloadProgram.compile(static, self.k_preload)
        else:
            self._program = PreloadProgram(
                n=self.params.n_ports,
                k_preload=self.k_preload,
                batches=[
                    configs[i : i + self.k_preload]
                    for i in range(0, len(configs), self.k_preload)
                ],
            )
        self._batch_idx = 0
        self._load_batch(self._batch_idx, self._program_gen)
        if self.mode == "preload" and phase.dynamic_conns():
            raise SchedulingError(
                f"pure preload mode cannot serve statically-unknown traffic "
                f"in phase {phase.name!r}: {len(phase.dynamic_conns())} "
                f"dynamic connections; use hybrid mode"
            )

    def _static_demand(self, phase: TrafficPhase) -> dict[tuple[int, int], int]:
        """Bytes offered per statically-known connection of the phase."""
        demand: dict[tuple[int, int], int] = {
            (u, v): 0 for u, v in phase.static_conns
        }
        for msg in phase.messages:
            key = (msg.src, msg.dst)
            if key in demand:
                demand[key] += msg.size
        return demand

    def _compute_schedule(
        self, static: StaticPattern, phase: TrafficPhase
    ) -> "list[ConfigMatrix] | None":
        """Run the configured schedule computer over the static working set.

        Returns the ordered configurations, or None for the default
        (paper's exact-Δ Kempe colouring, compiled by the pattern itself).
        """
        if self.schedule_computer == "solstice":
            demand = self._static_demand(phase)
            return [cfg for cfg, _ in solstice_schedule(demand, self.params.n_ports)]
        if self.coloring != "kempe":
            demand = self._static_demand(phase)
            return decompose(
                static.conns,
                self.params.n_ports,
                coloring=self.coloring,
                demand=demand,
            )
        return None

    def _load_batch(self, index: int, generation: int) -> None:
        """Load batch ``index`` into the pinned registers."""
        if generation != self._program_gen:
            return  # stale directive from a previous phase's program
        assert self._program is not None and self.scheduler is not None
        batch = self._program.batches[index]
        regs = self.scheduler.registers
        for s in range(self.k_preload):
            if s < len(batch):
                regs.load(s, batch[s], pin=True)
            else:
                # trailing registers of a short batch fall back to dynamic use
                regs.clear_slot(s)
        prev_conns = self._batch_conns
        self._batch_conns = self._program.batch_connections(index)
        if self.tracer.enabled:
            now = self.sim.now
            for u, v in sorted(prev_conns - self._batch_conns):
                self.tracer.record(now, "conn-release", src=u, dst=v, via="preload")
            for u, v in sorted(self._batch_conns - prev_conns):
                self.tracer.record(now, "conn-establish", src=u, dst=v, via="preload")
        if self._conn_ready is not None:
            ready = self.sim.now + self.params.grant_wire_ps
            for u, v in self._batch_conns:
                self._conn_ready[u, v] = max(self._conn_ready[u, v], ready)
        # bytes still to transmit on this batch's connections: offered minus
        # sent covers queued, scripted (windowed), and future-injected alike
        # (earlier phases are fully sent by the phase barrier); bytes already
        # dropped under faults will never be transmitted either
        self._batch_remaining = int(
            sum(
                self.ledger.offered[u, v]
                - self.ledger.sent[u, v]
                - self.ledger.dropped[u, v]
                for u, v in self._batch_conns
            )
        )
        self._batch_loading = False
        self.scheduler.counters.inc("preloads", len(batch))
        self.tracer.record(
            self.sim.now, "preload-batch", index=index, conns=len(self._batch_conns)
        )
        if self._batch_remaining == 0:
            self._maybe_advance_batch()

    def _maybe_advance_batch(self) -> None:
        """Advance to the next batch once the current one has drained."""
        if (
            self._program is None
            or self._batch_loading
            or self._batch_remaining > 0
            or self._batch_idx + 1 >= self._program.n_batches
        ):
            return
        self._batch_idx += 1
        self._batch_loading = True
        # the compiler directive takes one scheduler pass to take effect
        self.sim.schedule(
            self.batch_load_ps,
            self._load_batch,
            self._batch_idx,
            self._program_gen,
            priority=Priority.SCHEDULER,
        )

    # -- request plane ----------------------------------------------------------------

    def _sync_requests(self) -> None:
        """Full refresh of the scheduler's request view (phase injection)."""
        sched = self.scheduler
        assert sched is not None
        for nic in self.nics:
            sched.r_view[nic.port, :] = nic.voqs.request_vector()
        if self._faults_active:
            # blanket watchdog coverage: every pending connection gets a
            # NIC-side timeout so no fault can stall the phase unnoticed
            for u, row in enumerate(sched.r_view):
                for v in np.nonzero(row)[0].tolist():
                    if not sched.established_anywhere(u, v):
                        self.lifecycle.arm(u, v)

    def _request_drop(self, u: int, v: int, hold: bool) -> None:
        """A queue-empty edge arrived at the scheduler."""
        sched = self.scheduler
        assert sched is not None
        if self.nics[u].voqs.bytes_pending[v] > 0:
            # a new phase refilled the queue while the drop was in flight
            sched.r_view[u, v] = True
            return
        if self.tracer.enabled and sched.r_view[u, v]:
            self.tracer.record(self.sim.now, "req-drop", src=u, dst=v)
        sched.r_view[u, v] = False
        sched.latched[u, v] = hold

    # -- the TDM slot clock ---------------------------------------------------------------

    def _slot_tick(self) -> None:
        fp = self._fastpath
        sched = self.scheduler
        assert sched is not None
        t = self.sim.now
        pending = sched.r_view if self.skip_idle_slots else None
        slot = sched.tdm.advance(pending)
        if slot is not None:
            assert self.crossbar is not None
            self.crossbar.apply(sched.registers[slot])
            if fp is not None:
                fp.transfer_slot(slot, t)
            else:
                self._transfer_slot(slot, t)
            self._maybe_advance_batch()
        if self._phase_remaining > 0 or self.sim.pending > 0:
            self.sim.schedule(self.params.slot_ps, self._slot_tick, priority=Priority.FABRIC)
        if fp is not None:
            # with both clocks re-armed the window precomputation can see
            # the full heap; opening is refused unless provably safe
            fp.maybe_open_window()

    def _transfer_slot(self, slot: int, t: int) -> None:
        """Move data over every granted connection of one slot."""
        params = self.params
        sched = self.scheduler
        assert sched is not None
        cfg = sched.registers[slot]
        slot_bytes = params.slot_bytes
        byte_ps = params.byte_ps
        conn_ready = self._conn_ready
        assert conn_ready is not None
        faults_active = self._faults_active
        tracer = self.tracer
        trace = tracer.enabled
        slot_conns = 0
        slot_bytes_moved = 0
        for u, v in cfg.connections():
            nic = self.nics[u]
            self._slot_opportunities += 1
            if conn_ready[u, v] > t:
                continue  # the NIC has not seen this grant yet
            if faults_active and (self._link_down[u] or self._link_down[v]):
                continue  # an endpoint's links are out — no data this slot
            if nic.voqs.bytes_pending[v] <= 0:
                continue
            moved, done = nic.voqs.drain(v, slot_bytes, t, byte_ps)
            if moved == 0:
                continue
            self._slot_transfers += 1
            slot_conns += 1
            slot_bytes_moved += moved
            if trace:
                tracer.record(t, "xfer", src=u, dst=v, bytes=moved, slot=slot)
            self.ledger.send(u, v, moved)
            if faults_active:
                assert self.fault_injector is not None
                self.fault_injector.note_progress(u, v)
            self.predictor.on_use(u, v, t)
            if (u, v) in self._batch_conns:
                self._batch_remaining -= moved
            for dm in done:
                record = MessageRecord(
                    src=u,
                    dst=v,
                    size=dm.message.size,
                    inject_ps=dm.message.inject_ps,
                    start_ps=dm.start_ps,
                    done_ps=dm.finish_ps + self.crossbar.path_latency_ps(),
                    seq=dm.message.seq,
                )
                self.sim.schedule_at(
                    record.done_ps, self._deliver, record, priority=Priority.NIC
                )
                if self.prefetcher is not None:
                    self.prefetcher.observe(u, v, t)
                    conn = self.prefetcher.prefetch(u, v, t)
                    if conn is not None:
                        # the Figure-1 predictor sits beside the scheduler,
                        # so the latch is set without a wire delay
                        sched = self.scheduler
                        assert sched is not None
                        sched.latched[conn.src, conn.dst] = True
                if self.injection_window is not None:
                    self._feed_nic(u)
            if nic.voqs.bytes_pending[v] == 0:
                hold = self.predictor.on_empty(u, v, t)
                self.sim.schedule(
                    params.request_wire_ps,
                    self._request_drop,
                    u,
                    v,
                    hold,
                    priority=Priority.WIRE,
                )
        if trace:
            tracer.record(
                t, "slot-transfer", slot=slot, conns=slot_conns, bytes=slot_bytes_moved
            )

    # -- the SL clock -------------------------------------------------------------------------

    def _sl_tick(self) -> None:
        fp = self._fastpath
        if fp is not None and fp.handle_sl_tick():
            return  # a provably no-op pass, applied without the SL array
        sched = self.scheduler
        assert sched is not None
        t = self.sim.now
        for conn in self.predictor.expired(t):
            sched.latched[conn.src, conn.dst] = False
        if self.prefetcher is not None:
            for conn in self.prefetcher.expired(t):
                if not sched.r_view[conn.src, conn.dst]:
                    sched.latched[conn.src, conn.dst] = False
        if self.boost_policy is not None:
            queue_bytes = np.stack([nic.voqs.bytes_pending for nic in self.nics])
            self.boost_policy.update(queue_bytes)
            self.boost_policy.release_excess(queue_bytes)
        if isinstance(sched, MultiUnitScheduler):
            passes = sched.sl_tick()
        else:
            passes = [sched.sl_pass()]
        # the pass latches after one scheduler period; the grant then rides
        # the grant wire to the NIC before the connection can carry data
        ready = t + self.params.scheduler_pass_ps + self.params.grant_wire_ps
        assert self._conn_ready is not None
        for p in passes:
            if p.outcome is None:
                continue
            for tog in p.outcome.established:
                self._conn_ready[tog.u, tog.v] = ready
        if self._phase_remaining > 0 or self.sim.pending > 0:
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )

    # -- lifecycle policy callbacks (repro.networks.lifecycle) ------------------------------------
    #
    # The ConnectionManager drives watchdogs, retries, management-plane
    # escalation, and give-up; these callbacks supply TDM's policy: a watch
    # covers one (u, v) connection for as long as bytes are pending and no
    # slot carries it, and losing a pinned slot degrades to dynamic mode.

    def lifecycle_watch_ref(self, u: int, v: int) -> tuple[Connection, int | None]:
        return (u, v), None

    def lifecycle_watch_resolved(self, u: int, v: int, seq: int | None) -> bool:
        if self.nics[u].voqs.bytes_pending[v] <= 0:
            return True  # drained (or dropped) — nothing to recover
        sched = self.scheduler
        assert sched is not None
        # healthy again (slot up and request visible): transfers will flow
        return bool(sched.established_anywhere(u, v) and sched.r_view[u, v])

    def lifecycle_awaiting_grant(self, u: int, v: int) -> bool:
        return bool(self.nics[u].voqs.bytes_pending[v] > 0)

    def lifecycle_awaiting_sl_dead(self, u: int, v: int) -> bool:
        sched = self.scheduler
        assert sched is not None
        return bool(
            self.nics[u].voqs.bytes_pending[v] > 0
            and not sched.established_anywhere(u, v)
        )

    def lifecycle_retry(self, u: int, v: int) -> None:
        self.sim.schedule(
            self.params.request_wire_ps,
            self._request_rise,
            u,
            v,
            priority=Priority.WIRE,
        )

    def lifecycle_mgmt_remap(self, u: int, v: int) -> bool:
        sched = self.scheduler
        assert sched is not None
        sched.r_view[u, v] = True  # management refreshes the request latch
        slot = sched.mgmt_establish(u, v)
        if slot is None:
            return False
        assert self._conn_ready is not None
        ready = self.sim.now + self.params.grant_wire_ps
        self._conn_ready[u, v] = max(self._conn_ready[u, v], ready)
        self.tracer.record(self.sim.now, "mgmt-remap", src=u, dst=v, slot=slot)
        return True

    def lifecycle_give_up(self, u: int, v: int) -> None:
        """Recovery failed: explicitly drop everything queued on (u, v)."""
        sched = self.scheduler
        assert sched is not None
        removed = self.nics[u].voqs.purge(v)
        victims: list[Message] = list(removed)
        if self._scripts:
            assert self._script_bytes is not None
            script = self._scripts[u]
            keep: deque = deque()
            for m in script:
                if m.dst == v:
                    self._script_bytes[u, v] -= m.size
                    victims.append(m)
                else:
                    keep.append(m)
            self._scripts[u] = keep
        for m in victims:
            self._drop_message(m, "unrecoverable")
        sched.r_view[u, v] = False
        sched.latched[u, v] = False
        if self._scripts:
            for _ in range(len(removed)):
                self._feed_nic(u)

    def lifecycle_pinned_lost(self) -> None:
        self._degrade_to_dynamic()

    # -- link-state reactions (repro.faults) ------------------------------------------------------

    def _on_link_down(self, port: int) -> None:
        """A transient outage: open recovery windows for affected traffic."""
        inj = self.fault_injector
        assert inj is not None
        pending = self.nics[port].voqs.bytes_pending
        for v in np.nonzero(pending > 0)[0].tolist():
            inj.note_disrupted(port, v)
        for nic in self.nics:
            if nic.port != port and nic.voqs.bytes_pending[port] > 0:
                inj.note_disrupted(nic.port, port)

    def _on_link_dead(self, port: int) -> None:
        """A port died for good: give up every message it touches.

        Transfers already scheduled for delivery complete (bytes in flight
        reach memory); everything still queued — in VOQs or in the
        windowed-injection scripts — to or from the port is explicitly
        dropped, its request and latch state cleared, and the predictor
        told to forget the port's connections.
        """
        n = self.params.n_ports
        sched = self.scheduler
        assert sched is not None
        freed = [0] * n
        victims: list[Message] = []
        for nic in self.nics:
            removed = nic.voqs.purge() if nic.port == port else nic.voqs.purge(port)
            freed[nic.port] += len(removed)
            victims.extend(removed)
        if self._scripts:
            assert self._script_bytes is not None
            for u in range(n):
                script = self._scripts[u]
                if not script:
                    continue
                keep: deque = deque()
                for m in script:
                    if u == port or m.dst == port:
                        self._script_bytes[u, m.dst] -= m.size
                        victims.append(m)
                    else:
                        keep.append(m)
                self._scripts[u] = keep
        for m in victims:
            self._drop_message(m, "dead-link")
        sched.r_view[port, :] = False
        sched.r_view[:, port] = False
        sched.latched[port, :] = False
        sched.latched[:, port] = False
        self.predictor.on_fault(port, self.sim.now)
        self.lifecycle.disarm_port(port)
        if self._scripts:
            # queued messages the purge removed freed injection-window slots
            for u in range(n):
                if u != port:
                    for _ in range(freed[u]):
                        self._feed_nic(u)

    def _degrade_to_dynamic(self) -> None:
        """Graceful degradation: abandon the preload program.

        A fault took out a pinned (preloaded) slot, so the compiled
        communication contract is broken.  The network abandons the
        program, hands every remaining pinned register back to the dynamic
        scheduler (keeping their current contents as ordinary dynamic
        configurations), and serves the rest of the run with dynamic
        scheduling only.
        """
        if self._degraded:
            return
        self._degraded = True
        self._program_gen += 1  # invalidate in-flight batch-load events
        self._program = None
        self._batch_conns = set()
        self._batch_remaining = 0
        self._batch_loading = False
        assert self.scheduler is not None
        regs = self.scheduler.registers
        for slot in list(regs.pinned):
            regs.unpin(slot)
        assert self.fault_injector is not None
        self.fault_injector.counters.inc("degraded_to_dynamic")
        self.tracer.record(self.sim.now, "degrade-to-dynamic")

    def _drop_message(self, msg: Message, reason: str) -> None:
        if (msg.src, msg.dst) in self._batch_conns:
            # the batch will never see these bytes transmitted
            self._batch_remaining -= msg.remaining
        super()._drop_message(msg, reason)
        if self._batch_conns:
            self._maybe_advance_batch()

    # -- delivery hook ---------------------------------------------------------------------------

    def _deliver(self, record: MessageRecord) -> None:
        super()._deliver(record)
        if self.phase_done:
            self.sim.stop()

"""iSLIP — the iterative VOQ crossbar scheduler ("The Tiny Tera").

The literature baseline the bake-off measures the paper's predictive TDM
schemes against: a slotted packet switch whose configuration is recomputed
*every slot* by N iterations of round-robin grant/accept matching over the
per-input virtual output queues.

One slot of the matcher:

* **request** — input ``u`` requests every output with a non-empty VOQ;
* **grant** — each unmatched output grants the first requesting unmatched
  input at or after its grant pointer ``g[v]``;
* **accept** — each input accepts the first granting output at or after
  its accept pointer ``a[u]``; both pointers advance to one past the
  accepted port **only when the accept happened in the first iteration**.

That pointer rule is the whole trick: under sustained load the pointers
*desynchronise* until every output's pointer sits on a different input, at
which point one iteration finds a full match every slot — the classic
100 %-throughput-under-uniform result (pinned by the tests).  Further
iterations only fill holes left by conflicts and never move pointers, so
the desynchronised fixed point is stable.

The network reuses the paper's physical constants — slot length, per-slot
payload, pipe latency — so a bake-off row differs from ``dynamic-tdm``
only in the scheduling discipline, never in the plant.  Unlike the TDM
scheduler there are no request/grant wires or SL passes to amortise: the
matcher is modelled as the Tiny Tera's dedicated hardware, recomputing
within the slot it schedules.  What iSLIP gives up is exactly what the
paper's schemes exploit — no configuration is ever reused, so nothing is
predictive and nothing is preloadable.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..fabric.crossbar import Crossbar
from ..fabric.timing import FabricTiming
from ..params import SystemParams
from ..sim.engine import Priority
from ..sim.trace import Tracer
from ..topo import Topology
from ..traffic.base import TrafficPhase
from ..types import MessageRecord
from .base import BaseNetwork

__all__ = ["IslipNetwork"]


class IslipNetwork(BaseNetwork):
    """Slotted crossbar packet switch under iterative iSLIP matching."""

    scheme = "islip"

    def __init__(
        self,
        params: SystemParams,
        iterations: int = 2,
        tracer: Tracer | None = None,
        strict: bool | None = None,
        max_wall_s: float | None = None,
        topology: Topology | None = None,
    ) -> None:
        super().__init__(
            params, tracer, strict=strict, max_wall_s=max_wall_s, topology=topology
        )
        if not self.topology.is_single_switch:
            raise ConfigurationError(
                f"IslipNetwork models one crossbar; topology "
                f"{self.topology.name!r} has {self.topology.n_switches} switches"
            )
        if iterations < 1:
            raise ConfigurationError("iSLIP needs at least one iteration")
        self.iterations = iterations
        # per-run state
        self.crossbar: Crossbar | None = None
        self._grant_ptr: np.ndarray = np.zeros(params.n_ports, dtype=np.int64)
        self._accept_ptr: np.ndarray = np.zeros(params.n_ports, dtype=np.int64)
        self._phase_gen = 0
        self.islip_slots = 0
        self.islip_matches = 0
        #: per-slot match sizes of the current run (test hook: the
        #: desynchronisation fixed point shows as a steady-state plateau)
        self.slot_match_counts: list[int] = []

    def _reset_scheme_state(self) -> None:
        n = self.params.n_ports
        self.crossbar = Crossbar(self.params, FabricTiming.lvds(self.params))
        self._grant_ptr = np.zeros(n, dtype=np.int64)
        self._accept_ptr = np.zeros(n, dtype=np.int64)
        self._phase_gen = 0
        self.islip_slots = 0
        self.islip_matches = 0
        self.slot_match_counts = []

    def _execute_phase(self, phase: TrafficPhase) -> None:
        self._phase_gen += 1
        self.sim.schedule(
            self.params.slot_ps, self._slot_tick, self._phase_gen,
            priority=Priority.FABRIC,
        )
        self._run_event_loop()

    def _collect_counters(self) -> dict[str, int]:
        out = super()._collect_counters()
        out["islip_slots"] = self.islip_slots
        out["islip_matches"] = self.islip_matches
        assert self.crossbar is not None
        out["reconfigurations"] = self.crossbar.reconfigurations
        return out

    # -- the matcher --------------------------------------------------------------

    @staticmethod
    def _rr_pick(candidates: np.ndarray, pointer: int) -> int:
        """First index in ``candidates`` at or (cyclically) after ``pointer``."""
        at_or_after = candidates[candidates >= pointer]
        return int(at_or_after[0]) if len(at_or_after) else int(candidates[0])

    def _match(self, requests: np.ndarray) -> list[tuple[int, int]]:
        """Run ``iterations`` grant/accept rounds; returns the matching."""
        n = self.params.n_ports
        in_free = np.ones(n, dtype=bool)
        out_free = np.ones(n, dtype=bool)
        matching: list[tuple[int, int]] = []
        for it in range(self.iterations):
            # grant: each free output picks round-robin among free requesters
            grants: dict[int, list[int]] = {}  # input -> granting outputs
            for v in np.nonzero(out_free)[0]:
                col = requests[:, v] & in_free
                if not col.any():
                    continue
                u = self._rr_pick(np.nonzero(col)[0], int(self._grant_ptr[v]))
                grants.setdefault(u, []).append(int(v))
            if not grants:
                break
            # accept: each granted input picks round-robin among its grants
            for u, outs in sorted(grants.items()):
                v = self._rr_pick(
                    np.asarray(outs, dtype=np.int64), int(self._accept_ptr[u])
                )
                in_free[u] = False
                out_free[v] = False
                matching.append((u, v))
                if it == 0:
                    # pointers move only on first-iteration accepts — the
                    # rule that makes the round-robins desynchronise
                    self._grant_ptr[v] = (u + 1) % n
                    self._accept_ptr[u] = (v + 1) % n
        return matching

    # -- the slot loop ------------------------------------------------------------

    def _slot_tick(self, gen: int) -> None:
        if gen != self._phase_gen:
            return  # stale tick armed by a previous phase
        t = self.sim.now
        params = self.params
        self.islip_slots += 1
        requests = np.stack([nic.voqs.bytes_pending for nic in self.nics]) > 0
        matching = self._match(requests) if requests.any() else []
        self.slot_match_counts.append(len(matching))
        self.islip_matches += len(matching)
        assert self.crossbar is not None
        if matching:
            # the matcher writes a fresh configuration every slot — the
            # reconfiguration count *is* iSLIP's cost profile
            self.crossbar.active.clear()
            for u, v in matching:
                self.crossbar.active.establish(u, v)
            self.crossbar.reconfigurations += 1
        path_ps = self.crossbar.path_latency_ps()
        for u, v in matching:
            voqs = self.nics[u].voqs
            moved, done = voqs.drain(v, params.slot_bytes, t, params.byte_ps)
            if moved:
                self.ledger.send(u, v, moved)
            for dm in done:
                record = MessageRecord(
                    src=u,
                    dst=v,
                    size=dm.message.size,
                    inject_ps=dm.message.inject_ps,
                    start_ps=dm.start_ps,
                    done_ps=dm.finish_ps + path_ps,
                    seq=dm.message.seq,
                )
                self.sim.schedule_at(
                    record.done_ps, self._deliver, record, priority=Priority.NIC
                )
        if self._phase_remaining > 0:
            self.sim.schedule(
                params.slot_ps, self._slot_tick, gen, priority=Priority.FABRIC
            )

    def _deliver(self, record: MessageRecord) -> None:
        super()._deliver(record)
        if self.phase_done:
            self.sim.stop()

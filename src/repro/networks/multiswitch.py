"""Multi-hop TDM switching over an explicit switch-graph topology.

This is the scale-out counterpart of :class:`~repro.networks.tdm.TdmNetwork`
— the paper's Section-6 claim that predictive multiplexed switching
amplifies over multi-hop networks, made executable.  The network is a set
of switches from a :class:`repro.topo.Topology`; **every switch owns its
own SL systolic array and K-deep configuration register file**
(:class:`~repro.sched.scheduler.Scheduler` over the switch's local port
space), and a circuit from endpoint ``u`` to endpoint ``v`` occupies one
crossbar cell on every switch along its deterministic route.

Establishment is a request/grant wavefront that crosses every hop:

1. a message raises the request line of its **home switch** (one request
   wire delay after injection); the chosen first-hop trunk link fixes the
   home crossbar cell, and circuits contending for the same cell are
   FIFO-serialised;
2. the home switch's own SL pass grants the cell in whatever dynamic slot
   its cursor schedules — that slot becomes the circuit's slot **on every
   hop** (the paper's slot-consistent multi-hop extension: all switches
   share one TDM frame, so a pipe is only contention-free if it holds the
   same slot end to end);
3. each subsequent SL clock period the wavefront claims the next switch's
   (in, out) cell in that slot.  A busy port NAKs the whole attempt: all
   claimed hops are released and the circuit re-queues at its home cell,
   where the next pass will grant a different slot (the cursor rotated);
4. after :data:`NAK_LIMIT` failed wavefronts the **hierarchical
   coordinator** takes over — the management plane scans all K slots for
   one that is free on every hop and claims the whole path atomically.
   This is the paper's two-level scheduling hierarchy: local SL arrays
   resolve local contention, the coordinator resolves end-to-end slot
   agreement when local greed livelocks;
5. the grant rides back to the NIC one scheduler pass + grant wire after
   the last hop is claimed, which makes the contention-free establishment
   latency exactly ``request_wire + h*scheduler_pass + grant_wire`` =
   :meth:`~repro.networks.multihop.MultiHopModel.tdm_establishment_ps` —
   the cross-validation test pins simulator and analytic model to within
   one slot.

Data then moves slot-synchronously: one global TDM frame steps over the K
slots (skipping slots with no ready circuit), and an established circuit
drains up to ``slot_bytes`` per frame, delivered after the multi-hop pipe
fill :meth:`~repro.topo.Topology.path_latency_ps`.

Fault recovery composes the per-hop trunk state with the existing NIC
retry→remap→degrade ladder (:mod:`repro.networks.lifecycle`): a transient
trunk outage blocks the data plane (the circuit holds its slots and
resumes), a dead trunk tears every circuit riding it back to the request
plane where it re-routes around the corpse; the watchdog ladder escalates
through wavefront retries to coordinator placement to an explicit drop.

The slot-synchronous fast path (:mod:`repro.sim.fastpath`) is
single-switch machinery; ``fast=True`` is accepted for RunSpec symmetry
and **always falls back to the event path**, visibly, via the
``fastpath_fallback`` counter — results are byte-identical either way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, SchedulingError
from ..faults.injector import FaultInjector
from ..params import SystemParams
from ..sched.priority import RoundRobinPriority
from ..sched.scheduler import Scheduler
from ..sim.engine import Priority
from ..sim.fastpath import fast_from_env, fastpath_ineligible
from ..sim.trace import Tracer
from ..topo import Topology
from ..traffic.base import TrafficPhase
from ..types import Connection, Message, MessageRecord
from .base import BaseNetwork

__all__ = ["MultiSwitchTdmNetwork", "NAK_LIMIT"]

#: failed wavefront attempts before the hierarchical coordinator takes over
NAK_LIMIT = 3

#: trunk-fault plan entry kinds
_TRUNK_KINDS = ("down", "dead")

#: one home-crossbar cell: (switch, in_port, out_port)
_Cell = tuple[int, int, int]


@dataclass(slots=True)
class _Circuit:
    """One end-to-end circuit: route, claimed hops, slot, and wavefront state."""

    u: int
    v: int
    #: switch indices the route traverses (length 1: intra-switch)
    switches: tuple[int, ...]
    #: chosen trunk link per inter-switch hop (None until the wavefront
    #: reaches that hop; index j joins switches[j] and switches[j+1])
    links: list[int | None]
    #: home crossbar cell (fixed at request time by the first-hop link)
    home: _Cell
    #: claimed (switch, in_port, out_port) cells, in hop order
    hops: list[_Cell] = field(default_factory=list)
    slot: int | None = None
    established: bool = False
    #: earliest time the NIC may use the circuit (grant arrival)
    ready_ps: int = 0
    #: when the request became visible at the home switch
    req_seen_ps: int = 0
    naks: int = 0
    #: wavefront pacing: one hop claim per SL clock period
    last_claim_ps: int = -1


class MultiSwitchTdmNetwork(BaseNetwork):
    """End-to-end multi-hop TDM circuits over per-switch SL arrays."""

    def __init__(
        self,
        params: SystemParams,
        topology: Topology,
        k: int = 4,
        tracer: Tracer | None = None,
        *,
        scheme_label: str = "multi-tdm",
        trunk_faults: tuple[tuple[int, int, str, int], ...] = (),
        faults: FaultInjector | None = None,
        fast: bool | None = None,
        strict: bool | None = None,
        max_wall_s: float | None = None,
    ) -> None:
        super().__init__(
            params,
            tracer,
            faults=faults,
            strict=strict,
            max_wall_s=max_wall_s,
            topology=topology,
        )
        if k < 1:
            raise ConfigurationError("multiplexing degree must be >= 1")
        for port_count in topology.switch_ports:
            if port_count < 2:
                raise ConfigurationError(
                    f"every switch needs >= 2 ports for an SL array; "
                    f"topology {topology.name!r} has a {port_count}-port switch"
                )
        self.k = k
        self.scheme = scheme_label
        #: seeded per-hop fault campaign: (time_ps, link, kind, duration_ps)
        #: entries taking trunk links down ("down", transient) or out
        #: ("dead", permanent); requires a FaultInjector for the recovery
        #: ladder's retry policy and accounting
        self._trunk_plan = tuple(sorted(trunk_faults))
        for entry in self._trunk_plan:
            time_ps, link, kind, duration_ps = entry
            if kind not in _TRUNK_KINDS:
                raise ConfigurationError(
                    f"trunk fault kind must be one of {_TRUNK_KINDS}: {entry}"
                )
            if not 0 <= link < topology.n_links:
                raise ConfigurationError(f"trunk fault names unknown link: {entry}")
            if time_ps < 0 or (kind == "down" and duration_ps <= 0):
                raise ConfigurationError(f"trunk fault times must be sane: {entry}")
        if self._trunk_plan and faults is None:
            raise ConfigurationError(
                "a trunk-fault plan needs a FaultInjector (its retry policy "
                "drives the recovery ladder); pass faults=FaultInjector([], ...)"
            )
        #: accepted for RunSpec symmetry; the slot-synchronous fast path is
        #: single-switch machinery, so multi-switch runs always take the
        #: event path (counted in ``fastpath_fallback``, never silent)
        self.fast = fast_from_env() if fast is None else bool(fast)
        # per-run state, created in _reset_scheme_state()
        self.schedulers: list[Scheduler] = []
        self._hold_count: list[np.ndarray] = []
        self._circuits: dict[Connection, _Circuit] = {}
        self._cell_fifo: dict[_Cell, deque[Connection]] = {}
        self._claim_queue: list[Connection] = []
        self._coord_queue: list[Connection] = []
        self._trunk_cursor: dict[tuple[int, int], int] = {}
        self._slot_cursor = 0
        self._clocks_started = False
        self._est_sum_ps = 0
        self._est_max_ps = 0
        self._est_count = 0
        self._naks = 0
        self._coordinated = 0
        self._circuits_established = 0
        self._teardowns = 0
        self._slot_transfers = 0
        self._slot_opportunities = 0
        self._slot_idle_ticks = 0
        self._spurious_grants = 0

    # -- run setup --------------------------------------------------------------------

    def _reset_scheme_state(self) -> None:
        topo = self.topology
        self.schedulers = []
        for ports in topo.switch_ports:
            sched = Scheduler(
                self.params.with_overrides(n_ports=ports),
                k=self.k,
                rotation=RoundRobinPriority(ports),
            )
            sched.tracer = self.tracer
            sched.clock = lambda: self.sim.now
            self.schedulers.append(sched)
        # Reference counts behind each scheduler's ``latched`` mask.  Two
        # circuits may legitimately hold the same (in, out) cell in different
        # slots (B* counts realisations), so the boolean latch must only drop
        # once the last holder releases.
        self._hold_count = [
            np.zeros((ports, ports), dtype=np.int32) for ports in topo.switch_ports
        ]
        self._circuits = {}
        self._cell_fifo = {}
        self._claim_queue = []
        self._coord_queue = []
        self._trunk_cursor = {}
        self._slot_cursor = 0
        self._clocks_started = False
        self._est_sum_ps = 0
        self._est_max_ps = 0
        self._est_count = 0
        self._naks = 0
        self._coordinated = 0
        self._circuits_established = 0
        self._teardowns = 0
        self._slot_transfers = 0
        self._slot_opportunities = 0
        self._slot_idle_ticks = 0
        self._spurious_grants = 0
        # per-switch schedulers: the single-scheduler fault hooks decline,
        # but the watchdog ladder and link state run through the manager
        self.lifecycle.attach_scheduler(None, client=self)
        if self._trunk_plan:
            # the per-hop campaign makes this a faulted run even when the
            # endpoint-fault schedule is empty: drops/recovery accounting on
            self._faults_active = True
            for time_ps, link, kind, duration_ps in self._trunk_plan:
                if kind == "down":
                    self.sim.schedule_at(
                        time_ps,
                        self._trunk_down_fire,
                        link,
                        duration_ps,
                        priority=Priority.FABRIC,
                    )
                else:
                    self.sim.schedule_at(
                        time_ps, self._trunk_dead_fire, link, priority=Priority.FABRIC
                    )

    # -- phase execution --------------------------------------------------------------

    def _execute_phase(self, phase: TrafficPhase) -> None:
        if not self._clocks_started:
            self._clocks_started = True
            self.sim.schedule(
                self.params.slot_ps, self._slot_tick, priority=Priority.FABRIC
            )
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )
        self._run_event_loop()
        if self._phase_remaining != 0:  # pragma: no cover - debugging aid
            raise SchedulingError(
                f"multi-switch TDM run stalled with {self._phase_remaining} "
                f"messages pending at sim time {self.sim.now} ps "
                f"({self.sim.pending} events still queued)"
            )

    def _accept(self, msg: Message, at_phase_start: bool) -> None:
        """Queue the message; its request reaches the home switch one
        request-wire delay later."""
        super()._accept(msg, at_phase_start)
        self.sim.schedule(
            self.params.request_wire_ps,
            self._request_rise,
            msg.src,
            msg.dst,
            priority=Priority.WIRE,
        )

    def _deliver(self, record: MessageRecord) -> None:
        super()._deliver(record)
        if self.phase_done:
            self.sim.stop()

    # -- the request plane ------------------------------------------------------------

    def _request_rise(self, u: int, v: int) -> None:
        """A request edge arrives at endpoint ``u``'s home switch."""
        if self.nics[u].voqs.bytes_pending[v] <= 0:
            return  # drained (or dropped) before the wire settled
        circ = self._circuits.get((u, v))
        if circ is not None:
            if self._faults_active and not circ.established:
                self.lifecycle.arm(u, v)
            return  # the circuit is already requested, claimed, or cached
        self._open_circuit(u, v)

    def _open_circuit(self, u: int, v: int) -> _Circuit | None:
        """Create the circuit: fix its route and home cell, queue it."""
        topo = self.topology
        mask = self._route_mask()
        switches = topo.route(u, v, mask)
        if switches is None:
            # the fabric is partitioned: nothing can ever carry (u, v)
            self._drop_pair(u, v, "no-route")
            return None
        in_port = topo.endpoint_port[u]
        n_hops = len(switches)
        links: list[int | None] = [None] * (n_hops - 1)
        if n_hops == 1:
            out_port = topo.endpoint_port[v]
        else:
            first = self._pick_trunk_link(switches[0], switches[1], rotate=True)
            if first is None:
                # every parallel link of the first trunk is dead; reroute
                # is impossible (route() already avoided dead trunks), so
                # this can only be a transient-vs-dead disagreement
                self._drop_pair(u, v, "no-route")
                return None
            links[0] = first
            out_port = topo.links[first].port_on(switches[0])
        home: _Cell = (switches[0], in_port, out_port)
        circ = _Circuit(
            u=u,
            v=v,
            switches=switches,
            links=links,
            home=home,
            req_seen_ps=self.sim.now,
        )
        self._circuits[(u, v)] = circ
        self._cell_fifo.setdefault(home, deque()).append((u, v))
        self.schedulers[home[0]].r_view[home[1], home[2]] = True
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now, "req-rise", src=u, dst=v, hops=n_hops
            )
        if self._faults_active:
            self.lifecycle.arm(u, v)
        return circ

    def _route_mask(self) -> np.ndarray | None:
        """Routing avoids dead trunks; transient outages keep their routes."""
        if self._faults_active and bool(self.lifecycle.trunk_dead.any()):
            return ~self.lifecycle.trunk_dead
        return None

    def _pick_trunk_link(self, a: int, b: int, *, rotate: bool) -> int | None:
        """Choose one healthy parallel link of trunk (a, b).

        Prefers links that are fully up; falls back to transiently-down
        links (the circuit waits out the outage) but never dead ones.
        ``rotate`` advances the per-trunk round-robin cursor so successive
        circuits spread over the parallel links deterministically.
        """
        ids = self.topology.trunk_links(a, b)
        if not ids:
            return None
        down = self.lifecycle.trunk_down
        dead = self.lifecycle.trunk_dead
        candidates = [l for l in ids if not down[l]]
        if not candidates:
            candidates = [l for l in ids if not dead[l]]
        if not candidates:
            return None
        key = (a, b) if a < b else (b, a)
        cursor = self._trunk_cursor.get(key, 0)
        choice = candidates[cursor % len(candidates)]
        if rotate:
            self._trunk_cursor[key] = cursor + 1
        return choice

    def _drop_pair(self, u: int, v: int, reason: str) -> None:
        """Drop everything queued on (u, v): the fabric cannot carry it."""
        for msg in self.nics[u].voqs.purge(v):
            self._drop_message(msg, reason)

    # -- the SL clock: per-switch passes + the inter-switch wavefront ------------------

    def _sl_tick(self) -> None:
        t = self.sim.now
        # 1) every switch runs its own SL pass; a pass that grants a home
        #    cell starts that circuit's wavefront in the granted slot
        for w, sched in enumerate(self.schedulers):
            p = sched.sl_pass()
            if p.outcome is None or p.slot is None:
                continue
            for tog in p.outcome.established:
                self._home_granted(w, tog.u, tog.v, p.slot, t)
        # 2) wavefronts advance one switch per SL clock period
        still: list[Connection] = []
        for key in self._claim_queue:
            circ = self._circuits.get(key)
            if circ is None or circ.established or not circ.hops:
                continue  # torn down or NAK-requeued meanwhile
            if circ.last_claim_ps >= t:
                still.append(key)  # granted this very tick; claim next tick
                continue
            advanced = self._claim_next_hop(circ, t)
            if advanced and not circ.established:
                still.append(key)
            # NAKed circuits went back to their home-cell queue
        self._claim_queue = still
        # 3) the hierarchical coordinator places repeatedly-NAKed circuits
        if self._coord_queue:
            remaining: list[Connection] = []
            for key in self._coord_queue:
                circ = self._circuits.get(key)
                if circ is None or circ.established:
                    continue
                if circ.hops:
                    remaining.append(key)  # a wavefront is mid-flight; wait
                    continue
                if not self._coordinated_establish(circ, t):
                    remaining.append(key)
            self._coord_queue = remaining
        if self._phase_remaining > 0 or self.sim.pending > 0:
            self.sim.schedule(
                self.params.scheduler_pass_ps, self._sl_tick, priority=Priority.SCHEDULER
            )

    def _latch(self, w: int, i: int, o: int) -> None:
        """Hold cell (i, o) on switch ``w`` against autonomous SL release.

        Reference-counted: distinct circuits may realise the same cell in
        different slots, so the latch only drops with the last holder.
        """
        self._hold_count[w][i, o] += 1
        self.schedulers[w].latched[i, o] = True

    def _unlatch(self, w: int, i: int, o: int) -> None:
        count = self._hold_count[w]
        if count[i, o] > 0:
            count[i, o] -= 1
        if count[i, o] == 0:
            self.schedulers[w].latched[i, o] = False

    def _home_granted(self, w: int, i: int, o: int, slot: int, t: int) -> None:
        """The home switch's SL array granted cell (i, o) in ``slot``."""
        fifo = self._cell_fifo.get((w, i, o))
        if not fifo:
            # nobody is waiting on the cell (e.g. torn down this tick);
            # release the grant so the slot is not silently leaked
            self.schedulers[w].registers.release(slot, i, o)
            self._spurious_grants += 1
            return
        key = fifo.popleft()
        circ = self._circuits[key]
        circ.slot = slot
        circ.hops = [(w, i, o)]
        circ.last_claim_ps = t
        # a claimed cell is latched: the owning switch's own SL passes must
        # not release it while the request line idles between bursts
        self._latch(w, i, o)
        if len(circ.switches) == 1:
            self._finish_establish(circ, t, via="sl")
        else:
            self._claim_queue.append(key)

    def _claim_next_hop(self, circ: _Circuit, t: int) -> bool:
        """Claim the next switch's cell in the circuit's slot (or NAK)."""
        j = len(circ.hops)
        w = circ.switches[j]
        sched = self.schedulers[w]
        assert circ.slot is not None
        cfg = sched.registers[circ.slot]
        in_link = circ.links[j - 1]
        assert in_link is not None
        in_port = self.topology.links[in_link].port_on(w)
        if cfg.input_busy()[in_port]:
            self._nak(circ)
            return False
        last = j == len(circ.switches) - 1
        if last:
            out_port = self.topology.endpoint_port[circ.v]
            if cfg.output_busy()[out_port]:
                self._nak(circ)
                return False
        else:
            out_port = -1
            output_busy = cfg.output_busy()
            chosen = None
            for link_id in self._hop_link_candidates(w, circ.switches[j + 1]):
                port = self.topology.links[link_id].port_on(w)
                if not output_busy[port]:
                    chosen = link_id
                    out_port = port
                    break
            if chosen is None:
                self._nak(circ)
                return False
            circ.links[j] = chosen
        sched.registers.establish(circ.slot, in_port, out_port)
        self._latch(w, in_port, out_port)
        circ.hops.append((w, in_port, out_port))
        circ.last_claim_ps = t
        if last:
            self._finish_establish(circ, t, via="wavefront")
        return True

    def _hop_link_candidates(self, a: int, b: int) -> list[int]:
        """Usable parallel links of trunk (a, b), up-links first."""
        down = self.lifecycle.trunk_down
        dead = self.lifecycle.trunk_dead
        ids = self.topology.trunk_links(a, b)
        up = [l for l in ids if not down[l]]
        waiting = [l for l in ids if down[l] and not dead[l]]
        return up + waiting

    def _nak(self, circ: _Circuit) -> None:
        """A busy port rejected the wavefront: release and requeue at home."""
        self._naks += 1
        circ.naks += 1
        self._release_hops(circ)
        key = (circ.u, circ.v)
        # head of the home queue again: the next home grant (a rotated
        # slot) retries it before younger circuits
        self._cell_fifo.setdefault(circ.home, deque()).appendleft(key)
        self.schedulers[circ.home[0]].r_view[circ.home[1], circ.home[2]] = True
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now, "circuit-nak", src=circ.u, dst=circ.v, naks=circ.naks
            )
        if circ.naks >= NAK_LIMIT and key not in self._coord_queue:
            self._coord_queue.append(key)

    def _coordinated_establish(self, circ: _Circuit, t: int) -> bool:
        """Management plane: find one slot free on every hop, claim it all.

        The two-level hierarchy's upper half — where the greedy per-switch
        wavefront livelocks, the coordinator has global sight of all K
        register files along the path and places the circuit atomically.
        """
        for slot in range(self.k):
            placement = self._try_place(circ, slot)
            if placement is None:
                continue
            hops, links = placement
            for w, i, o in hops:
                self.schedulers[w].registers.establish(slot, i, o)
                self._latch(w, i, o)
            circ.slot = slot
            circ.hops = list(hops)
            circ.links = links
            circ.last_claim_ps = t
            key = (circ.u, circ.v)
            fifo = self._cell_fifo.get(circ.home)
            if fifo and key in fifo:
                fifo.remove(key)
                if not fifo:
                    del self._cell_fifo[circ.home]
            if not self._cell_fifo.get(circ.home):
                self.schedulers[circ.home[0]].r_view[circ.home[1], circ.home[2]] = False
            self._coordinated += 1
            self._finish_establish(circ, t, via="coordinator")
            return True
        return False

    def _try_place(
        self, circ: _Circuit, slot: int
    ) -> tuple[list[_Cell], list[int | None]] | None:
        """Can the whole path fit in ``slot``?  Returns (hops, links) if so."""
        topo = self.topology
        switches = circ.switches
        hops: list[_Cell] = []
        links: list[int | None] = [None] * (len(switches) - 1)
        in_port = topo.endpoint_port[circ.u]
        for j, w in enumerate(switches):
            cfg = self.schedulers[w].registers[slot]
            if cfg.input_busy()[in_port]:
                return None
            if j == len(switches) - 1:
                out_port = topo.endpoint_port[circ.v]
                if cfg.output_busy()[out_port]:
                    return None
            else:
                output_busy = cfg.output_busy()
                chosen = None
                for link_id in self._hop_link_candidates(w, switches[j + 1]):
                    port = topo.links[link_id].port_on(w)
                    if not output_busy[port]:
                        chosen = link_id
                        break
                if chosen is None:
                    return None
                links[j] = chosen
                out_port = topo.links[chosen].port_on(w)
            hops.append((w, in_port, out_port))
            if j < len(switches) - 1:
                link = links[j]
                assert link is not None
                in_port = topo.links[link].port_on(switches[j + 1])
        return hops, links

    def _finish_establish(self, circ: _Circuit, t: int, via: str) -> None:
        """The last hop is claimed; the grant rides back to the NIC."""
        circ.established = True
        circ.ready_ps = t + self.params.scheduler_pass_ps + self.params.grant_wire_ps
        # establishment latency measured from the injection-side request
        # edge (one request wire before it reached the home switch)
        latency = circ.ready_ps - (circ.req_seen_ps - self.params.request_wire_ps)
        self._est_sum_ps += latency
        self._est_count += 1
        self._est_max_ps = max(self._est_max_ps, latency)
        self._circuits_established += 1
        if self.tracer.enabled:
            self.tracer.record(
                t,
                "conn-establish",
                src=circ.u,
                dst=circ.v,
                slot=circ.slot,
                hops=len(circ.switches),
                via=via,
            )

    # -- the TDM data plane: one global slot frame -------------------------------------

    def _slot_tick(self) -> None:
        t = self.sim.now
        slot = self._advance_slot()
        if slot is None:
            self._slot_idle_ticks += 1
        else:
            self._transfer_slot(slot, t)
        if self._phase_remaining > 0 or self.sim.pending > 0:
            self.sim.schedule(
                self.params.slot_ps, self._slot_tick, priority=Priority.FABRIC
            )

    def _advance_slot(self) -> int | None:
        """Step the shared TDM frame to the next slot with work (skip-idle).

        Hierarchical slot consistency means every switch sees the same
        frame position, so one network-level cursor advances them all.
        """
        work = set()
        for circ in self._circuits.values():
            if (
                circ.established
                and circ.slot is not None
                and self.nics[circ.u].voqs.bytes_pending[circ.v] > 0
            ):
                work.add(circ.slot)
                if len(work) == self.k:
                    break
        if not work:
            return None
        for off in range(self.k):
            slot = (self._slot_cursor + off) % self.k
            if slot in work:
                self._slot_cursor = (slot + 1) % self.k
                return slot
        return None  # pragma: no cover - work is non-empty

    def _transfer_slot(self, slot: int, t: int) -> None:
        """Every established circuit holding this slot moves one slot's bytes."""
        params = self.params
        slot_bytes = params.slot_bytes
        byte_ps = params.byte_ps
        faults_active = self._faults_active
        trace = self.tracer.enabled
        path_ps_cache: dict[int, int] = {}
        for (u, v), circ in list(self._circuits.items()):
            if circ.slot != slot or not circ.established:
                continue
            self._slot_opportunities += 1
            if circ.ready_ps > t:
                continue  # the NIC has not seen the grant yet
            if faults_active and self._circuit_blocked(circ):
                continue  # an endpoint link or trunk on the path is out
            nic = self.nics[u]
            if nic.voqs.bytes_pending[v] <= 0:
                continue
            moved, done = nic.voqs.drain(v, slot_bytes, t, byte_ps)
            if moved == 0:
                continue
            self._slot_transfers += 1
            if trace:
                self.tracer.record(t, "xfer", src=u, dst=v, bytes=moved, slot=slot)
            self.ledger.send(u, v, moved)
            if faults_active:
                assert self.fault_injector is not None
                self.fault_injector.note_progress(u, v)
            n_switches = len(circ.switches)
            fill = path_ps_cache.get(n_switches)
            if fill is None:
                fill = self.topology.path_latency_ps(params, n_switches)
                path_ps_cache[n_switches] = fill
            for dm in done:
                record = MessageRecord(
                    src=u,
                    dst=v,
                    size=dm.message.size,
                    inject_ps=dm.message.inject_ps,
                    start_ps=dm.start_ps,
                    done_ps=dm.finish_ps + fill,
                    seq=dm.message.seq,
                )
                self.sim.schedule_at(
                    record.done_ps, self._deliver, record, priority=Priority.NIC
                )
            if nic.voqs.bytes_pending[v] == 0:
                # the queue-empty edge reaches the home switch one request
                # wire later; the circuit is torn down unless refilled
                self.sim.schedule(
                    params.request_wire_ps,
                    self._request_drop,
                    u,
                    v,
                    priority=Priority.WIRE,
                )

    def _circuit_blocked(self, circ: _Circuit) -> bool:
        down = self.lifecycle.link_down
        if down[circ.u] or down[circ.v]:
            return True
        trunk_down = self.lifecycle.trunk_down
        return any(l is not None and trunk_down[l] for l in circ.links)

    def _request_drop(self, u: int, v: int) -> None:
        """The queue-empty edge arrived: release the circuit end to end."""
        if self.nics[u].voqs.bytes_pending[v] > 0:
            return  # refilled while the drop edge was on the wire
        circ = self._circuits.get((u, v))
        if circ is None:
            return
        self._teardown(circ)

    # -- teardown ---------------------------------------------------------------------

    def _release_hops(self, circ: _Circuit) -> None:
        """Release every claimed cell (wavefront abort or teardown)."""
        if circ.slot is not None:
            for w, i, o in circ.hops:
                self.schedulers[w].registers.release(circ.slot, i, o)
                self._unlatch(w, i, o)
        circ.hops = []
        circ.slot = None
        circ.established = False
        for j in range(1, len(circ.links)):
            circ.links[j] = None

    def _teardown(self, circ: _Circuit) -> None:
        """Remove the circuit entirely: cells, home queue, request line."""
        key = (circ.u, circ.v)
        self._release_hops(circ)
        self._circuits.pop(key, None)
        fifo = self._cell_fifo.get(circ.home)
        if fifo is not None:
            if key in fifo:
                fifo.remove(key)
            if not fifo:
                del self._cell_fifo[circ.home]
                fifo = None
        if fifo is None:
            # no other circuit waits on the home cell: the request drops
            self.schedulers[circ.home[0]].r_view[circ.home[1], circ.home[2]] = False
        self._teardowns += 1
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now, "conn-release", src=circ.u, dst=circ.v
            )

    # -- trunk fault plan -------------------------------------------------------------

    def _trunk_down_fire(self, link: int, duration_ps: int) -> None:
        assert self.fault_injector is not None
        if self.lifecycle.trunk_link_down(link, duration_ps):
            self.fault_injector.counters.inc("trunk_transients")
            self.sim.schedule(
                duration_ps, self._trunk_up_fire, link, priority=Priority.FABRIC
            )

    def _trunk_up_fire(self, link: int) -> None:
        self.lifecycle.trunk_link_up(link)

    def _trunk_dead_fire(self, link: int) -> None:
        assert self.fault_injector is not None
        if self.lifecycle.trunk_link_dead(link):
            self.fault_injector.counters.inc("trunk_dead")

    def _on_trunk_down(self, link: int) -> None:
        """Transient trunk outage: circuits hold their slots, data stalls."""
        inj = self.fault_injector
        assert inj is not None
        for (u, v), circ in self._circuits.items():
            if link in circ.links and self.nics[u].voqs.bytes_pending[v] > 0:
                inj.note_disrupted(u, v)
                self.lifecycle.arm(u, v)

    def _on_trunk_up(self, link: int) -> None:
        """Outage over: blocked circuits resume in their held slots."""

    def _on_trunk_dead(self, link: int) -> None:
        """A trunk died: tear its circuits back to the request plane.

        Each affected circuit re-routes around the corpse on its next
        request edge; the watchdog ladder escalates the ones that stall
        (wavefront retry → coordinator remap → explicit drop).
        """
        inj = self.fault_injector
        assert inj is not None
        victims = [
            circ for circ in self._circuits.values() if link in circ.links
        ]
        for circ in victims:
            u, v = circ.u, circ.v
            pending = int(self.nics[u].voqs.bytes_pending[v])
            self._teardown(circ)
            if pending > 0:
                inj.note_disrupted(u, v)
                self.lifecycle.arm(u, v)
                # re-raise the request immediately; the new route avoids
                # dead trunks (or the pair is dropped as unroutable)
                self.sim.schedule(
                    self.params.request_wire_ps,
                    self._request_rise,
                    u,
                    v,
                    priority=Priority.WIRE,
                )

    # -- endpoint link-state reactions --------------------------------------------------

    def _on_link_down(self, port: int) -> None:
        """A transient endpoint outage: open recovery windows."""
        inj = self.fault_injector
        assert inj is not None
        pending = self.nics[port].voqs.bytes_pending
        for v in np.nonzero(pending > 0)[0].tolist():
            inj.note_disrupted(port, v)
        for nic in self.nics:
            if nic.port != port and nic.voqs.bytes_pending[port] > 0:
                inj.note_disrupted(nic.port, port)

    def _on_link_dead(self, port: int) -> None:
        """An endpoint died for good: drop its traffic, free its circuits."""
        victims: list[Message] = []
        for nic in self.nics:
            removed = nic.voqs.purge() if nic.port == port else nic.voqs.purge(port)
            victims.extend(removed)
        for circ in [
            c for c in self._circuits.values() if port in (c.u, c.v)
        ]:
            self._teardown(circ)
        for m in victims:
            self._drop_message(m, "dead-link")
        self.lifecycle.disarm_port(port)

    # -- lifecycle policy callbacks (repro.networks.lifecycle) ---------------------------

    def lifecycle_watch_ref(self, u: int, v: int) -> tuple[Connection, int | None]:
        return (u, v), None

    def lifecycle_watch_resolved(self, u: int, v: int, seq: int | None) -> bool:
        if self.nics[u].voqs.bytes_pending[v] <= 0:
            return True  # drained (or dropped) — nothing to recover
        circ = self._circuits.get((u, v))
        return bool(
            circ is not None and circ.established and not self._circuit_blocked(circ)
        )

    def lifecycle_awaiting_grant(self, u: int, v: int) -> bool:
        if self.nics[u].voqs.bytes_pending[v] <= 0:
            return False
        circ = self._circuits.get((u, v))
        return circ is None or not circ.established

    def lifecycle_awaiting_sl_dead(self, u: int, v: int) -> bool:
        return self.lifecycle_awaiting_grant(u, v)

    def lifecycle_retry(self, u: int, v: int) -> None:
        self.sim.schedule(
            self.params.request_wire_ps,
            self._request_rise,
            u,
            v,
            priority=Priority.WIRE,
        )

    def lifecycle_mgmt_remap(self, u: int, v: int) -> bool:
        """Escalation: the coordinator places the circuit directly."""
        circ = self._circuits.get((u, v))
        if circ is None:
            circ = self._open_circuit(u, v)
            if circ is None:
                return False  # unroutable; _open_circuit dropped the pair
        if circ.established:
            # established but stalled behind an outage: nothing to remap
            # onto (routes only avoid dead trunks); keep waiting
            return not self._circuit_blocked(circ)
        self._release_hops(circ)
        if self._coordinated_establish(circ, self.sim.now):
            self.tracer.record(
                self.sim.now, "mgmt-remap", src=u, dst=v, slot=circ.slot
            )
            return True
        # keep it requestable: back on its home queue if it fell off
        key = (u, v)
        fifo = self._cell_fifo.setdefault(circ.home, deque())
        if key not in fifo:
            fifo.appendleft(key)
        self.schedulers[circ.home[0]].r_view[circ.home[1], circ.home[2]] = True
        return False

    def lifecycle_give_up(self, u: int, v: int) -> None:
        circ = self._circuits.get((u, v))
        if circ is not None:
            self._teardown(circ)
        for m in self.nics[u].voqs.purge(v):
            self._drop_message(m, "unrecoverable")

    def lifecycle_pinned_lost(self) -> None:  # pragma: no cover - no preload
        pass

    # -- accounting ---------------------------------------------------------------------

    def _collect_counters(self) -> dict[str, int]:
        out = super()._collect_counters()
        out["topo_switches"] = self.topology.n_switches
        out["topo_trunk_links"] = self.topology.n_links
        out["topo_diameter"] = self.topology.diameter()
        out["circuits_established"] = self._circuits_established
        out["circuits_coordinated"] = self._coordinated
        out["circuit_naks"] = self._naks
        out["circuit_teardowns"] = self._teardowns
        out["est_latency_sum_ps"] = self._est_sum_ps
        out["est_latency_max_ps"] = self._est_max_ps
        out["est_latency_count"] = self._est_count
        out["slot_transfers"] = self._slot_transfers
        out["slot_opportunities"] = self._slot_opportunities
        out["slot_idle_ticks"] = self._slot_idle_ticks
        out["spurious_grants"] = self._spurious_grants
        if self.fast and fastpath_ineligible(self) is not None:
            # the slot-synchronous fast path never engages for multi-switch
            # fabrics; the fallback is explicit, never a silent wrong path
            # (the reason string is fastpath_ineligible(self))
            out["fastpath_fallback"] = 1
        agg: dict[str, int] = {}
        for sched in self.schedulers:
            for key, value in sched.counters.as_dict().items():
                agg[key] = agg.get(key, 0) + value
        for key in sorted(agg):
            out[f"sl_{key}"] = agg[key]
        return out

    def _check_invariants(self) -> None:
        super()._check_invariants()
        for sched in self.schedulers:
            sched.registers.check_invariants()
        for (u, v), circ in self._circuits.items():
            if circ.established:
                assert circ.slot is not None
                for w, i, o in circ.hops:
                    cfg = self.schedulers[w].registers[circ.slot]
                    if (i, o) not in cfg:
                        raise SchedulingError(
                            f"circuit ({u} -> {v}) claims cell ({i}, {o}) of "
                            f"switch {w} slot {circ.slot}, but the register "
                            f"file disagrees"
                        )

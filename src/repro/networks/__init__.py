"""Network models: the TDM system and the paper's comparison baselines.

Construct schemes through the registry (:class:`RunSpec`,
:func:`build_network`, :func:`run_scheme`) rather than instantiating the
network classes directly; see ``docs/architecture.md``.
"""

from .base import BaseNetwork, PhaseResult, RunResult
from .circuit import CircuitNetwork
from .ideal import IdealNetwork, bottleneck_lower_bound_ps
from .islip import IslipNetwork
from .lifecycle import ConnectionManager, LifecycleClient
from .multihop import HopComparison, MultiHopModel
from .registry import (
    DEFAULT_INJECTION_WINDOW,
    DEFAULT_K,
    RunSpec,
    SchemeCapabilities,
    SchemeInfo,
    build_network,
    get_scheme,
    register_scheme,
    resolve_scheme_name,
    run_scheme,
    scheme_names,
)
from .tdm import TdmNetwork
from .wormhole import WormholeNetwork

__all__ = [
    "BaseNetwork",
    "PhaseResult",
    "RunResult",
    "CircuitNetwork",
    "IdealNetwork",
    "IslipNetwork",
    "bottleneck_lower_bound_ps",
    "ConnectionManager",
    "LifecycleClient",
    "HopComparison",
    "MultiHopModel",
    "TdmNetwork",
    "WormholeNetwork",
    "DEFAULT_INJECTION_WINDOW",
    "DEFAULT_K",
    "RunSpec",
    "SchemeCapabilities",
    "SchemeInfo",
    "build_network",
    "get_scheme",
    "register_scheme",
    "resolve_scheme_name",
    "run_scheme",
    "scheme_names",
]

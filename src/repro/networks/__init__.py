"""Network models: the TDM system and the paper's comparison baselines."""

from .base import BaseNetwork, PhaseResult, RunResult
from .circuit import CircuitNetwork
from .ideal import IdealNetwork, bottleneck_lower_bound_ps
from .multihop import HopComparison, MultiHopModel
from .tdm import TdmNetwork
from .wormhole import WormholeNetwork

__all__ = [
    "BaseNetwork",
    "PhaseResult",
    "RunResult",
    "CircuitNetwork",
    "IdealNetwork",
    "bottleneck_lower_bound_ps",
    "HopComparison",
    "MultiHopModel",
    "TdmNetwork",
    "WormholeNetwork",
]

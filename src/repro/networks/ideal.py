"""The contention-free ideal network.

Used as the efficiency denominator for Figures 4 and 5: the fastest any
switch could complete a phase is bounded below by its **bottleneck port** —
each NIC serialises its outgoing bytes onto one link and its incoming bytes
off one link, so a phase of traffic ``T`` needs at least

    LB(T) = max_port max(bytes_out(port), bytes_in(port)) * byte_time

:func:`bottleneck_lower_bound_ps` computes that bound;
:class:`IdealNetwork` is a degenerate network model that "runs" each phase
in exactly the bound (useful for sanity tests: every real scheme must be
at least as slow, so efficiencies stay in (0, 1]).
"""

from __future__ import annotations

import numpy as np

from ..params import SystemParams
from ..sim.trace import Tracer
from ..traffic.base import TrafficPhase
from ..types import MessageRecord
from .base import BaseNetwork

__all__ = ["bottleneck_lower_bound_ps", "IdealNetwork"]


def bottleneck_lower_bound_ps(phase: TrafficPhase, params: SystemParams) -> int:
    """The bottleneck-port serialisation bound for one phase, in ps."""
    n = params.n_ports
    out_bytes = np.zeros(n, dtype=np.int64)
    in_bytes = np.zeros(n, dtype=np.int64)
    for m in phase.messages:
        out_bytes[m.src] += m.size
        in_bytes[m.dst] += m.size
    bottleneck = int(max(out_bytes.max(), in_bytes.max()))
    return bottleneck * params.byte_ps


class IdealNetwork(BaseNetwork):
    """Delivers every phase in exactly its bottleneck lower bound."""

    scheme = "ideal"

    def __init__(self, params: SystemParams, tracer: Tracer | None = None) -> None:
        super().__init__(params, tracer)

    def _execute_phase(self, phase: TrafficPhase) -> None:
        bound = bottleneck_lower_bound_ps(phase, self.params)
        start = self.sim.now
        end = start + bound
        # spread per-source deliveries uniformly across the window so the
        # records carry sensible (if optimistic) latencies; messages
        # injected mid-phase start no earlier than their injection
        per_src_sent: dict[int, int] = {}
        for msg in phase.messages:
            offset = per_src_sent.get(msg.src, 0)
            per_src_sent[msg.src] = offset + msg.size
            start_ps = max(start + offset * self.params.byte_ps, msg.inject_ps)
            done_ps = start_ps + msg.size * self.params.byte_ps
            self.ledger.send(msg.src, msg.dst, msg.size)
            msg.remaining = 0
            record = MessageRecord(
                src=msg.src,
                dst=msg.dst,
                size=msg.size,
                inject_ps=msg.inject_ps,
                start_ps=start_ps,
                done_ps=done_ps,
                seq=msg.seq,
            )
            self.sim.schedule_at(record.done_ps, self._deliver, record)
        # the phase still lasts at least its bottleneck bound
        self.sim.schedule_at(end, lambda: None)
        self.sim.run()

"""Wormhole routing — the paper's second baseline.

Section 5's accounting on the single digital crossbar:

* messages are segmented into worms of at most 128 bytes (flits of 8
  bytes) *"in order to ensure fairness within the network"*;
* a worm's head flit takes NIC (10 ns) + parallel-to-serial (30 ns) +
  cable (20 ns) to reach the switch, where *"the delay through the switch
  includes the time required to schedule the first flit of the message,
  which is 80 ns"*; subsequent flits cross the switch in 10 ns;
* an output port carries one worm at a time; a head that finds its port
  busy waits (FCFS) and — this is wormhole's defining pathology —
  **backpressures its source link**, which cannot start the next worm
  until the blocked one drains;
* consecutive worms of one message pipeline through the switch's small
  buffer, so the cable delay is paid once per message, as the paper notes.

The model is event-driven at worm granularity: each worm contributes a
head-arrival, a grant, a port-release, and a delivery event, with exact
byte-time arithmetic in between — flit-level simulation would add events
but no additional contention behaviour on a single crossbar.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..params import SystemParams
from ..sim.engine import Priority
from ..sim.trace import Tracer
from ..traffic.base import TrafficPhase
from ..types import Message, MessageRecord
from .base import MAX_EVENTS_PER_PHASE, BaseNetwork

__all__ = ["WormholeNetwork"]


@dataclass(slots=True)
class _Worm:
    """One worm (message segment) in flight."""

    msg: Message
    size: int
    is_last: bool
    launch_ps: int = 0  # when its first flit left the NIC


@dataclass(slots=True)
class _OutputPort:
    """FCFS arbitration state of one crossbar output."""

    busy: bool = False
    waiting: deque = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.waiting is None:
            self.waiting = deque()


class WormholeNetwork(BaseNetwork):
    """Worm-granularity wormhole routing over one digital crossbar."""

    scheme = "wormhole"

    def __init__(self, params: SystemParams, tracer: Tracer | None = None) -> None:
        super().__init__(params, tracer)
        self._fifo: list[deque[Message]] = []
        self._nic_busy: list[bool] = []
        self._ports: list[_OutputPort] = []
        self._msg_start: dict[int, int] = {}  # id(message) -> first-flit time
        self.worms_sent = 0
        self.worm_blocks = 0

    def _reset_scheme_state(self) -> None:
        n = self.params.n_ports
        self._fifo = [deque() for _ in range(n)]
        self._nic_busy = [False] * n
        self._ports = [_OutputPort() for _ in range(n)]
        self._msg_start = {}
        self.worms_sent = 0
        self.worm_blocks = 0

    def _accept(self, msg, at_phase_start: bool) -> None:
        """Messages join the source NIC's sequential script on arrival."""
        self._fifo[msg.src].append(msg)
        if not at_phase_start and not self._nic_busy[msg.src]:
            self._launch_next(msg.src)

    def _execute_phase(self, phase: TrafficPhase) -> None:
        for u in range(self.params.n_ports):
            if not self._nic_busy[u] and self._fifo[u]:
                self._launch_next(u)
        self.sim.run(max_events=MAX_EVENTS_PER_PHASE)

    def _collect_counters(self) -> dict[str, int]:
        out = super()._collect_counters()
        out["worms_sent"] = self.worms_sent
        out["worm_blocks"] = self.worm_blocks
        return out

    # -- source side --------------------------------------------------------------

    def _launch_next(self, u: int) -> None:
        """Start serialising the next worm from NIC ``u``, if any."""
        fifo = self._fifo[u]
        if not fifo:
            self._nic_busy[u] = False
            return
        msg = fifo[0]
        worm_size = min(self.params.worm_max_bytes, msg.remaining)
        msg.remaining -= worm_size
        if id(msg) not in self._msg_start:
            self._msg_start[id(msg)] = self.sim.now
        is_last = msg.remaining == 0
        if is_last:
            fifo.popleft()
        worm = _Worm(msg=msg, size=worm_size, is_last=is_last, launch_ps=self.sim.now)
        self._nic_busy[u] = True
        self.worms_sent += 1
        # head flit reaches the switch input after NIC + SerDes + cable
        self.sim.schedule(
            self.params.wormhole_head_path_ps,
            self._head_arrived,
            worm,
            priority=Priority.TRANSFER,
        )

    # -- switch side ------------------------------------------------------------------

    def _head_arrived(self, worm: _Worm) -> None:
        port = self._ports[worm.msg.dst]
        if port.busy:
            self.worm_blocks += 1
            port.waiting.append(worm)
            self.tracer.record(
                self.sim.now, "worm-blocked", src=worm.msg.src, dst=worm.msg.dst
            )
        else:
            self._arbitrate(port, worm)

    def _arbitrate(self, port: _OutputPort, worm: _Worm) -> None:
        """The scheduler needs one 80 ns pass to route the head flit."""
        port.busy = True
        self.sim.schedule(
            self.params.scheduler_pass_ps,
            self._granted,
            worm,
            priority=Priority.SCHEDULER,
        )

    def _granted(self, worm: _Worm) -> None:
        params = self.params
        t = self.sim.now
        u, v = worm.msg.src, worm.msg.dst
        body_ps = worm.size * params.byte_ps
        # flits flow: the tail clears the switch output after the body time
        # plus the 10 ns digital switch traversal
        port_free_ps = t + body_ps + params.digital_switch_ps
        deliver_ps = port_free_ps + params.wormhole_exit_path_ps
        # the tail leaves the source once flits stream; if the grant came
        # later than uninterrupted serialisation would allow, the source was
        # backpressured and frees late
        src_free_ps = max(
            worm.launch_ps, t - params.wormhole_head_path_ps
        ) + body_ps
        self.ledger.send(u, v, worm.size)
        self.sim.schedule_at(
            port_free_ps, self._port_freed, v, priority=Priority.TRANSFER
        )
        self.sim.schedule_at(
            max(src_free_ps, t), self._source_freed, u, priority=Priority.NIC
        )
        if worm.is_last:
            record = MessageRecord(
                src=u,
                dst=v,
                size=worm.msg.size,
                inject_ps=worm.msg.inject_ps,
                start_ps=self._msg_start.pop(id(worm.msg)),
                done_ps=deliver_ps,
                seq=worm.msg.seq,
            )
            self.sim.schedule_at(
                deliver_ps, self._deliver, record, priority=Priority.NIC
            )
        self.tracer.record(t, "worm-granted", src=u, dst=v, bytes=worm.size)

    def _port_freed(self, v: int) -> None:
        port = self._ports[v]
        port.busy = False
        if port.waiting:
            self._arbitrate(port, port.waiting.popleft())

    def _source_freed(self, u: int) -> None:
        self._launch_next(u)

    def _deliver(self, record: MessageRecord) -> None:
        super()._deliver(record)
        if self.phase_done:
            self.sim.stop()

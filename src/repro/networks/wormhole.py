"""Wormhole routing — the paper's second baseline.

Section 5's accounting on the single digital crossbar:

* messages are segmented into worms of at most 128 bytes (flits of 8
  bytes) *"in order to ensure fairness within the network"*;
* a worm's head flit takes NIC (10 ns) + parallel-to-serial (30 ns) +
  cable (20 ns) to reach the switch, where *"the delay through the switch
  includes the time required to schedule the first flit of the message,
  which is 80 ns"*; subsequent flits cross the switch in 10 ns;
* an output port carries one worm at a time; a head that finds its port
  busy waits (FCFS) and — this is wormhole's defining pathology —
  **backpressures its source link**, which cannot start the next worm
  until the blocked one drains;
* consecutive worms of one message pipeline through the switch's small
  buffer, so the cable delay is paid once per message, as the paper notes.

The model is event-driven at worm granularity: each worm contributes a
head-arrival, a grant, a port-release, and a delivery event, with exact
byte-time arithmetic in between — flit-level simulation would add events
but no additional contention behaviour on a single crossbar.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..faults.injector import FaultInjector
from ..params import SystemParams
from ..sim.engine import Priority
from ..sim.trace import Tracer
from ..traffic.base import TrafficPhase
from ..types import Message, MessageRecord
from .base import BaseNetwork

__all__ = ["WormholeNetwork"]


@dataclass(slots=True)
class _Worm:
    """One worm (message segment) in flight."""

    msg: Message
    size: int
    is_last: bool
    launch_ps: int = 0  # when its first flit left the NIC


@dataclass(slots=True)
class _OutputPort:
    """FCFS arbitration state of one crossbar output."""

    busy: bool = False
    waiting: deque = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.waiting is None:
            self.waiting = deque()


class WormholeNetwork(BaseNetwork):
    """Worm-granularity wormhole routing over one digital crossbar."""

    scheme = "wormhole"

    def __init__(
        self,
        params: SystemParams,
        tracer: Tracer | None = None,
        faults: FaultInjector | None = None,
        strict: bool | None = None,
        max_wall_s: float | None = None,
    ) -> None:
        super().__init__(
            params, tracer, faults=faults, strict=strict, max_wall_s=max_wall_s
        )
        self._fifo: list[deque[Message]] = []
        self._nic_busy: list[bool] = []
        self._ports: list[_OutputPort] = []
        self._msg_start: dict[int, int] = {}  # id(message) -> first-flit time
        self._granted_bytes: dict[int, int] = {}  # id(message) -> bytes granted
        self._dropped_partial: list[Message] = []
        self._written_off: set[int] = set()
        self.worms_sent = 0
        self.worm_blocks = 0

    def _reset_scheme_state(self) -> None:
        n = self.params.n_ports
        self._fifo = [deque() for _ in range(n)]
        self._nic_busy = [False] * n
        self._ports = [_OutputPort() for _ in range(n)]
        self._msg_start = {}
        self._granted_bytes = {}
        self._dropped_partial = []
        self._written_off = set()
        self.worms_sent = 0
        self.worm_blocks = 0

    def _accept(self, msg, at_phase_start: bool) -> None:
        """Messages join the source NIC's sequential script on arrival."""
        self._fifo[msg.src].append(msg)
        if not at_phase_start and not self._nic_busy[msg.src]:
            self._launch_next(msg.src)

    def _execute_phase(self, phase: TrafficPhase) -> None:
        for u in range(self.params.n_ports):
            if not self._nic_busy[u] and self._fifo[u]:
                self._launch_next(u)
        self._run_event_loop()

    def _collect_counters(self) -> dict[str, int]:
        out = super()._collect_counters()
        out["worms_sent"] = self.worms_sent
        out["worm_blocks"] = self.worm_blocks
        return out

    # -- source side --------------------------------------------------------------

    def _launch_next(self, u: int) -> None:
        """Start serialising the next worm from NIC ``u``, if any."""
        fifo = self._fifo[u]
        if self._faults_active and self._link_down[u]:
            # the source's serial link is out: pause the serialiser; a
            # transient outage resumes it in _on_link_up, a dead link will
            # already have purged the queue
            self._nic_busy[u] = False
            return
        if not fifo:
            self._nic_busy[u] = False
            return
        msg = fifo[0]
        worm_size = min(self.params.worm_max_bytes, msg.remaining)
        msg.remaining -= worm_size
        if id(msg) not in self._msg_start:
            self._msg_start[id(msg)] = self.sim.now
        is_last = msg.remaining == 0
        if is_last:
            fifo.popleft()
        worm = _Worm(msg=msg, size=worm_size, is_last=is_last, launch_ps=self.sim.now)
        self._nic_busy[u] = True
        self.worms_sent += 1
        # head flit reaches the switch input after NIC + SerDes + cable
        self.sim.schedule(
            self.params.wormhole_head_path_ps,
            self._head_arrived,
            worm,
            priority=Priority.TRANSFER,
        )

    # -- switch side ------------------------------------------------------------------

    def _head_arrived(self, worm: _Worm) -> None:
        port = self._ports[worm.msg.dst]
        if (
            self._faults_active
            and not port.busy
            and self._link_down[worm.msg.dst]
            and not self._link_dead[worm.msg.dst]
        ):
            # transient output-link outage: worms queue at the switch until
            # the link returns (dead links instead drain what is in flight)
            self.worm_blocks += 1
            port.waiting.append(worm)
            self.tracer.record(
                self.sim.now, "worm-blocked", src=worm.msg.src, dst=worm.msg.dst
            )
            return
        if port.busy:
            self.worm_blocks += 1
            port.waiting.append(worm)
            self.tracer.record(
                self.sim.now, "worm-blocked", src=worm.msg.src, dst=worm.msg.dst
            )
        else:
            self._arbitrate(port, worm)

    def _arbitrate(self, port: _OutputPort, worm: _Worm) -> None:
        """The scheduler needs one 80 ns pass to route the head flit."""
        port.busy = True
        self.sim.schedule(
            self.params.scheduler_pass_ps,
            self._granted,
            worm,
            priority=Priority.SCHEDULER,
        )

    def _granted(self, worm: _Worm) -> None:
        params = self.params
        t = self.sim.now
        u, v = worm.msg.src, worm.msg.dst
        body_ps = worm.size * params.byte_ps
        # flits flow: the tail clears the switch output after the body time
        # plus the 10 ns digital switch traversal
        port_free_ps = t + body_ps + params.digital_switch_ps
        deliver_ps = port_free_ps + params.wormhole_exit_path_ps
        # the tail leaves the source once flits stream; if the grant came
        # later than uninterrupted serialisation would allow, the source was
        # backpressured and frees late
        src_free_ps = max(
            worm.launch_ps, t - params.wormhole_head_path_ps
        ) + body_ps
        if self._faults_active and id(worm.msg) in self._written_off:
            # the message was dropped mid-flight and this worm's bytes were
            # already settled at the phase boundary — do not post them twice
            pass
        else:
            self.ledger.send(u, v, worm.size)
            if self._faults_active:
                assert self.fault_injector is not None
                self.fault_injector.note_progress(u, v)
                if worm.is_last:
                    self._granted_bytes.pop(id(worm.msg), None)
                else:
                    self._granted_bytes[id(worm.msg)] = (
                        self._granted_bytes.get(id(worm.msg), 0) + worm.size
                    )
        self.sim.schedule_at(
            port_free_ps, self._port_freed, v, priority=Priority.TRANSFER
        )
        self.sim.schedule_at(
            max(src_free_ps, t), self._source_freed, u, priority=Priority.NIC
        )
        if worm.is_last:
            record = MessageRecord(
                src=u,
                dst=v,
                size=worm.msg.size,
                inject_ps=worm.msg.inject_ps,
                start_ps=self._msg_start.pop(id(worm.msg)),
                done_ps=deliver_ps,
                seq=worm.msg.seq,
            )
            self.sim.schedule_at(
                deliver_ps, self._deliver, record, priority=Priority.NIC
            )
        self.tracer.record(t, "worm-granted", src=u, dst=v, bytes=worm.size)

    def _port_freed(self, v: int) -> None:
        port = self._ports[v]
        port.busy = False
        if (
            self._faults_active
            and self._link_down[v]
            and not self._link_dead[v]
        ):
            return  # transient outage: waiting worms resume on link-up
        if port.waiting:
            self._arbitrate(port, port.waiting.popleft())

    def _source_freed(self, u: int) -> None:
        self._launch_next(u)

    def _deliver(self, record: MessageRecord) -> None:
        super()._deliver(record)
        if self.phase_done:
            self.sim.stop()

    def _drop_message(self, msg: Message, reason: str) -> None:
        super()._drop_message(msg, reason)
        if msg.remaining != msg.size:
            # launched worms may still be between events; their send
            # accounting settles at the phase boundary if they never grant
            self._dropped_partial.append(msg)

    def _fault_phase_reset(self) -> None:
        """Settle the dead letters before the ledger's phase-boundary audit.

        A dropped message's launched-but-ungranted worms can be stranded —
        queued at a transiently-down port whose link-up lies beyond the
        phase's end, or mid-flight when the final drop completed the phase.
        The drop already wrote those bytes off as lost; post the matching
        ``send`` here and mark the message so a leftover grant event firing
        in a later phase cannot post it twice.
        """
        super()._fault_phase_reset()
        for msg in self._dropped_partial:
            launched = msg.size - msg.remaining
            unposted = launched - self._granted_bytes.pop(id(msg), 0)
            if unposted > 0:
                self.ledger.send(msg.src, msg.dst, unposted)
            self._written_off.add(id(msg))
        self._dropped_partial.clear()

    # -- fault hooks (repro.faults) -----------------------------------------------
    #
    # Wormhole routing has no request plane, no configuration registers and
    # no SL array, so only link faults apply; the injector counts the
    # scheduler-plane faults as skipped via the BaseNetwork defaults.

    def _on_link_down(self, port: int) -> None:
        """Open recovery windows for the head-of-line traffic the cut stalls."""
        inj = self.fault_injector
        assert inj is not None
        if self._fifo[port]:
            inj.note_disrupted(port, self._fifo[port][0].dst)
        for u in range(self.params.n_ports):
            if u != port and self._fifo[u] and self._fifo[u][0].dst == port:
                inj.note_disrupted(u, port)

    def _on_link_up(self, port: int) -> None:
        """Resume the paused serialiser and the queued output worms."""
        if self._fifo[port] and not self._nic_busy[port]:
            self._launch_next(port)
        out = self._ports[port]
        if not out.busy and out.waiting:
            self._arbitrate(out, out.waiting.popleft())

    def _on_link_dead(self, port: int) -> None:
        """A port died for good: drop everything still queued through it.

        Worms already committed to the fabric drain and deliver (in-flight
        data completes after a cut); messages with untransmitted bytes are
        explicitly dropped — their already-launched worms are written off
        as lost in flight by the ledger.
        """
        n = self.params.n_ports
        victims: list[Message] = []
        for u in range(n):
            fifo = self._fifo[u]
            if u == port:
                victims.extend(fifo)
                fifo.clear()
            else:
                keep: deque[Message] = deque()
                for m in fifo:
                    (victims if m.dst == port else keep).append(m)
                self._fifo[u] = keep
        for m in victims:
            self._drop_message(m, "dead-link")
        # a transient outage may have paused this output port's queue; the
        # death supersedes it, and the in-flight worms must still drain
        out = self._ports[port]
        if not out.busy and out.waiting:
            self._arbitrate(out, out.waiting.popleft())

"""The single registry every switching-scheme construction resolves through.

The paper's contribution is a *comparison* of switching schemes over one
physical plant, and the codebase kept re-encoding that comparison as
hand-rolled ``lambda``-dicts and if/elif chains — one per experiment
module, CLI path, and benchmark.  This module replaces all of them:

* :func:`register_scheme` declares a scheme once — a name, a factory from
  :class:`RunSpec` to a network, aliases, and a
  :class:`SchemeCapabilities` record the CLI can print;
* :class:`RunSpec` is the one value object describing "which network to
  build": scheme name, :class:`~repro.params.SystemParams`, the TDM knobs
  (``k``, ``k_preload``, ``injection_window``), tracer, fault injector,
  strict mode, and an ``options`` escape hatch for scheme-specific
  keywords (predictor, rotation, prefetcher, ...);
* :func:`build_network` / :func:`run_scheme` are the only entry points
  experiments, the CLI, the compiled frontend, and the benchmarks use.

Adding a scheme (see ``docs/architecture.md``) is one
:func:`register_scheme` call; every consumer — ``repro schemes``, the
experiment sweeps, fault campaigns — picks it up without modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..params import SystemParams
from ..sim.trace import Tracer
from ..traffic.base import TrafficPhase
from ..topo import Topology, fat_tree, full_mesh
from .base import BaseNetwork, RunResult
from .circuit import CircuitNetwork
from .ideal import IdealNetwork
from .islip import IslipNetwork
from .multiswitch import MultiSwitchTdmNetwork
from .tdm import TdmNetwork
from .wormhole import WormholeNetwork

__all__ = [
    "DEFAULT_K",
    "DEFAULT_INJECTION_WINDOW",
    "SchemeCapabilities",
    "SchemeInfo",
    "RunSpec",
    "register_scheme",
    "get_scheme",
    "scheme_names",
    "resolve_scheme_name",
    "build_network",
    "run_scheme",
]

#: the paper's multiplexing degree (Figure 4 uses K = 4)
DEFAULT_K = 4

#: default per-NIC bound on outstanding non-blocking sends.  The paper's
#: processors are sequential command-file generators; a window equal to the
#: multiplexing degree (4) reproduces its narrated orderings (see DESIGN.md)
DEFAULT_INJECTION_WINDOW = 4


@dataclass(slots=True, frozen=True)
class SchemeCapabilities:
    """What a registered scheme supports (shown by ``repro schemes``)."""

    description: str
    #: TDM operating modes the scheme runs in (empty: not TDM-based)
    tdm_modes: tuple[str, ...] = ()
    #: watchdog/management-plane/give-up fault recovery (the lifecycle layer)
    fault_recovery: bool = False
    #: has request lines into a central scheduler
    request_plane: bool = False
    #: honours RunSpec.injection_window
    injection_window: bool = False
    #: can pin compiled (preloaded) configurations
    preload: bool = False
    #: spans multiple switches (a repro.topo switch graph, multi-hop circuits)
    multi_switch: bool = False


@dataclass(slots=True, frozen=True)
class RunSpec:
    """Everything needed to build (and run) one network instance.

    ``k``/``k_preload``/``injection_window`` only matter to schemes whose
    capabilities say so; other schemes ignore them.  ``options`` carries
    scheme-specific keyword arguments (``predictor=``, ``rotation=``,
    ``prefetcher=``, ``n_sl_units=``, ...) straight into the factory.
    """

    scheme: str
    params: SystemParams
    k: int = DEFAULT_K
    k_preload: int | None = None
    injection_window: int | None = DEFAULT_INJECTION_WINDOW
    tracer: Tracer | None = None
    faults: FaultInjector | None = None
    #: slot-synchronous fast execution for the TDM schemes (byte-identical
    #: to the event path; see repro.sim.fastpath).  None defers to the
    #: REPRO_FAST environment variable; non-TDM schemes ignore it.
    fast: bool | None = None
    strict: bool | None = None
    max_wall_s: float | None = None
    options: dict[str, Any] = field(default_factory=dict)


SchemeFactory = Callable[[RunSpec], BaseNetwork]


@dataclass(slots=True, frozen=True)
class SchemeInfo:
    """One registry entry."""

    name: str
    factory: SchemeFactory
    aliases: tuple[str, ...]
    capabilities: SchemeCapabilities


_REGISTRY: dict[str, SchemeInfo] = {}
_ALIAS_TO_NAME: dict[str, str] = {}


def register_scheme(
    name: str,
    factory: SchemeFactory,
    *,
    aliases: tuple[str, ...] = (),
    capabilities: SchemeCapabilities,
) -> SchemeInfo:
    """Register a switching scheme under ``name`` (plus ``aliases``)."""
    if name in _ALIAS_TO_NAME:
        raise ConfigurationError(
            f"scheme {name!r} is already registered "
            f"(canonical: {_ALIAS_TO_NAME[name]!r})"
        )
    info = SchemeInfo(
        name=name, factory=factory, aliases=tuple(aliases), capabilities=capabilities
    )
    for key in (name, *info.aliases):
        if key in _ALIAS_TO_NAME:
            raise ConfigurationError(
                f"scheme alias {key!r} is already registered "
                f"(canonical: {_ALIAS_TO_NAME[key]!r})"
            )
        _ALIAS_TO_NAME[key] = name
    _REGISTRY[name] = info
    return info


def scheme_names() -> tuple[str, ...]:
    """Canonical names of all registered schemes, in registration order."""
    return tuple(_REGISTRY)


def resolve_scheme_name(name: str) -> str:
    """Map a name or alias to the scheme's canonical name."""
    try:
        return _ALIAS_TO_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_ALIAS_TO_NAME))
        raise ConfigurationError(
            f"unknown scheme {name!r}; known schemes and aliases: {known}"
        ) from None


def get_scheme(name: str) -> SchemeInfo:
    """Look a scheme up by canonical name or alias."""
    return _REGISTRY[resolve_scheme_name(name)]


def build_network(spec: RunSpec) -> BaseNetwork:
    """Build the network a :class:`RunSpec` describes."""
    return get_scheme(spec.scheme).factory(spec)


def run_scheme(
    spec: RunSpec, phases: list[TrafficPhase], pattern_name: str = ""
) -> RunResult:
    """Build the network and run ``phases`` through it."""
    return build_network(spec).run(phases, pattern_name=pattern_name)


# -- the built-in schemes -------------------------------------------------------------


def _make_wormhole(spec: RunSpec) -> BaseNetwork:
    return WormholeNetwork(
        spec.params,
        tracer=spec.tracer,
        faults=spec.faults,
        strict=spec.strict,
        max_wall_s=spec.max_wall_s,
        **spec.options,
    )


def _make_circuit(spec: RunSpec) -> BaseNetwork:
    return CircuitNetwork(
        spec.params,
        tracer=spec.tracer,
        faults=spec.faults,
        fast=spec.fast,
        strict=spec.strict,
        max_wall_s=spec.max_wall_s,
        **spec.options,
    )


def _make_ideal(spec: RunSpec) -> BaseNetwork:
    if spec.faults is not None:
        raise ConfigurationError("the ideal network does not model faults")
    return IdealNetwork(spec.params, tracer=spec.tracer, **spec.options)


def _tdm_factory(mode: str) -> SchemeFactory:
    def make(spec: RunSpec) -> BaseNetwork:
        return TdmNetwork(
            spec.params,
            k=spec.k,
            mode=mode,
            k_preload=spec.k_preload,
            injection_window=spec.injection_window,
            tracer=spec.tracer,
            faults=spec.faults,
            fast=spec.fast,
            strict=spec.strict,
            max_wall_s=spec.max_wall_s,
            **spec.options,
        )

    return make


def _make_islip(spec: RunSpec) -> BaseNetwork:
    if spec.faults is not None:
        raise ConfigurationError(
            "the islip baseline does not model fault recovery"
        )
    return IslipNetwork(
        spec.params,
        tracer=spec.tracer,
        strict=spec.strict,
        max_wall_s=spec.max_wall_s,
        **spec.options,
    )


def _make_solstice_tdm(spec: RunSpec) -> BaseNetwork:
    """Pure-preload TDM whose program comes from the Solstice computer."""
    options = dict(spec.options)
    options.setdefault("schedule_computer", "solstice")
    return TdmNetwork(
        spec.params,
        k=spec.k,
        mode="preload",
        k_preload=spec.k_preload,
        injection_window=spec.injection_window,
        tracer=spec.tracer,
        faults=spec.faults,
        fast=spec.fast,
        strict=spec.strict,
        max_wall_s=spec.max_wall_s,
        **options,
    )


def _multiswitch_factory(
    label: str, build_topology: Callable[[RunSpec], Topology]
) -> SchemeFactory:
    """Composite schemes: a switch-graph topology + multi-hop TDM circuits.

    Topology knobs travel in ``spec.options`` as plain ints (so specs stay
    hashable/serialisable for the experiment cache); whatever remains in
    ``options`` goes to :class:`MultiSwitchTdmNetwork` unchanged
    (``trunk_faults=``, ...).
    """

    def make(spec: RunSpec) -> BaseNetwork:
        options = dict(spec.options)
        topology = build_topology(spec)
        return MultiSwitchTdmNetwork(
            spec.params,
            topology=topology,
            k=spec.k,
            tracer=spec.tracer,
            scheme_label=label,
            faults=spec.faults,
            fast=spec.fast,
            strict=spec.strict,
            max_wall_s=spec.max_wall_s,
            **{k: v for k, v in options.items() if k not in _TOPO_OPTION_KEYS},
        )

    return make


#: topology-construction knobs consumed by the composite factories; the
#: rest of ``options`` passes through to MultiSwitchTdmNetwork
_TOPO_OPTION_KEYS = frozenset({"n_switches", "links_per_pair", "leaf_size", "taper"})


def _mesh_topology(spec: RunSpec) -> Topology:
    return full_mesh(
        spec.params.n_ports,
        n_switches=int(spec.options.get("n_switches", 16)),
        links_per_pair=int(spec.options.get("links_per_pair", 4)),
    )


def _fattree_topology(spec: RunSpec) -> Topology:
    return fat_tree(
        spec.params.n_ports,
        leaf_size=int(spec.options.get("leaf_size", 16)),
        taper=int(spec.options.get("taper", 1)),
    )


register_scheme(
    "wormhole",
    _make_wormhole,
    capabilities=SchemeCapabilities(
        description="worm-granularity wormhole routing (paper baseline 2)",
        fault_recovery=False,  # link faults only: no request plane to retry on
    ),
)
register_scheme(
    "circuit",
    _make_circuit,
    capabilities=SchemeCapabilities(
        description="per-message circuit establishment, k=1 (paper baseline 1)",
        fault_recovery=True,
        request_plane=True,
    ),
)
register_scheme(
    "dynamic-tdm",
    _tdm_factory("dynamic"),
    aliases=("tdm-dynamic", "dynamic", "tdm"),
    capabilities=SchemeCapabilities(
        description="TDM with run-time (SL-scheduled) configurations",
        tdm_modes=("dynamic",),
        fault_recovery=True,
        request_plane=True,
        injection_window=True,
    ),
)
register_scheme(
    "preload",
    _tdm_factory("preload"),
    aliases=("tdm-preload",),
    capabilities=SchemeCapabilities(
        description="TDM with all k slots preloaded (compiled communication)",
        tdm_modes=("preload",),
        fault_recovery=True,
        request_plane=True,
        injection_window=True,
        preload=True,
    ),
)
register_scheme(
    "hybrid",
    _tdm_factory("hybrid"),
    aliases=("tdm-hybrid",),
    capabilities=SchemeCapabilities(
        description="TDM with k_preload pinned + (k - k_preload) dynamic slots",
        tdm_modes=("hybrid",),
        fault_recovery=True,
        request_plane=True,
        injection_window=True,
        preload=True,
    ),
)
register_scheme(
    "ideal",
    _make_ideal,
    capabilities=SchemeCapabilities(
        description="contention-free bottleneck bound (efficiency denominator)",
    ),
)
register_scheme(
    "islip",
    _make_islip,
    capabilities=SchemeCapabilities(
        description="iterative VOQ matching, per-slot (Tiny Tera baseline)",
        fault_recovery=False,  # reactive per-slot matching: nothing to recover
    ),
)
register_scheme(
    "solstice-tdm",
    _make_solstice_tdm,
    aliases=("solstice",),
    capabilities=SchemeCapabilities(
        description="preload TDM fed by Solstice-style demand-ranked schedules",
        tdm_modes=("preload",),
        fault_recovery=True,
        request_plane=True,
        injection_window=True,
        preload=True,
    ),
)
register_scheme(
    "mesh-tdm",
    _multiswitch_factory("mesh-tdm", _mesh_topology),
    aliases=("fm16-tdm",),
    capabilities=SchemeCapabilities(
        description="16-switch full mesh, multi-hop TDM circuits (FM16 scale-out)",
        tdm_modes=("dynamic",),
        fault_recovery=True,
        request_plane=True,
        multi_switch=True,
    ),
)
register_scheme(
    "fattree-tdm",
    _multiswitch_factory("fattree-tdm", _fattree_topology),
    aliases=("fat-tree-tdm",),
    capabilities=SchemeCapabilities(
        description="2-tier fat tree (leaves+spines), multi-hop TDM circuits",
        tdm_modes=("dynamic",),
        fault_recovery=True,
        request_plane=True,
        multi_switch=True,
    ),
)

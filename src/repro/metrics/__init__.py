"""Metrics: efficiency, latency digests, and report formatting."""

from .degradation import DegradationReport, degradation_report
from .efficiency import efficiency, efficiency_from_bound, run_lower_bound_ps
from .fairness import jain_index, latency_fairness, throughput_fairness
from .serialization import load_result, result_from_dict, result_to_dict, save_result
from .latencies import LatencySummary, summarize_latencies
from .report import format_csv, format_series, format_table

__all__ = [
    "DegradationReport",
    "degradation_report",
    "efficiency",
    "efficiency_from_bound",
    "run_lower_bound_ps",
    "jain_index",
    "latency_fairness",
    "throughput_fairness",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "LatencySummary",
    "summarize_latencies",
    "format_csv",
    "format_series",
    "format_table",
]

"""Run-result serialisation.

Experiments that take minutes should not need re-running to be
re-analysed.  :func:`save_result` writes a :class:`RunResult` (records,
counters, phase timings, the parameters that produced it) as JSON;
:func:`load_result` restores it.  Round-tripping is exact — integer
picosecond times survive untouched.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from ..networks.base import PhaseResult, RunResult
from ..params import SystemParams
from ..types import DropRecord, MessageRecord

__all__ = ["save_result", "load_result", "result_to_dict", "result_from_dict"]

_FORMAT_VERSION = 1


def result_to_dict(result: RunResult) -> dict:
    """A JSON-safe dictionary capturing the whole run result."""
    return {
        "format_version": _FORMAT_VERSION,
        "scheme": result.scheme,
        "pattern": result.pattern,
        "params": dataclasses.asdict(result.params),
        "makespan_ps": result.makespan_ps,
        "total_bytes": result.total_bytes,
        "counters": dict(result.counters),
        "phases": [dataclasses.asdict(p) for p in result.phases],
        "records": [dataclasses.asdict(r) for r in result.records],
        "drops": [dataclasses.asdict(d) for d in result.drops],
        "recovery_ps": list(result.recovery_ps),
    }


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    if data.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {data.get('format_version')!r}"
        )
    return RunResult(
        scheme=data["scheme"],
        pattern=data["pattern"],
        params=SystemParams(**data["params"]),
        makespan_ps=data["makespan_ps"],
        total_bytes=data["total_bytes"],
        counters=dict(data["counters"]),
        phases=[PhaseResult(**p) for p in data["phases"]],
        records=[MessageRecord(**r) for r in data["records"]],
        # fault fields arrived after format 1 shipped; old files omit them
        drops=[DropRecord(**d) for d in data.get("drops", [])],
        recovery_ps=list(data.get("recovery_ps", [])),
    )


def save_result(result: RunResult, path: str | Path) -> None:
    """Write a run result as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result)))


def load_result(path: str | Path) -> RunResult:
    """Read a run result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))

"""Fairness metrics.

Rotating the SL array's priority injection point exists to keep the
scheduler fair (end of Section 4); these helpers quantify it.  The main
tool is **Jain's fairness index** over per-source allocations

    J(x) = (sum x)^2 / (n * sum x^2),

which is 1.0 when every source gets the same share and 1/n when one
source gets everything.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..networks.base import RunResult

__all__ = ["jain_index", "throughput_fairness", "latency_fairness"]


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index of a non-negative allocation vector."""
    x = np.asarray(allocations, dtype=float)
    if x.size == 0:
        raise ConfigurationError("fairness of an empty allocation is undefined")
    if (x < 0).any():
        raise ConfigurationError("allocations must be non-negative")
    peak = x.max()
    if peak == 0:
        return 1.0  # everyone equally got nothing
    x = x / peak  # scale invariance also guards subnormal underflow
    total = x.sum()
    return float(total * total / (x.size * (x * x).sum()))


def throughput_fairness(result: RunResult) -> float:
    """Jain index of per-source delivered bytes (sources that sent)."""
    n = result.params.n_ports
    bytes_out = np.zeros(n, dtype=np.int64)
    for rec in result.records:
        bytes_out[rec.src] += rec.size
    active = bytes_out[bytes_out > 0]
    if active.size == 0:
        raise ConfigurationError("run delivered nothing")
    return jain_index(active)


def latency_fairness(result: RunResult) -> float:
    """Jain index of the *reciprocal* per-source mean latency.

    Reciprocals make "fast" the resource being shared, so a scheduler that
    starves some sources (huge latencies) scores low.
    """
    n = result.params.n_ports
    total = np.zeros(n, dtype=np.float64)
    count = np.zeros(n, dtype=np.int64)
    for rec in result.records:
        total[rec.src] += rec.latency_ps
        count[rec.src] += 1
    mask = count > 0
    if not mask.any():
        raise ConfigurationError("run delivered nothing")
    means = total[mask] / count[mask]
    return jain_index(1.0 / means)

"""Degradation metrics for fault-injection campaigns.

A fault campaign grades a scheme on how gracefully it sheds load, not on
raw speed: what fraction of the offered messages still arrived, how long
each disruption stalled traffic before the recovery machinery restored
progress, and what the surviving bandwidth was.  :func:`degradation_report`
digests one faulted :class:`~repro.networks.base.RunResult` into those
numbers and re-checks the campaign's two safety invariants — every
injected message is delivered exactly once or explicitly dropped
(``duplicated`` must always be zero), and the byte ledger balances.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..networks.base import RunResult
from ..sim.stats import Histogram

__all__ = ["DegradationReport", "degradation_report"]


@dataclass(slots=True, frozen=True)
class DegradationReport:
    """Digest of one run under fault injection."""

    scheme: str
    #: faults the injector actually applied (0 for a healthy run)
    faults_applied: int
    delivered: int
    dropped: int
    #: delivered / (delivered + dropped); 1.0 when nothing was offered
    delivered_fraction: float
    #: message records sharing a sequence number — must be zero
    duplicated: int
    #: delivered payload over the makespan, in bytes per nanosecond
    effective_bw_bytes_per_ns: float
    #: disruption-to-first-progress latencies, nanoseconds
    recoveries: int
    recovery_mean_ns: float
    recovery_p50_ns: float
    recovery_p99_ns: float
    recovery_max_ns: float

    def __str__(self) -> str:
        return (
            f"{self.scheme}: delivered {self.delivered_fraction:.3f} "
            f"({self.delivered}/{self.delivered + self.dropped}), "
            f"bw {self.effective_bw_bytes_per_ns:.3f} B/ns, "
            f"{self.recoveries} recoveries "
            f"(mean {self.recovery_mean_ns:.0f} ns, "
            f"p99 {self.recovery_p99_ns:.0f} ns)"
        )


def degradation_report(result: RunResult, bin_ns: float = 50.0) -> DegradationReport:
    """Digest a (possibly faulted) run into its degradation metrics.

    Works on healthy runs too: no drops, no recoveries, and the effective
    bandwidth equals the plain throughput.
    """
    seqs = Counter(r.seq for r in result.records)
    seqs.update(d.seq for d in result.drops)
    duplicated = sum(n - 1 for n in seqs.values() if n > 1)

    rec = Histogram(bin_width=bin_ns * 1000.0, n_bins=4096)
    for r_ps in result.recovery_ps:
        rec.add(float(r_ps))

    makespan = result.makespan_ps
    bw = result.delivered_bytes * 1000.0 / makespan if makespan else 0.0
    faults_applied = sum(
        n
        for key, n in result.counters.items()
        if key.startswith("fault_applied_")
    )
    return DegradationReport(
        scheme=result.scheme,
        faults_applied=faults_applied,
        delivered=len(result.records),
        dropped=len(result.drops),
        delivered_fraction=result.delivered_fraction,
        duplicated=duplicated,
        effective_bw_bytes_per_ns=bw,
        recoveries=rec.count,
        recovery_mean_ns=rec.mean / 1000.0 if rec.count else 0.0,
        recovery_p50_ns=rec.quantile(0.5) / 1000.0 if rec.count else 0.0,
        recovery_p99_ns=rec.quantile(0.99) / 1000.0 if rec.count else 0.0,
        recovery_max_ns=rec._stats.maximum / 1000.0 if rec.count else 0.0,
    )

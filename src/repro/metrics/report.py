"""Fixed-width table and CSV series printers for experiment output.

The benchmark harness prints each paper artifact as rows/series matching
what the paper reports: Table 3 as a latency-vs-N table, Figures 4 and 5 as
message-size (or determinism) series per scheme.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from io import StringIO

__all__ = ["format_table", "format_series", "format_csv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = StringIO()
    if title:
        out.write(title + "\n")
    sep = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)) + "\n")
    out.write(sep + "\n")
    for row in cells[1:]:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render one figure as a table with the x axis first.

    ``series`` maps a curve name (scheme) to its y values, aligned with
    ``x_values`` — exactly the data a plot of the figure would show.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            row.append(round(float(series[name][i]), precision))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_csv(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """The same data as machine-readable CSV."""
    out = StringIO()
    out.write(",".join([x_label, *series]) + "\n")
    for i, x in enumerate(x_values):
        row = [str(x)] + [f"{float(series[name][i]):.6f}" for name in series]
        out.write(",".join(row) + "\n")
    return out.getvalue()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)

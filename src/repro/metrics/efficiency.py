"""Bandwidth efficiency — the y-axis of Figures 4 and 5.

Efficiency of a run is the ratio of the contention-free lower bound to the
achieved makespan:

    efficiency = sum_phases LB(phase) / makespan

with ``LB`` the bottleneck-port bound of
:func:`repro.networks.ideal.bottleneck_lower_bound_ps`.  Phases are
barriered, so their bounds add.  The ratio lies in (0, 1] for any correct
simulation; 1.0 means the scheme kept the bottleneck link busy from the
first byte to the last.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..networks.base import RunResult
from ..networks.ideal import bottleneck_lower_bound_ps
from ..params import SystemParams
from ..traffic.base import TrafficPhase

__all__ = ["run_lower_bound_ps", "efficiency", "efficiency_from_bound"]


def run_lower_bound_ps(phases: list[TrafficPhase], params: SystemParams) -> int:
    """Sum of per-phase bottleneck bounds (phases are barriered)."""
    if not phases:
        raise ConfigurationError("no phases to bound")
    return sum(bottleneck_lower_bound_ps(p, params) for p in phases)


def efficiency_from_bound(bound_ps: int, makespan_ps: int) -> float:
    """The ratio LB / makespan, validated."""
    if makespan_ps <= 0:
        raise ConfigurationError("makespan must be positive")
    if bound_ps <= 0:
        raise ConfigurationError("lower bound must be positive")
    return bound_ps / makespan_ps


def efficiency(result: RunResult, phases: list[TrafficPhase]) -> float:
    """Bandwidth efficiency of a finished run against its own workload."""
    return efficiency_from_bound(
        run_lower_bound_ps(phases, result.params), result.makespan_ps
    )

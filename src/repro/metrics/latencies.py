"""Message latency statistics over run results."""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.base import RunResult
from ..sim.stats import Histogram, OnlineStats

__all__ = ["LatencySummary", "summarize_latencies"]


@dataclass(slots=True, frozen=True)
class LatencySummary:
    """Per-run latency digest, all values in nanoseconds."""

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float
    mean_service_ns: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_ns:.1f}ns p50={self.p50_ns:.1f}ns "
            f"p99={self.p99_ns:.1f}ns max={self.max_ns:.1f}ns"
        )


def summarize_latencies(result: RunResult, bin_ns: float = 50.0) -> LatencySummary:
    """Digest the delivery records of one run."""
    lat = Histogram(bin_width=bin_ns * 1000.0, n_bins=4096)
    service = OnlineStats()
    for r in result.records:
        lat.add(float(r.latency_ps))
        service.add(float(r.service_ps))
    if lat.count == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return LatencySummary(
        count=lat.count,
        mean_ns=lat.mean / 1000.0,
        p50_ns=lat.quantile(0.5) / 1000.0,
        p99_ns=lat.quantile(0.99) / 1000.0,
        max_ns=lat._stats.maximum / 1000.0,
        mean_service_ns=service.mean / 1000.0,
    )

"""Experiment R1: fault-injection campaigns across the switching schemes.

Sweeps the fault arrival rate against the paper's four schemes and
reports how each degrades: delivered-message fraction, effective
bandwidth, and recovery latency.  Three rules keep the comparison honest:

* every scheme at a given rate faces the **same storm** — one
  :class:`~repro.faults.FaultSchedule` is generated per (seed, rate) and
  shared across schemes, so a scheme's score reflects its recovery
  machinery, not luck of the fault draw;
* the workload is fully static (:class:`~repro.traffic.hybrid.HybridPattern`
  at determinism 1.0), the one regime all four schemes — including pure
  preload, which must degrade to dynamic scheduling when faults break its
  pinned program — can serve;
* the schedule horizon is sized from the slowest *healthy* makespan, so
  storms cover whole runs even as faults stretch them.

Schemes differ in their attack surface: wormhole has no request plane or
config registers, so register/SL faults count as *skipped* against it;
circuit switching multiplexes one slot, so a quarantine leaves it no spare
capacity.  The injector's applied/skipped counters make this explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Sequence

from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..metrics.degradation import DegradationReport, degradation_report
from ..metrics.report import format_csv, format_series
from ..networks.base import BaseNetwork
from ..params import PAPER_PARAMS, SystemParams
from ..sim.rng import RngStreams
from ..traffic.hybrid import HybridPattern
from .common import DEFAULT_SEED, figure4_schemes

__all__ = ["FAULT_RATES", "FaultPoint", "FaultsResult", "run_faults"]

#: fault arrival rates swept, in faults per microsecond of simulated time
FAULT_RATES: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)


@dataclass(slots=True, frozen=True)
class FaultPoint:
    """Outcome of one (scheme, fault-rate) campaign."""

    scheme: str
    rate_per_us: float
    report: DegradationReport
    makespan_ps: int
    counters: dict[str, int]


@dataclass
class FaultsResult:
    """Per-scheme degradation series, aligned with ``rates``."""

    rates: tuple[float, ...]
    delivered: dict[str, list[float]] = field(default_factory=dict)
    bandwidth: dict[str, list[float]] = field(default_factory=dict)
    recovery_p99_ns: dict[str, list[float]] = field(default_factory=dict)
    points: list[FaultPoint] = field(default_factory=list)

    def point(self, scheme: str, rate: float) -> FaultPoint:
        for p in self.points:
            if p.scheme == scheme and p.rate_per_us == rate:
                return p
        raise KeyError(f"no campaign for {scheme!r} at {rate}/us")

    def format(self) -> str:
        rates = list(self.rates)
        return "\n".join(
            [
                format_series(
                    "faults/us", rates, self.delivered,
                    title="Fault campaigns — delivered message fraction",
                ),
                format_series(
                    "faults/us", rates, self.bandwidth,
                    title="Fault campaigns — effective bandwidth (B/ns)",
                ),
                format_series(
                    "faults/us", rates, self.recovery_p99_ns,
                    title="Fault campaigns — p99 recovery latency (ns)",
                    precision=0,
                ),
            ]
        )

    def csv(self) -> str:
        columns = {
            f"{scheme}:{metric}": values[scheme]
            for metric, values in (
                ("delivered", self.delivered),
                ("bw", self.bandwidth),
            )
            for scheme in values
        }
        return format_csv("faults_per_us", list(self.rates), columns)


def _scheme_factories(
    params: SystemParams, k: int, injection_window: int | None
) -> dict[str, Callable[[FaultInjector | None], BaseNetwork]]:
    """Figure-4's four schemes, parameterised by an optional injector.

    Deliberately *the same* factories :func:`figure4_schemes` builds (both
    resolve through the scheme registry), so the fault campaigns measure
    exactly the networks Figure 4 measures — the TDM defaults cannot
    silently diverge between the two experiments.
    """
    def bind(make: Callable[..., BaseNetwork], inj: FaultInjector | None) -> BaseNetwork:
        return make(faults=inj)

    return {
        name: partial(bind, make)
        for name, make in figure4_schemes(
            params, k=k, injection_window=injection_window
        ).items()
    }


def run_faults(
    params: SystemParams = PAPER_PARAMS,
    rates: Sequence[float] = FAULT_RATES,
    schemes: Sequence[str] | None = None,
    size_bytes: int = 512,
    messages_per_node: int = 8,
    n_static: int = 2,
    k: int = 4,
    injection_window: int | None = 4,
    seed: int = DEFAULT_SEED,
    max_wall_s: float | None = 300.0,
) -> FaultsResult:
    """Run the fault-rate x scheme campaign grid.

    Deterministic end to end: the same (seed, rate, scheme) triple always
    reproduces bit-identical fault timelines, drops, and metrics.
    """
    factories = _scheme_factories(params, k, injection_window)
    if schemes is not None:
        unknown = set(schemes) - set(factories)
        if unknown:
            raise ValueError(f"unknown schemes {sorted(unknown)}")
        factories = {name: factories[name] for name in schemes}
    pattern = HybridPattern(
        params.n_ports,
        size_bytes,
        determinism=1.0,
        messages_per_node=messages_per_node,
        n_static=n_static,
    )

    # healthy baselines first: they are the rate-0 row and they size the
    # storm horizon (2x the slowest healthy makespan keeps even badly
    # stretched faulted runs under fire throughout)
    healthy = {
        name: make(None).run(pattern.phases(RngStreams(seed)), pattern_name=pattern.name)
        for name, make in factories.items()
    }
    horizon_ps = 2 * max(r.makespan_ps for r in healthy.values())

    result = FaultsResult(rates=tuple(rates))
    for name in factories:
        result.delivered[name] = []
        result.bandwidth[name] = []
        result.recovery_p99_ns[name] = []
    for rate in result.rates:
        schedule = FaultSchedule.generate(
            seed=seed,
            rate_per_us=rate,
            horizon_ps=horizon_ps,
            n_ports=params.n_ports,
            k=k,
        )
        for name, make in factories.items():
            if rate == 0.0:
                run = healthy[name]
            else:
                net = make(FaultInjector(schedule))
                net.max_wall_s = max_wall_s
                run = net.run(
                    pattern.phases(RngStreams(seed)), pattern_name=pattern.name
                )
            report = degradation_report(run)
            result.points.append(
                FaultPoint(
                    scheme=name,
                    rate_per_us=rate,
                    report=report,
                    makespan_ps=run.makespan_ps,
                    counters=run.counters,
                )
            )
            result.delivered[name].append(report.delivered_fraction)
            result.bandwidth[name].append(report.effective_bw_bytes_per_ns)
            result.recovery_p99_ns[name].append(report.recovery_p99_ns)
    return result

"""Experiment R1: fault-injection campaigns across the switching schemes.

Sweeps the fault arrival rate against the paper's four schemes and
reports how each degrades: delivered-message fraction, effective
bandwidth, and recovery latency.  Three rules keep the comparison honest:

* every scheme at a given rate faces the **same storm** — one
  :class:`~repro.faults.FaultSchedule` is generated per (seed, rate) and
  shared across schemes, so a scheme's score reflects its recovery
  machinery, not luck of the fault draw;
* the workload is fully static (:class:`~repro.traffic.hybrid.HybridPattern`
  at determinism 1.0), the one regime all four schemes — including pure
  preload, which must degrade to dynamic scheduling when faults break its
  pinned program — can serve;
* the schedule horizon is sized from the slowest *healthy* makespan, so
  storms cover whole runs even as faults stretch them.

Schemes differ in their attack surface: wormhole has no request plane or
config registers, so register/SL faults count as *skipped* against it;
circuit switching multiplexes one slot, so a quarantine leaves it no spare
capacity.  The injector's applied/skipped counters make this explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Sequence

from ..exec import ExecStats, map_cells
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..metrics.degradation import DegradationReport, degradation_report
from ..metrics.report import format_csv, format_series
from ..networks.base import BaseNetwork
from ..params import PAPER_PARAMS, SystemParams
from ..sim.rng import RngStreams
from ..traffic.hybrid import HybridPattern
from .common import DEFAULT_SEED, figure4_schemes

__all__ = [
    "FAULT_RATES",
    "FaultCell",
    "run_fault_cell",
    "FaultPoint",
    "FaultsResult",
    "run_faults",
]

#: fault arrival rates swept, in faults per microsecond of simulated time
FAULT_RATES: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0)


@dataclass(slots=True, frozen=True)
class FaultPoint:
    """Outcome of one (scheme, fault-rate) campaign."""

    scheme: str
    rate_per_us: float
    report: DegradationReport
    makespan_ps: int
    counters: dict[str, int]


@dataclass(slots=True, frozen=True)
class FaultCell:
    """One (scheme, rate) campaign as a run cell.

    ``rate_per_us == 0`` is the healthy baseline (no injector, unlimited
    wall clock); ``horizon_ps`` is 0 there because no storm is generated.
    For faulted cells the horizon rides in the cell — it is derived from
    the healthy makespans, so the cache key of a campaign automatically
    changes when the healthy behaviour does.
    """

    scheme: str
    rate_per_us: float
    horizon_ps: int
    params: SystemParams
    size_bytes: int
    messages_per_node: int
    n_static: int
    k: int
    injection_window: int | None
    seed: int
    max_wall_s: float | None


def run_fault_cell(cell: FaultCell) -> FaultPoint:
    """Run one fault campaign (or healthy baseline) cell."""
    factories = _scheme_factories(cell.params, cell.k, cell.injection_window)
    pattern = HybridPattern(
        cell.params.n_ports,
        cell.size_bytes,
        determinism=1.0,
        messages_per_node=cell.messages_per_node,
        n_static=cell.n_static,
    )
    if cell.rate_per_us == 0.0:
        net = factories[cell.scheme](None)
    else:
        schedule = FaultSchedule.generate(
            seed=cell.seed,
            rate_per_us=cell.rate_per_us,
            horizon_ps=cell.horizon_ps,
            n_ports=cell.params.n_ports,
            k=cell.k,
        )
        net = factories[cell.scheme](FaultInjector(schedule))
        net.max_wall_s = cell.max_wall_s
    run = net.run(pattern.phases(RngStreams(cell.seed)), pattern_name=pattern.name)
    report = degradation_report(run)
    return FaultPoint(
        scheme=cell.scheme,
        rate_per_us=cell.rate_per_us,
        report=report,
        makespan_ps=run.makespan_ps,
        counters=run.counters,
    )


@dataclass
class FaultsResult:
    """Per-scheme degradation series, aligned with ``rates``."""

    rates: tuple[float, ...]
    delivered: dict[str, list[float]] = field(default_factory=dict)
    bandwidth: dict[str, list[float]] = field(default_factory=dict)
    recovery_p99_ns: dict[str, list[float]] = field(default_factory=dict)
    points: list[FaultPoint] = field(default_factory=list)
    #: executor telemetry: the healthy-baseline and campaign stages
    healthy_exec_stats: ExecStats | None = None
    exec_stats: ExecStats | None = None

    def point(self, scheme: str, rate: float) -> FaultPoint:
        for p in self.points:
            if p.scheme == scheme and p.rate_per_us == rate:
                return p
        raise KeyError(f"no campaign for {scheme!r} at {rate}/us")

    def format(self) -> str:
        rates = list(self.rates)
        return "\n".join(
            [
                format_series(
                    "faults/us", rates, self.delivered,
                    title="Fault campaigns — delivered message fraction",
                ),
                format_series(
                    "faults/us", rates, self.bandwidth,
                    title="Fault campaigns — effective bandwidth (B/ns)",
                ),
                format_series(
                    "faults/us", rates, self.recovery_p99_ns,
                    title="Fault campaigns — p99 recovery latency (ns)",
                    precision=0,
                ),
            ]
        )

    def csv(self) -> str:
        columns = {
            f"{scheme}:{metric}": values[scheme]
            for metric, values in (
                ("delivered", self.delivered),
                ("bw", self.bandwidth),
            )
            for scheme in values
        }
        return format_csv("faults_per_us", list(self.rates), columns)


def _scheme_factories(
    params: SystemParams, k: int, injection_window: int | None
) -> dict[str, Callable[[FaultInjector | None], BaseNetwork]]:
    """Figure-4's four schemes, parameterised by an optional injector.

    Deliberately *the same* factories :func:`figure4_schemes` builds (both
    resolve through the scheme registry), so the fault campaigns measure
    exactly the networks Figure 4 measures — the TDM defaults cannot
    silently diverge between the two experiments.
    """
    def bind(make: Callable[..., BaseNetwork], inj: FaultInjector | None) -> BaseNetwork:
        return make(faults=inj)

    return {
        name: partial(bind, make)
        for name, make in figure4_schemes(
            params, k=k, injection_window=injection_window
        ).items()
    }


def run_faults(
    params: SystemParams = PAPER_PARAMS,
    rates: Sequence[float] = FAULT_RATES,
    schemes: Sequence[str] | None = None,
    size_bytes: int = 512,
    messages_per_node: int = 8,
    n_static: int = 2,
    k: int = 4,
    injection_window: int | None = 4,
    seed: int = DEFAULT_SEED,
    max_wall_s: float | None = 300.0,
    *,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
) -> FaultsResult:
    """Run the fault-rate x scheme campaign grid.

    Deterministic end to end: the same (seed, rate, scheme) triple always
    reproduces bit-identical fault timelines, drops, and metrics — for any
    job count.  Two fan-out stages: the healthy baselines run first (they
    are the rate-0 row *and* they size the storm horizon — 2x the slowest
    healthy makespan keeps even badly stretched faulted runs under fire
    throughout), then every (rate > 0, scheme) campaign runs.
    """
    factories = _scheme_factories(params, k, injection_window)
    if schemes is not None:
        unknown = set(schemes) - set(factories)
        if unknown:
            raise ValueError(f"unknown schemes {sorted(unknown)}")
        factories = {name: factories[name] for name in schemes}

    def cell(scheme: str, rate: float, horizon_ps: int) -> FaultCell:
        return FaultCell(
            scheme=scheme,
            rate_per_us=rate,
            horizon_ps=horizon_ps,
            params=params,
            size_bytes=size_bytes,
            messages_per_node=messages_per_node,
            n_static=n_static,
            k=k,
            injection_window=injection_window,
            seed=seed,
            max_wall_s=None if rate == 0.0 else max_wall_s,
        )

    exec_opts = dict(
        root_seed=seed, jobs=jobs, cache=cache, refresh=refresh, progress=progress
    )
    healthy_outcome = map_cells(
        run_fault_cell,
        [cell(name, 0.0, 0) for name in factories],
        label="faults-healthy",
        **exec_opts,
    )
    healthy = dict(zip(factories, healthy_outcome.payloads))
    horizon_ps = 2 * max(p.makespan_ps for p in healthy.values())

    campaign_rates = [rate for rate in rates if rate != 0.0]
    campaign_outcome = map_cells(
        run_fault_cell,
        [cell(name, rate, horizon_ps) for rate in campaign_rates for name in factories],
        label="faults",
        **exec_opts,
    )

    result = FaultsResult(
        rates=tuple(rates),
        healthy_exec_stats=healthy_outcome.stats,
        exec_stats=campaign_outcome.stats,
    )
    for name in factories:
        result.delivered[name] = []
        result.bandwidth[name] = []
        result.recovery_p99_ns[name] = []
    campaign_points = iter(campaign_outcome.payloads)
    for rate in result.rates:
        for name in factories:
            point = healthy[name] if rate == 0.0 else next(campaign_points)
            result.points.append(point)
            result.delivered[name].append(point.report.delivered_fraction)
            result.bandwidth[name].append(point.report.effective_bw_bytes_per_ns)
            result.recovery_p99_ns[name].append(point.report.recovery_p99_ns)
    return result

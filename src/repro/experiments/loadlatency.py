"""Extension experiment L1: load–latency curves.

Not a paper artifact — the standard switch characterisation from the
literature the paper builds on (its reference [1]): mean message latency
versus offered load under uniform Poisson traffic, for each switching
scheme.  The expected shapes:

* **wormhole** has the lowest zero-load latency (no slot alignment) but
  saturates at the per-worm arbitration cap (~0.67 of capacity for
  128-byte worms);
* **dynamic TDM** pays the slot-alignment and establishment overheads at
  zero load, but its cached connections push saturation higher;
* **circuit switching** pays the full 240 ns handshake per message and
  saturates earliest for small messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exec import ExecStats, map_cells
from ..metrics.latencies import summarize_latencies
from ..metrics.report import format_csv, format_series
from ..networks.base import BaseNetwork
from ..networks.registry import RunSpec, build_network
from ..params import PAPER_PARAMS, SystemParams
from ..sim.rng import RngStreams
from ..traffic.openloop import OpenLoopUniformPattern
from .common import DEFAULT_SEED

__all__ = [
    "LOADS",
    "LoadLatencyCell",
    "run_load_latency_cell",
    "LoadLatencyResult",
    "run_load_latency",
]

LOADS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(slots=True, frozen=True)
class LoadLatencyCell:
    """One load–latency cell: (scheme, offered load).

    ``seed`` is the sweep's root seed so all three schemes face the same
    Poisson arrival realisation at each load point.
    """

    scheme: str
    load: float
    params: SystemParams
    size_bytes: int
    duration_ns: float
    k: int
    seed: int


def run_load_latency_cell(cell: LoadLatencyCell) -> float:
    """Simulate one cell; the payload is the mean latency in ns."""
    pattern = OpenLoopUniformPattern(
        cell.params.n_ports,
        cell.size_bytes,
        load=cell.load,
        duration_ns=cell.duration_ns,
        byte_ps=cell.params.byte_ps,
    )
    # open-loop traffic needs unbounded injection (window=None): latency
    # under offered load is measured from injection, not send admission
    network: BaseNetwork = build_network(
        RunSpec(scheme=cell.scheme, params=cell.params, k=cell.k, injection_window=None)
    )
    phases = pattern.phases(RngStreams(cell.seed))
    run = network.run(phases, pattern_name=pattern.name)
    return summarize_latencies(run).mean_ns


@dataclass
class LoadLatencyResult:
    """Mean latency (ns) per scheme, aligned with ``loads``."""

    loads: tuple[float, ...]
    series: dict[str, list[float]] = field(default_factory=dict)
    #: executor telemetry for the sweep that produced this result
    exec_stats: ExecStats | None = None

    def latency(self, scheme: str, load: float) -> float:
        return self.series[scheme][self.loads.index(load)]

    def format(self) -> str:
        return format_series(
            "load",
            list(self.loads),
            self.series,
            title="Load vs mean latency (ns), uniform Poisson traffic",
            precision=1,
        )

    def csv(self) -> str:
        return format_csv("load", list(self.loads), self.series)


def run_load_latency(
    params: SystemParams = PAPER_PARAMS,
    loads: Sequence[float] = LOADS,
    size_bytes: int = 128,
    duration_ns: float = 20_000.0,
    k: int = 4,
    seed: int = DEFAULT_SEED,
    *,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
) -> LoadLatencyResult:
    """Sweep offered load for the three run-time schemes."""
    schemes = ("wormhole", "circuit", "dynamic-tdm")
    cells = [
        LoadLatencyCell(
            scheme=scheme,
            load=load,
            params=params,
            size_bytes=size_bytes,
            duration_ns=duration_ns,
            k=k,
            seed=seed,
        )
        for scheme in schemes
        for load in loads
    ]
    outcome = map_cells(
        run_load_latency_cell,
        cells,
        root_seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        label="load-latency",
        progress=progress,
    )
    result = LoadLatencyResult(loads=tuple(loads), exec_stats=outcome.stats)
    means = iter(outcome.payloads)
    for scheme in schemes:
        result.series[scheme] = [next(means) for _ in loads]
    return result

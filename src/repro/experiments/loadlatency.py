"""Extension experiment L1: load–latency curves.

Not a paper artifact — the standard switch characterisation from the
literature the paper builds on (its reference [1]): mean message latency
versus offered load under uniform Poisson traffic, for each switching
scheme.  The expected shapes:

* **wormhole** has the lowest zero-load latency (no slot alignment) but
  saturates at the per-worm arbitration cap (~0.67 of capacity for
  128-byte worms);
* **dynamic TDM** pays the slot-alignment and establishment overheads at
  zero load, but its cached connections push saturation higher;
* **circuit switching** pays the full 240 ns handshake per message and
  saturates earliest for small messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..metrics.latencies import summarize_latencies
from ..metrics.report import format_csv, format_series
from ..networks.base import BaseNetwork
from ..networks.registry import RunSpec, build_network
from ..params import PAPER_PARAMS, SystemParams
from ..sim.rng import RngStreams
from ..traffic.openloop import OpenLoopUniformPattern
from .common import DEFAULT_SEED

__all__ = ["LOADS", "LoadLatencyResult", "run_load_latency"]

LOADS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass
class LoadLatencyResult:
    """Mean latency (ns) per scheme, aligned with ``loads``."""

    loads: tuple[float, ...]
    series: dict[str, list[float]] = field(default_factory=dict)

    def latency(self, scheme: str, load: float) -> float:
        return self.series[scheme][self.loads.index(load)]

    def format(self) -> str:
        return format_series(
            "load",
            list(self.loads),
            self.series,
            title="Load vs mean latency (ns), uniform Poisson traffic",
            precision=1,
        )

    def csv(self) -> str:
        return format_csv("load", list(self.loads), self.series)


def run_load_latency(
    params: SystemParams = PAPER_PARAMS,
    loads: Sequence[float] = LOADS,
    size_bytes: int = 128,
    duration_ns: float = 20_000.0,
    k: int = 4,
    seed: int = DEFAULT_SEED,
) -> LoadLatencyResult:
    """Sweep offered load for the three run-time schemes."""
    # open-loop traffic needs unbounded injection (window=None): latency
    # under offered load is measured from injection, not send admission
    specs = {
        scheme: RunSpec(scheme=scheme, params=params, k=k, injection_window=None)
        for scheme in ("wormhole", "circuit", "dynamic-tdm")
    }
    result = LoadLatencyResult(loads=tuple(loads))
    for scheme, spec in specs.items():
        series: list[float] = []
        for load in loads:
            pattern = OpenLoopUniformPattern(
                params.n_ports,
                size_bytes,
                load=load,
                duration_ns=duration_ns,
                byte_ps=params.byte_ps,
            )
            network: BaseNetwork = build_network(spec)
            phases = pattern.phases(RngStreams(seed))
            run = network.run(phases, pattern_name=pattern.name)
            series.append(summarize_latencies(run).mean_ns)
        result.series[scheme] = series
    return result

"""Experiment S1: the scale-out sweep (multi-switch TDM fabrics).

The paper's single 128-port crossbar tops out at one switch; its Section-6
scale-out claim is that predictive multiplexed switching composes across a
switch graph.  This sweep pushes the two composite schemes (``mesh-tdm``,
``fattree-tdm``) to 256-1024 endpoints and records the quantities that
claim rides on:

* **scheduler latency** — mean/max end-to-end circuit establishment time,
  which the analytic :class:`~repro.networks.multihop.MultiHopModel` says
  grows by one SL pass per hop;
* **slot utilization** — what fraction of visited (circuit, slot) transfer
  opportunities moved bytes (the TDM frame's efficiency at scale);
* **fault recovery vs diameter** — the seeded per-hop trunk-fault
  campaign's recovery latencies, reported next to the topology diameter.

Every number in a row is derived from simulator state (picosecond clocks,
event counts) — no wall time — so the sweep is bit-identical across
invocations and across ``--jobs`` counts, and cacheable by cell content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..exec import ExecStats, map_cells
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..networks.base import RunResult
from ..networks.registry import RunSpec, build_network, get_scheme
from ..params import PAPER_PARAMS, SystemParams
from ..sim.fastpath import MULTI_SWITCH_FALLBACK
from ..sim.rng import RngStreams
from ..traffic.base import TrafficPhase
from ..types import Message
from .common import DEFAULT_SEED

__all__ = [
    "SCALEOUT_SCHEMES",
    "SCALEOUT_ENDPOINTS",
    "ScaleoutCell",
    "ScaleoutPoint",
    "scaleout_phases",
    "run_scaleout_cell",
    "ScaleoutResult",
    "run_scaleout",
]

#: the composite multi-switch schemes this sweep exists for
SCALEOUT_SCHEMES: tuple[str, ...] = ("mesh-tdm", "fattree-tdm")

#: the endpoint counts of the scale-out claim (16 .. 64 endpoints/switch)
SCALEOUT_ENDPOINTS: tuple[int, ...] = (256, 512, 1024)

#: per-hop fault campaign size for faulted cells (mostly transient downs
#: plus one permanent kill, spread over the injection window)
_N_TRUNK_FAULTS = 6


@dataclass(slots=True, frozen=True)
class ScaleoutCell:
    """One independent scale-out run: (scheme, endpoints, faulted).

    A plain value (:mod:`repro.exec.canonical`): the workload, topology
    and fault plan are all re-derived from these fields, so the execution
    engine can address the cell's payload by content.  ``seed`` is the
    sweep's root seed — both schemes face the byte-identical workload
    realisation for a given endpoint count (the comparison rule of
    :mod:`repro.experiments.common`).
    """

    scheme: str
    n_endpoints: int
    messages_per_endpoint: int
    size_bytes: int
    params: SystemParams
    k: int
    faulted: bool
    seed: int


@dataclass(slots=True, frozen=True)
class ScaleoutPoint:
    """Deterministic outcome of one scale-out cell."""

    scheme: str
    n_endpoints: int
    faulted: bool
    switches: int
    trunk_links: int
    diameter: int
    delivered: int
    dropped: int
    makespan_ps: int
    est_mean_ps: int
    est_max_ps: int
    naks: int
    coordinated: int
    slot_transfers: int
    slot_opportunities: int
    recoveries: int
    recovery_mean_ps: int
    recovery_max_ps: int
    events: int
    #: 1 when fast mode was requested but the cell ran the event path.
    #: Summary-only (``format``): the CSV must stay byte-identical between
    #: fast and non-fast invocations — that identity *is* the fallback's
    #: correctness contract, checked in CI.
    fastpath_fallbacks: int = 0

    @property
    def slot_utilization(self) -> float:
        """Fraction of visited transfer opportunities that moved bytes."""
        if self.slot_opportunities == 0:
            return 0.0
        return self.slot_transfers / self.slot_opportunities


def scaleout_phases(cell: ScaleoutCell) -> list[TrafficPhase]:
    """The cell's workload: a seed-derived spread of point-to-point sends.

    Injection times advance by a random 0-20 ns gap per message so request
    edges arrive staggered (a phase-start burst would only measure the
    coordinator).  The stream key deliberately omits the scheme: mesh and
    fat tree face identical traffic.
    """
    gen = RngStreams(cell.seed).get(f"scaleout-{cell.n_endpoints}")
    n = cell.n_endpoints
    msgs: list[Message] = []
    t = 0
    for _ in range(n * cell.messages_per_endpoint):
        u = int(gen.integers(0, n))
        v = int(gen.integers(0, n - 1))
        if v >= u:
            v += 1  # uniform over destinations != source, no rejection loop
        t += int(gen.integers(0, 20_000))
        msgs.append(Message(src=u, dst=v, size=cell.size_bytes, inject_ps=t))
    return [TrafficPhase("scaleout", msgs)]


def _trunk_fault_plan(
    cell: ScaleoutCell, n_links: int, horizon_ps: int
) -> tuple[tuple[int, int, str, int], ...]:
    """A seeded per-hop campaign: transient downs plus one permanent kill.

    Fault times are spread over the first 60 % of the injection window so
    recovery (retry -> remap -> degrade) happens while traffic still
    flows; the stream key omits the scheme so both fabrics face faults at
    the same instants (the links differ — the graphs do).
    """
    gen = RngStreams(cell.seed).get(f"scaleout-faults-{cell.n_endpoints}")
    plan: list[tuple[int, int, str, int]] = []
    for i in range(_N_TRUNK_FAULTS):
        time_ps = int(gen.integers(horizon_ps // 10, (horizon_ps * 6) // 10))
        link = int(gen.integers(0, n_links))
        if i == _N_TRUNK_FAULTS - 1:
            plan.append((time_ps, link, "dead", 0))
        else:
            duration = int(gen.integers(200_000, 800_000))
            plan.append((time_ps, link, "down", duration))
    return tuple(plan)


def run_scaleout_cell(cell: ScaleoutCell) -> ScaleoutPoint:
    """Simulate one scale-out cell (the engine's runner function)."""
    if not get_scheme(cell.scheme).capabilities.multi_switch:
        raise ConfigurationError(
            f"scaleout only sweeps multi-switch schemes, got {cell.scheme!r}"
        )
    params = cell.params.with_overrides(n_ports=cell.n_endpoints)
    phases = scaleout_phases(cell)
    options: dict[str, object] = {}
    faults: FaultInjector | None = None
    if cell.faulted:
        # the plan needs the topology's link count: build a probe instance
        # (construction is cheap; per-run state is made inside run())
        probe = build_network(RunSpec(scheme=cell.scheme, params=params, k=cell.k))
        horizon_ps = max(phase.messages[-1].inject_ps for phase in phases)
        options["trunk_faults"] = _trunk_fault_plan(
            cell, probe.topology.n_links, horizon_ps
        )
        faults = FaultInjector(FaultSchedule(events=()))
    network = build_network(
        RunSpec(
            scheme=cell.scheme,
            params=params,
            k=cell.k,
            faults=faults,
            options=options,
        )
    )
    result: RunResult = network.run(phases, pattern_name="scaleout")
    c = result.counters
    est_count = max(1, c.get("est_latency_count", 0))
    recoveries = list(result.recovery_ps)
    return ScaleoutPoint(
        scheme=cell.scheme,
        n_endpoints=cell.n_endpoints,
        faulted=cell.faulted,
        switches=c["topo_switches"],
        trunk_links=c["topo_trunk_links"],
        diameter=c["topo_diameter"],
        delivered=len(result.records),
        dropped=len(result.drops),
        makespan_ps=result.makespan_ps,
        est_mean_ps=c.get("est_latency_sum_ps", 0) // est_count,
        est_max_ps=c.get("est_latency_max_ps", 0),
        naks=c.get("circuit_naks", 0),
        coordinated=c.get("circuits_coordinated", 0),
        slot_transfers=c.get("slot_transfers", 0),
        slot_opportunities=c.get("slot_opportunities", 0),
        recoveries=len(recoveries),
        recovery_mean_ps=sum(recoveries) // max(1, len(recoveries)),
        recovery_max_ps=max(recoveries, default=0),
        events=c["events"],
        fastpath_fallbacks=c.get("fastpath_fallback", 0),
    )


_CSV_HEADER = (
    "scheme,endpoints,faulted,switches,trunk_links,diameter,delivered,"
    "dropped,makespan_ps,est_mean_ps,est_max_ps,naks,coordinated,"
    "slot_utilization,recoveries,recovery_mean_ps,recovery_max_ps,events"
)


@dataclass
class ScaleoutResult:
    """All points of one sweep, in cell (grid) order."""

    points: list[ScaleoutPoint] = field(default_factory=list)
    exec_stats: ExecStats | None = None

    def csv(self) -> str:
        rows = [_CSV_HEADER]
        for p in self.points:
            rows.append(
                f"{p.scheme},{p.n_endpoints},{int(p.faulted)},{p.switches},"
                f"{p.trunk_links},{p.diameter},{p.delivered},{p.dropped},"
                f"{p.makespan_ps},{p.est_mean_ps},{p.est_max_ps},{p.naks},"
                f"{p.coordinated},{p.slot_utilization:.6f},{p.recoveries},"
                f"{p.recovery_mean_ps},{p.recovery_max_ps},{p.events}"
            )
        return "\n".join(rows) + "\n"

    def format(self) -> str:
        out = [
            "Scale-out sweep — multi-hop TDM circuit fabrics",
            f"{'scheme':>12} {'n':>5} {'flt':>3} {'diam':>4} "
            f"{'est_mean_ns':>11} {'est_max_ns':>10} {'slot_util':>9} "
            f"{'recov_mean_ns':>13} {'dropped':>7}",
        ]
        for p in self.points:
            out.append(
                f"{p.scheme:>12} {p.n_endpoints:>5} {int(p.faulted):>3} "
                f"{p.diameter:>4} {p.est_mean_ps // 1000:>11} "
                f"{p.est_max_ps // 1000:>10} {p.slot_utilization:>9.3f} "
                f"{p.recovery_mean_ps // 1000:>13} {p.dropped:>7}"
            )
        fallbacks = sum(p.fastpath_fallbacks for p in self.points)
        if fallbacks:
            out.append(
                f"fast mode: {fallbacks}/{len(self.points)} cells fell back "
                f"to the event path ({MULTI_SWITCH_FALLBACK})"
            )
        return "\n".join(out)


def run_scaleout(
    params: SystemParams = PAPER_PARAMS,
    schemes: tuple[str, ...] = SCALEOUT_SCHEMES,
    endpoints: tuple[int, ...] = SCALEOUT_ENDPOINTS,
    messages_per_endpoint: int = 4,
    size_bytes: int = 256,
    k: int = 4,
    seed: int = DEFAULT_SEED,
    *,
    faults: bool = True,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
) -> ScaleoutResult:
    """Run the scale-out grid: schemes x endpoint counts x {healthy, faulted}.

    ``params.n_ports`` is overridden per cell by the endpoint count; the
    rest of the plant (slot time, wire delays, SL pass) is the paper's.
    Cells fan out over ``jobs`` workers; output is bit-identical for any
    job count.
    """
    cells = [
        ScaleoutCell(
            scheme=scheme,
            n_endpoints=n,
            messages_per_endpoint=messages_per_endpoint,
            size_bytes=size_bytes,
            params=params,
            k=k,
            faulted=faulted,
            seed=seed,
        )
        for scheme in schemes
        for n in endpoints
        for faulted in ((False, True) if faults else (False,))
    ]
    outcome = map_cells(
        run_scaleout_cell,
        cells,
        root_seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        label="scaleout",
        progress=progress,
    )
    return ScaleoutResult(points=list(outcome.payloads), exec_stats=outcome.stats)

"""Ablations for the design choices the paper proposes but does not sweep.

Each ablation corresponds to an extension or design knob from Sections 3
and 4 (DESIGN.md experiment ids A1–A6):

* **A1 — multiple SL units** (Section 4, ext. 1): scheduling-throughput
  limited workloads speed up with parallel SL-array copies.
* **A2 — multi-slot connections** (Section 4, ext. 2): a connection with a
  deep backlog gets additional TDM slots, multiplying its bandwidth.
* **A3 — eviction predictors** (Section 3.2): none vs time-out vs counter
  vs oracle on sequential mesh traffic, where connection reuse across
  rounds is what a predictor can save.
* **A4 — guard band** (Section 4): usable slot bytes shrink with the guard
  fraction; efficiency on a preloaded mesh degrades proportionally.
* **A5 — priority rotation** (Section 4): fixed priority starves
  high-index ports under contention; rotation equalises service.
* **A6 — idle-slot skipping**: the generalisation of the TDM counter's
  empty-configuration skipping to configurations with no pending requests.
* **A7 — multi-hop** (Section 6): lives in
  :mod:`repro.networks.multihop`; benched alongside these.
* **A8 — multiplexing degree** (Section 2): efficiency vs scheduler area
  as K grows around the working-set size.
* **A9 — Markov prefetching** (Section 3.2): proactive establishment on
  predictable vs random destination order.
* **A10 — fabric constraints** (Section 4): the same traffic under
  crossbar / Omega / tapered fat-tree rules.
* **A11 — cooperative control** (Section 6's future work): compiler
  preloads + predictor prefetching + dynamic scheduling, composed.
* **A12 — injection window**: sensitivity of the narrated orderings to
  this reproduction's main modelling judgment call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exec import ExecStats, map_cells
from ..networks.base import BaseNetwork
from ..networks.registry import RunSpec, build_network
from ..params import PAPER_PARAMS, SystemParams
from ..predict.base import Predictor
from ..predict.counter import CounterPredictor
from ..predict.timeout import TimeoutPredictor
from ..sched.priority import FixedPriority, RoundRobinPriority
from ..sim.clock import us
from ..sim.rng import RngStreams
from ..traffic.alltoall import AllToAllPattern
from ..traffic.base import TrafficPhase, assign_seq
from ..traffic.hybrid import HybridPattern
from ..traffic.mesh import OrderedMeshPattern
from ..types import Message
from .common import DEFAULT_SEED, measure

__all__ = [
    "ABLATIONS",
    "AblationCell",
    "run_ablation_cell",
    "run_ablations",
    "ablation_cooperative_control",
    "ablation_fabrics",
    "ablation_multiplexing_degree",
    "ablation_prefetching",
    "ablation_sl_units",
    "ablation_multislot",
    "ablation_predictors",
    "ablation_guard_band",
    "ablation_rotation_fairness",
    "ablation_idle_slot_skipping",
    "ablation_injection_window",
]


def _net(
    scheme: str,
    params: SystemParams,
    *,
    k: int = 4,
    k_preload: int | None = None,
    injection_window: int | None = None,
    **options,
) -> BaseNetwork:
    """Build one ablation network through the scheme registry.

    Ablations sweep scheme-specific knobs (predictors, SL units, fabric
    constraints, ...), which ride in ``RunSpec.options``.  The injection
    window defaults to None (unbounded) here — each ablation states its
    window explicitly because it is part of what is being measured.
    """
    return build_network(
        RunSpec(
            scheme=scheme,
            params=params,
            k=k,
            k_preload=k_preload,
            injection_window=injection_window,
            options=options,
        )
    )


def ablation_sl_units(
    params: SystemParams = PAPER_PARAMS,
    units: tuple[int, ...] = (1, 2, 4),
    size_bytes: int = 64,
    seed: int = DEFAULT_SEED,
) -> dict[int, float]:
    """A1: dynamic-TDM all-to-all efficiency vs number of SL units."""
    out: dict[int, float] = {}
    for n_units in units:
        net = _net(
            "dynamic-tdm", params, k=4, injection_window=4, n_sl_units=n_units
        )
        point = measure(AllToAllPattern(params.n_ports, size_bytes), net, seed=seed)
        out[n_units] = point.efficiency
    return out


@dataclass(slots=True, frozen=True)
class _ElephantPattern:
    """One node streams a large transfer against persistent background load.

    Nodes 2..N-1 exchange four shift permutations among themselves, keeping
    all K slots occupied; the elephant connection (0 -> 1) therefore gets
    1/K of the link without boosting and 2/K with ``max_slots=2`` boosting.
    """

    n_ports: int
    size_bytes: int
    background_bytes: int
    name: str = "elephant"

    def phases(self, rng: RngStreams) -> list[TrafficPhase]:
        msgs = [Message(src=0, dst=1, size=self.size_bytes)]
        others = self.n_ports - 2  # nodes 2 .. N-1
        for shift in range(1, 5):
            for i in range(others):
                src = 2 + i
                dst = 2 + (i + shift) % others
                if dst != src:
                    msgs.append(Message(src=src, dst=dst, size=self.background_bytes))
        phases = [TrafficPhase("elephant", msgs)]
        assign_seq(phases)
        return phases


def ablation_multislot(
    params: SystemParams = PAPER_PARAMS,
    size_bytes: int = 65536,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """A2: elephant-flow completion with and without multi-slot boosting.

    Reports the delivery time of the elephant message under both policies;
    boosting should cut it by roughly half (two slots of K=4 instead of
    one).
    """
    background = size_bytes  # keep the background busy for the whole run

    def elephant_done(network: BaseNetwork) -> float:
        pattern = _ElephantPattern(params.n_ports, size_bytes, background)
        phases = pattern.phases(RngStreams(seed))
        result = network.run(phases, pattern_name=pattern.name)
        for r in result.records:
            if r.src == 0 and r.dst == 1:
                return r.done_ps / 1000.0
        raise AssertionError("elephant message was not delivered")

    base_ns = elephant_done(_net("dynamic-tdm", params, k=4))
    boosted_ns = elephant_done(
        _net("dynamic-tdm", params, k=4, multislot_threshold_bytes=1024)
    )
    return {
        "elephant_ns": base_ns,
        "boosted_elephant_ns": boosted_ns,
        "speedup": base_ns / boosted_ns,
    }


def ablation_predictors(
    params: SystemParams = PAPER_PARAMS,
    size_bytes: int = 64,
    rounds: int = 8,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """A3: eviction policy comparison on sequential ordered-mesh traffic.

    Injection window 1 makes queues drain between uses, so cached
    connections only survive if a predictor latches them.
    """
    def mk(pred: Predictor | None) -> BaseNetwork:
        return _net("dynamic-tdm", params, k=4, injection_window=1, predictor=pred)

    pattern = lambda: OrderedMeshPattern(params.n_ports, size_bytes, rounds=rounds)
    out: dict[str, float] = {}
    out["none"] = measure(pattern(), mk(None), seed=seed).efficiency
    out["timeout-2us"] = measure(
        pattern(), mk(TimeoutPredictor(us(2))), seed=seed
    ).efficiency
    out["counter-512"] = measure(
        pattern(), mk(CounterPredictor(512)), seed=seed
    ).efficiency
    return out


def ablation_guard_band(
    params: SystemParams = PAPER_PARAMS,
    fractions: tuple[float, ...] = (0.0, 0.05, 0.10),
    size_bytes: int = 2048,
    seed: int = DEFAULT_SEED,
) -> dict[float, float]:
    """A4: preloaded-mesh efficiency vs guard-band fraction.

    Large messages make the effect first-order (efficiency tracks usable
    slot bytes); small messages absorb the guard band in the ceil-to-slot
    quantisation, which is itself a finding worth noticing.
    """
    out: dict[float, float] = {}
    for frac in fractions:
        p = params.with_overrides(guard_band_frac=frac)
        net = _net("preload", p, k=4, injection_window=4)
        point = measure(
            OrderedMeshPattern(p.n_ports, size_bytes, rounds=4), net, seed=seed
        )
        out[frac] = point.efficiency
    return out


def ablation_rotation_fairness(
    params: SystemParams = PAPER_PARAMS,
    size_bytes: int = 64,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """A5: fixed vs rotating priority under all-to-all establishment churn.

    With every node competing to establish fresh connections each pass,
    the fixed-priority wavefront repeatedly favours the same region of the
    request matrix, producing poorer matchings over time; rotating the
    injection point diversifies the greedy order and lifts efficiency by
    ~20 %.  (Single-hotspot contention does *not* expose the policy: a
    release frees its ports for the cells after it in the same wavefront,
    which is naturally round-robin.)

    Returns overall efficiency and the coefficient of variation of
    per-source mean latency for both policies.
    """
    from ..metrics.efficiency import efficiency_from_bound, run_lower_bound_ps

    out: dict[str, float] = {}
    for label, rotation in (
        ("fixed", FixedPriority(params.n_ports)),
        ("round-robin", RoundRobinPriority(params.n_ports)),
    ):
        phases = AllToAllPattern(params.n_ports, size_bytes).phases(RngStreams(seed))
        bound = run_lower_bound_ps(phases, params)
        # deep queues (no injection window) expose the policy: the full
        # request matrix competes in every wavefront
        net = _net(
            "dynamic-tdm", params, k=4, injection_window=None, rotation=rotation
        )
        result = net.run(phases, pattern_name="all-to-all")
        total = np.zeros(params.n_ports, dtype=np.float64)
        count = np.zeros(params.n_ports, dtype=np.int64)
        for r in result.records:
            total[r.src] += r.latency_ps
            count[r.src] += 1
        means = total / np.maximum(count, 1)
        out[f"{label}_efficiency"] = efficiency_from_bound(bound, result.makespan_ps)
        out[f"{label}_latency_cov"] = float(means.std() / means.mean())
    return out


def ablation_idle_slot_skipping(
    params: SystemParams = PAPER_PARAMS,
    determinism: float = 0.6,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """A6: hybrid efficiency with and without idle-slot skipping."""
    out: dict[str, float] = {}
    for label, skip in (("skip", True), ("no-skip", False)):
        pattern = HybridPattern(
            params.n_ports, 64, determinism=determinism, messages_per_node=32
        )
        net = _net(
            "hybrid",
            params,
            k=3,
            k_preload=1,
            injection_window=4,
            skip_idle_slots=skip,
        )
        out[label] = measure(pattern, net, seed=seed).efficiency
    return out


def ablation_multiplexing_degree(
    params: SystemParams = PAPER_PARAMS,
    degrees: tuple[int, ...] = (1, 2, 4, 8, 16),
    size_bytes: int = 64,
    rounds: int = 4,
    seed: int = DEFAULT_SEED,
) -> dict[int, dict[str, float]]:
    """A8: Section 2's central trade-off — multiplexing degree K.

    Random-mesh traffic needs degree 4 to cache its working set; smaller K
    forces churn.  Beyond the working set, extra registers still help the
    greedy wavefront pack connections (and the skipping TDM counter makes
    idle slots free), so *efficiency* saturates rather than degrades — the
    real price of large K is scheduler area, which grows linearly in K
    (K * N^2 configuration bits).  The ablation reports both, which is the
    quantitative form of the paper's small-k argument.
    """
    from ..hw.synth import SchedulerAreaModel
    from ..traffic.mesh import RandomMeshPattern

    area = SchedulerAreaModel()
    out: dict[int, dict[str, float]] = {}
    for k in degrees:
        net = _net("dynamic-tdm", params, k=k, injection_window=4)
        point = measure(
            RandomMeshPattern(params.n_ports, size_bytes, rounds=rounds),
            net,
            seed=seed,
        )
        out[k] = {
            "efficiency": point.efficiency,
            "kilo_les": area.logic_elements(params.n_ports, k) / 1000.0,
        }
    return out


def ablation_prefetching(
    params: SystemParams = PAPER_PARAMS,
    size_bytes: int = 64,
    rounds: int = 8,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """A9: Markov next-connection prefetching on predictable vs random order.

    With sequential sends (window 1), each new destination normally pays
    the full request/schedule/grant handshake.  The Markov prefetcher
    latches the *predicted* next connection while the current message
    still flows, so on the perfectly periodic Ordered Mesh the
    establishment disappears after one warm-up round — while Random
    Mesh's unpredictable order gives the predictor nothing to learn.
    Returns efficiency with/without prefetching on both patterns, plus
    the predictor's accuracy.
    """
    from ..predict.markov import MarkovPrefetcher
    from ..traffic.mesh import RandomMeshPattern

    out: dict[str, float] = {}
    for label, pattern_factory in (
        ("ordered", lambda: OrderedMeshPattern(params.n_ports, size_bytes, rounds=rounds)),
        ("random", lambda: RandomMeshPattern(params.n_ports, size_bytes, rounds=rounds)),
    ):
        base = measure(
            pattern_factory(),
            _net("dynamic-tdm", params, k=4, injection_window=1),
            seed=seed,
        )
        prefetcher = MarkovPrefetcher(params.n_ports, hold_ps=us(2))
        pf = measure(
            pattern_factory(),
            _net(
                "dynamic-tdm",
                params,
                k=4,
                injection_window=1,
                prefetcher=prefetcher,
            ),
            seed=seed,
        )
        out[f"{label}_base"] = base.efficiency
        out[f"{label}_prefetch"] = pf.efficiency
        out[f"{label}_accuracy"] = prefetcher.accuracy()
    return out


def ablation_fabrics(
    params: SystemParams = PAPER_PARAMS,
    size_bytes: int = 64,
    rounds: int = 2,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """A10: the same TDM system over fabrics with different constraints.

    Section 4 generalises the configuration constraint beyond the
    crossbar; this ablation runs identical ordered-mesh traffic with the
    scheduler checking (a) crossbar constraints only, (b) Omega-network
    link-disjointness, and (c) a 4:1 tapered fat-tree's edge capacities.
    Restricted fabrics reject insertions (counted as fabric blocks), which
    lowers efficiency exactly where the topology is oversubscribed.
    """
    from ..fabric.fattree import FatTree
    from ..fabric.multistage import OmegaNetwork

    # the constraint checkers walk per-connection routes in Python, so run
    # this ablation at a moderate size regardless of the global default
    n = min(params.n_ports, 32)
    p = params.with_overrides(n_ports=n)
    out: dict[str, float] = {}
    for label, constraint in (
        ("crossbar", None),
        ("omega", OmegaNetwork(n)),
        ("fat-tree-4to1", FatTree(n, taper=4)),
    ):
        net = _net(
            "dynamic-tdm",
            p,
            k=4,
            injection_window=4,
            fabric_constraint=constraint,
        )
        point = measure(
            OrderedMeshPattern(n, size_bytes, rounds=rounds), net, seed=seed
        )
        out[label] = point.efficiency
    return out


def ablation_cooperative_control(
    params: SystemParams = PAPER_PARAMS,
    size_bytes: int = 64,
    seed: int = DEFAULT_SEED,
) -> dict[str, float]:
    """A11: the conclusion's future work — compiler, predictor, and
    dynamic scheduler working together.

    The workload is a compiled program whose loops alternate a
    statically-known stencil with a *predictable but not compiler-visible*
    shift sequence (modelled as Unknown statements in a fixed rotation).
    Four control stacks run the identical message stream:

    * ``dynamic``            — run-time scheduling only;
    * ``+prefetch``          — plus the Markov next-connection prefetcher;
    * ``compiler``           — hybrid preload of the static stencil with
                               per-phase flush directives;
    * ``compiler+prefetch``  — both: preloaded registers serve the static
                               pattern while the predictor covers the
                               repeating dynamic remainder.
    """
    from ..compiled.frontend import Loop, Seq, Stencil, Unknown, compile_program
    from ..predict.markov import MarkovPrefetcher

    n = params.n_ports
    # the "data-dependent" rotation the compiler cannot see but a
    # predictor can learn: every node cycles partners +3, +5
    unknown_a = Unknown(pairs=tuple((u, (u + 3) % n) for u in range(n)))
    unknown_b = Unknown(pairs=tuple((u, (u + 5) % n) for u in range(n)))
    program = Seq(
        body=(
            Loop(trips=4, body=(Stencil(),)),
            Loop(trips=8, body=(unknown_a, unknown_b)),
            Loop(trips=4, body=(Stencil(),)),
        )
    )
    schedule = compile_program(program, n, k_preload=2, max_batches=2)

    def run(mode: str, use_prefetch: bool) -> float:
        phases = schedule.to_traffic(size_bytes)
        prefetcher = (
            MarkovPrefetcher(n, hold_ps=us(2)) if use_prefetch else None
        )
        if mode == "hybrid":
            net = _net(
                "hybrid",
                params,
                k=4,
                k_preload=2,
                injection_window=1,
                flush_on_phase=True,
                prefetcher=prefetcher,
            )
        else:
            net = _net(
                "dynamic-tdm",
                params,
                k=4,
                injection_window=1,
                prefetcher=prefetcher,
            )
        from ..metrics.efficiency import efficiency_from_bound, run_lower_bound_ps

        bound = run_lower_bound_ps(phases, params)
        result = net.run(phases, pattern_name="cooperative")
        return efficiency_from_bound(bound, result.makespan_ps)

    return {
        "dynamic": run("dynamic", False),
        "+prefetch": run("dynamic", True),
        "compiler": run("hybrid", False),
        "compiler+prefetch": run("hybrid", True),
    }


def ablation_injection_window(
    params: SystemParams = PAPER_PARAMS,
    windows: tuple = (1, 2, 4, 8, None),
    size_bytes: int = 64,
    seed: int = DEFAULT_SEED,
) -> dict[str, dict[str, float]]:
    """A12: sensitivity to the injection-window modelling decision.

    The window (outstanding non-blocking sends per node) is this
    reproduction's main judgment call about the paper's command-file
    generators (DESIGN.md).  For each window this ablation reports
    dynamic-TDM efficiency on the two most window-sensitive workloads —
    all-to-all (the Two Phase driver) and scatter — next to the
    window-independent wormhole reference, so readers can see which
    narrated orderings depend on the choice:

    * scatter: dynamic TDM ~ preload at every window >= 2;
    * all-to-all: dynamic TDM falls below wormhole for windows <= 4 and
      overtakes it with deep queues (the full-R-matrix upper bound).
    """
    from ..traffic.scatter import ScatterPattern

    out: dict[str, dict[str, float]] = {}
    worm_a2a = measure(
        AllToAllPattern(params.n_ports, size_bytes),
        _net("wormhole", params),
        seed=seed,
    ).efficiency
    worm_scatter = measure(
        ScatterPattern(params.n_ports, size_bytes),
        _net("wormhole", params),
        seed=seed,
    ).efficiency
    for window in windows:
        label = f"W={window if window is not None else 'inf'}"
        a2a = measure(
            AllToAllPattern(params.n_ports, size_bytes),
            _net("dynamic-tdm", params, k=4, injection_window=window),
            seed=seed,
        ).efficiency
        scatter = measure(
            ScatterPattern(params.n_ports, size_bytes),
            _net("dynamic-tdm", params, k=4, injection_window=window),
            seed=seed,
        ).efficiency
        out[label] = {
            "alltoall_dyn": a2a,
            "alltoall_vs_wormhole": a2a / worm_a2a,
            "scatter_dyn": scatter,
            "scatter_vs_wormhole": scatter / worm_scatter,
        }
    return out


#: ablation id -> (title, runner); the CLI and the report driver both
#: resolve through this table, and :func:`run_ablation_cell` dispatches on
#: the id so each ablation is one cacheable run cell
ABLATIONS: dict[str, tuple[str, Callable[..., dict]]] = {
    "a1": ("SL units", ablation_sl_units),
    "a2": ("multi-slot connections", ablation_multislot),
    "a3": ("eviction predictors", ablation_predictors),
    "a4": ("guard band", ablation_guard_band),
    "a5": ("priority rotation", ablation_rotation_fairness),
    "a6": ("idle-slot skipping", ablation_idle_slot_skipping),
    "a8": ("multiplexing degree", ablation_multiplexing_degree),
    "a9": ("Markov prefetching", ablation_prefetching),
    "a10": ("fabric constraints", ablation_fabrics),
    "a11": ("cooperative control", ablation_cooperative_control),
    "a12": ("injection window sensitivity", ablation_injection_window),
}


@dataclass(slots=True, frozen=True)
class AblationCell:
    """One ablation as a run cell: the id plus everything it varies on."""

    key: str
    params: SystemParams
    seed: int


def run_ablation_cell(cell: AblationCell) -> dict:
    """Run one ablation at its default knobs (the engine's runner)."""
    return ABLATIONS[cell.key][1](params=cell.params, seed=cell.seed)


def run_ablations(
    keys: Sequence[str] | None = None,
    params: SystemParams = PAPER_PARAMS,
    seed: int = DEFAULT_SEED,
    *,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
) -> tuple[dict[str, dict], ExecStats]:
    """Run the requested ablations (all by default), fanned out per cell.

    Returns ``(id -> metrics dict, executor stats)`` with ids in the
    requested order.  Each ablation is internally serial (its settings
    share networks and predictors), so the cell grain is the ablation.
    """
    wanted = list(keys or ABLATIONS)
    for key in wanted:
        if key not in ABLATIONS:
            raise KeyError(key)
    cells = [AblationCell(key=key, params=params, seed=seed) for key in wanted]
    outcome = map_cells(
        run_ablation_cell,
        cells,
        root_seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        label="ablations",
        progress=progress,
    )
    return dict(zip(wanted, outcome.payloads)), outcome.stats

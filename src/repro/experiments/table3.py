"""Experiment T3: regenerate Table 3 (scheduler latency vs system size)."""

from __future__ import annotations

from ..hw.synth import PAPER_SIZES, scheduler_latency_table
from ..metrics.report import format_table

__all__ = ["run_table3", "format_table3"]


def run_table3(sizes: tuple[int, ...] = PAPER_SIZES) -> list[dict[str, float]]:
    """The Table 3 rows: calibrated FPGA model vs paper, plus ASIC."""
    return scheduler_latency_table(sizes)


def format_table3(rows: list[dict[str, float]] | None = None) -> str:
    """Render the regenerated Table 3 next to the paper's values."""
    if rows is None:
        rows = run_table3()
    return format_table(
        headers=["System size", "Model FPGA (ns)", "Paper (ns)", "Error (ns)", "ASIC 5x (ns)"],
        rows=[
            [
                int(r["n"]),
                round(r["fpga_ns"], 1),
                r["paper_ns"],
                round(r["error_ns"], 1),
                round(r["asic_ns"], 1),
            ]
            for r in rows
        ],
        title="Table 3 — latency of the scheduling circuit",
    )

"""Shared experiment plumbing.

An experiment point runs one (pattern, scheme) pair and reports the
bandwidth efficiency of Figures 4/5.  Two rules keep comparisons honest:

* the workload realisation is regenerated from the same master seed for
  every scheme, so all schemes see byte-identical traffic;
* efficiency always uses the scheme-independent bottleneck lower bound
  (:mod:`repro.metrics.efficiency`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..faults.injector import FaultInjector
from ..metrics.efficiency import efficiency_from_bound, run_lower_bound_ps
from ..networks.base import BaseNetwork, RunResult
from ..networks.registry import DEFAULT_INJECTION_WINDOW, RunSpec, build_network
from ..params import SystemParams
from ..sim.rng import RngStreams
from ..sim.trace import Tracer
from ..traffic.base import TrafficPattern

__all__ = [
    "ExperimentPoint",
    "measure",
    "figure4_schemes",
    "FIGURE4_SCHEMES",
    "DEFAULT_SEED",
    "DEFAULT_INJECTION_WINDOW",
]

DEFAULT_SEED = 20050404  # IPPS 2005 in Denver started April 4


@dataclass(slots=True, frozen=True)
class ExperimentPoint:
    """Outcome of one (pattern, scheme) simulation."""

    scheme: str
    pattern: str
    size_bytes: int
    efficiency: float
    makespan_ps: int
    lower_bound_ps: int
    total_bytes: int
    counters: dict[str, int]


def measure(
    pattern: TrafficPattern,
    network: BaseNetwork,
    seed: int = DEFAULT_SEED,
) -> ExperimentPoint:
    """Run ``pattern`` through ``network`` and compute its efficiency."""
    phases = pattern.phases(RngStreams(seed))
    bound = run_lower_bound_ps(phases, network.params)
    result: RunResult = network.run(phases, pattern_name=pattern.name)
    return ExperimentPoint(
        scheme=network.scheme,
        pattern=pattern.name,
        size_bytes=pattern.size_bytes,
        efficiency=efficiency_from_bound(bound, result.makespan_ps),
        makespan_ps=result.makespan_ps,
        lower_bound_ps=bound,
        total_bytes=result.total_bytes,
        counters=result.counters,
    )


#: the scheme set Figure 4 compares (canonical registry names, in the
#: paper's presentation order)
FIGURE4_SCHEMES: tuple[str, ...] = ("wormhole", "circuit", "dynamic-tdm", "preload")


def figure4_schemes(
    params: SystemParams,
    k: int = 4,
    injection_window: int | None = DEFAULT_INJECTION_WINDOW,
) -> dict[str, Callable[..., BaseNetwork]]:
    """The four switching schemes Figure 4 compares, as fresh factories.

    Every factory resolves through the scheme registry
    (:mod:`repro.networks.registry`), so the TDM defaults here and in the
    fault campaigns cannot silently diverge.  The TDM entries use
    multiplexing degree ``k`` (the paper uses 4) and the given injection
    window; wormhole and circuit switching serve each source's messages
    strictly in order, so the window does not apply to them.  Each factory
    accepts an optional tracer (so ``repro trace`` can instrument the very
    networks the experiments measure) and an optional fault injector (so
    the fault campaigns reuse these exact configurations).
    """

    def factory(scheme: str) -> Callable[..., BaseNetwork]:
        def make(
            tracer: Tracer | None = None, faults: FaultInjector | None = None
        ) -> BaseNetwork:
            return build_network(
                RunSpec(
                    scheme=scheme,
                    params=params,
                    k=k,
                    injection_window=injection_window,
                    tracer=tracer,
                    faults=faults,
                )
            )

        return make

    return {scheme: factory(scheme) for scheme in FIGURE4_SCHEMES}

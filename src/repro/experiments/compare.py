"""Experiment C1: the scheduler bake-off (``repro compare``).

One sweep, every discipline: the paper's four Figure-4 schemes plus the
two bake-off entrants (``islip``, ``solstice-tdm``) over all four traffic
patterns, reporting bandwidth efficiency per (pattern, scheme, size) cell
and a ranked summary.  The comparison rules of
:mod:`repro.experiments.common` apply unchanged — byte-identical traffic
per scheme, scheme-independent lower bound — so a ranking row is a fair
fight by construction.

The report also records the *schedule coverage* duel that motivates the
Solstice-style computer: for each pattern's demand matrix (and one seeded
skewed matrix, where the effect is starkest) it compares the fraction of
demanded traffic reachable within the first ``k`` configurations —
the preload register file's depth — under plain edge colouring versus
demand-ranked Solstice rounds.  Colouring ignores demand weights, so its
register-file prefix is an arbitrary ``k``-subset of the colour classes;
Solstice packs the heaviest edges first.

Cells fan out through :func:`repro.exec.map_cells`; the CSV is
bit-identical across invocations and across ``--jobs`` counts (checked in
CI), and the coverage rows are pure seeded functions of the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..compiled.coloring import decompose
from ..exec import ExecStats, map_cells
from ..metrics.efficiency import efficiency_from_bound, run_lower_bound_ps
from ..metrics.report import format_csv, format_series, format_table
from ..networks.base import RunResult
from ..networks.registry import DEFAULT_INJECTION_WINDOW, RunSpec, build_network
from ..params import PAPER_PARAMS, SystemParams
from ..sched.solstice import schedule_coverage, solstice_schedule
from ..sim.rng import RngStreams
from ..traffic.base import TrafficPhase
from .common import DEFAULT_SEED, ExperimentPoint
from .figure4 import figure4_patterns

__all__ = [
    "COMPARE_SCHEMES",
    "COMPARE_SIZES",
    "CompareCell",
    "CoverageRow",
    "guarded_efficiency",
    "run_compare_cell",
    "coverage_rows",
    "CompareResult",
    "run_compare",
]

#: every discipline in the bake-off, baselines first (presentation order)
COMPARE_SCHEMES: tuple[str, ...] = (
    "wormhole",
    "circuit",
    "dynamic-tdm",
    "preload",
    "islip",
    "solstice-tdm",
)

#: default message sizes — the small/medium/large corners of the Figure 4
#: sweep (the full nine-point sweep stays available via ``--sizes``)
COMPARE_SIZES: tuple[int, ...] = (64, 256, 1024)


def guarded_efficiency(bound_ps: int, makespan_ps: int) -> float:
    """:func:`efficiency_from_bound`, but 0.0 for empty or degenerate cells.

    An empty traffic realisation yields bound 0 and makespan 0, which the
    strict validator rejects with :class:`ConfigurationError`.  A bake-off
    report wants a (zero) row for such a cell, not a crash — the same
    convention :func:`repro.metrics.latencies.summarize_latencies` uses
    for empty runs.
    """
    if bound_ps <= 0 or makespan_ps <= 0:
        return 0.0
    return efficiency_from_bound(bound_ps, makespan_ps)


@dataclass(slots=True, frozen=True)
class CompareCell:
    """One independent bake-off run cell: (pattern, scheme, size).

    A plain value (:mod:`repro.exec.canonical`), like
    :class:`~repro.experiments.figure4.Figure4Cell`: the ``seed`` is the
    sweep's root seed so every scheme faces the byte-identical traffic
    realisation.
    """

    pattern: str
    scheme: str
    size_bytes: int
    params: SystemParams
    k: int
    mesh_rounds: int
    nn_rounds: int
    seed: int


def run_compare_cell(cell: CompareCell) -> ExperimentPoint:
    """Simulate one bake-off cell (the engine's runner function)."""
    make_pattern = figure4_patterns(cell.params, cell.mesh_rounds, cell.nn_rounds)
    pattern = make_pattern[cell.pattern](cell.size_bytes)
    network = build_network(
        RunSpec(
            scheme=cell.scheme,
            params=cell.params,
            k=cell.k,
            injection_window=DEFAULT_INJECTION_WINDOW,
        )
    )
    phases = pattern.phases(RngStreams(cell.seed))
    bound = run_lower_bound_ps(phases, network.params)
    result: RunResult = network.run(phases, pattern_name=pattern.name)
    return ExperimentPoint(
        scheme=cell.scheme,
        pattern=pattern.name,
        size_bytes=cell.size_bytes,
        efficiency=guarded_efficiency(bound, result.makespan_ps),
        makespan_ps=result.makespan_ps,
        lower_bound_ps=bound,
        total_bytes=result.total_bytes,
        counters=result.counters,
    )


# -- the coverage duel ------------------------------------------------------------


@dataclass(slots=True, frozen=True)
class CoverageRow:
    """Colouring vs Solstice coverage of one demand matrix at one budget."""

    demand_name: str
    n_ports: int
    edges: int
    budget: int
    coloring_coverage: float
    solstice_coverage: float

    @property
    def winner(self) -> str:
        if self.solstice_coverage > self.coloring_coverage:
            return "solstice"
        if self.coloring_coverage > self.solstice_coverage:
            return "coloring"
        return "tie"


def _phase_demand(phase: TrafficPhase) -> dict[tuple[int, int], int]:
    """Total bytes demanded per (src, dst) edge of one phase."""
    demand: dict[tuple[int, int], int] = {
        (u, v): 0 for u, v in phase.static_conns
    }
    for msg in phase.messages:
        key = (msg.src, msg.dst)
        demand[key] = demand.get(key, 0) + msg.size
    return demand


def _skewed_demand(n: int, seed: int) -> dict[tuple[int, int], int]:
    """A seeded sparse demand matrix with multi-decade weight skew.

    Roughly ``2.5 n`` distinct edges with byte counts spanning 10..10^5 —
    the regime where demand-blind colouring leaves the heavy edges outside
    the register-file prefix.
    """
    gen = RngStreams(seed).get(f"compare-skewed-{n}")
    target = min(n * (n - 1), (n * 5) // 2)
    edges: set[tuple[int, int]] = set()
    while len(edges) < target:
        u = int(gen.integers(0, n))
        v = int(gen.integers(0, n - 1))
        if v >= u:
            v += 1  # uniform over destinations != source
        edges.add((u, v))
    return {e: 10 ** int(gen.integers(1, 6)) for e in sorted(edges)}


def _coverage_of(
    demand: Mapping[tuple[int, int], int], n: int, budget: int
) -> tuple[float, float]:
    """(colouring, solstice) coverage of ``demand`` within ``budget`` configs."""
    conns = sorted(demand)
    coloring_cfgs = decompose(conns, n)
    solstice_cfgs = [cfg for cfg, _ in solstice_schedule(demand, n)]
    return (
        schedule_coverage(coloring_cfgs, demand, budget=budget),
        schedule_coverage(solstice_cfgs, demand, budget=budget),
    )


def coverage_rows(
    params: SystemParams,
    k: int = 4,
    mesh_rounds: int = 4,
    nn_rounds: int = 16,
    size_bytes: int = 256,
    seed: int = DEFAULT_SEED,
    patterns: Sequence[str] | None = None,
) -> list[CoverageRow]:
    """The coverage duel over every pattern's demand plus a skewed matrix.

    Each pattern contributes its first phase's (src, dst) -> bytes matrix
    at one representative message size; the extra ``skewed`` row is the
    seeded matrix of :func:`_skewed_demand`, where the colouring's
    demand-blindness costs the most.  Budget is ``k`` — the depth of the
    preload register file the schedule must fit ahead of the first swap.
    """
    factories = figure4_patterns(params, mesh_rounds, nn_rounds)
    wanted = list(patterns or factories)
    demands: list[tuple[str, dict[tuple[int, int], int]]] = []
    for name in wanted:
        phases = factories[name](size_bytes).phases(RngStreams(seed))
        demands.append((name, _phase_demand(phases[0])))
    demands.append(("skewed", _skewed_demand(params.n_ports, seed)))
    rows: list[CoverageRow] = []
    for name, demand in demands:
        coloring_cov, solstice_cov = _coverage_of(demand, params.n_ports, k)
        rows.append(
            CoverageRow(
                demand_name=name,
                n_ports=params.n_ports,
                edges=len(demand),
                budget=k,
                coloring_coverage=coloring_cov,
                solstice_coverage=solstice_cov,
            )
        )
    return rows


# -- the result -------------------------------------------------------------------


@dataclass
class CompareResult:
    """Efficiency series per pattern per scheme, plus the coverage duel."""

    sizes: tuple[int, ...]
    patterns: tuple[str, ...]
    schemes: tuple[str, ...]
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    points: list[ExperimentPoint] = field(default_factory=list)
    coverage: list[CoverageRow] = field(default_factory=list)
    params: SystemParams = PAPER_PARAMS
    k: int = 4
    seed: int = DEFAULT_SEED
    exec_stats: ExecStats | None = None

    def efficiency(self, pattern: str, scheme: str, size: int) -> float:
        return self.series[pattern][scheme][self.sizes.index(size)]

    def mean_efficiency(self, scheme: str) -> float:
        values = [v for p in self.patterns for v in self.series[p][scheme]]
        return sum(values) / len(values) if values else 0.0

    def ranking(self) -> list[tuple[str, float]]:
        """Schemes by mean efficiency across the whole grid, best first."""
        means = [(s, self.mean_efficiency(s)) for s in self.schemes]
        return sorted(means, key=lambda sv: (-sv[1], sv[0]))

    def csv(self) -> str:
        """One flat row per cell, grid order — the determinism contract.

        Every field is derived from simulator state, so the CSV is
        byte-identical across invocations and ``--jobs`` counts (CI
        diffs it both ways).
        """
        rows = [
            "pattern,scheme,bytes,efficiency,makespan_ps,lower_bound_ps,"
            "total_bytes"
        ]
        for p in self.points:
            rows.append(
                f"{p.pattern},{p.scheme},{p.size_bytes},{p.efficiency:.6f},"
                f"{p.makespan_ps},{p.lower_bound_ps},{p.total_bytes}"
            )
        return "\n".join(rows) + "\n"

    def pattern_csv(self, pattern: str) -> str:
        return format_csv("bytes", list(self.sizes), self.series[pattern])

    def _coverage_table(self) -> str:
        return format_table(
            ["demand", "ports", "edges", "coloring", "solstice", "better"],
            [
                [
                    r.demand_name,
                    r.n_ports,
                    r.edges,
                    f"{r.coloring_coverage:.3f}",
                    f"{r.solstice_coverage:.3f}",
                    r.winner,
                ]
                for r in self.coverage
            ],
            title=f"Preload schedule coverage within k={self.k} configurations",
        )

    def format(self) -> str:
        out = [
            format_table(
                ["rank", "scheme", "mean efficiency"],
                [
                    [i + 1, scheme, f"{mean:.3f}"]
                    for i, (scheme, mean) in enumerate(self.ranking())
                ],
                title="Scheduler bake-off — ranking (mean efficiency, "
                f"{len(self.patterns)} patterns x {len(self.sizes)} sizes)",
            )
        ]
        for pattern in self.patterns:
            out.append(
                format_series(
                    "bytes",
                    list(self.sizes),
                    self.series[pattern],
                    title=f"Bake-off — {pattern} (bandwidth efficiency)",
                )
            )
        if self.coverage:
            out.append(self._coverage_table())
        return "\n".join(out)

    def markdown(self) -> str:
        """The ranked bake-off report (``benchmarks/results/compare_bakeoff.md``)."""
        out = [
            "# Scheduler bake-off",
            "",
            "Generated by `repro compare`: every switching discipline over "
            "the four Figure-4 traffic patterns, byte-identical workloads, "
            "efficiency against the scheme-independent bottleneck bound.",
            "",
            f"- ports: {self.params.n_ports}",
            f"- multiplexing degree k: {self.k}",
            f"- seed: {self.seed}",
            f"- message sizes: {', '.join(str(s) for s in self.sizes)} bytes",
            "",
            "## Ranking — mean bandwidth efficiency across the grid",
            "",
            "| rank | scheme | mean efficiency |",
            "|---:|:---|---:|",
        ]
        for i, (scheme, mean) in enumerate(self.ranking()):
            out.append(f"| {i + 1} | {scheme} | {mean:.3f} |")
        out.append("")
        out.append("## Efficiency by pattern")
        for pattern in self.patterns:
            out.append("")
            out.append(f"### {pattern}")
            out.append("")
            out.append("| bytes | " + " | ".join(self.schemes) + " |")
            out.append("|---:|" + "---:|" * len(self.schemes))
            for i, size in enumerate(self.sizes):
                cells = " | ".join(
                    f"{self.series[pattern][s][i]:.3f}" for s in self.schemes
                )
                out.append(f"| {size} | {cells} |")
        if self.coverage:
            out += [
                "",
                f"## Preload schedule coverage within k={self.k} configurations",
                "",
                "Fraction of demanded bytes whose edge appears in the first "
                "k configurations of the computed schedule — the part the "
                "register file holds before any mid-batch swap.  Plain edge "
                "colouring is demand-blind; Solstice-style rounds pack the "
                "heaviest edges first.",
                "",
                "| demand matrix | ports | edges | coloring | solstice | better |",
                "|:---|---:|---:|---:|---:|:---|",
            ]
            for r in self.coverage:
                out.append(
                    f"| {r.demand_name} | {r.n_ports} | {r.edges} | "
                    f"{r.coloring_coverage:.3f} | {r.solstice_coverage:.3f} | "
                    f"{r.winner} |"
                )
        out.append("")
        return "\n".join(out)


def run_compare(
    params: SystemParams = PAPER_PARAMS,
    sizes: Sequence[int] = COMPARE_SIZES,
    patterns: Sequence[str] | None = None,
    schemes: Sequence[str] | None = None,
    k: int = 4,
    mesh_rounds: int = 4,
    nn_rounds: int = 16,
    seed: int = DEFAULT_SEED,
    *,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
) -> CompareResult:
    """Run (a subset of) the bake-off grid.

    ``patterns``/``schemes`` restrict the grid (None = everything).  Cells
    fan out over ``jobs`` workers (:func:`repro.exec.resolve_jobs`); the
    result is bit-identical for any job count.  The coverage duel is a
    pure function of (params, k, seed) and runs in-process.
    """
    pattern_factories = figure4_patterns(params, mesh_rounds, nn_rounds)
    wanted_patterns = list(patterns or pattern_factories)
    wanted_schemes = list(schemes or COMPARE_SCHEMES)
    for name in wanted_patterns:
        if name not in pattern_factories:
            raise KeyError(name)
    for name in wanted_schemes:
        if name not in COMPARE_SCHEMES:
            raise KeyError(name)
    cells = [
        CompareCell(
            pattern=pattern_name,
            scheme=scheme_name,
            size_bytes=size,
            params=params,
            k=k,
            mesh_rounds=mesh_rounds,
            nn_rounds=nn_rounds,
            seed=seed,
        )
        for pattern_name in wanted_patterns
        for scheme_name in wanted_schemes
        for size in sizes
    ]
    outcome = map_cells(
        run_compare_cell,
        cells,
        root_seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        label="compare",
        progress=progress,
    )
    result = CompareResult(
        sizes=tuple(sizes),
        patterns=tuple(wanted_patterns),
        schemes=tuple(wanted_schemes),
        params=params,
        k=k,
        seed=seed,
        exec_stats=outcome.stats,
    )
    points = iter(outcome.payloads)
    for pattern_name in wanted_patterns:
        result.series[pattern_name] = {}
        for scheme_name in wanted_schemes:
            series: list[float] = []
            for _ in sizes:
                point = next(points)
                series.append(point.efficiency)
                result.points.append(point)
            result.series[pattern_name][scheme_name] = series
    result.coverage = coverage_rows(
        params,
        k=k,
        mesh_rounds=mesh_rounds,
        nn_rounds=nn_rounds,
        seed=seed,
        patterns=wanted_patterns,
    )
    return result

"""Experiment F4: the Figure 4 sweep.

Four traffic patterns x four switching schemes x message sizes 8..2048
bytes, reporting bandwidth efficiency.  The paper's own reading of its
figure (checked by the integration tests):

* **Scatter** — sharp efficiency rise between 32 and 64 bytes, then a
  plateau out to 2048 (the 80-byte slot quantisation); preload and dynamic
  TDM nearly identical.
* **Random Mesh** — both TDM variants beat wormhole and circuit, and sit
  within ~10 % of each other; circuit improves with message size.
* **Ordered Mesh** — preload wins; dynamic TDM close (the 4-destination
  working set fits the degree-4 cache).
* **Two Phase** — preload wins; dynamic TDM falls below wormhole (the
  all-to-all phase thrashes a degree-4 dynamically-scheduled cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..metrics.report import format_csv, format_series
from ..params import PAPER_PARAMS, SystemParams
from ..traffic.base import TrafficPattern
from ..traffic.mesh import OrderedMeshPattern, RandomMeshPattern
from ..traffic.scatter import ScatterPattern
from ..traffic.twophase import TwoPhasePattern
from .common import DEFAULT_SEED, ExperimentPoint, figure4_schemes, measure

__all__ = [
    "MESSAGE_SIZES",
    "figure4_patterns",
    "Figure4Result",
    "run_figure4",
]

#: the paper sweeps message sizes from 8 to 2048 bytes
MESSAGE_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048)


def figure4_patterns(
    params: SystemParams, mesh_rounds: int = 4, nn_rounds: int = 16
) -> dict[str, Callable[[int], TrafficPattern]]:
    """The four panels of Figure 4 as size -> pattern factories."""
    n = params.n_ports
    return {
        "scatter": lambda size: ScatterPattern(n, size),
        "random-mesh": lambda size: RandomMeshPattern(n, size, rounds=mesh_rounds),
        "ordered-mesh": lambda size: OrderedMeshPattern(n, size, rounds=mesh_rounds),
        "two-phase": lambda size: TwoPhasePattern(n, size, nn_rounds=nn_rounds),
    }


@dataclass
class Figure4Result:
    """Efficiency series per pattern per scheme, aligned with ``sizes``."""

    sizes: tuple[int, ...]
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    points: list[ExperimentPoint] = field(default_factory=list)

    def efficiency(self, pattern: str, scheme: str, size: int) -> float:
        return self.series[pattern][scheme][self.sizes.index(size)]

    def format(self) -> str:
        out = []
        for pattern, schemes in self.series.items():
            out.append(
                format_series(
                    "bytes",
                    list(self.sizes),
                    schemes,
                    title=f"Figure 4 — {pattern} (bandwidth efficiency)",
                )
            )
        return "\n".join(out)

    def csv(self, pattern: str) -> str:
        return format_csv("bytes", list(self.sizes), self.series[pattern])


def run_figure4(
    params: SystemParams = PAPER_PARAMS,
    sizes: Sequence[int] = MESSAGE_SIZES,
    patterns: Sequence[str] | None = None,
    schemes: Sequence[str] | None = None,
    k: int = 4,
    mesh_rounds: int = 4,
    nn_rounds: int = 16,
    seed: int = DEFAULT_SEED,
) -> Figure4Result:
    """Run (a subset of) the Figure 4 sweep.

    ``patterns``/``schemes`` restrict the grid (None = everything); the
    benchmarks run panels separately so each appears as its own bench.
    """
    pattern_factories = figure4_patterns(params, mesh_rounds, nn_rounds)
    scheme_factories = figure4_schemes(params, k=k)
    wanted_patterns = list(patterns or pattern_factories)
    wanted_schemes = list(schemes or scheme_factories)
    result = Figure4Result(sizes=tuple(sizes))
    for pattern_name in wanted_patterns:
        make_pattern = pattern_factories[pattern_name]
        result.series[pattern_name] = {}
        for scheme_name in wanted_schemes:
            make_network = scheme_factories[scheme_name]
            series: list[float] = []
            for size in sizes:
                point = measure(make_pattern(size), make_network(), seed=seed)
                series.append(point.efficiency)
                result.points.append(point)
            result.series[pattern_name][scheme_name] = series
    return result

"""Experiment F4: the Figure 4 sweep.

Four traffic patterns x four switching schemes x message sizes 8..2048
bytes, reporting bandwidth efficiency.  The paper's own reading of its
figure (checked by the integration tests):

* **Scatter** — sharp efficiency rise between 32 and 64 bytes, then a
  plateau out to 2048 (the 80-byte slot quantisation); preload and dynamic
  TDM nearly identical.
* **Random Mesh** — both TDM variants beat wormhole and circuit, and sit
  within ~10 % of each other; circuit improves with message size.
* **Ordered Mesh** — preload wins; dynamic TDM close (the 4-destination
  working set fits the degree-4 cache).
* **Two Phase** — preload wins; dynamic TDM falls below wormhole (the
  all-to-all phase thrashes a degree-4 dynamically-scheduled cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..exec import ExecStats, map_cells
from ..metrics.report import format_csv, format_series
from ..networks.registry import DEFAULT_INJECTION_WINDOW, RunSpec, build_network
from ..params import PAPER_PARAMS, SystemParams
from ..traffic.base import TrafficPattern
from ..traffic.mesh import OrderedMeshPattern, RandomMeshPattern
from ..traffic.scatter import ScatterPattern
from ..traffic.twophase import TwoPhasePattern
from .common import DEFAULT_SEED, FIGURE4_SCHEMES, ExperimentPoint, measure

__all__ = [
    "MESSAGE_SIZES",
    "Figure4Cell",
    "figure4_patterns",
    "run_figure4_cell",
    "Figure4Result",
    "run_figure4",
]

#: the paper sweeps message sizes from 8 to 2048 bytes
MESSAGE_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048)


def figure4_patterns(
    params: SystemParams, mesh_rounds: int = 4, nn_rounds: int = 16
) -> dict[str, Callable[[int], TrafficPattern]]:
    """The four panels of Figure 4 as size -> pattern factories."""
    n = params.n_ports
    return {
        "scatter": lambda size: ScatterPattern(n, size),
        "random-mesh": lambda size: RandomMeshPattern(n, size, rounds=mesh_rounds),
        "ordered-mesh": lambda size: OrderedMeshPattern(n, size, rounds=mesh_rounds),
        "two-phase": lambda size: TwoPhasePattern(n, size, nn_rounds=nn_rounds),
    }


@dataclass(slots=True, frozen=True)
class Figure4Cell:
    """One independent Figure 4 run cell: (pattern, scheme, size).

    A cell is a plain value (see :mod:`repro.exec.canonical`): everything
    the simulation depends on rides inside it, so the execution engine can
    address its payload by content.  The workload ``seed`` is the sweep's
    root seed — every scheme must face the byte-identical traffic
    realisation (the comparison rule in :mod:`repro.experiments.common`),
    so cells deliberately do *not* use per-cell derived seeds.
    """

    pattern: str
    scheme: str
    size_bytes: int
    params: SystemParams
    k: int
    mesh_rounds: int
    nn_rounds: int
    seed: int


def run_figure4_cell(cell: Figure4Cell) -> ExperimentPoint:
    """Simulate one Figure 4 cell (the engine's runner function)."""
    make_pattern = figure4_patterns(cell.params, cell.mesh_rounds, cell.nn_rounds)
    network = build_network(
        RunSpec(
            scheme=cell.scheme,
            params=cell.params,
            k=cell.k,
            injection_window=DEFAULT_INJECTION_WINDOW,
        )
    )
    return measure(make_pattern[cell.pattern](cell.size_bytes), network, seed=cell.seed)


@dataclass
class Figure4Result:
    """Efficiency series per pattern per scheme, aligned with ``sizes``."""

    sizes: tuple[int, ...]
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    points: list[ExperimentPoint] = field(default_factory=list)
    #: executor telemetry for the sweep that produced this result
    exec_stats: ExecStats | None = None

    def efficiency(self, pattern: str, scheme: str, size: int) -> float:
        return self.series[pattern][scheme][self.sizes.index(size)]

    def format(self) -> str:
        out = []
        for pattern, schemes in self.series.items():
            out.append(
                format_series(
                    "bytes",
                    list(self.sizes),
                    schemes,
                    title=f"Figure 4 — {pattern} (bandwidth efficiency)",
                )
            )
        return "\n".join(out)

    def csv(self, pattern: str) -> str:
        return format_csv("bytes", list(self.sizes), self.series[pattern])


def run_figure4(
    params: SystemParams = PAPER_PARAMS,
    sizes: Sequence[int] = MESSAGE_SIZES,
    patterns: Sequence[str] | None = None,
    schemes: Sequence[str] | None = None,
    k: int = 4,
    mesh_rounds: int = 4,
    nn_rounds: int = 16,
    seed: int = DEFAULT_SEED,
    *,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
) -> Figure4Result:
    """Run (a subset of) the Figure 4 sweep.

    ``patterns``/``schemes`` restrict the grid (None = everything); the
    benchmarks run panels separately so each appears as its own bench.
    Cells fan out over ``jobs`` worker processes (see
    :func:`repro.exec.resolve_jobs`); the result is bit-identical for any
    job count, and ``jobs=1`` runs everything in-process in grid order.
    """
    pattern_factories = figure4_patterns(params, mesh_rounds, nn_rounds)
    wanted_patterns = list(patterns or pattern_factories)
    wanted_schemes = list(schemes or FIGURE4_SCHEMES)
    for name in wanted_patterns:
        if name not in pattern_factories:
            raise KeyError(name)
    for name in wanted_schemes:
        if name not in FIGURE4_SCHEMES:
            raise KeyError(name)
    cells = [
        Figure4Cell(
            pattern=pattern_name,
            scheme=scheme_name,
            size_bytes=size,
            params=params,
            k=k,
            mesh_rounds=mesh_rounds,
            nn_rounds=nn_rounds,
            seed=seed,
        )
        for pattern_name in wanted_patterns
        for scheme_name in wanted_schemes
        for size in sizes
    ]
    outcome = map_cells(
        run_figure4_cell,
        cells,
        root_seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        label="figure4",
        progress=progress,
    )
    result = Figure4Result(sizes=tuple(sizes), exec_stats=outcome.stats)
    points = iter(outcome.payloads)
    for pattern_name in wanted_patterns:
        result.series[pattern_name] = {}
        for scheme_name in wanted_schemes:
            series: list[float] = []
            for _ in sizes:
                point = next(points)
                series.append(point.efficiency)
                result.points.append(point)
            result.series[pattern_name][scheme_name] = series
    return result

"""Experiment drivers regenerating every table and figure of the paper."""

from .common import DEFAULT_SEED, ExperimentPoint, figure4_schemes, measure
from .compare import (
    COMPARE_SCHEMES,
    COMPARE_SIZES,
    CompareResult,
    CoverageRow,
    coverage_rows,
    run_compare,
)
from .faults import FAULT_RATES, FaultPoint, FaultsResult, run_faults
from .figure4 import MESSAGE_SIZES, Figure4Result, figure4_patterns, run_figure4
from .figure5 import DETERMINISM_SWEEP, Figure5Result, run_figure5
from .loadlatency import LOADS, LoadLatencyResult, run_load_latency
from .reporting import run_all
from .table3 import format_table3, run_table3

__all__ = [
    "DEFAULT_SEED",
    "ExperimentPoint",
    "figure4_schemes",
    "measure",
    "COMPARE_SCHEMES",
    "COMPARE_SIZES",
    "CompareResult",
    "CoverageRow",
    "coverage_rows",
    "run_compare",
    "FAULT_RATES",
    "FaultPoint",
    "FaultsResult",
    "run_faults",
    "MESSAGE_SIZES",
    "Figure4Result",
    "figure4_patterns",
    "run_figure4",
    "DETERMINISM_SWEEP",
    "LOADS",
    "LoadLatencyResult",
    "run_load_latency",
    "run_all",
    "Figure5Result",
    "run_figure5",
    "format_table3",
    "run_table3",
]

"""One-command reproduction report.

:func:`run_all` regenerates every paper artifact (Table 3, the four
Figure 4 panels, Figure 5) plus the load–latency extension and emits a
single markdown report — the machine-generated counterpart of
EXPERIMENTS.md.  ``python -m repro report`` writes it to stdout or a file.

``quick=True`` runs a reduced grid (fewer sizes/points) for smoke-testing
the pipeline; the default regenerates the full sweeps.
"""

from __future__ import annotations

from io import StringIO

from ..exec import ExecStats
from ..params import PAPER_PARAMS, SystemParams
from .common import DEFAULT_SEED
from .figure4 import MESSAGE_SIZES, run_figure4
from .figure5 import DETERMINISM_SWEEP, run_figure5
from .loadlatency import LOADS, run_load_latency
from .table3 import format_table3, run_table3

__all__ = ["run_all"]


def run_all(
    params: SystemParams = PAPER_PARAMS,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    *,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
    stats_sink: list[ExecStats] | None = None,
) -> str:
    """Regenerate every artifact and return the markdown report.

    When ``stats_sink`` is a list, each sweep's executor stats are
    appended to it as the sweep finishes.
    """
    sizes = (32, 128, 512) if quick else MESSAGE_SIZES
    determinism = (0.5, 0.85, 1.0) if quick else DETERMINISM_SWEEP
    loads = (0.2, 0.6) if quick else LOADS
    messages_per_node = 16 if quick else 64
    exec_opts = dict(jobs=jobs, cache=cache, refresh=refresh, progress=progress)

    def sink(stats: ExecStats | None) -> None:
        if stats_sink is not None and stats is not None:
            stats_sink.append(stats)

    out = StringIO()
    out.write("# Reproduction report\n\n")
    out.write(
        f"system: {params.n_ports} ports, seed {seed}"
        f"{' (quick grid)' if quick else ''}\n\n"
    )

    out.write("## Table 3 — scheduler latency vs system size\n\n```\n")
    out.write(format_table3(run_table3()))
    out.write("```\n\n")

    out.write("## Figure 4 — efficiency vs message size\n\n```\n")
    fig4 = run_figure4(params=params, sizes=sizes, seed=seed, **exec_opts)
    sink(fig4.exec_stats)
    out.write(fig4.format())
    out.write("\n```\n\n")

    out.write("## Figure 5 — hybrid preload vs determinism\n\n```\n")
    fig5 = run_figure5(
        params=params,
        determinism=determinism,
        messages_per_node=messages_per_node,
        seed=seed,
        **exec_opts,
    )
    sink(fig5.exec_stats)
    out.write(fig5.format())
    out.write("```\n\n")

    out.write("## L1 — load vs latency (extension)\n\n```\n")
    ll = run_load_latency(
        params=params,
        loads=loads,
        duration_ns=3_000.0 if quick else 10_000.0,
        seed=seed,
        **exec_opts,
    )
    sink(ll.exec_stats)
    out.write(ll.format())
    out.write("```\n")
    return out.getvalue()

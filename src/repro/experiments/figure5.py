"""Experiment F5: the Figure 5 hybrid preload/dynamic sweep.

Paper, Section 5: multiplexing degree 3; ``k`` of the slots preload the
static patterns while the other ``3 - k`` schedule dynamic traffic;
``k`` varies from 0 to 2 while the traffic's *determinism* (fraction of
messages going to each node's specific static partners) sweeps 50–100 %.

Expected shape (integration-tested): 1-preload/2-dynamic beats the pure
dynamic scheme across the sweep, and from ~85 % determinism the
2-preload/1-dynamic scheme wins by more than 10 % — the paper's argument
that an 85 %-accurate predictor already pays for itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exec import ExecStats, map_cells
from ..metrics.report import format_csv, format_series
from ..networks.registry import RunSpec, build_network
from ..params import PAPER_PARAMS, SystemParams
from ..traffic.hybrid import HybridPattern
from .common import DEFAULT_SEED, ExperimentPoint, measure

__all__ = [
    "DETERMINISM_SWEEP",
    "Figure5Cell",
    "run_figure5_cell",
    "Figure5Result",
    "run_figure5",
]


@dataclass(slots=True, frozen=True)
class Figure5Cell:
    """One hybrid-sweep cell: (k_preload, determinism).

    ``seed`` is the sweep's root seed so every preload split faces the
    identical traffic realisation (the cross-scheme comparison rule).
    """

    k_preload: int
    determinism: float
    params: SystemParams
    k_total: int
    size_bytes: int
    messages_per_node: int
    n_static: int
    injection_window: int | None
    seed: int


def run_figure5_cell(cell: Figure5Cell) -> ExperimentPoint:
    """Simulate one Figure 5 cell (the engine's runner function)."""
    pattern = HybridPattern(
        cell.params.n_ports,
        cell.size_bytes,
        determinism=cell.determinism,
        messages_per_node=cell.messages_per_node,
        n_static=cell.n_static,
    )
    network = build_network(
        RunSpec(
            scheme="dynamic-tdm" if cell.k_preload == 0 else "hybrid",
            params=cell.params,
            k=cell.k_total,
            k_preload=cell.k_preload or None,
            injection_window=cell.injection_window,
        )
    )
    return measure(pattern, network, seed=cell.seed)

#: determinism fractions swept in Figure 5
DETERMINISM_SWEEP: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0)


@dataclass
class Figure5Result:
    """Efficiency per preload count ``k``, aligned with ``determinism``."""

    determinism: tuple[float, ...]
    k_total: int
    series: dict[str, list[float]] = field(default_factory=dict)
    points: list[ExperimentPoint] = field(default_factory=list)
    #: executor telemetry for the sweep that produced this result
    exec_stats: ExecStats | None = None

    def efficiency(self, k_preload: int, det: float) -> float:
        key = self._key(k_preload)
        return self.series[key][self.determinism.index(det)]

    def _key(self, k_preload: int) -> str:
        return f"{k_preload}-preload/{self.k_total - k_preload}-dynamic"

    def format(self) -> str:
        return format_series(
            "determinism",
            list(self.determinism),
            self.series,
            title=f"Figure 5 — hybrid preload (K={self.k_total})",
        )

    def csv(self) -> str:
        return format_csv("determinism", list(self.determinism), self.series)


def run_figure5(
    params: SystemParams = PAPER_PARAMS,
    determinism: Sequence[float] = DETERMINISM_SWEEP,
    k_total: int = 3,
    k_preloads: Sequence[int] = (0, 1, 2),
    size_bytes: int = 64,
    messages_per_node: int = 32,
    n_static: int = 2,
    injection_window: int | None = 4,
    seed: int = DEFAULT_SEED,
    *,
    jobs: int | None = None,
    cache: object | None = None,
    refresh: bool = False,
    progress: bool = False,
) -> Figure5Result:
    """Run the Figure 5 sweep.

    ``size_bytes`` defaults to 64 (one slot per message, the regime where
    scheduling overheads — the thing the sweep studies — dominate).
    Cells fan out over ``jobs`` worker processes; output is bit-identical
    for any job count.
    """
    cells = [
        Figure5Cell(
            k_preload=k_preload,
            determinism=det,
            params=params,
            k_total=k_total,
            size_bytes=size_bytes,
            messages_per_node=messages_per_node,
            n_static=n_static,
            injection_window=injection_window,
            seed=seed,
        )
        for k_preload in k_preloads
        for det in determinism
    ]
    outcome = map_cells(
        run_figure5_cell,
        cells,
        root_seed=seed,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        label="figure5",
        progress=progress,
    )
    result = Figure5Result(
        determinism=tuple(determinism), k_total=k_total, exec_stats=outcome.stats
    )
    points = iter(outcome.payloads)
    for k_preload in k_preloads:
        key = result._key(k_preload)
        series: list[float] = []
        for _ in determinism:
            point = next(points)
            series.append(point.efficiency)
            result.points.append(point)
        result.series[key] = series
    return result

"""Recovery policy: NIC-side timeouts with bounded exponential backoff.

The paper's request/grant plane has no acknowledgement protocol — a NIC
that raises a request simply waits for the circuit to appear in some TDM
slot.  Under faults that wait can become unbounded (a lost request bit is
never granted; a dead SL cell can never be toggled), so the recovery layer
adds the standard distributed-systems remedy: a per-connection watchdog
that re-raises the request after a timeout, backs off exponentially on
repeated failures, then escalates to the management plane
(:meth:`repro.sched.scheduler.Scheduler.mgmt_establish`) and finally gives
the connection up explicitly, so every injected byte is accounted for.

All of this machinery is armed *only* when a fault campaign is active:
a run with an empty fault schedule schedules zero watchdog events and is
bit-identical to a run without the fault subsystem at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.clock import ns

__all__ = ["RetryPolicy"]


@dataclass(slots=True, frozen=True)
class RetryPolicy:
    """Timeout/backoff parameters for the per-connection watchdogs.

    The default timeout (800 ns) is ~3x the worst-case request-to-first-
    grant path of the paper's timing model (80 ns request wire + scheduler
    pass + 80 ns grant wire + up to one full TDM rotation), so a healthy
    connection essentially never trips it.
    """

    #: first watchdog check fires this long after the request is raised
    timeout_ps: int = ns(800)
    #: multiplicative backoff between successive checks
    backoff: float = 2.0
    #: checks spent re-raising the request before escalating
    max_retries: int = 4
    #: checks spent asking the management plane for a direct slot placement
    mgmt_attempts: int = 2
    #: backoff ceiling — keeps recovery latency bounded
    max_delay_ps: int = ns(12_800)

    def __post_init__(self) -> None:
        if self.timeout_ps <= 0:
            raise ConfigurationError(
                f"retry timeout must be positive, got {self.timeout_ps} ps"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"retry backoff must be >= 1, got {self.backoff} "
                "(a shrinking backoff would hammer the request plane)"
            )
        if self.max_retries < 0 or self.mgmt_attempts < 0:
            raise ConfigurationError(
                f"retry/mgmt attempt counts must be >= 0, got "
                f"max_retries={self.max_retries}, mgmt_attempts={self.mgmt_attempts}"
            )
        if self.max_retries + self.mgmt_attempts < 1:
            raise ConfigurationError(
                "a watchdog needs at least one attempt "
                "(max_retries + mgmt_attempts >= 1), got 0: every stall "
                "would be given up on its first check"
            )
        if self.max_delay_ps < self.timeout_ps:
            raise ConfigurationError(
                f"backoff ceiling max_delay_ps={self.max_delay_ps} ps is below "
                f"the initial timeout {self.timeout_ps} ps; the cap must not "
                "undercut the first check"
            )

    @property
    def total_attempts(self) -> int:
        """Watchdog checks before the connection is declared unrecoverable."""
        return self.max_retries + self.mgmt_attempts

    def delay_ps(self, attempt: int) -> int:
        """Delay before watchdog check number ``attempt`` (0-based).

        Exponential in ``attempt``, capped at :attr:`max_delay_ps`, always
        an exact integer picosecond count so event ordering stays
        deterministic.
        """
        raw = self.timeout_ps * self.backoff**attempt
        return min(round(raw), self.max_delay_ps)

"""The fault injector: arms a schedule's faults on the event loop.

The injector sits between a :class:`~repro.faults.schedule.FaultSchedule`
and a network model.  At run start the network binds it
(:meth:`FaultInjector.bind`); the injector then arms exactly one pending
fault at a time on the simulator at ``Priority.FABRIC`` (faults strike the
hardware before wires, schedulers or NICs react at the same instant) and,
when it fires, dispatches to the network's public ``fault_*`` hooks — it
never reaches into simulator internals behind the model's back.

The injector also plays bookkeeper for the campaign:

* per-kind counters of faults applied vs. skipped (a scheme without a
  request plane skips request-wire faults, etc.);
* detection events — stuck registers are quarantined ``detect_ps`` after
  the fault (the management plane's scrubber latency);
* recovery latency — the time from a connection's disruption to its next
  successfully transferred byte, collected across the run.

When the schedule is empty (``active`` is False) the injector arms
nothing, the networks arm none of their recovery machinery, and a run is
bit-identical to one without the fault subsystem at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..sim.clock import ns
from ..sim.engine import Event, Priority
from ..sim.stats import Counter
from ..types import Connection
from .model import FaultEvent, FaultKind
from .recovery import RetryPolicy
from .schedule import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..networks.base import BaseNetwork

__all__ = ["FaultInjector"]


class FaultInjector:
    """Replays a fault schedule against one network model per run."""

    def __init__(
        self,
        schedule: FaultSchedule,
        *,
        detect_ps: int = ns(400),
        retry: RetryPolicy | None = None,
    ) -> None:
        if detect_ps < 0:
            raise ConfigurationError(f"detection latency must be >= 0, got {detect_ps}")
        self.schedule = schedule
        self.detect_ps = detect_ps
        self.retry = retry if retry is not None else RetryPolicy()
        self.counters = Counter()
        self.recovery_ps: list[int] = []
        self._network: BaseNetwork | None = None
        self._cursor = 0
        self._armed: Event | None = None
        self._awaiting: dict[Connection, int] = {}

    @property
    def active(self) -> bool:
        """True when the schedule holds at least one fault.

        Networks gate *all* recovery machinery on this, so an injector
        with an empty schedule (rate 0) changes nothing about a run.
        """
        return bool(self.schedule)

    # -- lifecycle ---------------------------------------------------------------

    def bind(self, network: BaseNetwork) -> None:
        """Attach to a network at run start and arm the first fault.

        Rebinding (a new run, possibly of a different scheme) resets all
        per-run state, so one injector can replay the identical storm
        against every scheme in a sweep.
        """
        self._network = network
        self._cursor = 0
        self._armed = None
        self._awaiting = {}
        self.counters = Counter()
        self.recovery_ps = []
        if self.active:
            self._arm_next()

    def _arm_next(self) -> None:
        net = self._network
        assert net is not None
        while self._cursor < len(self.schedule.events):
            ev = self.schedule.events[self._cursor]
            self._cursor += 1
            if ev.time_ps >= net.sim.now:
                self._armed = net.sim.schedule_at(
                    ev.time_ps, self._fire, ev, priority=Priority.FABRIC
                )
                return
            self.counters.inc("faults_missed")  # before current sim time
        self._armed = None

    # -- firing ------------------------------------------------------------------

    def _fire(self, ev: FaultEvent) -> None:
        net = self._network
        assert net is not None
        applied = self._dispatch(net, ev)
        key = ev.kind.value.replace("-", "_")
        if applied:
            self.counters.inc(f"applied_{key}")
        else:
            self.counters.inc(f"skipped_{key}")
        self._arm_next()

    def _dispatch(self, net: BaseNetwork, ev: FaultEvent) -> bool:
        if ev.kind is FaultKind.LINK_TRANSIENT:
            applied = net.fault_link_down(ev.port, ev.duration_ps)
            if applied:
                net.sim.schedule(
                    ev.duration_ps,
                    net.fault_link_up,
                    ev.port,
                    priority=Priority.FABRIC,
                )
            return applied
        if ev.kind is FaultKind.LINK_FAIL:
            return net.fault_link_dead(ev.port)
        if ev.kind is FaultKind.REG_STUCK:
            applied = net.fault_slot_stuck(ev.slot)
            if applied:
                # the scrubber notices the slot misbehaving detect_ps later
                net.sim.schedule(
                    self.detect_ps,
                    net.fault_slot_quarantine,
                    ev.slot,
                    priority=Priority.FABRIC,
                )
            return applied
        if ev.kind is FaultKind.REG_CORRUPT:
            return net.fault_slot_corrupt(ev.slot)
        if ev.kind is FaultKind.REQ_DROP:
            return net.fault_request_drop(ev.src, ev.dst)
        if ev.kind is FaultKind.SL_DEAD:
            return net.fault_sl_dead(ev.src, ev.dst)
        raise ConfigurationError(f"unknown fault kind {ev.kind!r}")  # pragma: no cover

    # -- recovery-latency bookkeeping ---------------------------------------------

    def note_disrupted(self, u: int, v: int) -> None:
        """A fault disrupted connection (u, v) with traffic still pending."""
        conn = (u, v)
        if conn not in self._awaiting:
            net = self._network
            assert net is not None
            self._awaiting[conn] = net.sim.now
            if net.tracer.enabled:
                net.tracer.record(net.sim.now, "recovery-open", src=u, dst=v)

    def note_progress(self, u: int, v: int) -> None:
        """Connection (u, v) moved bytes again — close its recovery window."""
        since = self._awaiting.pop((u, v), None)
        if since is not None:
            net = self._network
            assert net is not None
            latency = net.sim.now - since
            self.recovery_ps.append(latency)
            self.counters.inc("recoveries")
            if net.tracer.enabled:
                net.tracer.record(
                    net.sim.now, "recovery-closed", src=u, dst=v, latency_ps=latency
                )

    def cancel_awaiting(self, u: int, v: int) -> None:
        """Connection (u, v) was given up — it will never recover."""
        self._awaiting.pop((u, v), None)

    def cancel_awaiting_port(self, port: int) -> None:
        """A port died — none of its connections will recover."""
        for conn in [c for c in self._awaiting if port in c]:
            del self._awaiting[conn]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(events={len(self.schedule)}, cursor={self._cursor}, "
            f"detect_ps={self.detect_ps})"
        )

"""The fault model: what can break in the paper's switching plant.

The fault surface follows the Figure-1/Figure-2 hardware split:

* **links** — the serial LVDS pipes between a NIC and the crossbar.  A
  *transient* failure (connector glitch, clock slip) takes the port's
  links down for a bounded window; a *permanent* failure kills the port
  for the rest of the run.  Both directions of a port share a cable
  bundle, so a port fault affects traffic from *and* to the port.
* **configuration registers** — one of the K slot registers can get
  *stuck* (writes are lost, the frozen configuration keeps being applied
  until the management plane quarantines the slot) or *corrupted* (a
  detected parity error invalidates the slot's contents, evicting every
  connection cached there).
* **request wires** — a request-latch glitch loses one (u, v) request bit
  at the scheduler; the NIC still believes its request line is up, so
  only a NIC-side timeout can notice the connection is never granted.
* **SL cells** — one cell of the N x N scheduling-logic array dies: the
  dynamic scheduler can never again toggle that connection, and the
  management plane must place it in a slot directly.

Every fault is a plain frozen value object so fault timelines are
hashable, comparable, and trivially serialisable — the determinism
guarantees of :mod:`repro.faults.schedule` rest on that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FaultKind", "FaultEvent", "DEFAULT_WEIGHTS"]


class FaultKind(enum.Enum):
    """The six fault classes the injector can arm."""

    LINK_TRANSIENT = "link-transient"
    LINK_FAIL = "link-fail"
    REG_STUCK = "reg-stuck"
    REG_CORRUPT = "reg-corrupt"
    REQ_DROP = "req-drop"
    SL_DEAD = "sl-dead"


#: default mix of fault kinds (probability weights for the schedule
#: generator): glitches dominate, hard failures are rare — roughly the
#: shape of field failure data for board-level interconnect
DEFAULT_WEIGHTS: dict[FaultKind, float] = {
    FaultKind.LINK_TRANSIENT: 0.35,
    FaultKind.REQ_DROP: 0.25,
    FaultKind.REG_CORRUPT: 0.15,
    FaultKind.REG_STUCK: 0.10,
    FaultKind.SL_DEAD: 0.10,
    FaultKind.LINK_FAIL: 0.05,
}


@dataclass(slots=True, frozen=True)
class FaultEvent:
    """One scheduled fault.

    Field usage depends on ``kind``:

    =================  =========================================
    kind               meaningful fields
    =================  =========================================
    LINK_TRANSIENT     ``port``, ``duration_ps``
    LINK_FAIL          ``port``
    REG_STUCK          ``slot``
    REG_CORRUPT        ``slot``
    REQ_DROP           ``src``, ``dst``
    SL_DEAD            ``src``, ``dst``
    =================  =========================================

    Unused fields are ``-1`` / ``0`` so events stay comparable.
    """

    time_ps: int
    kind: FaultKind
    port: int = -1
    slot: int = -1
    src: int = -1
    dst: int = -1
    duration_ps: int = 0

    def describe(self) -> str:
        """One-line human-readable summary for traces and the CLI."""
        where = {
            FaultKind.LINK_TRANSIENT: lambda: (
                f"port {self.port} links down for {self.duration_ps / 1000:.0f} ns"
            ),
            FaultKind.LINK_FAIL: lambda: f"port {self.port} links dead",
            FaultKind.REG_STUCK: lambda: f"config register slot {self.slot} stuck",
            FaultKind.REG_CORRUPT: lambda: f"config register slot {self.slot} corrupted",
            FaultKind.REQ_DROP: lambda: f"request bit ({self.src} -> {self.dst}) lost",
            FaultKind.SL_DEAD: lambda: f"SL cell ({self.src}, {self.dst}) dead",
        }[self.kind]()
        return f"t={self.time_ps / 1000:.0f} ns: {where}"

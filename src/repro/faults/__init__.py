"""Fault injection, detection and recovery for the switching schemes.

The subsystem has three layers, each usable on its own:

* :mod:`repro.faults.model` / :mod:`repro.faults.schedule` — *what* goes
  wrong and *when*: frozen fault events and deterministic, seeded Poisson
  timelines (same seed, same storm, across every scheme);
* :mod:`repro.faults.injector` — *how* faults reach a simulation: one
  fault armed at a time on the event loop, dispatched through the network
  models' public ``fault_*`` hooks;
* :mod:`repro.faults.recovery` — *what the system does about it*:
  timeout/backoff policy for the NIC watchdogs, management-plane slot
  remapping, and graceful degradation from preloaded TDM to dynamic
  scheduling.

See ``docs/faults.md`` for the full fault model and the per-scheme
recovery semantics.
"""

from .injector import FaultInjector
from .model import DEFAULT_WEIGHTS, FaultEvent, FaultKind
from .recovery import RetryPolicy
from .schedule import FaultSchedule

__all__ = [
    "DEFAULT_WEIGHTS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "RetryPolicy",
]

"""Deterministic fault timelines.

A :class:`FaultSchedule` is the *entire* randomness of a fault campaign,
materialised up front: a sorted tuple of :class:`~repro.faults.model.FaultEvent`
drawn from the named RNG stream ``stream(seed, "faults")`` of
:mod:`repro.sim.rng`.  Because the schedule is generated before the
simulation starts and the injector consumes it in order, the same
``(seed, rate, horizon, system shape)`` always yields the bit-identical
fault timeline — across runs, across switching schemes, and across
refactors of the simulators themselves.  That is what makes degradation
numbers comparable between schemes: every scheme faces the *same* storm.

Fault arrivals form a Poisson process of the requested rate; kinds are
drawn from a weight table; locations (ports, slots, connections) are
uniform; transient-outage durations are exponential.  All times are exact
integer picoseconds (see :mod:`repro.sim.clock`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.clock import PS_PER_US, ns
from ..sim.rng import stream
from .model import DEFAULT_WEIGHTS, FaultEvent, FaultKind

__all__ = ["FaultSchedule"]

#: RNG stream name — deliberately disjoint from the traffic streams so a
#: fault campaign never perturbs the workload realisation.
STREAM_NAME = "faults"


@dataclass(slots=True, frozen=True)
class FaultSchedule:
    """An immutable, time-sorted fault timeline."""

    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        times = [e.time_ps for e in self.events]
        if times != sorted(times):
            raise ConfigurationError("fault schedule events must be time-sorted")

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @classmethod
    def generate(
        cls,
        *,
        seed: int,
        rate_per_us: float,
        horizon_ps: int,
        n_ports: int,
        k: int,
        weights: dict[FaultKind, float] | None = None,
        mean_transient_ps: int = ns(2_000),
    ) -> FaultSchedule:
        """Draw a Poisson fault timeline over ``[0, horizon_ps]``.

        ``rate_per_us`` is the aggregate arrival rate of faults of *all*
        kinds; ``weights`` splits it between kinds (kinds absent from the
        table are never drawn).  A rate of zero yields the empty schedule —
        the canonical "faults configured but disabled" campaign, which the
        injector treats as complete inactivity.
        """
        if rate_per_us < 0:
            raise ConfigurationError(f"fault rate must be >= 0, got {rate_per_us}")
        if horizon_ps < 0:
            raise ConfigurationError(f"fault horizon must be >= 0, got {horizon_ps}")
        if rate_per_us == 0 or horizon_ps == 0:
            return cls(events=())

        table = weights if weights is not None else DEFAULT_WEIGHTS
        kinds = [kind for kind, w in table.items() if w > 0]
        if not kinds:
            raise ConfigurationError("fault kind weight table is all zeros")
        total = sum(table[kind] for kind in kinds)
        probs = [table[kind] / total for kind in kinds]

        gen = stream(seed, STREAM_NAME)
        mean_gap_ps = PS_PER_US / rate_per_us
        events: list[FaultEvent] = []
        t = 0
        while True:
            t += max(1, round(float(gen.exponential(mean_gap_ps))))
            if t > horizon_ps:
                break
            kind = kinds[int(gen.choice(len(kinds), p=probs))]
            port = slot = src = dst = -1
            duration_ps = 0
            if kind in (FaultKind.LINK_TRANSIENT, FaultKind.LINK_FAIL):
                port = int(gen.integers(n_ports))
                if kind is FaultKind.LINK_TRANSIENT:
                    duration_ps = max(
                        1, round(float(gen.exponential(mean_transient_ps)))
                    )
            elif kind in (FaultKind.REG_STUCK, FaultKind.REG_CORRUPT):
                slot = int(gen.integers(k))
            else:  # REQ_DROP, SL_DEAD — pick a connection (u, v), u != v
                src = int(gen.integers(n_ports))
                dst = int(gen.integers(n_ports - 1))
                if dst >= src:
                    dst += 1
            events.append(
                FaultEvent(
                    time_ps=t,
                    kind=kind,
                    port=port,
                    slot=slot,
                    src=src,
                    dst=dst,
                    duration_ps=duration_ps,
                )
            )
        return cls(events=tuple(events))

    def describe(self) -> str:
        """Multi-line summary of the timeline, one event per line."""
        if not self.events:
            return "(empty fault schedule)"
        return "\n".join(e.describe() for e in self.events)

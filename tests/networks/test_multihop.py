"""Unit tests for the multi-hop extension model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.networks.multihop import MultiHopModel
from repro.params import PAPER_PARAMS


@pytest.fixture
def model():
    return MultiHopModel(PAPER_PARAMS, msg_bytes=512, k=4)


class TestValidation:
    def test_bad_message_size(self):
        with pytest.raises(ConfigurationError):
            MultiHopModel(PAPER_PARAMS, msg_bytes=0)

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            MultiHopModel(PAPER_PARAMS, msg_bytes=64, k=0)

    def test_bad_hops(self, model):
        with pytest.raises(ConfigurationError):
            model.compare(0)


class TestSingleHopConsistency:
    """At one hop the model must agree with the single-crossbar accounting."""

    def test_tdm_path_fill_matches_pipe_latency(self, model):
        assert model.tdm_path_fill_ps(1) == PAPER_PARAMS.pipe_latency_ps

    def test_tdm_establishment_matches_circuit_setup(self, model):
        assert model.tdm_establishment_ps(1) == PAPER_PARAMS.circuit_setup_ps

    def test_wormhole_single_worm_matches_network_model(self):
        """One 64-byte message, one hop: same number as WormholeNetwork."""
        from repro.networks.wormhole import WormholeNetwork
        from repro.traffic.base import TrafficPhase, assign_seq
        from repro.types import Message

        params = PAPER_PARAMS.with_overrides(n_ports=8)
        model = MultiHopModel(params, msg_bytes=64)
        phase = TrafficPhase("t", [Message(src=0, dst=1, size=64)])
        assign_seq([phase])
        result = WormholeNetwork(params).run([phase])
        assert model.wormhole_message_ps(1) == result.records[0].done_ps


class TestScalingWithHops:
    def test_wormhole_latency_grows_faster(self, model):
        """Per-hop arbitration makes wormhole latency grow ~110 ns/hop
        while the passive TDM pipe grows only ~20 ns/hop."""
        tdm_growth = model.tdm_cached_message_ps(8) - model.tdm_cached_message_ps(1)
        worm_growth = model.wormhole_message_ps(8) - model.wormhole_message_ps(1)
        assert worm_growth > 4 * tdm_growth

    def test_tdm_stream_efficiency_hop_invariant(self, model):
        assert model.tdm_stream_efficiency(1) == model.tdm_stream_efficiency(8)

    def test_wormhole_buffering_grows(self, model):
        assert model.wormhole_buffer_bytes(8) == 8 * PAPER_PARAMS.worm_max_bytes
        assert model.compare(4).tdm_buffer_bytes == 0

    def test_establishment_grows_per_hop(self, model):
        delta = model.tdm_establishment_ps(5) - model.tdm_establishment_ps(4)
        assert delta == PAPER_PARAMS.scheduler_pass_ps


class TestComparison:
    def test_sweep_shape(self, model):
        rows = model.sweep((1, 2, 4))
        assert [r.hops for r in rows] == [1, 2, 4]
        # the cached TDM message is always cheaper than wormhole beyond 1 hop
        for r in rows[1:]:
            assert r.tdm_cached_message_ns < r.wormhole_message_ns

    def test_streaming_advantage(self, model):
        """512 B streams at 512/(7*80) over TDM; wormhole caps at 160/240."""
        c = model.compare(4)
        assert c.tdm_stream_efficiency == pytest.approx(512 / (7 * 80))
        assert c.wormhole_stream_efficiency == pytest.approx(160 / 240)
        assert c.tdm_stream_efficiency > c.wormhole_stream_efficiency

    def test_crossover_shrinks_with_hops(self, model):
        """More hops -> wormhole pays more per message -> fewer reuses
        needed to amortise the TDM establishment."""
        reuses = [model.crossover_reuses(h) for h in (2, 4, 8)]
        assert reuses == sorted(reuses, reverse=True)
        assert all(r >= 1 for r in reuses)

    def test_small_message_single_hop_wormhole_wins_latency(self):
        """At one hop and tiny messages, wormhole's one-shot latency can
        beat TDM's slot alignment — the regime the paper concedes."""
        model = MultiHopModel(PAPER_PARAMS, msg_bytes=8)
        c = model.compare(1)
        assert c.wormhole_message_ns < c.tdm_first_message_ns

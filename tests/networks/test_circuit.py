"""Unit tests for the circuit-switching baseline."""

from __future__ import annotations

import pytest

from repro.networks.circuit import CircuitNetwork
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.scatter import ScatterPattern
from repro.traffic.synthetic import UniformRandomPattern
from repro.types import Message


@pytest.fixture
def params():
    return PAPER_PARAMS.with_overrides(n_ports=8)


def _phase(messages):
    phase = TrafficPhase("test", messages)
    assign_seq([phase])
    return phase


class TestSingleMessage:
    def test_delivery(self, params):
        net = CircuitNetwork(params)
        result = net.run([_phase([Message(src=0, dst=1, size=80)])])
        assert len(result.records) == 1
        rec = result.records[0]
        # setup (req wire + pass + grant wire) + serialisation + pipe
        expected_min = (
            params.circuit_setup_ps
            + params.message_bytes_ps(80)
            + params.pipe_latency_ps
        )
        assert rec.done_ps >= expected_min
        # the SL clock quantises the pass, so allow one extra period
        assert rec.done_ps <= expected_min + 2 * params.scheduler_pass_ps

    def test_counters(self, params):
        net = CircuitNetwork(params)
        result = net.run([_phase([Message(src=0, dst=1, size=80)])])
        assert result.counters["circuits_established"] == 1


class TestCircuitReuse:
    def test_same_destination_reuses_circuit(self, params):
        msgs = [Message(src=0, dst=1, size=80) for _ in range(4)]
        net = CircuitNetwork(params)
        result = net.run([_phase(msgs)])
        assert len(result.records) == 4
        # only the first message pays establishment
        assert result.counters["circuits_established"] == 1

    def test_different_destinations_reestablish(self, params):
        msgs = [Message(src=0, dst=v, size=80) for v in (1, 2, 3)]
        net = CircuitNetwork(params)
        result = net.run([_phase(msgs)])
        assert result.counters["circuits_established"] == 3

    def test_reuse_is_faster(self, params):
        same = [Message(src=0, dst=1, size=80) for _ in range(8)]
        diff = [Message(src=0, dst=1 + (i % 4), size=80) for i in range(8)]
        r_same = CircuitNetwork(params).run([_phase(same)])
        r_diff = CircuitNetwork(params).run([_phase(diff)])
        assert r_same.makespan_ps < r_diff.makespan_ps


class TestContention:
    def test_output_contention_serialises(self, params):
        msgs = [Message(src=u, dst=7, size=80) for u in range(4)]
        net = CircuitNetwork(params)
        result = net.run([_phase(msgs)])
        assert len(result.records) == 4
        # four circuits through one output port strictly serialise
        finish_times = sorted(r.done_ps for r in result.records)
        gaps = [b - a for a, b in zip(finish_times, finish_times[1:])]
        assert all(g >= params.message_bytes_ps(80) for g in gaps)

    def test_disjoint_pairs_parallel(self, params):
        msgs = [Message(src=u, dst=u + 4, size=800) for u in range(4)]
        net = CircuitNetwork(params)
        result = net.run([_phase(msgs)])
        serial_time = 4 * params.message_bytes_ps(800)
        assert result.makespan_ps < serial_time  # clearly overlapped

    def test_input_serialisation(self, params):
        """One source cannot hold two circuits at once."""
        msgs = [Message(src=0, dst=1, size=800), Message(src=0, dst=2, size=800)]
        net = CircuitNetwork(params)
        result = net.run([_phase(msgs)])
        assert result.makespan_ps > 2 * params.message_bytes_ps(800)


class TestWorkloads:
    def test_scatter_completes(self, params):
        net = CircuitNetwork(params)
        result = net.run(ScatterPattern(8, 64).phases(RngStreams(0)))
        assert len(result.records) == 7

    def test_uniform_completes_and_conserves(self, params):
        pattern = UniformRandomPattern(8, 128, messages_per_node=4)
        net = CircuitNetwork(params)
        result = net.run(pattern.phases(RngStreams(2)))
        assert len(result.records) == 32
        assert net.ledger.total_delivered == 32 * 128

    def test_large_messages_efficient(self, params):
        """Setup cost amortises for large transfers (paper's observation)."""
        from repro.metrics.efficiency import efficiency

        small_pat = UniformRandomPattern(8, 64, messages_per_node=4)
        large_pat = UniformRandomPattern(8, 4096, messages_per_node=4)
        small_phases = small_pat.phases(RngStreams(3))
        large_phases = large_pat.phases(RngStreams(3))
        r_small = CircuitNetwork(params).run(small_phases)
        r_large = CircuitNetwork(params).run(large_phases)
        assert efficiency(r_large, large_phases) > efficiency(r_small, small_phases)

"""Tests for multi-hop TDM over switch graphs (repro.networks.multiswitch).

Covers the scale-out acceptance bar: byte-identical determinism across
invocations and job counts, flow conservation under a seeded per-hop
trunk-fault campaign, the explicit fast-path fallback, and the
cross-validation regression pinning the simulator to the analytic
:class:`~repro.networks.multihop.MultiHopModel` within one TDM slot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.networks.multihop import MultiHopModel
from repro.networks.multiswitch import MultiSwitchTdmNetwork
from repro.networks.registry import RunSpec, build_network, get_scheme, run_scheme
from repro.params import PAPER_PARAMS
from repro.topo import fat_tree, full_mesh, line
from repro.traffic.base import TrafficPhase
from repro.types import Message

PARAMS64 = PAPER_PARAMS.with_overrides(n_ports=64)


def _mesh64():
    return full_mesh(64, n_switches=16, links_per_pair=4)


def _workload(n=64, count=300, seed=11):
    """Fresh Message objects every call — messages are single-use."""
    gen = np.random.default_rng(seed)
    msgs, t = [], 0
    for _ in range(count):
        u = int(gen.integers(0, n))
        v = int(gen.integers(0, n - 1))
        if v >= u:
            v += 1
        t += int(gen.integers(0, 30_000))
        msgs.append(Message(src=u, dst=v, size=int(gen.integers(40, 400)), inject_ps=t))
    return [TrafficPhase("load", msgs)]


def _signature(result):
    return [
        (r.src, r.dst, r.inject_ps, r.start_ps, r.done_ps) for r in result.records
    ]


class TestCrossValidation:
    """Satellite: simulated multi-hop TDM vs the analytic MultiHopModel.

    Contention-free first-message and cached-message latencies must agree
    within one slot for every hop count.  The ``line(h)`` topology forces
    exactly ``h`` switches onto the circuit's path.
    """

    @pytest.mark.parametrize("hops", [1, 2, 3, 4])
    def test_first_message_within_one_slot(self, hops):
        params = PAPER_PARAMS.with_overrides(n_ports=2)
        model = MultiHopModel(params, 80)
        net = MultiSwitchTdmNetwork(params, topology=line(hops), strict=True)
        res = net.run([TrafficPhase("p", [Message(src=0, dst=1, size=80, inject_ps=0)])])
        assert len(res.records) == 1
        diff = abs(res.records[0].done_ps - model.tdm_first_message_ps(hops))
        assert diff < params.slot_ps

    @pytest.mark.parametrize("hops", [1, 2, 3, 4])
    def test_cached_message_within_one_slot(self, hops):
        params = PAPER_PARAMS.with_overrides(n_ports=2)
        model = MultiHopModel(params, 80)
        # probe run: when does the first message's slot actually drain?
        probe = MultiSwitchTdmNetwork(params, topology=line(hops), strict=True)
        res0 = probe.run(
            [TrafficPhase("p", [Message(src=0, dst=1, size=80, inject_ps=0)])]
        )
        # the second message lands just after the drain, inside the cached
        # window (the circuit still holds its slots on every hop)
        inj2 = res0.records[0].start_ps + 30_000
        net = MultiSwitchTdmNetwork(params, topology=line(hops), strict=True)
        res = net.run(
            [
                TrafficPhase(
                    "p",
                    [
                        Message(src=0, dst=1, size=80, inject_ps=0),
                        Message(src=0, dst=1, size=80, inject_ps=inj2),
                    ],
                )
            ]
        )
        rec2 = [r for r in res.records if r.inject_ps == inj2][0]
        diff = abs((rec2.done_ps - inj2) - model.tdm_cached_message_ps(hops))
        assert diff < params.slot_ps

    def test_establishment_latency_is_exact(self):
        """Contention-free establishment = request + h passes + grant."""
        params = PAPER_PARAMS.with_overrides(n_ports=2)
        model = MultiHopModel(params, 80)
        for hops in (1, 2, 3):
            net = MultiSwitchTdmNetwork(params, topology=line(hops), strict=True)
            res = net.run(
                [TrafficPhase("p", [Message(src=0, dst=1, size=80, inject_ps=0)])]
            )
            assert res.counters["est_latency_count"] == 1
            assert (
                res.counters["est_latency_sum_ps"]
                == model.tdm_establishment_ps(hops)
            )


class TestDeterminism:
    def test_double_run_byte_identical(self):
        r1 = MultiSwitchTdmNetwork(PARAMS64, topology=_mesh64(), strict=True).run(
            _workload()
        )
        r2 = MultiSwitchTdmNetwork(PARAMS64, topology=_mesh64(), strict=True).run(
            _workload()
        )
        assert _signature(r1) == _signature(r2)
        assert r1.counters == r2.counters

    def test_fattree_double_run_byte_identical(self):
        topo = lambda: fat_tree(64, leaf_size=16, taper=1)
        r1 = MultiSwitchTdmNetwork(PARAMS64, topology=topo(), strict=True).run(
            _workload()
        )
        r2 = MultiSwitchTdmNetwork(PARAMS64, topology=topo(), strict=True).run(
            _workload()
        )
        assert _signature(r1) == _signature(r2)

    def test_scaleout_jobs_invariant(self):
        """The scale-out sweep is bit-identical across worker counts."""
        from repro.experiments.scaleout import run_scaleout

        kwargs = dict(
            endpoints=(64,), messages_per_endpoint=2, cache=False, faults=True
        )
        serial = run_scaleout(jobs=1, **kwargs)
        fanned = run_scaleout(jobs=8, **kwargs)
        assert serial.points == fanned.points
        assert serial.csv() == fanned.csv()

    def test_scaleout_fast_fallback_surfaced(self, monkeypatch):
        """Fast mode on a multi-switch sweep falls back to the event path;
        the summary says so (count + reason), the CSV stays byte-identical
        — that identity is the fallback's correctness contract."""
        from repro.experiments.scaleout import run_scaleout
        from repro.sim.fastpath import FAST_ENV_VAR, MULTI_SWITCH_FALLBACK

        kwargs = dict(
            endpoints=(64,), messages_per_endpoint=2, cache=False,
            faults=False, jobs=1,
        )
        monkeypatch.delenv(FAST_ENV_VAR, raising=False)
        plain = run_scaleout(**kwargs)
        assert "fast mode" not in plain.format()
        monkeypatch.setenv(FAST_ENV_VAR, "1")
        fast = run_scaleout(**kwargs)
        assert fast.csv() == plain.csv()
        summary = fast.format()
        assert f"fast mode: {len(fast.points)}/{len(fast.points)}" in summary
        assert MULTI_SWITCH_FALLBACK in summary
        assert all(p.fastpath_fallbacks == 1 for p in fast.points)


class TestConservationAndFaults:
    def test_all_messages_delivered_healthy(self):
        res = MultiSwitchTdmNetwork(PARAMS64, topology=_mesh64(), strict=True).run(
            _workload()
        )
        assert len(res.records) == 300
        assert not res.drops

    def test_trunk_fault_campaign_conserves(self):
        """Per-hop faults: every byte is delivered or an explicit drop."""
        faults = (
            (400_000, 3, "down", 500_000),
            (800_000, 17, "down", 400_000),
            (1_200_000, 3, "dead", 0),
            (2_000_000, 44, "down", 300_000),
            (3_000_000, 17, "dead", 0),
        )

        def run_once():
            net = MultiSwitchTdmNetwork(
                PARAMS64,
                topology=_mesh64(),
                strict=True,
                trunk_faults=faults,
                faults=FaultInjector(FaultSchedule(events=())),
            )
            return net.run(_workload())

        r1 = run_once()
        # run() already asserts ledger conservation; check accounting too
        assert len(r1.records) + len(r1.drops) == 300
        assert r1.counters["fault_trunk_transients"] == 3
        assert r1.counters["fault_trunk_dead"] == 2
        # the campaign replays deterministically
        r2 = run_once()
        assert _signature(r1) == _signature(r2)
        assert r1.counters == r2.counters

    def test_trunk_fault_plan_validated(self):
        with pytest.raises(ConfigurationError):
            MultiSwitchTdmNetwork(
                PARAMS64,
                topology=_mesh64(),
                trunk_faults=((0, 9999, "down", 100),),
                faults=FaultInjector(FaultSchedule(events=())),
            )
        with pytest.raises(ConfigurationError):
            MultiSwitchTdmNetwork(
                PARAMS64,
                topology=_mesh64(),
                trunk_faults=((0, 1, "explode", 100),),
                faults=FaultInjector(FaultSchedule(events=())),
            )
        with pytest.raises(ConfigurationError):
            # a plan without an injector has no recovery ladder to ride
            MultiSwitchTdmNetwork(
                PARAMS64,
                topology=_mesh64(),
                trunk_faults=((0, 1, "down", 100),),
            )

    def test_dead_trunk_reroutes_over_mesh(self):
        """Killing every parallel link of one trunk must not drop traffic:
        the mesh reroutes through an intermediate switch."""
        topo = _mesh64()
        # endpoints 0 (switch 0) and 4 (switch 1): kill trunk (0, 1)
        victim_links = topo.trunk_links(0, 1)
        plan = tuple((200_000, link, "dead", 0) for link in victim_links)
        msgs = [
            Message(src=0, dst=4, size=200, inject_ps=1_000_000 + 40_000 * i)
            for i in range(4)
        ]
        net = MultiSwitchTdmNetwork(
            PARAMS64,
            topology=topo,
            strict=True,
            trunk_faults=plan,
            faults=FaultInjector(FaultSchedule(events=())),
        )
        res = net.run([TrafficPhase("p", msgs)])
        assert len(res.records) == 4  # all delivered via a 3-switch detour


class TestFastPathFallback:
    def test_fast_mode_falls_back_byte_identically(self):
        slow = MultiSwitchTdmNetwork(
            PARAMS64, topology=_mesh64(), strict=True, fast=False
        ).run(_workload())
        fast = MultiSwitchTdmNetwork(
            PARAMS64, topology=_mesh64(), strict=True, fast=True
        ).run(_workload())
        assert _signature(slow) == _signature(fast)
        # the fallback is explicit, never a silent wrong-path execution
        assert fast.counters["fastpath_fallback"] == 1
        assert "fastpath_fallback" not in slow.counters


class TestRegistryIntegration:
    def test_composite_schemes_resolve_like_paper_schemes(self):
        for scheme in ("mesh-tdm", "fattree-tdm"):
            caps = get_scheme(scheme).capabilities
            assert caps.multi_switch
            assert caps.fault_recovery
            net = build_network(RunSpec(scheme=scheme, params=PARAMS64))
            assert isinstance(net, MultiSwitchTdmNetwork)
            assert net.scheme == scheme

    def test_alias_and_topology_options(self):
        res = run_scheme(
            RunSpec(
                scheme="fm16-tdm",
                params=PARAMS64,
                strict=True,
                options={"links_per_pair": 2},
            ),
            _workload(count=60),
        )
        assert res.counters["topo_trunk_links"] == 16 * 15 // 2 * 2
        assert len(res.records) == 60

    def test_single_switch_guards(self):
        # TdmNetwork refuses a multi-switch topology...
        from repro.networks.tdm import TdmNetwork

        with pytest.raises(ConfigurationError):
            TdmNetwork(PARAMS64, topology=_mesh64())
        # ...and the endpoint count must match params.n_ports
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            MultiSwitchTdmNetwork(
                PAPER_PARAMS.with_overrides(n_ports=128), topology=_mesh64()
            )


class TestSchedulingInternals:
    def test_shared_cell_different_slots_release_safely(self):
        """Two circuits may hold the same (in, out) cell in different
        slots; tearing one down must not expose the other to the owning
        switch's autonomous release (the latch is reference-counted)."""
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        # 2-switch line variant: endpoints 0,1 home on switch 0; 2,3 on 1
        topo = full_mesh(4, n_switches=2, links_per_pair=1)
        # (0 -> 2) and (1 -> 3) share the single trunk link on both ends;
        # staggered finish forces one teardown while the other stays up
        msgs = [
            Message(src=0, dst=2, size=80, inject_ps=0),
            Message(src=1, dst=3, size=80, inject_ps=0),
            Message(src=1, dst=3, size=2000, inject_ps=10_000),
            Message(src=1, dst=3, size=2000, inject_ps=700_000),
        ]
        net = MultiSwitchTdmNetwork(params, topology=topo, strict=True)
        res = net.run([TrafficPhase("p", msgs)])
        assert len(res.records) == 4

    def test_coordinator_resolves_contention(self):
        """A hot-spot workload must fall through to the coordinator and
        still deliver everything."""
        res = MultiSwitchTdmNetwork(
            PARAMS64, topology=_mesh64(), strict=True
        ).run(_workload(count=500, seed=3))
        assert len(res.records) == 500
        assert res.counters["circuit_naks"] > 0

    def test_counters_expose_topology(self):
        res = MultiSwitchTdmNetwork(PARAMS64, topology=_mesh64(), strict=True).run(
            _workload(count=50)
        )
        assert res.counters["topo_switches"] == 16
        assert res.counters["topo_diameter"] == 2
        assert res.counters["topo_trunk_links"] == 480
        assert res.counters["slot_transfers"] > 0
        # per-switch SL counters aggregate under the sl_ prefix
        assert res.counters["sl_establishes"] >= res.counters["circuits_established"] - res.counters["circuits_coordinated"]

"""Unit tests for the scheme registry (`repro.networks.registry`)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultSchedule
from repro.networks.circuit import CircuitNetwork
from repro.networks.ideal import IdealNetwork
from repro.networks.registry import (
    DEFAULT_INJECTION_WINDOW,
    DEFAULT_K,
    RunSpec,
    build_network,
    get_scheme,
    register_scheme,
    resolve_scheme_name,
    run_scheme,
    scheme_names,
)
from repro.networks.tdm import TdmNetwork
from repro.networks.wormhole import WormholeNetwork
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.scatter import ScatterPattern

PARAMS = PAPER_PARAMS.with_overrides(n_ports=8)


class TestResolution:
    def test_canonical_names_registered(self):
        assert set(scheme_names()) >= {
            "wormhole",
            "circuit",
            "dynamic-tdm",
            "preload",
            "hybrid",
            "ideal",
        }

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("tdm", "dynamic-tdm"),
            ("dynamic", "dynamic-tdm"),
            ("tdm-dynamic", "dynamic-tdm"),
            ("tdm-preload", "preload"),
            ("tdm-hybrid", "hybrid"),
            ("wormhole", "wormhole"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_scheme_name(alias) == canonical

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            resolve_scheme_name("carrier-pigeon")
        with pytest.raises(ConfigurationError):
            build_network(RunSpec("carrier-pigeon", PARAMS))

    def test_duplicate_name_rejected(self):
        info = get_scheme("wormhole")
        with pytest.raises(ConfigurationError):
            register_scheme(
                "wormhole", info.factory, capabilities=info.capabilities
            )

    def test_duplicate_alias_rejected(self):
        info = get_scheme("wormhole")
        with pytest.raises(ConfigurationError):
            register_scheme(
                "wormhole2",
                info.factory,
                aliases=("tdm",),  # taken by dynamic-tdm
                capabilities=info.capabilities,
            )


class TestConstruction:
    def test_wormhole(self):
        assert isinstance(build_network(RunSpec("wormhole", PARAMS)), WormholeNetwork)

    def test_circuit(self):
        assert isinstance(build_network(RunSpec("circuit", PARAMS)), CircuitNetwork)

    def test_ideal(self):
        assert isinstance(build_network(RunSpec("ideal", PARAMS)), IdealNetwork)

    def test_ideal_rejects_faults(self):
        inj = FaultInjector(FaultSchedule(events=()))
        with pytest.raises(ConfigurationError):
            build_network(RunSpec("ideal", PARAMS, faults=inj))

    @pytest.mark.parametrize(
        "scheme, mode", [("dynamic-tdm", "dynamic"), ("preload", "preload")]
    )
    def test_tdm_modes(self, scheme, mode):
        net = build_network(RunSpec(scheme, PARAMS, k=3, injection_window=2))
        assert isinstance(net, TdmNetwork)
        assert net.mode == mode
        assert net.k == 3
        assert net.injection_window == 2

    def test_hybrid_preload_split(self):
        net = build_network(RunSpec("hybrid", PARAMS, k=4, k_preload=2))
        assert isinstance(net, TdmNetwork)
        assert net.mode == "hybrid"
        assert (net.k, net.k_preload) == (4, 2)

    def test_options_forwarded(self):
        net = build_network(
            RunSpec("dynamic-tdm", PARAMS, options={"n_sl_units": 2})
        )
        assert isinstance(net, TdmNetwork)

    def test_unknown_option_surfaces_as_typeerror(self):
        with pytest.raises(TypeError):
            build_network(RunSpec("wormhole", PARAMS, options={"bogus": 1}))


class TestCanonicalDefaults:
    """Pin the shared TDM defaults so experiments cannot silently diverge.

    Figure 4 and the fault campaigns must measure the *same* networks;
    both now resolve through :func:`figure4_schemes` and this registry,
    and these tests pin the defaults they agree on.
    """

    def test_registry_defaults(self):
        assert DEFAULT_K == 4
        assert DEFAULT_INJECTION_WINDOW == 4
        spec = RunSpec("dynamic-tdm", PARAMS)
        net = build_network(spec)
        assert (net.k, net.injection_window) == (4, 4)

    def test_figure4_and_faults_build_identical_tdm_config(self):
        from repro.experiments.common import figure4_schemes
        from repro.experiments.faults import _scheme_factories

        fig4 = figure4_schemes(PARAMS)
        campaign = _scheme_factories(PARAMS, k=4, injection_window=4)
        assert set(fig4) == set(campaign) == {
            "wormhole",
            "circuit",
            "dynamic-tdm",
            "preload",
        }
        for name in ("dynamic-tdm", "preload"):
            a = fig4[name]()
            b = campaign[name](None)
            assert type(a) is type(b) is TdmNetwork
            assert (a.k, a.mode, a.injection_window, a.k_preload) == (
                b.k,
                b.mode,
                b.injection_window,
                b.k_preload,
            )
            # the canonical configuration itself, pinned
            assert (a.k, a.injection_window) == (4, 4)


class TestRunScheme:
    def test_run_scheme_end_to_end(self):
        pattern = ScatterPattern(PARAMS.n_ports, size_bytes=64)
        phases = pattern.phases(RngStreams(0))
        result = run_scheme(
            RunSpec("wormhole", PARAMS), phases, pattern_name=pattern.name
        )
        assert result.scheme == "wormhole"
        assert len(result.records) == sum(len(p.messages) for p in phases)

"""Unit tests for the network base class and the ideal network."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.networks.ideal import IdealNetwork, bottleneck_lower_bound_ps
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.scatter import ScatterPattern
from repro.types import Message


@pytest.fixture
def params():
    return PAPER_PARAMS.with_overrides(n_ports=8)


def _phase(messages):
    phase = TrafficPhase("test", messages)
    assign_seq([phase])
    return phase


class TestLowerBound:
    def test_single_message(self, params):
        phase = _phase([Message(src=0, dst=1, size=100)])
        assert bottleneck_lower_bound_ps(phase, params) == 100 * 1250

    def test_fanout_bottleneck_is_source(self, params):
        phase = _phase([Message(src=0, dst=v, size=100) for v in range(1, 4)])
        assert bottleneck_lower_bound_ps(phase, params) == 300 * 1250

    def test_fanin_bottleneck_is_destination(self, params):
        phase = _phase([Message(src=u, dst=0, size=100) for u in range(1, 4)])
        assert bottleneck_lower_bound_ps(phase, params) == 300 * 1250

    def test_permutation_bottleneck_is_one_message(self, params):
        phase = _phase(
            [Message(src=u, dst=(u + 1) % 8, size=100) for u in range(8)]
        )
        assert bottleneck_lower_bound_ps(phase, params) == 100 * 1250


class TestIdealNetwork:
    def test_runs_at_bound(self, params):
        pattern = ScatterPattern(8, 64)
        phases = pattern.phases(RngStreams(0))
        bound = sum(bottleneck_lower_bound_ps(p, params) for p in phases)
        net = IdealNetwork(params)
        result = net.run(phases)
        assert result.makespan_ps == bound
        assert result.total_bytes == 7 * 64

    def test_conservation_checked(self, params):
        net = IdealNetwork(params)
        phases = ScatterPattern(8, 64).phases(RngStreams(0))
        result = net.run(phases)
        assert len(result.records) == 7

    def test_multi_phase_accumulates(self, params):
        net = IdealNetwork(params)
        a = _phase([Message(src=0, dst=1, size=80)])
        b = _phase([Message(src=1, dst=2, size=80)])
        b.messages[0].seq = 1
        result = net.run([a, b])
        assert len(result.phases) == 2
        assert result.phases[1].start_ps == result.phases[0].end_ps
        assert result.makespan_ps == 2 * 80 * 1250

    def test_empty_run_rejected(self, params):
        with pytest.raises(SimulationError):
            IdealNetwork(params).run([])

    def test_latency_stats(self, params):
        net = IdealNetwork(params)
        result = net.run(ScatterPattern(8, 64).phases(RngStreams(0)))
        stats = result.latency_stats()
        assert stats.count == 7
        assert stats.maximum <= result.makespan_ps

    def test_throughput_property(self, params):
        net = IdealNetwork(params)
        result = net.run(ScatterPattern(8, 80).phases(RngStreams(0)))
        # the source link runs at exactly 0.8 bytes/ns for the whole run
        assert result.throughput_bytes_per_ns == pytest.approx(0.8)


class TestIdealWithStaggeredInjection:
    def test_future_injects_respected(self, params):
        from repro.traffic.base import TrafficPhase, assign_seq

        phase = TrafficPhase(
            "staggered",
            [
                Message(src=0, dst=1, size=80),
                Message(src=0, dst=2, size=80, inject_ps=1_000_000),
            ],
        )
        assign_seq([phase])
        net = IdealNetwork(params)
        result = net.run([phase])
        late = next(r for r in result.records if r.dst == 2)
        assert late.start_ps >= 1_000_000
        assert late.done_ps == late.start_ps + 80 * 1250

    def test_makespan_at_least_bound(self, params):
        from repro.traffic.base import TrafficPhase, assign_seq

        phase = TrafficPhase(
            "mixed",
            [
                Message(src=0, dst=1, size=400),
                Message(src=2, dst=3, size=80, inject_ps=10_000),
            ],
        )
        assign_seq([phase])
        bound = bottleneck_lower_bound_ps(phase, params)
        result = IdealNetwork(params).run([phase])
        assert result.makespan_ps >= bound


class TestSizeMismatchGuard:
    def test_oversized_pattern_rejected_clearly(self, params):
        from repro.networks.tdm import TdmNetwork
        from repro.traffic.base import TrafficPhase, assign_seq

        phase = TrafficPhase("big", [Message(src=0, dst=12, size=64)])
        assign_seq([phase])
        net = TdmNetwork(params, k=2, mode="dynamic")  # params has 8 ports
        with pytest.raises(SimulationError, match="size mismatch"):
            net.run([phase])

    def test_windowed_path_also_guarded(self, params):
        from repro.errors import SchedulingError
        from repro.networks.tdm import TdmNetwork
        from repro.traffic.base import TrafficPhase, assign_seq

        phase = TrafficPhase("big", [Message(src=0, dst=12, size=64)])
        assign_seq([phase])
        net = TdmNetwork(params, k=2, mode="dynamic", injection_window=2)
        with pytest.raises(SchedulingError, match="size mismatch"):
            net.run([phase])

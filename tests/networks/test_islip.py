"""Tests for the iSLIP baseline: matcher properties and bake-off behaviour."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figure4 import figure4_patterns
from repro.metrics.efficiency import run_lower_bound_ps
from repro.networks.islip import IslipNetwork
from repro.networks.registry import RunSpec, build_network, run_scheme
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase
from repro.types import Message

N = 8
PARAMS = PAPER_PARAMS.with_overrides(n_ports=N)


def _saturating_phase(slots_per_edge: int = 40) -> TrafficPhase:
    """Every input holds traffic for every output from t=0 — sustained
    uniform saturation, the regime of the 100%-throughput result."""
    size = slots_per_edge * PARAMS.slot_bytes
    msgs = [
        Message(src=u, dst=v, size=size, inject_ps=0)
        for u in range(N)
        for v in range(N)
        if u != v
    ]
    return TrafficPhase("saturate", msgs)


class TestConstruction:
    def test_registry_builds_islip(self):
        net = build_network(RunSpec(scheme="islip", params=PARAMS))
        assert isinstance(net, IslipNetwork)
        assert net.scheme == "islip"

    def test_faults_rejected(self):
        from repro.faults.injector import FaultInjector
        from repro.faults.schedule import FaultSchedule

        faults = FaultInjector(FaultSchedule(events=()))
        with pytest.raises(ConfigurationError, match="fault"):
            build_network(RunSpec(scheme="islip", params=PARAMS, faults=faults))

    def test_iterations_validated(self):
        with pytest.raises(ConfigurationError, match="iteration"):
            build_network(
                RunSpec(scheme="islip", params=PARAMS, options={"iterations": 0})
            )


class TestDesynchronisation:
    """The pointer rule's fixed point: full matches every slot under
    sustained uniform load, after a short ramp."""

    def test_steady_state_full_matches(self):
        net = build_network(RunSpec(scheme="islip", params=PARAMS))
        assert isinstance(net, IslipNetwork)
        result = net.run([_saturating_phase()], pattern_name="saturate")
        assert len(result.records) == N * (N - 1)
        counts = net.slot_match_counts
        # after a short desynchronisation ramp the matcher must lock into
        # full n-port matches and hold them until the queues start draining:
        # the longest streak of full matches dominates the run
        streak = best = 0
        for c in counts:
            streak = streak + 1 if c == N else 0
            best = max(best, streak)
        assert best >= len(counts) // 2
        # the ramp is short: full matches appear within the first 8 slots
        assert N in counts[:8]

    def test_two_iterations_beat_one_during_ramp(self):
        """Extra iterations fill conflict holes before desynchronisation."""

        def ramp_matches(iterations: int) -> int:
            net = build_network(
                RunSpec(
                    scheme="islip",
                    params=PARAMS,
                    options={"iterations": iterations},
                )
            )
            assert isinstance(net, IslipNetwork)
            net.run([_saturating_phase(slots_per_edge=8)], pattern_name="ramp")
            return sum(net.slot_match_counts[:8])

        assert ramp_matches(2) >= ramp_matches(1)

    def test_single_iteration_keeps_high_throughput(self):
        """One iteration still sustains near-full matches once the pointers
        spread out (it settles into an 8,6,8,6 limit cycle on this
        diagonal-free workload rather than the full-match fixed point the
        second iteration reaches — the holes are exactly the conflicts
        further iterations exist to fill)."""
        net = build_network(
            RunSpec(scheme="islip", params=PARAMS, options={"iterations": 1})
        )
        assert isinstance(net, IslipNetwork)
        result = net.run([_saturating_phase()], pattern_name="saturate")
        assert len(result.records) == N * (N - 1)
        steady = net.slot_match_counts[8:-16]
        assert sum(steady) / len(steady) >= 0.85 * N


class TestBakeoff:
    def test_islip_at_least_matches_dynamic_tdm_under_uniform(self):
        """The bake-off sanity bar: a per-slot matcher with dedicated
        hardware (no SL passes, no request wires to amortise) must not
        lose to dynamic TDM under uniform random traffic."""
        params = PAPER_PARAMS.with_overrides(n_ports=16)
        pattern = figure4_patterns(params)["random-mesh"](256)
        eff = {}
        for scheme in ("islip", "dynamic-tdm"):
            phases = pattern.phases(RngStreams(7))
            bound = run_lower_bound_ps(phases, params)
            result = run_scheme(
                RunSpec(scheme=scheme, params=params), phases, pattern.name
            )
            assert not result.drops
            eff[scheme] = bound / result.makespan_ps
        assert eff["islip"] >= eff["dynamic-tdm"]
        # ... but both are credible schedulers on this workload
        assert eff["dynamic-tdm"] > 0.25
        assert eff["islip"] <= 1.0

    def test_counters_exposed(self):
        net = build_network(RunSpec(scheme="islip", params=PARAMS))
        result = net.run([_saturating_phase(slots_per_edge=4)], pattern_name="x")
        c = result.counters
        assert c["islip_slots"] > 0
        assert c["islip_matches"] >= len(result.records)
        assert c["reconfigurations"] > 0  # a fresh configuration every busy slot

    def test_conservation(self):
        """Every injected byte is delivered exactly once."""
        phase = _saturating_phase(slots_per_edge=4)
        net = build_network(RunSpec(scheme="islip", params=PARAMS))
        result = net.run([phase], pattern_name="x")
        assert sum(r.size for r in result.records) == sum(
            m.size for m in phase.messages
        )

"""Accounting-level properties of the TDM network's counters."""

from __future__ import annotations


from repro.networks.tdm import TdmNetwork
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.mesh import OrderedMeshPattern
from repro.traffic.synthetic import UniformRandomPattern
from repro.types import Message

PARAMS = PAPER_PARAMS.with_overrides(n_ports=8)


def _run(net, pattern, seed=1):
    return net.run(pattern.phases(RngStreams(seed)), pattern_name=pattern.name)


class TestCounterConsistency:
    def test_transfers_bounded_by_opportunities(self):
        result = _run(
            TdmNetwork(PARAMS, k=4, mode="dynamic"),
            UniformRandomPattern(8, 64, messages_per_node=5),
        )
        assert result.counters["slot_transfers"] <= result.counters[
            "slot_opportunities"
        ]

    def test_fabric_reconfigured_once_per_useful_slot(self):
        result = _run(
            TdmNetwork(PARAMS, k=4, mode="dynamic"),
            UniformRandomPattern(8, 64, messages_per_node=5),
        )
        assert (
            result.counters["fabric_reconfigurations"]
            == result.counters["tdm_advances"]
        )

    def test_establishes_match_releases_plus_residue(self):
        """Everything established is eventually released (queues drain and
        no predictor holds anything) except connections alive at stop."""
        net = TdmNetwork(PARAMS, k=4, mode="dynamic")
        result = _run(net, UniformRandomPattern(8, 64, messages_per_node=5))
        live = int(net.scheduler.registers.b_star.sum())
        assert (
            result.counters["establishes"]
            == result.counters["releases"] + live
        )

    def test_transfer_bytes_match_ledger(self):
        net = TdmNetwork(PARAMS, k=2, mode="dynamic")
        pattern = UniformRandomPattern(8, 100, messages_per_node=3)
        result = _run(net, pattern)
        assert net.ledger.total_delivered == result.total_bytes

    def test_min_slots_used(self):
        """A b-byte stream needs at least ceil(b / slot_bytes) transfers."""
        phase = TrafficPhase("t", [Message(src=0, dst=1, size=500)])
        assign_seq([phase])
        result = TdmNetwork(PARAMS, k=2, mode="dynamic").run([phase])
        assert result.counters["slot_transfers"] == PARAMS.slots_for(500)


class TestSkipIdleSlots:
    def test_no_skip_wastes_slot_time(self):
        """With skipping off, a lone stream under K=4 gets every 4th slot."""
        fast = TdmNetwork(PARAMS, k=4, mode="dynamic", skip_idle_slots=True)
        slow = TdmNetwork(PARAMS, k=4, mode="dynamic", skip_idle_slots=False)
        phase_a = TrafficPhase("a", [Message(src=0, dst=1, size=800)])
        phase_b = TrafficPhase("b", [Message(src=0, dst=1, size=800)])
        assign_seq([phase_a])
        assign_seq([phase_b])
        fast_result = fast.run([phase_a])
        slow_result = slow.run([phase_b])
        # hmm: with only one non-empty config, the empty-config skipping
        # already visits it every slot even without the request filter
        assert slow_result.makespan_ps == fast_result.makespan_ps

    def test_skip_avoids_stale_configurations(self):
        """Two connections, one drained: with skipping, the drained
        connection's slot stops consuming time once its queue is empty."""
        msgs = [
            Message(src=0, dst=1, size=80),  # drains after one slot
            Message(src=2, dst=3, size=2400),  # 30 slots of work
        ]
        mk = lambda skip: TdmNetwork(
            PARAMS, k=4, mode="dynamic", skip_idle_slots=skip
        )
        phase_a = TrafficPhase("a", [Message(**vars_of(m)) for m in msgs])
        phase_b = TrafficPhase("b", [Message(**vars_of(m)) for m in msgs])
        assign_seq([phase_a])
        assign_seq([phase_b])
        with_skip = mk(True).run([phase_a]).makespan_ps
        without = mk(False).run([phase_b]).makespan_ps
        assert with_skip <= without


def vars_of(m: Message) -> dict:
    return dict(src=m.src, dst=m.dst, size=m.size, inject_ps=m.inject_ps)


class TestPreloadCounters:
    def test_preload_batches_counted(self):
        pattern = OrderedMeshPattern(8, 64, rounds=2)
        net = TdmNetwork(PARAMS, k=4, mode="preload", injection_window=4)
        result = _run(net, pattern)
        assert result.counters["preload_batches"] == 1
        assert result.counters["preloads"] == 4  # the four direction perms

    def test_pure_preload_never_blocks(self):
        pattern = OrderedMeshPattern(8, 64, rounds=2)
        net = TdmNetwork(PARAMS, k=4, mode="preload", injection_window=4)
        result = _run(net, pattern)
        assert result.counters.get("blocked", 0) == 0

"""Exact-timeline regression tests.

Single-message runs are fully deterministic, so their makespans can be
derived by hand from the paper's constants.  These tests pin the complete
control-plane accounting of each scheme against those hand calculations —
any change to wire delays, pass latching, slot alignment, or pipe fill
shows up here first.
"""

from __future__ import annotations

import pytest

from repro.networks.circuit import CircuitNetwork
from repro.networks.tdm import TdmNetwork
from repro.networks.wormhole import WormholeNetwork
from repro.params import PAPER_PARAMS
from repro.traffic.base import TrafficPhase, assign_seq
from repro.types import Message

PARAMS = PAPER_PARAMS.with_overrides(n_ports=8)


def _single(size: int) -> list[TrafficPhase]:
    phase = TrafficPhase("single", [Message(src=0, dst=1, size=size)])
    assign_seq([phase])
    return [phase]


class TestTdmTimeline:
    """Request wire 80 -> pass at 80 establishes -> grant ready at 240 ->
    first usable slot boundary at 300 -> back-to-back 80-byte slots ->
    120 ns pipe fill."""

    @pytest.mark.parametrize(
        "size,expected_ns",
        [
            (64, 500.0),   # 300 + 64*1.25 + 120
            (80, 520.0),   # 300 + 100 + 120
            (200, 670.0),  # slots at 300/400/500, finish 550, + 120
            (160, 620.0),  # two full slots: 300..500, + 120
        ],
    )
    def test_single_message_makespan(self, size, expected_ns):
        result = TdmNetwork(PARAMS, k=4, mode="dynamic").run(_single(size))
        assert result.makespan_ps == int(expected_ns * 1000)

    def test_k_independent_for_single_stream(self):
        """Idle-slot skipping gives a lone stream every slot at any K."""
        makespans = {
            k: TdmNetwork(PARAMS, k=k, mode="dynamic").run(_single(400)).makespan_ps
            for k in (1, 2, 8)
        }
        assert len(set(makespans.values())) == 1


class TestCircuitTimeline:
    """Request wire 80 -> pass at 80 establishes -> pass latency 80 +
    grant wire 80 -> transmit at 240 -> tail + 120 ns pipe."""

    @pytest.mark.parametrize(
        "size,expected_ns",
        [
            (80, 460.0),    # 240 + 100 + 120
            (64, 440.0),    # 240 + 80 + 120
            (2048, 2920.0),  # 240 + 2560 + 120
        ],
    )
    def test_single_message_makespan(self, size, expected_ns):
        result = CircuitNetwork(PARAMS).run(_single(size))
        assert result.makespan_ps == int(expected_ns * 1000)


class TestWormholeTimeline:
    """Head path 60 -> arbitration 80 -> body at link rate -> switch 10 ->
    exit path 60; worms beyond the first re-arbitrate."""

    @pytest.mark.parametrize(
        "size,expected_ns",
        [
            (64, 290.0),    # 60 + 80 + 80 + 10 + 60
            (128, 370.0),   # 60 + 80 + 160 + 10 + 60
        ],
    )
    def test_single_worm_makespan(self, size, expected_ns):
        result = WormholeNetwork(PARAMS).run(_single(size))
        assert result.makespan_ps == int(expected_ns * 1000)

    def test_two_worm_message(self):
        """Second worm launches when the first tail leaves the source."""
        result = WormholeNetwork(PARAMS).run(_single(256))
        # worm1: launch 0, grant 140, source free at max(0, 140-60)+160=240,
        #        output port busy until 140+160+10 = 310
        # worm2: launch 240, head arrives 300 and buffers at the busy switch,
        #        re-arbitrates when the port frees: grant 310+80 = 390,
        #        delivered 390+160+10+60 = 620
        assert result.makespan_ps == 620_000


class TestCrossSchemeSingleMessage:
    def test_scheme_ordering_small_message(self):
        """For one isolated small message, wormhole is fastest (no slot
        alignment), TDM next, circuit switching pays the full handshake +
        the same slot-free pipe."""
        worm = WormholeNetwork(PARAMS).run(_single(64)).makespan_ps
        tdm = TdmNetwork(PARAMS, k=4).run(_single(64)).makespan_ps
        circ = CircuitNetwork(PARAMS).run(_single(64)).makespan_ps
        assert worm < circ < tdm

    def test_scheme_ordering_large_message(self):
        """For one large message the per-worm arbitration dominates and
        circuit switching's single establishment wins."""
        worm = WormholeNetwork(PARAMS).run(_single(4096)).makespan_ps
        tdm = TdmNetwork(PARAMS, k=4).run(_single(4096)).makespan_ps
        circ = CircuitNetwork(PARAMS).run(_single(4096)).makespan_ps
        assert circ < tdm < worm

"""Unit tests for the TDM network model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.networks.tdm import TdmNetwork
from repro.params import PAPER_PARAMS
from repro.predict.timeout import TimeoutPredictor
from repro.sim.clock import us
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.mesh import OrderedMeshPattern
from repro.traffic.scatter import ScatterPattern
from repro.traffic.synthetic import UniformRandomPattern
from repro.types import Connection, Message


@pytest.fixture
def params():
    return PAPER_PARAMS.with_overrides(n_ports=8)


def _run(net, pattern, seed=1):
    phases = pattern.phases(RngStreams(seed))
    return net.run(phases, pattern_name=pattern.name)


def _phase(messages, **kw):
    phase = TrafficPhase("test", messages, **kw)
    assign_seq([phase])
    return phase


class TestConstruction:
    def test_bad_mode(self, params):
        with pytest.raises(ConfigurationError):
            TdmNetwork(params, mode="magic")

    def test_bad_k(self, params):
        with pytest.raises(ConfigurationError):
            TdmNetwork(params, k=0)

    def test_hybrid_needs_valid_k_preload(self, params):
        with pytest.raises(ConfigurationError):
            TdmNetwork(params, k=3, mode="hybrid")
        with pytest.raises(ConfigurationError):
            TdmNetwork(params, k=3, mode="hybrid", k_preload=3)

    def test_preload_pins_all(self, params):
        with pytest.raises(ConfigurationError):
            TdmNetwork(params, k=4, mode="preload", k_preload=2)

    def test_bad_window(self, params):
        with pytest.raises(ConfigurationError):
            TdmNetwork(params, injection_window=0)

    def test_scheme_names(self, params):
        assert TdmNetwork(params, mode="dynamic").scheme == "tdm-dynamic"
        assert TdmNetwork(params, mode="preload").scheme == "tdm-preload"


class TestSingleMessage:
    def test_delivers_one_message(self, params):
        net = TdmNetwork(params, k=2, mode="dynamic")
        result = net.run([_phase([Message(src=0, dst=1, size=64)])])
        assert len(result.records) == 1
        rec = result.records[0]
        assert rec.size == 64
        assert rec.done_ps == result.makespan_ps

    def test_latency_includes_handshake_and_pipe(self, params):
        net = TdmNetwork(params, k=2, mode="dynamic")
        result = net.run([_phase([Message(src=0, dst=1, size=64)])])
        rec = result.records[0]
        # request wire + SL pass + grant + slot alignment + transfer + pipe
        assert rec.latency_ps >= params.request_wire_ps + params.pipe_latency_ps
        # but the whole round trip fits within a handful of slots
        assert rec.latency_ps < 10 * params.slot_ps

    def test_large_message_fragments_across_slots(self, params):
        net = TdmNetwork(params, k=2, mode="dynamic")
        result = net.run([_phase([Message(src=0, dst=1, size=400)])])
        # 400 bytes = 5 slots; with K=1 effective degree the slots are
        # back to back once established
        assert len(result.records) == 1
        assert result.counters["slot_transfers"] >= 5

    def test_byte_conservation_enforced(self, params):
        net = TdmNetwork(params, k=2, mode="dynamic")
        result = net.run([_phase([Message(src=0, dst=1, size=64)])])
        assert net.ledger.total_delivered == 64


class TestDynamicScheduling:
    def test_multiple_destinations_use_multiple_slots(self, params):
        msgs = [Message(src=0, dst=v, size=800) for v in (1, 2, 3)]
        net = TdmNetwork(params, k=4, mode="dynamic")
        result = net.run([_phase(msgs)])
        assert len(result.records) == 3
        assert result.counters["establishes"] >= 3

    def test_contention_resolved(self, params):
        # all sources target output 1
        msgs = [Message(src=u, dst=1, size=64) for u in range(2, 6)]
        net = TdmNetwork(params, k=4, mode="dynamic")
        result = net.run([_phase(msgs)])
        assert len(result.records) == 4

    def test_releases_happen(self, params):
        pattern = UniformRandomPattern(8, 64, messages_per_node=4)
        net = TdmNetwork(params, k=2, mode="dynamic")
        result = _run(net, pattern)
        assert result.counters["releases"] > 0

    def test_full_pattern_delivery(self, params):
        pattern = UniformRandomPattern(8, 96, messages_per_node=6)
        net = TdmNetwork(params, k=4, mode="dynamic")
        result = _run(net, pattern)
        assert len(result.records) == 8 * 6


class TestPreload:
    def test_mesh_preload_runs_without_dynamic_scheduling(self, params):
        pattern = OrderedMeshPattern(8, 64, rounds=2)
        net = TdmNetwork(params, k=4, mode="preload")
        result = _run(net, pattern)
        assert len(result.records) == 8 * 4 * 2
        assert result.counters.get("establishes", 0) == 0  # all preloaded

    def test_preload_rejects_uncovered_traffic(self, params):
        phase = _phase(
            [Message(src=0, dst=1, size=64)],
            static_conns={Connection(2, 3)},
            preload_configs=None,
        )
        net = TdmNetwork(params, k=2, mode="preload")
        with pytest.raises(SchedulingError):
            net.run([phase])

    def test_scatter_preload_advances_batches(self, params):
        pattern = ScatterPattern(8, 64)
        net = TdmNetwork(params, k=2, mode="preload")
        result = _run(net, pattern)
        assert len(result.records) == 7
        assert result.counters["preload_batches"] == 4  # ceil(7 / 2)

    def test_preload_beats_dynamic_on_mesh(self, params):
        pattern = lambda: OrderedMeshPattern(8, 64, rounds=4)
        dyn = _run(TdmNetwork(params, k=4, mode="dynamic", injection_window=4), pattern())
        pre = _run(TdmNetwork(params, k=4, mode="preload", injection_window=4), pattern())
        assert pre.makespan_ps < dyn.makespan_ps


class TestHybrid:
    def test_hybrid_serves_uncovered_dynamically(self, params):
        phase = _phase(
            [Message(src=0, dst=1, size=64), Message(src=2, dst=3, size=64)],
            static_conns={Connection(0, 1)},
        )
        net = TdmNetwork(params, k=3, mode="hybrid", k_preload=1)
        result = net.run([phase])
        assert len(result.records) == 2

    def test_hybrid_counts_preloads(self, params):
        phase = _phase(
            [Message(src=0, dst=1, size=64)],
            static_conns={Connection(0, 1)},
        )
        net = TdmNetwork(params, k=3, mode="hybrid", k_preload=1)
        result = net.run([phase])
        assert result.counters["preloads"] >= 1


class TestInjectionWindow:
    def test_windowed_run_delivers_everything(self, params):
        pattern = UniformRandomPattern(8, 64, messages_per_node=6)
        net = TdmNetwork(params, k=4, mode="dynamic", injection_window=2)
        result = _run(net, pattern)
        assert len(result.records) == 48

    def test_window_one_serialises_sources(self, params):
        msgs = [Message(src=0, dst=v, size=64) for v in (1, 2, 3, 4)]
        wide = TdmNetwork(params, k=4, mode="dynamic")
        narrow = TdmNetwork(params, k=4, mode="dynamic", injection_window=1)
        r_wide = wide.run([_phase(msgs)])
        msgs2 = [Message(src=0, dst=v, size=64) for v in (1, 2, 3, 4)]
        r_narrow = narrow.run([_phase(msgs2)])
        assert r_narrow.makespan_ps > r_wide.makespan_ps

    def test_windowed_preload_scatter(self, params):
        pattern = ScatterPattern(8, 64)
        net = TdmNetwork(params, k=2, mode="preload", injection_window=2)
        result = _run(net, pattern)
        assert len(result.records) == 7


class TestPredictorIntegration:
    def test_timeout_predictor_latches(self, params):
        # two bursts to the same destination separated by a gap shorter
        # than the timeout: the second burst reuses the cached connection
        msgs = [
            Message(src=0, dst=1, size=64, inject_ps=0),
            Message(src=0, dst=1, size=64, inject_ps=us(1)),
        ]
        net = TdmNetwork(
            params, k=2, mode="dynamic", predictor=TimeoutPredictor(us(5))
        )
        result = net.run([_phase(msgs)])
        assert len(result.records) == 2
        assert result.counters["establishes"] == 1  # reused, not re-established
        assert result.counters["predictor_holds"] >= 1

    def test_timeout_predictor_evicts_after_gap(self, params):
        msgs = [
            Message(src=0, dst=1, size=64, inject_ps=0),
            Message(src=0, dst=1, size=64, inject_ps=us(20)),
        ]
        net = TdmNetwork(
            params, k=2, mode="dynamic", predictor=TimeoutPredictor(us(2))
        )
        result = net.run([_phase(msgs)])
        assert result.counters["establishes"] == 2  # evicted in between
        assert result.counters["predictor_evictions"] >= 1


class TestFlushOnPhase:
    def test_flush_between_phases(self, params):
        a = _phase([Message(src=0, dst=1, size=64)])
        b = TrafficPhase("b", [Message(src=2, dst=3, size=64)])
        b.messages[0].seq = 99
        net = TdmNetwork(params, k=2, mode="dynamic", flush_on_phase=True)
        result = net.run([a, b])
        assert result.counters["flushes"] == 1
        assert len(result.records) == 2


class TestCounters:
    def test_counters_present(self, params):
        net = TdmNetwork(params, k=2, mode="dynamic")
        result = net.run([_phase([Message(src=0, dst=1, size=64)])])
        for key in ("events", "tdm_advances", "slot_transfers", "passes"):
            assert key in result.counters


class TestExtensionsEndToEnd:
    """The scheduler extensions driven through full network runs."""

    def test_multi_sl_units_network(self, params):
        pattern = UniformRandomPattern(8, 64, messages_per_node=6)
        r1 = _run(TdmNetwork(params, k=4, mode="dynamic", n_sl_units=1), pattern)
        pattern2 = UniformRandomPattern(8, 64, messages_per_node=6)
        r4 = _run(TdmNetwork(params, k=4, mode="dynamic", n_sl_units=4), pattern2)
        assert len(r4.records) == len(r1.records)
        # more units never hurt completion
        assert r4.makespan_ps <= r1.makespan_ps * 1.1

    def test_boost_policy_network(self, params):
        msgs = [Message(src=0, dst=1, size=20_000)]
        phase = _phase(msgs)
        net = TdmNetwork(params, k=4, mode="dynamic", multislot_threshold_bytes=512)
        result = net.run([phase])
        assert len(result.records) == 1
        # the elephant was present in two slots at some point
        assert net.scheduler.counters["establishes"] >= 2

    def test_prefetcher_network(self, params):
        from repro.predict.markov import MarkovPrefetcher
        from repro.sim.clock import us

        pattern = OrderedMeshPattern(8, 64, rounds=6)
        prefetcher = MarkovPrefetcher(8, hold_ps=us(2))
        net = TdmNetwork(
            params, k=4, mode="dynamic", injection_window=1, prefetcher=prefetcher
        )
        result = _run(net, pattern)
        assert len(result.records) == 8 * 4 * 6
        assert result.counters["prefetch_hits"] > 0
        # the 4x2 torus repeats its E/W neighbour, which blunts a
        # first-order predictor; it should still be right far more often
        # than wrong
        assert prefetcher.accuracy() > 0.6
        assert result.counters["prefetch_hits"] > result.counters["prefetch_misses"]

    def test_fabric_constraint_network(self, params):
        from repro.fabric.fattree import FatTree

        pattern = UniformRandomPattern(8, 64, messages_per_node=4)
        net = TdmNetwork(
            params,
            k=4,
            mode="dynamic",
            injection_window=4,
            fabric_constraint=FatTree(8, taper=8),
        )
        result = _run(net, pattern)
        assert len(result.records) == 32  # everything still delivered

    def test_constraint_and_multiunit_exclusive(self, params):
        from repro.fabric.fattree import FatTree

        with pytest.raises(ConfigurationError):
            TdmNetwork(
                params, k=4, n_sl_units=2, fabric_constraint=FatTree(8)
            )

    def test_guard_band_network(self):
        p = PAPER_PARAMS.with_overrides(n_ports=8, guard_band_frac=0.05)
        assert p.slot_bytes == 76
        net = TdmNetwork(p, k=2, mode="dynamic")
        result = net.run([_phase([Message(src=0, dst=1, size=760)])])
        # 760 bytes at 76 per slot: exactly 10 slot transfers
        assert result.counters["slot_transfers"] == 10

    def test_tracer_records_deliveries(self, params):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        net = TdmNetwork(params, k=2, mode="dynamic", tracer=tracer)
        net.run([_phase([Message(src=0, dst=1, size=64)])])
        assert any(ev.kind == "deliver" for ev in tracer.events())

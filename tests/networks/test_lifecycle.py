"""Edge-case tests for the shared connection-lifecycle layer.

Two halves: direct unit tests that drive :class:`ConnectionManager`
through a fake scheme client (so races can be staged deterministically),
and integration tests that run the real schemes — parametrized over
circuit switching and TDM — through the registry with hand-written fault
schedules.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    RetryPolicy,
)
from repro.metrics.degradation import degradation_report
from repro.networks.lifecycle import ConnectionManager
from repro.networks.registry import RunSpec, build_network
from repro.params import PAPER_PARAMS
from repro.sim.clock import ns
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.hybrid import HybridPattern
from repro.types import Message

PARAMS = PAPER_PARAMS.with_overrides(n_ports=8)


class _FakeNet:
    """The slice of BaseNetwork a ConnectionManager actually touches."""

    def __init__(self, injector: FaultInjector) -> None:
        self.params = PARAMS
        self.sim = Simulator()
        self.tracer = Tracer()
        self.fault_injector = injector
        self.down_calls: list[int] = []
        self.up_calls: list[int] = []
        self.dead_calls: list[int] = []

    def _on_link_down(self, port: int) -> None:
        self.down_calls.append(port)

    def _on_link_up(self, port: int) -> None:
        self.up_calls.append(port)

    def _on_link_dead(self, port: int) -> None:
        self.dead_calls.append(port)


class _FakeClient:
    """A scheme whose lifecycle policy the test scripts directly."""

    def __init__(self) -> None:
        self.resolved = False
        self.remap_ok = False
        self.seq: int | None = 7
        self.retries: list[tuple[int, int]] = []
        self.remaps: list[tuple[int, int]] = []
        self.gave_up: list[tuple[int, int]] = []
        self.pinned_lost = 0

    def lifecycle_watch_ref(self, u, v):
        return (u, v), self.seq

    def lifecycle_watch_resolved(self, u, v, seq):
        return self.resolved

    def lifecycle_awaiting_grant(self, u, v):
        return True

    def lifecycle_awaiting_sl_dead(self, u, v):
        return True

    def lifecycle_retry(self, u, v):
        self.retries.append((u, v))

    def lifecycle_mgmt_remap(self, u, v):
        self.remaps.append((u, v))
        return self.remap_ok

    def lifecycle_give_up(self, u, v):
        self.gave_up.append((u, v))

    def lifecycle_pinned_lost(self):
        self.pinned_lost += 1


def _manager(
    max_retries: int = 1, mgmt_attempts: int = 1
) -> tuple[ConnectionManager, _FakeNet, _FakeClient]:
    injector = FaultInjector(
        FaultSchedule(events=()),
        retry=RetryPolicy(
            timeout_ps=ns(100),
            backoff=2.0,
            max_retries=max_retries,
            mgmt_attempts=mgmt_attempts,
            max_delay_ps=ns(1_000),
        ),
    )
    net = _FakeNet(injector)
    mgr = ConnectionManager(net)  # type: ignore[arg-type]
    client = _FakeClient()
    mgr.attach_scheduler(object(), client)  # type: ignore[arg-type]
    return mgr, net, client


class TestWatchdogEdgeCases:
    def test_fire_after_recovery_self_cancels(self):
        """A watchdog whose connection recovered before the timeout must
        retire silently: no retry, no escalation, no give-up."""
        mgr, net, client = _manager()
        mgr.arm(0, 1)
        assert mgr.watch_count == 1
        client.resolved = True  # link came back; the grant went through
        net.sim.run()
        assert mgr.watch_count == 0
        assert client.retries == []
        assert client.remaps == []
        assert client.gave_up == []
        assert net.fault_injector.counters["request_retries"] == 0

    def test_give_up_racing_a_grant(self):
        """The grant lands between the last escalation and the final
        timeout: the fire must see the resolution and NOT give up."""
        mgr, net, client = _manager(max_retries=1, mgmt_attempts=1)
        mgr.arm(0, 1)
        # fires at 100 (retry), 300 (mgmt, fails), 700 (would give up)
        net.sim.schedule(ns(500), lambda: setattr(client, "resolved", True))
        net.sim.run()
        assert client.retries == [(0, 1)]
        assert client.remaps == [(0, 1)]
        assert client.gave_up == []
        assert mgr.watch_count == 0
        assert net.fault_injector.counters["unrecoverable_connections"] == 0

    def test_retry_ladder_exhausts_to_give_up(self):
        mgr, net, client = _manager(max_retries=2, mgmt_attempts=1)
        mgr.arm(2, 3)
        net.sim.run()
        assert client.retries == [(2, 3), (2, 3)]
        assert client.remaps == [(2, 3)]
        assert client.gave_up == [(2, 3)]
        assert mgr.watch_count == 0
        counters = net.fault_injector.counters
        assert counters["request_retries"] == 2
        assert counters["mgmt_attempts"] == 1
        assert counters["unrecoverable_connections"] == 1

    def test_mgmt_remap_success_retires_watch(self):
        mgr, net, client = _manager(max_retries=0, mgmt_attempts=3)
        client.remap_ok = True
        mgr.arm(0, 1)
        net.sim.run()
        assert client.remaps == [(0, 1)]
        assert client.gave_up == []
        assert mgr.watch_count == 0

    def test_rearm_same_seq_keeps_attempt_count(self):
        """Re-arming the same (key, seq) must not reset the backoff."""
        mgr, net, client = _manager()
        mgr.arm(0, 1)
        first = mgr._watches[(0, 1)].event
        mgr.arm(0, 1)
        assert mgr.watch_count == 1
        assert mgr._watches[(0, 1)].event is first  # untouched

    def test_rearm_new_seq_restarts_watch(self):
        """A new head-of-line message supersedes the stale watch."""
        mgr, net, client = _manager()
        mgr.arm(0, 1)
        mgr._watches[(0, 1)].attempts = 3
        client.seq = 8
        mgr.arm(0, 1)
        assert mgr.watch_count == 1
        watch = mgr._watches[(0, 1)]
        assert (watch.seq, watch.attempts) == (8, 0)

    def test_stale_seq_fire_is_ignored(self):
        """The old watch's in-flight timeout must not act on the new one."""
        mgr, net, client = _manager()
        mgr.arm(0, 1)
        client.seq = 8
        mgr.arm(0, 1)  # cancels the seq-7 event, schedules a seq-8 one
        client.resolved = True
        net.sim.run()
        assert client.gave_up == []
        assert mgr.watch_count == 0

    def test_arm_dead_endpoint_is_refused(self):
        mgr, net, client = _manager()
        mgr.port_link_dead(1)
        mgr.arm(0, 1)
        mgr.arm(1, 2)
        assert mgr.watch_count == 0

    def test_disarm_port_drops_both_directions(self):
        mgr, net, client = _manager()
        mgr.arm(0, 1)
        client.seq = 9
        mgr.arm(1, 2)  # distinct key (1, 2)
        client.seq = 11
        mgr.arm(4, 5)
        mgr.disarm_port(1)
        assert not mgr.has_watch((0, 1))
        assert not mgr.has_watch((1, 2))
        assert mgr.has_watch((4, 5))

    def test_phase_reset_cancels_everything(self):
        mgr, net, client = _manager()
        mgr.arm(0, 1)
        client.seq = 9
        mgr.arm(2, 3)
        mgr.phase_reset()
        assert mgr.watch_count == 0
        net.sim.run()  # cancelled events must not fire
        assert client.retries == []
        assert client.gave_up == []


class TestLinkStateEdgeCases:
    def test_double_link_down_same_port(self):
        """Overlapping transients must not double-apply (or double-trace)."""
        mgr, net, _ = _manager()
        assert mgr.port_link_down(3, ns(100)) is True
        assert mgr.port_link_down(3, ns(100)) is False
        assert net.down_calls == [3]
        mgr.port_link_up(3)
        assert not mgr.link_down[3]
        assert net.up_calls == [3]

    def test_double_link_dead_same_port(self):
        mgr, net, _ = _manager()
        assert mgr.port_link_dead(5) is True
        assert mgr.port_link_dead(5) is False
        assert net.dead_calls == [5]

    def test_link_up_never_revives_a_dead_port(self):
        """A transient's scheduled link-up racing a permanent failure."""
        mgr, net, _ = _manager()
        mgr.port_link_down(2, ns(100))
        mgr.port_link_dead(2)
        mgr.port_link_up(2)  # the transient's recovery event fires late
        assert mgr.link_down[2]
        assert mgr.link_dead[2]
        assert net.up_calls == []

    def test_down_then_dead_traces_once_each(self):
        mgr, net, _ = _manager()
        mgr.port_link_down(4, ns(50))
        assert mgr.port_link_dead(4) is True
        assert net.down_calls == [4]
        assert net.dead_calls == [4]


def _deterministic_phase(n: int, size: int = 512) -> list[TrafficPhase]:
    msgs = [Message(src=u, dst=(u + 1) % n, size=size) for u in range(n)]
    phase = TrafficPhase("ring", msgs)
    assign_seq([phase])
    return [phase]


SCHEME_SPECS = {
    "circuit": lambda inj: RunSpec("circuit", PARAMS, faults=inj),
    "dynamic-tdm": lambda inj: RunSpec(
        "dynamic-tdm", PARAMS, k=4, injection_window=4, faults=inj
    ),
}


@pytest.mark.parametrize("scheme", sorted(SCHEME_SPECS))
class TestSchemeIntegration:
    """The same lifecycle layer drives both recovering schemes."""

    def test_req_drop_storm_still_delivers_everything(self, scheme):
        """Dropped request bits are retried, never silently lost."""
        events = tuple(
            FaultEvent(time_ps=t, kind=FaultKind.REQ_DROP, src=0, dst=1)
            for t in (ns(20), ns(60), ns(120), ns(300), ns(900))
        )
        inj = FaultInjector(FaultSchedule(events=events))
        net = build_network(SCHEME_SPECS[scheme](inj))
        result = net.run(_deterministic_phase(PARAMS.n_ports))
        report = degradation_report(result)
        assert report.delivered_fraction == 1.0
        applied = inj.counters["applied_req_drop"]
        skipped = inj.counters["skipped_req_drop"]
        assert applied + skipped == len(events)

    def test_dead_port_drops_only_its_traffic(self, scheme):
        """A permanent failure gives up that port's messages and disarms
        its watches; everyone else still completes."""
        events = (FaultEvent(time_ps=ns(10), kind=FaultKind.LINK_FAIL, port=1),)
        inj = FaultInjector(FaultSchedule(events=events))
        net = build_network(SCHEME_SPECS[scheme](inj))
        result = net.run(_deterministic_phase(PARAMS.n_ports))
        report = degradation_report(result)
        assert inj.counters["applied_link_fail"] == 1
        assert report.dropped > 0
        assert report.delivered > 0
        assert report.delivered + report.dropped == PARAMS.n_ports
        assert net.lifecycle.watch_count == 0  # nothing leaked past the run


class TestDegradeToDynamic:
    def test_eviction_during_degrade_to_dynamic(self):
        """Corrupting a pinned slot degrades the hybrid scheme to fully
        dynamic scheduling; the evicted connections are re-armed and the
        run still delivers everything."""
        pattern = HybridPattern(
            PARAMS.n_ports, 512, determinism=1.0, messages_per_node=4, n_static=2
        )
        events = (
            FaultEvent(time_ps=ns(200), kind=FaultKind.REG_CORRUPT, slot=0),
        )
        inj = FaultInjector(FaultSchedule(events=events))
        net = build_network(
            RunSpec(
                "hybrid",
                PARAMS,
                k=4,
                k_preload=2,
                injection_window=4,
                faults=inj,
            )
        )
        result = net.run(pattern.phases(RngStreams(7)), pattern_name=pattern.name)
        assert inj.counters["applied_reg_corrupt"] == 1
        assert result.counters.get("fault_degraded_to_dynamic") == 1
        assert degradation_report(result).delivered_fraction == 1.0

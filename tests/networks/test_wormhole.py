"""Unit tests for the wormhole baseline."""

from __future__ import annotations

import pytest

from repro.networks.wormhole import WormholeNetwork
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.base import TrafficPhase, assign_seq
from repro.traffic.scatter import ScatterPattern
from repro.traffic.synthetic import UniformRandomPattern
from repro.types import Message


@pytest.fixture
def params():
    return PAPER_PARAMS.with_overrides(n_ports=8)


def _phase(messages):
    phase = TrafficPhase("test", messages)
    assign_seq([phase])
    return phase


class TestWormSegmentation:
    def test_small_message_single_worm(self, params):
        net = WormholeNetwork(params)
        result = net.run([_phase([Message(src=0, dst=1, size=64)])])
        assert result.counters["worms_sent"] == 1

    def test_large_message_segments(self, params):
        net = WormholeNetwork(params)
        result = net.run([_phase([Message(src=0, dst=1, size=1000)])])
        # ceil(1000 / 128) = 8 worms
        assert result.counters["worms_sent"] == 8

    def test_exact_multiple(self, params):
        net = WormholeNetwork(params)
        result = net.run([_phase([Message(src=0, dst=1, size=256)])])
        assert result.counters["worms_sent"] == 2


class TestTiming:
    def test_single_worm_latency(self, params):
        net = WormholeNetwork(params)
        result = net.run([_phase([Message(src=0, dst=1, size=64)])])
        rec = result.records[0]
        expected = (
            params.wormhole_head_path_ps  # to the switch
            + params.scheduler_pass_ps  # arbitration
            + params.message_bytes_ps(64)  # body streams
            + params.digital_switch_ps  # switch traversal
            + params.wormhole_exit_path_ps  # to the NIC
        )
        assert rec.done_ps == expected

    def test_per_worm_arbitration_overhead(self, params):
        """Each worm pays its own 80 ns scheduling — the wormhole tax."""
        one = WormholeNetwork(params).run(
            [_phase([Message(src=0, dst=1, size=128)])]
        )
        two = WormholeNetwork(params).run(
            [_phase([Message(src=0, dst=1, size=256)])]
        )
        delta = two.makespan_ps - one.makespan_ps
        assert delta >= params.message_bytes_ps(128)
        assert delta >= params.scheduler_pass_ps  # the second arbitration shows


class TestBlocking:
    def test_output_contention_blocks(self, params):
        msgs = [Message(src=u, dst=7, size=128) for u in range(4)]
        net = WormholeNetwork(params)
        result = net.run([_phase(msgs)])
        assert result.counters["worm_blocks"] >= 3
        assert len(result.records) == 4

    def test_blocked_worm_backpressures_source(self, params):
        """A source with a blocked worm cannot start its next message."""
        msgs = [
            Message(src=0, dst=7, size=128),  # will contend with src 1
            Message(src=1, dst=7, size=128),
            Message(src=1, dst=2, size=128),  # stuck behind the blocked worm
        ]
        net = WormholeNetwork(params)
        result = net.run([_phase(msgs)])
        rec_by_pair = {(r.src, r.dst): r for r in result.records}
        # message (1,2) finishes after (1,7) despite its free output port
        assert rec_by_pair[(1, 2)].done_ps > rec_by_pair[(1, 7)].done_ps

    def test_disjoint_traffic_parallel(self, params):
        msgs = [Message(src=u, dst=u + 4, size=1024) for u in range(4)]
        net = WormholeNetwork(params)
        result = net.run([_phase(msgs)])
        serial = 4 * params.message_bytes_ps(1024)
        assert result.makespan_ps < serial


class TestWorkloads:
    def test_scatter_completes(self, params):
        net = WormholeNetwork(params)
        result = net.run(ScatterPattern(8, 256).phases(RngStreams(0)))
        assert len(result.records) == 7
        assert net.ledger.total_delivered == 7 * 256

    def test_uniform_conserves(self, params):
        pattern = UniformRandomPattern(8, 200, messages_per_node=5)
        net = WormholeNetwork(params)
        result = net.run(pattern.phases(RngStreams(1)))
        assert len(result.records) == 40
        assert net.ledger.total_delivered == 40 * 200

    def test_large_message_efficiency_caps(self, params):
        """Worm segmentation caps wormhole efficiency near b/(b + arb)."""
        from repro.metrics.efficiency import efficiency

        pattern = ScatterPattern(8, 4096)
        phases = pattern.phases(RngStreams(0))
        result = WormholeNetwork(params).run(phases)
        eff = efficiency(result, phases)
        worm_time = params.message_bytes_ps(params.worm_max_bytes)
        cap = worm_time / (worm_time + params.scheduler_pass_ps)
        assert eff <= cap + 0.02
        assert eff > cap * 0.6

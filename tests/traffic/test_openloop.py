"""Unit tests for the open-loop Poisson traffic generator."""

from __future__ import annotations

import pytest

from repro.errors import TrafficError
from repro.sim.rng import RngStreams
from repro.traffic.openloop import OpenLoopUniformPattern


@pytest.fixture
def rng():
    return RngStreams(11)


class TestValidation:
    def test_load_range(self):
        with pytest.raises(TrafficError):
            OpenLoopUniformPattern(8, 64, load=0.0, duration_ns=1000)
        with pytest.raises(TrafficError):
            OpenLoopUniformPattern(8, 64, load=1.5, duration_ns=1000)

    def test_duration_positive(self):
        with pytest.raises(TrafficError):
            OpenLoopUniformPattern(8, 64, load=0.5, duration_ns=0)

    def test_empty_window_rejected(self, rng):
        # a tiny window at a tiny load produces no messages
        pattern = OpenLoopUniformPattern(8, 64, load=0.001, duration_ns=1)
        with pytest.raises(TrafficError):
            pattern.phases(rng)


class TestGeneration:
    def test_mean_gap(self):
        p = OpenLoopUniformPattern(8, 64, load=0.5, duration_ns=1000)
        assert p.mean_gap_ps == 64 * 1250 / 0.5

    def test_injections_within_window(self, rng):
        pattern = OpenLoopUniformPattern(8, 64, load=0.5, duration_ns=5000)
        phase = pattern.phases(rng)[0]
        assert all(0 < m.inject_ps < 5_000_000 for m in phase.messages)

    def test_sorted_by_inject_time(self, rng):
        phase = OpenLoopUniformPattern(8, 64, load=0.5, duration_ns=5000).phases(rng)[0]
        times = [m.inject_ps for m in phase.messages]
        assert times == sorted(times)

    def test_no_self_messages(self, rng):
        phase = OpenLoopUniformPattern(8, 64, load=0.5, duration_ns=5000).phases(rng)[0]
        assert all(m.src != m.dst for m in phase.messages)

    def test_rate_matches_load(self, rng):
        load, duration = 0.5, 50_000
        pattern = OpenLoopUniformPattern(8, 64, load=load, duration_ns=duration)
        phase = pattern.phases(rng)[0]
        offered_bytes = sum(m.size for m in phase.messages)
        capacity_bytes = 8 * duration * 1000 / 1250  # all links, full window
        assert offered_bytes / capacity_bytes == pytest.approx(load, rel=0.1)

    def test_reproducible(self):
        a = OpenLoopUniformPattern(8, 64, load=0.3, duration_ns=5000).phases(
            RngStreams(3)
        )[0]
        b = OpenLoopUniformPattern(8, 64, load=0.3, duration_ns=5000).phases(
            RngStreams(3)
        )[0]
        assert [(m.src, m.dst, m.inject_ps) for m in a.messages] == [
            (m.src, m.dst, m.inject_ps) for m in b.messages
        ]

    def test_loads_are_independent_streams(self):
        a = OpenLoopUniformPattern(8, 64, load=0.3, duration_ns=5000).phases(
            RngStreams(3)
        )[0]
        b = OpenLoopUniformPattern(8, 64, load=0.4, duration_ns=5000).phases(
            RngStreams(3)
        )[0]
        assert len(a.messages) != len(b.messages)


class TestEndToEnd:
    def test_runs_on_tdm(self, rng):
        from repro.networks.tdm import TdmNetwork
        from repro.params import PAPER_PARAMS

        params = PAPER_PARAMS.with_overrides(n_ports=8)
        pattern = OpenLoopUniformPattern(8, 64, load=0.2, duration_ns=3000)
        phases = pattern.phases(rng)
        result = TdmNetwork(params, k=2, mode="dynamic").run(phases)
        assert len(result.records) == len(phases[0].messages)

    def test_load_latency_driver_small(self):
        from repro.experiments.loadlatency import run_load_latency
        from repro.params import PAPER_PARAMS

        params = PAPER_PARAMS.with_overrides(n_ports=8)
        result = run_load_latency(
            params, loads=(0.2, 0.6), duration_ns=3000.0
        )
        assert set(result.series) == {"wormhole", "circuit", "dynamic-tdm"}
        for series in result.series.values():
            assert series[1] > series[0]  # latency rises with load
        assert "load" in result.csv()

"""Unit tests for the traffic pattern generators."""

from __future__ import annotations

import pytest

from repro.errors import TrafficError
from repro.sim.rng import RngStreams
from repro.traffic.alltoall import AllToAllPattern, shift_permutation
from repro.traffic.base import mesh_dims
from repro.traffic.hybrid import HybridPattern
from repro.traffic.mesh import (
    OrderedMeshPattern,
    RandomMeshPattern,
    neighbor_permutations,
    torus_neighbors,
)
from repro.traffic.nas import NasLikeTrace
from repro.traffic.scatter import ScatterPattern
from repro.traffic.synthetic import (
    BitComplementPattern,
    HotspotPattern,
    PermutationPattern,
    TornadoPattern,
    UniformRandomPattern,
)
from repro.traffic.twophase import TwoPhasePattern


@pytest.fixture
def rng():
    return RngStreams(7)


class TestBase:
    def test_mesh_dims_128(self):
        assert mesh_dims(128) == (16, 8)

    def test_mesh_dims_16(self):
        assert mesh_dims(16) == (4, 4)

    def test_mesh_dims_prime_rejected(self):
        with pytest.raises(TrafficError):
            mesh_dims(13)

    def test_mesh_dims_too_small(self):
        with pytest.raises(TrafficError):
            mesh_dims(2)

    def test_seq_unique_across_phases(self, rng):
        phases = TwoPhasePattern(16, 64, nn_rounds=2).phases(rng)
        seqs = [m.seq for p in phases for m in p.messages]
        assert len(seqs) == len(set(seqs))

    def test_bad_size_rejected(self):
        with pytest.raises(TrafficError):
            ScatterPattern(16, 0)


class TestScatter:
    def test_message_count(self, rng):
        phases = ScatterPattern(16, 64).phases(rng)
        assert len(phases) == 1
        assert len(phases[0].messages) == 15

    def test_all_from_source(self, rng):
        phases = ScatterPattern(16, 64, source=3).phases(rng)
        assert all(m.src == 3 for m in phases[0].messages)
        assert 3 not in {m.dst for m in phases[0].messages}

    def test_fully_static(self, rng):
        phase = ScatterPattern(16, 64).phases(rng)[0]
        assert phase.dynamic_conns() == set()

    def test_preload_configs_cover_in_order(self, rng):
        phase = ScatterPattern(16, 64).phases(rng)[0]
        assert len(phase.preload_configs) == 15
        firsts = [next(iter(c.connections())) for c in phase.preload_configs]
        assert [f.dst for f in firsts] == [m.dst for m in phase.messages]

    def test_bad_source(self):
        with pytest.raises(TrafficError):
            ScatterPattern(16, 64, source=16)


class TestMesh:
    def test_torus_neighbors_distinct(self):
        nbrs = torus_neighbors(16)
        for u, dirs in nbrs.items():
            assert len(set(dirs.values())) == 4
            assert u not in dirs.values()

    def test_neighbor_permutations_are_permutations(self):
        perms = neighbor_permutations(16)
        for d, p in perms.items():
            assert sorted(p) == list(range(16))

    def test_ordered_message_count(self, rng):
        phase = OrderedMeshPattern(16, 64, rounds=3).phases(rng)[0]
        assert len(phase.messages) == 16 * 4 * 3

    def test_ordered_is_deterministic(self):
        a = OrderedMeshPattern(16, 64).phases(RngStreams(1))[0]
        b = OrderedMeshPattern(16, 64).phases(RngStreams(2))[0]
        assert [(m.src, m.dst) for m in a.messages] == [
            (m.src, m.dst) for m in b.messages
        ]

    def test_random_same_multiset_different_order(self):
        o = OrderedMeshPattern(16, 64, rounds=2).phases(RngStreams(1))[0]
        r = RandomMeshPattern(16, 64, rounds=2).phases(RngStreams(1))[0]
        assert sorted((m.src, m.dst) for m in o.messages) == sorted(
            (m.src, m.dst) for m in r.messages
        )
        assert [(m.src, m.dst) for m in o.messages] != [
            (m.src, m.dst) for m in r.messages
        ]

    def test_random_reproducible_by_seed(self):
        a = RandomMeshPattern(16, 64).phases(RngStreams(5))[0]
        b = RandomMeshPattern(16, 64).phases(RngStreams(5))[0]
        assert [(m.src, m.dst) for m in a.messages] == [
            (m.src, m.dst) for m in b.messages
        ]

    def test_static_conns_are_all_nn(self, rng):
        phase = RandomMeshPattern(16, 64).phases(rng)[0]
        assert phase.connection_set() == phase.static_conns
        assert len(phase.static_conns) == 64

    def test_preload_configs_are_four_perms(self, rng):
        phase = OrderedMeshPattern(16, 64).phases(rng)[0]
        assert len(phase.preload_configs) == 4
        for cfg in phase.preload_configs:
            assert len(cfg) == 16


class TestAllToAll:
    def test_shift_permutation(self):
        assert shift_permutation(4, 1) == [1, 2, 3, 0]
        with pytest.raises(ValueError):
            shift_permutation(4, 0)

    def test_message_count(self, rng):
        phase = AllToAllPattern(8, 64).phases(rng)[0]
        assert len(phase.messages) == 8 * 7

    def test_every_pair_once(self, rng):
        phase = AllToAllPattern(8, 64).phases(rng)[0]
        pairs = {(m.src, m.dst) for m in phase.messages}
        assert len(pairs) == 56

    def test_rounds_are_permutations(self, rng):
        phase = AllToAllPattern(8, 64).phases(rng)[0]
        first_round = phase.messages[:8]
        assert sorted(m.src for m in first_round) == list(range(8))
        assert sorted(m.dst for m in first_round) == list(range(8))

    def test_preload_configs(self, rng):
        phase = AllToAllPattern(8, 64).phases(rng)[0]
        assert len(phase.preload_configs) == 7


class TestTwoPhase:
    def test_two_phases(self, rng):
        phases = TwoPhasePattern(16, 64, nn_rounds=4).phases(rng)
        assert len(phases) == 2
        assert "all-to-all" in phases[0].name
        assert "random-mesh" in phases[1].name

    def test_counts(self, rng):
        phases = TwoPhasePattern(16, 64, nn_rounds=4).phases(rng)
        assert len(phases[0].messages) == 16 * 15
        assert len(phases[1].messages) == 16 * 4 * 4

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            TwoPhasePattern(16, 64, nn_rounds=0)


class TestHybrid:
    def test_determinism_validated(self):
        with pytest.raises(TrafficError):
            HybridPattern(16, 64, determinism=1.5)

    def test_full_determinism_only_static(self, rng):
        phase = HybridPattern(16, 64, determinism=1.0, n_static=2).phases(rng)[0]
        static = phase.static_conns
        assert all(m.connection in static for m in phase.messages)

    def test_zero_determinism_mostly_random(self, rng):
        phase = HybridPattern(
            16, 64, determinism=0.0, messages_per_node=64, n_static=2
        ).phases(rng)[0]
        outside = sum(1 for m in phase.messages if m.connection not in phase.static_conns)
        assert outside > len(phase.messages) * 0.7

    def test_fraction_tracks_determinism(self, rng):
        det = 0.8
        phase = HybridPattern(
            64, 64, determinism=det, messages_per_node=64, n_static=2
        ).phases(rng)[0]
        inside = sum(1 for m in phase.messages if m.connection in phase.static_conns)
        frac = inside / len(phase.messages)
        assert abs(frac - det) < 0.07  # random draws can also land on static dests

    def test_no_self_messages(self, rng):
        phase = HybridPattern(16, 64, determinism=0.2).phases(rng)[0]
        assert all(m.src != m.dst for m in phase.messages)

    def test_static_permutations(self):
        pats = HybridPattern(16, 64, determinism=0.5, n_static=3).static_permutations()
        assert len(pats) == 3
        for p in pats:
            assert sorted(p) == list(range(16))


class TestSynthetic:
    def test_uniform_no_self(self, rng):
        phase = UniformRandomPattern(16, 64, messages_per_node=8).phases(rng)[0]
        assert all(m.src != m.dst for m in phase.messages)
        assert len(phase.messages) == 128

    def test_hotspot_fraction(self, rng):
        phase = HotspotPattern(
            16, 64, hotspot=0, hot_fraction=1.0, messages_per_node=4
        ).phases(rng)[0]
        hot = sum(1 for m in phase.messages if m.dst == 0)
        assert hot >= len(phase.messages) * 0.9

    def test_permutation_fixed_partner(self, rng):
        phase = PermutationPattern(16, 64, messages_per_node=4).phases(rng)[0]
        partners = {}
        for m in phase.messages:
            partners.setdefault(m.src, set()).add(m.dst)
        assert all(len(d) == 1 for d in partners.values())

    def test_bit_complement(self, rng):
        phase = BitComplementPattern(16, 64, messages_per_node=1).phases(rng)[0]
        assert all(m.dst == m.src ^ 15 for m in phase.messages)

    def test_bit_complement_needs_pow2(self):
        with pytest.raises(TrafficError):
            BitComplementPattern(12, 64)

    def test_tornado(self, rng):
        phase = TornadoPattern(16, 64, messages_per_node=1).phases(rng)[0]
        assert all(m.dst == (m.src + 7) % 16 for m in phase.messages)


class TestNasLike:
    def test_phases_generated(self, rng):
        phases = NasLikeTrace(16, 64, n_phases=5, rounds_per_phase=2).phases(rng)
        assert len(phases) == 5
        for p in phases:
            assert p.messages

    def test_reproducible(self):
        a = NasLikeTrace(16, 64, n_phases=4).phases(RngStreams(3))
        b = NasLikeTrace(16, 64, n_phases=4).phases(RngStreams(3))
        assert [p.name for p in a] == [p.name for p in b]
        assert [(m.src, m.dst) for p in a for m in p.messages] == [
            (m.src, m.dst) for p in b for m in p.messages
        ]

    def test_static_conns_subset_of_used(self, rng):
        for phase in NasLikeTrace(16, 64, n_phases=6).phases(rng):
            assert phase.static_conns <= phase.connection_set()

    def test_bad_params(self):
        with pytest.raises(TrafficError):
            NasLikeTrace(16, 64, n_phases=0)
        with pytest.raises(TrafficError):
            NasLikeTrace(16, 64, static_fraction=1.5)

"""Unit tests for trace-file parsing, saving, and replay."""

from __future__ import annotations

import io

import pytest

from repro.errors import TrafficError
from repro.sim.rng import RngStreams
from repro.traffic.mesh import OrderedMeshPattern
from repro.traffic.tracefile import TraceFilePattern, parse_trace, save_trace


class TestParse:
    def test_basic(self):
        text = io.StringIO("0 1 64\n2 3 128 5.5\n")
        phases = parse_trace(text, 4)
        assert len(phases) == 1
        msgs = phases[0].messages
        assert (msgs[0].src, msgs[0].dst, msgs[0].size) == (0, 1, 64)
        assert msgs[1].inject_ps == 5500

    def test_phase_markers(self):
        text = io.StringIO(
            "# phase warmup\n0 1 64\n# phase main\n1 2 64\n2 3 64\n"
        )
        phases = parse_trace(text, 4)
        assert [p.name for p in phases] == ["warmup", "main"]
        assert len(phases[1].messages) == 2

    def test_comments_and_blanks_ignored(self):
        text = io.StringIO("\n# a comment\n0 1 64\n\n")
        phases = parse_trace(text, 4)
        assert len(phases[0].messages) == 1

    def test_bad_field_count(self):
        with pytest.raises(TrafficError, match="line 1"):
            parse_trace(io.StringIO("0 1\n"), 4)

    def test_bad_number(self):
        with pytest.raises(TrafficError, match="line 1"):
            parse_trace(io.StringIO("0 x 64\n"), 4)

    def test_out_of_range_port(self):
        with pytest.raises(TrafficError, match="out of range"):
            parse_trace(io.StringIO("0 9 64\n"), 4)

    def test_empty_trace_rejected(self):
        with pytest.raises(TrafficError):
            parse_trace(io.StringIO("# nothing\n"), 4)


class TestRoundTrip:
    def test_save_and_reload(self, tmp_path):
        pattern = OrderedMeshPattern(16, 64, rounds=2)
        phases = pattern.phases(RngStreams(1))
        path = tmp_path / "mesh.trace"
        save_trace(phases, path)

        replay = TraceFilePattern(16, path).phases(RngStreams(0))
        assert len(replay) == len(phases)
        assert [(m.src, m.dst, m.size) for p in replay for m in p.messages] == [
            (m.src, m.dst, m.size) for p in phases for m in p.messages
        ]

    def test_inject_times_roundtrip(self, tmp_path):
        from repro.traffic.base import TrafficPhase, assign_seq
        from repro.types import Message

        phase = TrafficPhase(
            "t", [Message(src=0, dst=1, size=8, inject_ps=1500)]
        )
        assign_seq([phase])
        path = tmp_path / "t.trace"
        save_trace([phase], path)
        replay = TraceFilePattern(4, path).phases(RngStreams(0))
        assert replay[0].messages[0].inject_ps == 1500

    def test_missing_file(self, tmp_path):
        with pytest.raises(TrafficError):
            TraceFilePattern(4, tmp_path / "nope.trace")

    def test_replay_runs_on_network(self, tmp_path):
        from repro.networks.tdm import TdmNetwork
        from repro.params import PAPER_PARAMS

        pattern = OrderedMeshPattern(8, 64, rounds=1)
        phases = pattern.phases(RngStreams(1))
        path = tmp_path / "m.trace"
        save_trace(phases, path)

        params = PAPER_PARAMS.with_overrides(n_ports=8)
        replayed = TraceFilePattern(8, path).phases(RngStreams(0))
        result = TdmNetwork(params, k=4, mode="dynamic").run(replayed)
        assert len(result.records) == 8 * 4

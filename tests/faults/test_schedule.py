"""Unit tests for the deterministic fault schedule generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import DEFAULT_WEIGHTS, FaultKind, FaultSchedule
from repro.sim.clock import us


def _generate(**overrides):
    kwargs = dict(
        seed=42, rate_per_us=2.0, horizon_ps=us(200), n_ports=16, k=4
    )
    kwargs.update(overrides)
    return FaultSchedule.generate(**kwargs)


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a = _generate()
        b = _generate()
        assert a.events == b.events

    def test_different_seed_differs(self):
        assert _generate(seed=1).events != _generate(seed=2).events

    def test_rate_change_differs(self):
        assert len(_generate(rate_per_us=8.0)) > len(_generate(rate_per_us=0.5))


class TestShape:
    def test_zero_rate_is_empty(self):
        sched = _generate(rate_per_us=0.0)
        assert len(sched) == 0
        assert not sched

    def test_zero_horizon_is_empty(self):
        assert not _generate(horizon_ps=0)

    def test_events_sorted_within_horizon(self):
        sched = _generate(rate_per_us=10.0)
        times = [ev.time_ps for ev in sched.events]
        assert times == sorted(times)
        assert all(0 < t <= us(200) for t in times)

    def test_fields_in_range(self):
        sched = _generate(rate_per_us=20.0, seed=7)
        assert len(sched) > 100  # enough draws to hit every branch
        for ev in sched.events:
            if ev.kind in (FaultKind.LINK_TRANSIENT, FaultKind.LINK_FAIL):
                assert 0 <= ev.port < 16
            if ev.kind is FaultKind.LINK_TRANSIENT:
                assert ev.duration_ps > 0
            if ev.kind in (FaultKind.REG_STUCK, FaultKind.REG_CORRUPT):
                assert 0 <= ev.slot < 4
            if ev.kind in (FaultKind.REQ_DROP, FaultKind.SL_DEAD):
                assert 0 <= ev.src < 16
                assert 0 <= ev.dst < 16
                assert ev.src != ev.dst

    def test_weights_restrict_kinds(self):
        sched = _generate(weights={FaultKind.REQ_DROP: 1.0})
        assert sched
        assert all(ev.kind is FaultKind.REQ_DROP for ev in sched.events)

    def test_default_weights_cover_all_kinds(self):
        assert set(DEFAULT_WEIGHTS) == set(FaultKind)
        assert sum(DEFAULT_WEIGHTS.values()) == pytest.approx(1.0)

    def test_describe_one_line_per_event(self):
        sched = _generate(rate_per_us=20.0, seed=7)
        assert len(sched.describe().splitlines()) == len(sched)
        assert FaultSchedule(events=()).describe() == "(empty fault schedule)"

    def test_unsorted_events_rejected(self):
        good = _generate(rate_per_us=10.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule(events=tuple(reversed(good.events)))

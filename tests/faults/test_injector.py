"""Unit tests for the fault injector's arming, dispatch, and bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.networks.wormhole import WormholeNetwork
from repro.params import PAPER_PARAMS
from repro.sim.clock import ns, us
from repro.traffic.base import TrafficPhase, assign_seq
from repro.types import Message


def _phase(n_messages: int = 6, size: int = 256) -> TrafficPhase:
    msgs = [
        Message(src=i % 4, dst=(i + 1) % 4, size=size) for i in range(n_messages)
    ]
    phase = TrafficPhase("t", msgs)
    assign_seq([phase])
    return phase


class TestActivation:
    def test_empty_schedule_inactive(self):
        assert not FaultInjector(FaultSchedule(events=())).active

    def test_nonempty_schedule_active(self):
        sched = FaultSchedule(
            events=(FaultEvent(time_ps=ns(10), kind=FaultKind.LINK_FAIL, port=0),)
        )
        assert FaultInjector(sched).active

    def test_negative_detection_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultSchedule(events=()), detect_ps=-1)


class TestDispatchCounters:
    def test_applied_and_skipped_kinds_counted(self):
        """Wormhole has no scheduler plane: link faults apply, the rest skip."""
        sched = FaultSchedule(
            events=(
                FaultEvent(
                    time_ps=ns(50),
                    kind=FaultKind.LINK_TRANSIENT,
                    port=0,
                    duration_ps=ns(100),
                ),
                FaultEvent(time_ps=ns(60), kind=FaultKind.REG_STUCK, slot=0),
                FaultEvent(time_ps=ns(70), kind=FaultKind.REQ_DROP, src=0, dst=1),
                FaultEvent(time_ps=ns(80), kind=FaultKind.SL_DEAD, src=1, dst=2),
                FaultEvent(time_ps=ns(90), kind=FaultKind.LINK_FAIL, port=3),
            )
        )
        inj = FaultInjector(sched)
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        net = WormholeNetwork(params, faults=inj)
        net.run([_phase()])
        counters = inj.counters.as_dict()
        assert counters["applied_link_transient"] == 1
        assert counters["applied_link_fail"] == 1
        assert counters["skipped_reg_stuck"] == 1
        assert counters["skipped_req_drop"] == 1
        assert counters["skipped_sl_dead"] == 1

    def test_fault_counters_reach_run_result(self):
        sched = FaultSchedule(
            events=(FaultEvent(time_ps=ns(50), kind=FaultKind.LINK_FAIL, port=3),)
        )
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        result = WormholeNetwork(params, faults=FaultInjector(sched)).run([_phase()])
        assert result.counters["fault_applied_link_fail"] == 1

    def test_faults_after_run_end_missed(self):
        """Faults scheduled beyond the drained run are counted as missed."""
        sched = FaultSchedule(
            events=(FaultEvent(time_ps=us(500), kind=FaultKind.LINK_FAIL, port=0),)
        )
        inj = FaultInjector(sched)
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        result = WormholeNetwork(params, faults=inj).run([_phase()])
        # the run drains long before 500 us; the armed event simply never
        # fires inside the phase loop, and nothing was applied or skipped
        assert not any(k.startswith("applied_") for k in inj.counters.as_dict())
        assert result.drops == []


class TestRecoveryBookkeeping:
    def test_disrupt_then_progress_records_latency(self):
        sched = FaultSchedule(
            events=(FaultEvent(time_ps=ns(10), kind=FaultKind.LINK_FAIL, port=0),)
        )
        inj = FaultInjector(sched)
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        net = WormholeNetwork(params, faults=inj)
        net.run([_phase()])  # binds the injector to net.sim
        inj.recovery_ps = []
        net.sim.now = 1000
        inj.note_disrupted(1, 2)
        inj.note_disrupted(1, 2)  # keeps the earliest disruption time
        net.sim.now = 5000
        inj.note_progress(1, 2)
        assert inj.recovery_ps == [4000]
        inj.note_progress(1, 2)  # no window open: no-op
        assert inj.recovery_ps == [4000]

    def test_cancel_drops_window_without_recording(self):
        inj = FaultInjector(
            FaultSchedule(
                events=(FaultEvent(time_ps=ns(10), kind=FaultKind.LINK_FAIL, port=0),)
            )
        )
        params = PAPER_PARAMS.with_overrides(n_ports=4)
        net = WormholeNetwork(params, faults=inj)
        net.run([_phase()])
        inj.recovery_ps = []
        inj.note_disrupted(1, 2)
        inj.note_disrupted(3, 1)
        inj.cancel_awaiting(1, 2)
        inj.cancel_awaiting_port(1)
        inj.note_progress(1, 2)
        inj.note_progress(3, 1)
        assert inj.recovery_ps == []

"""Unit tests for the retry/backoff policy."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import RetryPolicy
from repro.sim.clock import ns


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(timeout_ps=ns(100), backoff=2.0, max_delay_ps=ns(10_000))
        assert policy.delay_ps(0) == ns(100)
        assert policy.delay_ps(1) == ns(200)
        assert policy.delay_ps(3) == ns(800)

    def test_backoff_capped(self):
        policy = RetryPolicy(timeout_ps=ns(100), backoff=2.0, max_delay_ps=ns(300))
        assert policy.delay_ps(5) == ns(300)

    def test_delays_are_exact_integers(self):
        policy = RetryPolicy(timeout_ps=333, backoff=1.5)
        for attempt in range(8):
            assert isinstance(policy.delay_ps(attempt), int)

    def test_total_attempts(self):
        policy = RetryPolicy(max_retries=4, mgmt_attempts=2)
        assert policy.total_attempts == 6

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timeout_ps=0),
            dict(timeout_ps=-ns(100)),
            dict(backoff=0.5),
            dict(backoff=0.0),
            dict(max_retries=-1),
            dict(mgmt_attempts=-1),
            # zero total attempts: the watchdog would give up on first fire
            dict(max_retries=0, mgmt_attempts=0),
            # backoff ceiling below the first timeout silently shrinks it
            dict(max_delay_ps=0),
            dict(max_delay_ps=-1),
            dict(timeout_ps=ns(800), max_delay_ps=ns(400)),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_rejection_messages_name_the_offender(self):
        with pytest.raises(ConfigurationError, match="max_delay_ps"):
            RetryPolicy(timeout_ps=ns(800), max_delay_ps=ns(100))
        with pytest.raises(ConfigurationError, match="at least one attempt"):
            RetryPolicy(max_retries=0, mgmt_attempts=0)
        with pytest.raises(ConfigurationError, match="backoff"):
            RetryPolicy(backoff=0.9)

    def test_ceiling_equal_to_timeout_is_allowed(self):
        policy = RetryPolicy(timeout_ps=ns(500), max_delay_ps=ns(500))
        assert policy.delay_ps(0) == ns(500)
        assert policy.delay_ps(4) == ns(500)

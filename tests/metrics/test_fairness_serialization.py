"""Unit tests for fairness metrics and result serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.fairness import jain_index, latency_fairness, throughput_fairness
from repro.metrics.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.networks.tdm import TdmNetwork
from repro.networks.wormhole import WormholeNetwork
from repro.params import PAPER_PARAMS
from repro.sim.rng import RngStreams
from repro.traffic.scatter import ScatterPattern
from repro.traffic.synthetic import UniformRandomPattern


@pytest.fixture
def params():
    return PAPER_PARAMS.with_overrides(n_ports=8)


@pytest.fixture
def sample_result(params):
    pattern = UniformRandomPattern(8, 64, messages_per_node=4)
    return TdmNetwork(params, k=2, mode="dynamic").run(
        pattern.phases(RngStreams(3)), pattern_name=pattern.name
    )


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_perfectly_unfair(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jain_index([1.0, -1.0])

    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    def test_property_bounds(self, xs):
        j = jain_index(xs)
        assert 1.0 / len(xs) - 1e-9 <= j <= 1.0 + 1e-9


class TestRunFairness:
    def test_uniform_traffic_is_fair(self, sample_result):
        assert throughput_fairness(sample_result) > 0.9
        assert latency_fairness(sample_result) > 0.5

    def test_scatter_throughput_single_source(self, params):
        pattern = ScatterPattern(8, 64)
        result = WormholeNetwork(params).run(pattern.phases(RngStreams(0)))
        # only one active source: trivially fair among active sources
        assert throughput_fairness(result) == pytest.approx(1.0)

    def test_empty_run_rejected(self, sample_result):
        sample_result.records.clear()
        with pytest.raises(ConfigurationError):
            throughput_fairness(sample_result)
        with pytest.raises(ConfigurationError):
            latency_fairness(sample_result)


class TestSerialization:
    def test_roundtrip_exact(self, sample_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(sample_result, path)
        loaded = load_result(path)
        assert loaded.scheme == sample_result.scheme
        assert loaded.makespan_ps == sample_result.makespan_ps
        assert loaded.params == sample_result.params
        assert loaded.counters == sample_result.counters
        assert [dataclass_tuple(r) for r in loaded.records] == [
            dataclass_tuple(r) for r in sample_result.records
        ]
        assert len(loaded.phases) == len(sample_result.phases)

    def test_derived_quantities_survive(self, sample_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(sample_result, path)
        loaded = load_result(path)
        assert (
            loaded.latency_stats().mean
            == sample_result.latency_stats().mean
        )
        assert loaded.throughput_bytes_per_ns == sample_result.throughput_bytes_per_ns

    def test_version_checked(self, sample_result):
        data = result_to_dict(sample_result)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            result_from_dict(data)


def dataclass_tuple(record):
    return (
        record.src,
        record.dst,
        record.size,
        record.inject_ps,
        record.start_ps,
        record.done_ps,
        record.seq,
    )
